//! An ordered in-memory index built on the Natarajan-Mittal tree with SCOT,
//! compared head-to-head against the list-based sets on the same workload.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example ordered_index
//! ```
//!
//! The scenario: an index of event timestamps that several producer threads
//! append to and several reaper threads trim, while query threads probe for
//! membership — the kind of ordered-index workload the paper's introduction
//! motivates for non-blocking structures.  The example prints the throughput
//! achieved by the tree and by the two lists under the same reclamation
//! scheme (IBR), illustrating why the tree is the structure of choice for
//! large key ranges (compare Figure 8 vs Figure 9 of the paper).

use scot::{ConcurrentSet, HarrisList, HarrisMichaelList, NmTree};
use scot_smr::{Ibr, Smr, SmrConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn drive<C: ConcurrentSet<u64> + 'static>(name: &str, set: Arc<C>, key_range: u64) {
    let threads = 4;
    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));

    // Prefill half of the range, as the paper's benchmark does.
    {
        let mut handle = set.handle();
        for k in (0..key_range).step_by(2) {
            set.insert(&mut handle, k);
        }
    }

    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            let set = set.clone();
            let stop = stop.clone();
            let ops = ops.clone();
            s.spawn(move || {
                let mut handle = set.handle();
                let mut x = (t + 1).wrapping_mul(0x2545F4914F6CDD1D);
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = x % key_range;
                    match x % 4 {
                        0 => {
                            set.insert(&mut handle, key);
                        }
                        1 => {
                            set.remove(&mut handle, &key);
                        }
                        _ => {
                            set.contains(&mut handle, &key);
                        }
                    }
                    local += 1;
                }
                ops.fetch_add(local, Ordering::Relaxed);
            });
        }
        std::thread::sleep(Duration::from_millis(600));
        stop.store(true, Ordering::SeqCst);
    });
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "{name:<24} {:>12.0} ops/s  (restarts: {})",
        ops.load(Ordering::Relaxed) as f64 / elapsed,
        set.restart_count()
    );
}

fn main() {
    let key_range = 10_000u64;
    let cfg = SmrConfig::for_threads(4);
    println!("ordered-index workload, key range {key_range}, 50% reads, IBR reclamation\n");

    let tree: Arc<NmTree<u64, Ibr>> = Arc::new(NmTree::new(Ibr::new(cfg.clone())));
    drive("NMTree (SCOT)", tree, key_range);

    let hlist: Arc<HarrisList<u64, Ibr>> = Arc::new(HarrisList::new(Ibr::new(cfg.clone())));
    drive("Harris list (SCOT)", hlist, key_range);

    let hmlist: Arc<HarrisMichaelList<u64, Ibr>> = Arc::new(HarrisMichaelList::new(Ibr::new(cfg)));
    drive("Harris-Michael list", hmlist, key_range);

    println!("\nExpected shape (paper Figures 8-9): the tree is far ahead at this range,");
    println!("and Harris' list with SCOT stays ahead of the Harris-Michael baseline.");
}
