//! Quickstart: a concurrent ordered set with SCOT traversals under hazard
//! pointers.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This is the minimal end-to-end flow: create a reclamation domain, create a
//! data structure on top of it, register one handle per thread, and perform
//! set operations.  The same code works unchanged with `Ebr`, `He`, `Ibr` or
//! `Hyaline` in place of `Hp` — that is the point of the paper: the data
//! structure carries the SCOT validation, so every reclamation scheme can host
//! it.

use scot::{ConcurrentSet, HarrisList, NmTree};
use scot_smr::{Hp, Smr, SmrConfig};
use std::sync::Arc;

fn main() {
    let threads = 4;
    let config = SmrConfig::for_threads(threads);

    // An ordered set backed by Harris' list with SCOT, reclaimed by hazard
    // pointers: robust (bounded memory even with stalled threads) *and*
    // optimistically traversed (fast), which used to be mutually exclusive.
    let list: Arc<HarrisList<u64, Hp>> = Arc::new(HarrisList::new(Hp::new(config.clone())));

    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            let list = list.clone();
            s.spawn(move || {
                let mut handle = list.handle();
                for i in 0..1_000 {
                    let key = t * 10_000 + i;
                    assert!(list.insert(&mut handle, key));
                    assert!(list.contains(&mut handle, &key));
                    if i % 2 == 0 {
                        assert!(list.remove(&mut handle, &key));
                    }
                }
            });
        }
    });

    let mut handle = list.handle();
    let live = list.collect_keys(&mut handle).len();
    println!("Harris list (SCOT, HP): {live} keys survive (expected 2000)");
    println!(
        "retired-but-unreclaimed nodes right now: {}",
        list.domain().unreclaimed()
    );

    // The same program, with the Natarajan-Mittal tree for logarithmic search.
    let tree: Arc<NmTree<u64, Hp>> = Arc::new(NmTree::new(Hp::new(config)));
    let mut handle = tree.handle();
    for k in [42u64, 7, 99, 3] {
        tree.insert(&mut handle, k);
    }
    tree.remove(&mut handle, &7);
    println!(
        "NMTree (SCOT, HP): keys = {:?} (expected [3, 42, 99])",
        tree.collect_keys(&mut handle)
    );
}
