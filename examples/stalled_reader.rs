//! Robustness demonstration: what a stalled reader does to EBR versus a
//! robust scheme (HP) — the paper's core motivation (§1, §2.2.1).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example stalled_reader
//! ```
//!
//! One reader thread enters a critical section and never leaves (simulating a
//! preempted or crashed thread).  Writer threads keep inserting and removing
//! keys.  Under EBR the stalled reader pins the global epoch, so the number of
//! retired-but-unreclaimed nodes grows with every removal; under HP (with the
//! very same Harris list, thanks to SCOT) the unreclaimed count stays bounded
//! by the Theorem 1 bound `O(|D| + N)` no matter how long the writers run.

use scot::{ConcurrentSet, HarrisList};
use scot_smr::SmrGuard as _;
use scot_smr::{Ebr, Hp, Smr, SmrConfig, SmrHandle};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn churn<S: Smr>(label: &str) -> Vec<usize> {
    let writers = 3;
    let cfg = SmrConfig::for_threads(writers + 1);
    let domain = S::new(cfg);
    let list: Arc<HarrisList<u64, S>> = Arc::new(HarrisList::new(domain.clone()));
    let stop = Arc::new(AtomicBool::new(false));
    let mut samples = Vec::new();

    std::thread::scope(|s| {
        // The stalled reader: pins a critical section and goes to sleep.
        {
            let domain = domain.clone();
            let stop = stop.clone();
            s.spawn(move || {
                // Register directly with the reclamation domain, enter a
                // critical section (as any in-flight operation would) and
                // never leave it.
                let mut reader = domain.register();
                let mut guard = reader.pin();
                let _ = guard.alloc(0u64); // touch the guard so it is used
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(10));
                }
                drop(guard);
            });
        }
        // Writers: constant insert/remove churn.
        for t in 0..writers as u64 {
            let list = list.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut handle = list.handle();
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let key = t * 1_000_000 + (i % 4096);
                    list.insert(&mut handle, key);
                    list.remove(&mut handle, &key);
                    i += 1;
                }
            });
        }
        // Sampler: record the unreclaimed-object count over time.
        for _ in 0..20 {
            std::thread::sleep(Duration::from_millis(50));
            samples.push(domain.unreclaimed());
        }
        stop.store(true, Ordering::SeqCst);
    });

    println!("{label:<6} unreclaimed objects over time: {samples:?}");
    samples
}

fn main() {
    println!("A stalled reader holds a critical section while 3 writers churn keys.\n");
    let ebr = churn::<Ebr>("EBR");
    let hp = churn::<Hp>("HP");

    let ebr_final = *ebr.last().unwrap_or(&0);
    let hp_final = *hp.last().unwrap_or(&0);
    println!();
    println!("final backlog:  EBR = {ebr_final}   HP = {hp_final}");
    println!(
        "EBR's backlog grows for as long as the writers run (unbounded memory, paper §2.2.1),"
    );
    println!("while HP stays within its Theorem 1 bound — and thanks to SCOT the very same");
    println!("Harris list with optimistic traversals runs under both schemes.");
}
