//! A concurrent key-value cache built on the lock-free hash map (an array of
//! Harris lists, as the paper describes in §2.3), reclaimed by Hyaline-1S.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example concurrent_cache
//! ```
//!
//! The scenario mirrors the paper's motivation for robust reclamation in
//! long-running services: many worker threads admit and evict entries from a
//! shared cache at a high rate.  Unlike a membership filter, this cache stores
//! **real values** — each hit hands back a guard-scoped `&Entry` borrow, which
//! is exactly the operation that is a use-after-free unless the reclamation
//! scheme provably keeps the entry alive while the borrow exists.  With EBR a
//! single stalled worker would make the retired-entry backlog grow without
//! bound; with Hyaline-1S (or HP/HE/IBR) the backlog stays bounded, and thanks
//! to SCOT the cache still uses the fast optimistic-traversal list underneath.

use scot::{ConcurrentMap, HashMap};
use scot_smr::{Hyaline, Smr, SmrConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The cached value: a digest of the (simulated) expensive computation plus
/// the payload bytes themselves.  The digest lets every hit validate the
/// borrow it got back — a free sanity check on the reclamation scheme.
struct Entry {
    digest: u64,
    payload: [u8; 48],
}

impl Entry {
    /// "Renders" the entry for `key` — stands in for the expensive work a
    /// real service would cache (a DB row, a compiled template, ...).
    fn render(key: u64) -> Self {
        let mut x = key.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let mut payload = [0u8; 48];
        for b in payload.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *b = x as u8;
        }
        Self {
            digest: payload
                .iter()
                .fold(key, |d, &b| d.rotate_left(5) ^ u64::from(b)),
            payload,
        }
    }

    fn verify(&self, key: u64) -> bool {
        self.payload
            .iter()
            .fold(key, |d, &b| d.rotate_left(5) ^ u64::from(b))
            == self.digest
    }
}

fn main() {
    let threads = 4;
    let key_space = 100_000u64;
    let config = SmrConfig::for_threads(threads);
    let cache: Arc<HashMap<u64, Hyaline, Entry>> =
        Arc::new(HashMap::new(1024, Hyaline::new(config)));

    let hits = Arc::new(AtomicU64::new(0));
    let misses = Arc::new(AtomicU64::new(0));
    let admitted = Arc::new(AtomicU64::new(0));
    let evicted = Arc::new(AtomicU64::new(0));
    let bytes_served = Arc::new(AtomicU64::new(0));

    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            let cache = cache.clone();
            let hits = hits.clone();
            let misses = misses.clone();
            let admitted = admitted.clone();
            let evicted = evicted.clone();
            let bytes_served = bytes_served.clone();
            s.spawn(move || {
                let mut handle = cache.handle();
                let mut x = t.wrapping_mul(0x9e3779b97f4a7c15) | 1;
                let mut served = 0u64;
                while start.elapsed() < Duration::from_millis(750) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    // Zipf-ish skew: half the traffic goes to 1/16th of keys.
                    let key = if x % 2 == 0 {
                        x % (key_space / 16)
                    } else {
                        x % key_space
                    };
                    let mut guard = cache.pin(&mut handle);
                    if let Some(entry) = cache.get(&mut guard, &key) {
                        // The borrow lives under the guard: reading the
                        // payload here is sound under Hyaline's protection.
                        assert!(entry.verify(key), "cache served a corrupted entry");
                        served += entry.payload.len() as u64;
                        hits.fetch_add(1, Ordering::Relaxed);
                        // Periodically evict hot entries to force churn; the
                        // evicted value is still readable through the guard.
                        if x % 8 == 0 {
                            if let Some(old) = cache.remove(&mut guard, &key) {
                                assert!(old.verify(key));
                                evicted.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    } else {
                        misses.fetch_add(1, Ordering::Relaxed);
                        if cache.insert(&mut guard, key, Entry::render(key)).is_ok() {
                            admitted.fetch_add(1, Ordering::Relaxed);
                        }
                        // On Err the rendered entry comes back and is dropped
                        // here — a concurrent admit beat us to the key.
                    }
                }
                bytes_served.fetch_add(served, Ordering::Relaxed);
            });
        }
    });

    let h = hits.load(Ordering::Relaxed);
    let m = misses.load(Ordering::Relaxed);
    println!(
        "cache lookups: {} ({} hits / {} misses, {:.1}% hit rate)",
        h + m,
        h,
        m,
        100.0 * h as f64 / (h + m).max(1) as f64
    );
    println!(
        "served {} payload bytes from guard-scoped borrows",
        bytes_served.load(Ordering::Relaxed)
    );
    println!(
        "admitted {} entries, evicted {}, resident ≈ {}",
        admitted.load(Ordering::Relaxed),
        evicted.load(Ordering::Relaxed),
        cache.len(&mut cache.handle())
    );
    println!(
        "retired-but-unreclaimed entries at shutdown: {}",
        cache.domain().unreclaimed()
    );
}
