//! A concurrent membership cache built on the lock-free hash map (an array of
//! Harris lists, as the paper describes in §2.3), reclaimed by Hyaline-1S.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example concurrent_cache
//! ```
//!
//! The scenario mirrors the paper's motivation for robust reclamation in
//! long-running services: many worker threads admit and evict entries from a
//! shared cache at a high rate.  With EBR a single stalled worker would make
//! the retired-entry backlog grow without bound; with Hyaline-1S (or HP/HE/
//! IBR) the backlog stays bounded, and thanks to SCOT the cache still uses the
//! fast optimistic-traversal list underneath.

use scot::{ConcurrentSet, HashMap};
use scot_smr::{Hyaline, Smr, SmrConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let threads = 4;
    let key_space = 100_000u64;
    let config = SmrConfig::for_threads(threads);
    let cache: Arc<HashMap<u64, Hyaline>> = Arc::new(HashMap::new(1024, Hyaline::new(config)));

    let hits = Arc::new(AtomicU64::new(0));
    let misses = Arc::new(AtomicU64::new(0));
    let admitted = Arc::new(AtomicU64::new(0));
    let evicted = Arc::new(AtomicU64::new(0));

    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads as u64 {
            let cache = cache.clone();
            let hits = hits.clone();
            let misses = misses.clone();
            let admitted = admitted.clone();
            let evicted = evicted.clone();
            s.spawn(move || {
                let mut handle = cache.handle();
                let mut x = t.wrapping_mul(0x9e3779b97f4a7c15) | 1;
                while start.elapsed() < Duration::from_millis(750) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    // Zipf-ish skew: half the traffic goes to 1/16th of keys.
                    let key = if x % 2 == 0 {
                        x % (key_space / 16)
                    } else {
                        x % key_space
                    };
                    if cache.contains(&mut handle, &key) {
                        hits.fetch_add(1, Ordering::Relaxed);
                        // Periodically evict hot entries to force churn.
                        if x % 8 == 0 && cache.remove(&mut handle, &key) {
                            evicted.fetch_add(1, Ordering::Relaxed);
                        }
                    } else {
                        misses.fetch_add(1, Ordering::Relaxed);
                        if cache.insert(&mut handle, key) {
                            admitted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    let h = hits.load(Ordering::Relaxed);
    let m = misses.load(Ordering::Relaxed);
    println!(
        "cache lookups: {} ({} hits / {} misses, {:.1}% hit rate)",
        h + m,
        h,
        m,
        100.0 * h as f64 / (h + m).max(1) as f64
    );
    println!(
        "admitted {} entries, evicted {}, resident ≈ {}",
        admitted.load(Ordering::Relaxed),
        evicted.load(Ordering::Relaxed),
        cache.len(&mut cache.handle())
    );
    println!(
        "retired-but-unreclaimed entries at shutdown: {}",
        cache.domain().unreclaimed()
    );
}
