//! Integration tests for the benchmark harness: every experiment preset of the
//! paper must be runnable end to end (in quick mode) and produce sane data.

use scot_harness::experiments::{
    compatibility_matrix, restart_table, run_experiment, ExperimentOptions, ALL_EXPERIMENTS,
};
use scot_harness::{run_timed, DsKind, Mix, RunConfig, SmrKind};
use std::time::Duration;

fn tiny() -> ExperimentOptions {
    ExperimentOptions {
        duration: Duration::from_millis(60),
        runs: 1,
        threads: vec![2],
        scale_large_range: 50_000,
        value_bytes: 16,
        scan_lens: vec![8],
        faults: vec![scot_harness::FaultKind::ThreadDeath],
        zipf_theta: 0.99,
        ..ExperimentOptions::default()
    }
}

#[test]
fn throughput_experiments_produce_positive_throughput() {
    for id in ["fig8a", "fig9a"] {
        let results = run_experiment(id, &tiny(), |_| {}).unwrap();
        assert!(!results.is_empty());
        for r in &results {
            assert!(r.ops_per_sec > 0.0, "{id}: {} under {} idle", r.ds, r.smr);
        }
    }
}

#[test]
fn memory_experiments_report_unreclaimed_counts() {
    let results = run_experiment("fig10a", &tiny(), |_| {}).unwrap();
    for r in &results {
        assert!(
            r.avg_unreclaimed.is_some(),
            "memory experiment must sample unreclaimed counts ({} / {})",
            r.ds,
            r.smr
        );
    }
    // The robust schemes must not exceed EBR by orders of magnitude; EBR is
    // expected to be the high-water mark overall (paper Figures 10-11), but on
    // short quick-mode runs we only assert the data is present and plausible.
    assert!(results.iter().any(|r| r.smr == "EBR"));
    assert!(results.iter().any(|r| r.smr == "HP"));
}

#[test]
fn tab1_matrix_covers_every_pair() {
    let results = run_experiment("tab1", &tiny(), |_| {}).unwrap();
    let matrix = compatibility_matrix(&results);
    for ds in DsKind::ALL {
        assert!(matrix.contains(ds.name()), "matrix missing {}", ds.name());
    }
    for smr in SmrKind::ALL {
        assert!(matrix.contains(smr.name()), "matrix missing {}", smr.name());
    }
    // Every pair must have completed operations ("ok" appears once per
    // structure × scheme cell — the matrix dimensions come straight from
    // `DsKind::ALL` × `SmrKind::ALL`, so this grows with new schemes).
    assert_eq!(
        matrix.matches(" ok").count(),
        DsKind::ALL.len() * SmrKind::ALL.len()
    );
}

#[test]
fn checkpoint_schemes_run_timed_and_report_counters() {
    // NBR and VBR flow through the full harness path: completed operations,
    // tracked memory samples (they are not Hyaline), and finite restart
    // counters fed by the rung-4 checkpoint acknowledgments.
    let cfg = RunConfig {
        threads: 2,
        key_range: 256,
        mix: Mix::READ_50,
        duration: Duration::from_millis(60),
        sample_interval: Duration::from_millis(5),
        seed: 7,
        pool: true,
        ..RunConfig::paper_default(2, 256)
    };
    for smr in [SmrKind::Nbr, SmrKind::Vbr] {
        let r = run_timed(DsKind::SkipList, smr, &cfg);
        assert!(r.ops > 0, "{smr}: no operations completed");
        assert!(
            r.avg_unreclaimed.is_some(),
            "{smr} must report memory overhead"
        );
        assert_eq!(r.smr, smr.name());
    }
}

#[test]
fn tab2_reports_restarts_for_both_lists() {
    let results = run_experiment("tab2", &tiny(), |_| {}).unwrap();
    let table = restart_table(&results);
    assert!(table.contains("HMList"));
    assert!(table.contains("HList"));
    assert!(table.contains("restart"));
}

#[test]
fn cache_experiment_reads_values_under_every_scheme() {
    let results = run_experiment("cache", &tiny(), |_| {}).unwrap();
    assert_eq!(results.len(), SmrKind::ALL.len());
    for r in &results {
        assert!(r.ops > 0, "cache idle: {} under {}", r.ds, r.smr);
        assert_eq!(r.ds, "HashMap");
    }
}

#[test]
fn faults_experiment_flows_through_run_experiment() {
    // The faults preset is reachable through the generic `run_experiment`
    // entry point like every other preset, projecting each fault cell onto
    // the common result shape (baseline → avg, peak → max unreclaimed).
    let results = run_experiment("faults", &tiny(), |_| {}).unwrap();
    assert_eq!(results.len(), SmrKind::ALL.len()); // 1 structure × 1 fault
    for r in &results {
        assert!(r.ops > 0, "faults idle: {} under {}", r.ds, r.smr);
        assert!(
            r.max_unreclaimed.is_some(),
            "fault cells must report peak unreclaimed ({})",
            r.smr
        );
    }
}

#[test]
fn service_experiment_flows_through_run_experiment() {
    // The service preset projects onto the common result shape by keeping one
    // row per (scheme, phase) for the `get` class; quick mode pins a single
    // structure and five schemes spanning the robust/non-robust divide.
    let results = run_experiment("service", &tiny(), |_| {}).unwrap();
    assert_eq!(results.len(), 5 * 4, "5 schemes x 4 phases");
    for phase in ["warmup", "read-storm", "churn-spike", "reader-stall"] {
        assert!(
            results.iter().any(|r| r.smr.ends_with(phase)),
            "service results missing phase {phase}"
        );
    }
    for r in &results {
        assert_eq!(r.ds, "HList");
    }
    assert!(
        results.iter().any(|r| r.ops > 0),
        "service run completed no operations at all"
    );
}

#[test]
fn all_experiment_ids_resolve() {
    let opts = tiny();
    for id in ALL_EXPERIMENTS {
        assert!(
            scot_harness::experiments::spec(id, &opts).is_some(),
            "unknown experiment {id}"
        );
    }
}

#[test]
fn custom_mix_run_matches_requested_shape() {
    // A write-only run on the tree must complete operations and keep restart
    // counts finite; a read-only-ish run must too.
    let cfg = RunConfig {
        threads: 2,
        key_range: 1024,
        mix: Mix::WRITE_ONLY,
        duration: Duration::from_millis(80),
        sample_interval: Duration::from_millis(5),
        seed: 42,
        pool: true,
        ..RunConfig::paper_default(2, 1024)
    };
    let r = run_timed(DsKind::Tree, SmrKind::HpOpt, &cfg);
    assert!(r.ops > 0);
    let cfg = RunConfig {
        mix: Mix::READ_90,
        ..cfg
    };
    let r = run_timed(DsKind::ListLf, SmrKind::He, &cfg);
    assert!(r.ops > 0);
}

#[test]
fn scan_experiment_sweeps_lengths_and_schemes_with_verified_output() {
    let results = run_experiment("scan", &tiny(), |_| {}).unwrap();
    // 2 structures × every scheme variant × 1 scan length.
    assert_eq!(results.len(), 2 * SmrKind::ALL.len());
    for smr in SmrKind::ALL {
        assert!(
            results.iter().any(|r| r.smr == smr.name() && r.ops > 0),
            "scan experiment idle under {smr}"
        );
    }
    for r in &results {
        // The hot loop oracle-checks every scan; a completed run with scanned
        // keys certifies window/order correctness under that scheme.
        assert!(
            r.scanned_keys > 0,
            "{} under {} scanned nothing",
            r.ds,
            r.smr
        );
        assert_eq!(r.scan_len, 8);
    }
    let table = scot_harness::experiments::scan_table(&results);
    assert!(table.contains("SkipList") && table.contains("NMTree"));
    assert!(table.contains("keys/scan") && table.contains("recoveries"));
}
