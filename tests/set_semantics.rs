//! Cross-crate integration tests: every data structure under every SMR scheme
//! must behave as a set, and the harness must be able to drive all of them.

use scot::{ConcurrentSet, HarrisList, HarrisMichaelList, HashMap, NmTree, SkipList, WfHarrisList};
use scot_smr::{Ebr, He, Hp, Hyaline, Ibr, Nbr, Nr, SmrConfig, Vbr};
use std::sync::Arc;

fn cfg() -> SmrConfig {
    SmrConfig {
        max_threads: 32,
        scan_threshold: 16,
        epoch_freq_per_thread: 1,
        snapshot_scan: false,
        ..SmrConfig::default()
    }
}

/// Sequential set semantics shared by every structure.
fn check_set_semantics<C: ConcurrentSet<u64>>(set: &C) {
    let mut h = set.handle();
    assert!(!set.contains(&mut h, &10));
    assert!(set.insert(&mut h, 10));
    assert!(!set.insert(&mut h, 10));
    assert!(set.insert(&mut h, 20));
    assert!(set.insert(&mut h, 15));
    assert!(set.contains(&mut h, &10));
    assert!(set.contains(&mut h, &15));
    assert!(set.contains(&mut h, &20));
    assert!(!set.contains(&mut h, &11));
    assert!(set.remove(&mut h, &15));
    assert!(!set.remove(&mut h, &15));
    assert!(!set.contains(&mut h, &15));
    // Boundary keys.
    assert!(set.insert(&mut h, 0));
    assert!(set.insert(&mut h, u64::MAX));
    assert!(set.contains(&mut h, &0));
    assert!(set.contains(&mut h, &u64::MAX));
    assert!(set.remove(&mut h, &0));
    assert!(set.remove(&mut h, &u64::MAX));
    // The trait-level snapshot works identically for every structure: sorted,
    // duplicate-free, and in agreement with the operations above.
    assert_eq!(set.collect_keys(&mut h), vec![10, 20]);
}

macro_rules! semantics_tests {
    ($($name:ident, $smr:ty);* $(;)?) => {$(
        mod $name {
            use super::*;

            #[test]
            fn harris_list() {
                let set: HarrisList<u64, $smr> = HarrisList::with_config(cfg());
                check_set_semantics(&set);
            }

            #[test]
            fn harris_michael_list() {
                let set: HarrisMichaelList<u64, $smr> = HarrisMichaelList::with_config(cfg());
                check_set_semantics(&set);
            }

            #[test]
            fn nm_tree() {
                let set: NmTree<u64, $smr> = NmTree::with_config(cfg());
                check_set_semantics(&set);
            }

            #[test]
            fn wf_harris_list() {
                let set: WfHarrisList<u64, $smr> = WfHarrisList::with_config(cfg());
                check_set_semantics(&set);
            }

            #[test]
            fn hash_map() {
                let set: HashMap<u64, $smr> = HashMap::with_config(16, cfg());
                check_set_semantics(&set);
            }

            #[test]
            fn skip_list() {
                let set: SkipList<u64, $smr> = SkipList::with_config(cfg());
                check_set_semantics(&set);
            }
        }
    )*};
}

semantics_tests! {
    under_nr, Nr;
    under_ebr, Ebr;
    under_hp, Hp;
    under_he, He;
    under_ibr, Ibr;
    under_hyaline, Hyaline;
    under_nbr, Nbr;
    under_vbr, Vbr;
}

/// The paper's Table 1, as an executable assertion: the SCOT structures work
/// under all robust schemes with concurrent mixed workloads.
fn concurrent_consistency<C: ConcurrentSet<u32> + 'static>(set: Arc<C>) {
    // Stable keys are inserted up front and never removed; volatile keys churn.
    let mut h = set.handle();
    for k in 0..64u32 {
        assert!(set.insert(&mut h, k * 2));
    }
    drop(h);
    std::thread::scope(|s| {
        for t in 0..6u32 {
            let set = set.clone();
            s.spawn(move || {
                let mut h = set.handle();
                let mut x = (t as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15);
                for _ in 0..4000 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let volatile = ((x % 64) * 2 + 1) as u32;
                    match x % 3 {
                        0 => {
                            set.insert(&mut h, volatile);
                        }
                        1 => {
                            set.remove(&mut h, &volatile);
                        }
                        _ => {
                            set.contains(&mut h, &volatile);
                        }
                    }
                    let stable = ((x % 64) * 2) as u32;
                    assert!(set.contains(&mut h, &stable), "stable key {stable} lost");
                }
            });
        }
    });
    // After the churn every stable key must still be present and every lookup
    // of an out-of-range key must fail.
    let mut h = set.handle();
    for k in 0..64u32 {
        assert!(set.contains(&mut h, &(k * 2)));
        assert!(!set.contains(&mut h, &(1000 + k)));
    }
}

macro_rules! concurrency_tests {
    ($($name:ident, $smr:ty);* $(;)?) => {$(
        mod $name {
            use super::*;

            #[test]
            fn harris_list_concurrent() {
                concurrent_consistency(Arc::new(HarrisList::<u32, $smr>::with_config(cfg())));
            }

            #[test]
            fn nm_tree_concurrent() {
                concurrent_consistency(Arc::new(NmTree::<u32, $smr>::with_config(cfg())));
            }

            #[test]
            fn wf_harris_list_concurrent() {
                concurrent_consistency(Arc::new(WfHarrisList::<u32, $smr>::with_config(cfg())));
            }

            #[test]
            fn harris_michael_list_concurrent() {
                concurrent_consistency(Arc::new(HarrisMichaelList::<u32, $smr>::with_config(cfg())));
            }

            #[test]
            fn skip_list_concurrent() {
                concurrent_consistency(Arc::new(SkipList::<u32, $smr>::with_config(cfg())));
            }
        }
    )*};
}

concurrency_tests! {
    concurrent_under_hp, Hp;
    concurrent_under_he, He;
    concurrent_under_ibr, Ibr;
    concurrent_under_hyaline, Hyaline;
    concurrent_under_ebr, Ebr;
    concurrent_under_nbr, Nbr;
    concurrent_under_vbr, Vbr;
}

/// All six structures driven through the same operation tape end up with the
/// same key set — the `ConcurrentSet` adapter makes them interchangeable
/// behind one interface, which is what lets the harness sweep the structure
/// axis of the compatibility matrix.
#[test]
fn all_six_structures_agree_on_one_tape() {
    fn drive<C: ConcurrentSet<u64>>(set: &C) -> Vec<u64> {
        let mut h = set.handle();
        let mut x = 0x5c07u64;
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = x % 97;
            match x % 3 {
                0 => {
                    set.insert(&mut h, k);
                }
                1 => {
                    set.remove(&mut h, &k);
                }
                _ => {
                    set.contains(&mut h, &k);
                }
            }
        }
        set.collect_keys(&mut h)
    }

    let reference = drive(&HarrisList::<u64, Hp>::with_config(cfg()));
    assert!(!reference.is_empty(), "tape must leave residual keys");
    assert_eq!(
        drive(&HarrisMichaelList::<u64, Hp>::with_config(cfg())),
        reference
    );
    assert_eq!(drive(&NmTree::<u64, Hp>::with_config(cfg())), reference);
    assert_eq!(
        drive(&WfHarrisList::<u64, Hp>::with_config(cfg())),
        reference
    );
    assert_eq!(drive(&HashMap::<u64, Hp>::with_config(8, cfg())), reference);
    assert_eq!(drive(&SkipList::<u64, Hp>::with_config(cfg())), reference);
}
