//! Integration tests for the block pool working through the full SMR stack:
//! bounded pool memory, exactly-once destructors under recycling, and exact
//! drain accounting across every scheme with pooling enabled.

use scot::skip_list::tower_height;
use scot::{ConcurrentSet, HarrisList, NmTree, SkipList};
use scot_smr::{Ebr, He, Hp, Hyaline, Ibr, Nbr, Nr, Smr, SmrConfig, SmrGuard, SmrHandle, Vbr};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn cfg(pool_capacity: usize) -> SmrConfig {
    SmrConfig {
        max_threads: 16,
        scan_threshold: 16,
        epoch_freq_per_thread: 1,
        snapshot_scan: false,
        pool_capacity: Some(pool_capacity),
    }
}

/// A payload whose destructor counts its invocations, for exactly-once
/// verification under block recycling.
struct DropCounter(Arc<AtomicUsize>, #[allow(dead_code)] u64);

impl Drop for DropCounter {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

/// Recycling a small pool through thousands of alloc/retire cycles must run
/// every destructor exactly once — no double drops when a block is reused, no
/// missed drops when it is recycled instead of deallocated.
fn destructor_exactly_once<S: Smr>() {
    const N: usize = 5000;
    let count = Arc::new(AtomicUsize::new(0));
    let domain = S::new(cfg(8));
    {
        let mut h = domain.register();
        for i in 0..N {
            let mut g = h.pin();
            let p = g.alloc(DropCounter(count.clone(), i as u64));
            unsafe { g.retire(p) };
        }
        for _ in 0..8 {
            h.flush();
        }
    }
    drop(domain);
    assert_eq!(
        count.load(Ordering::SeqCst),
        N,
        "every retired payload must be dropped exactly once"
    );
}

#[test]
fn destructors_run_exactly_once_under_recycling_ebr() {
    destructor_exactly_once::<Ebr>();
}

#[test]
fn destructors_run_exactly_once_under_recycling_hp() {
    destructor_exactly_once::<Hp>();
}

#[test]
fn destructors_run_exactly_once_under_recycling_he() {
    destructor_exactly_once::<He>();
}

#[test]
fn destructors_run_exactly_once_under_recycling_ibr() {
    destructor_exactly_once::<Ibr>();
}

#[test]
fn destructors_run_exactly_once_under_recycling_hyaline() {
    destructor_exactly_once::<Hyaline>();
}

#[test]
fn destructors_run_exactly_once_under_recycling_nbr() {
    destructor_exactly_once::<Nbr>();
}

#[test]
fn destructors_run_exactly_once_under_recycling_vbr() {
    destructor_exactly_once::<Vbr>();
}

/// Lost-CAS giveback (`dealloc`) recycles immediately through the pool and
/// must also drop exactly once — including under NR, which never retires.
#[test]
fn dealloc_gives_back_exactly_once_nr() {
    const N: usize = 1000;
    let count = Arc::new(AtomicUsize::new(0));
    let domain = Nr::new(cfg(4));
    let mut h = domain.register();
    for i in 0..N {
        let mut g = h.pin();
        let p = g.alloc(DropCounter(count.clone(), i as u64));
        unsafe { g.dealloc(p) };
    }
    assert_eq!(count.load(Ordering::SeqCst), N);
}

/// Conflict give-back under the checkpoint schemes: an unpublished block a
/// lost CAS hands back via `dealloc` goes straight to the pool (under VBR
/// with a bumped version stamp) and its payload drops exactly once; blocks
/// that *were* published and retired instead flow through the scheme's limbo
/// or recycle queue.  Interleaving both paths over one small pool would
/// surface any double-free or missed-drop between them.
fn dealloc_and_retire_interleave_exactly_once<S: Smr>() {
    const N: usize = 2000;
    let count = Arc::new(AtomicUsize::new(0));
    let domain = S::new(cfg(4));
    {
        let mut h = domain.register();
        for i in 0..N {
            let mut g = h.pin();
            let p = g.alloc(DropCounter(count.clone(), i as u64));
            if i % 2 == 0 {
                // Lost-CAS path: never published, given back immediately.
                unsafe { g.dealloc(p) };
            } else {
                // Published-then-removed path: reclaimed by the scheme.
                unsafe { g.retire(p) };
            }
        }
        for _ in 0..8 {
            h.flush();
        }
    }
    drop(domain);
    assert_eq!(
        count.load(Ordering::SeqCst),
        N,
        "interleaved dealloc/retire must drop every payload exactly once"
    );
}

#[test]
fn dealloc_and_retire_interleave_exactly_once_nbr() {
    dealloc_and_retire_interleave_exactly_once::<Nbr>();
}

#[test]
fn dealloc_and_retire_interleave_exactly_once_vbr() {
    dealloc_and_retire_interleave_exactly_once::<Vbr>();
}

/// After a churn-heavy run drains (all threads quiescent, all handles
/// dropped), `unreclaimed()` must read exactly zero with pooling enabled:
/// recycling must not distort the sharded accounting.
fn drain_accounts_to_zero<S: Smr>() {
    let domain = S::new(cfg(32));
    let list: Arc<HarrisList<u64, S>> = Arc::new(HarrisList::new(domain.clone()));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let list = list.clone();
            s.spawn(move || {
                let mut h = list.handle();
                for i in 0..1500u64 {
                    let k = t * 100_000 + (i % 256);
                    list.insert(&mut h, k);
                    list.remove(&mut h, &k);
                }
                h.flush();
            });
        }
    });
    let mut h = list.handle();
    for _ in 0..4 {
        h.flush();
    }
    drop(h);
    assert_eq!(
        domain.unreclaimed(),
        0,
        "{}: sharded counter must sum to zero after drain",
        domain.name()
    );
}

#[test]
fn drained_list_accounts_to_zero_under_every_reclaiming_scheme() {
    drain_accounts_to_zero::<Ebr>();
    drain_accounts_to_zero::<Hp>();
    drain_accounts_to_zero::<He>();
    drain_accounts_to_zero::<Ibr>();
    drain_accounts_to_zero::<Hyaline>();
    drain_accounts_to_zero::<Nbr>();
    drain_accounts_to_zero::<Vbr>();
}

/// Same property through the tree, whose nodes have a different layout (the
/// pool must keep per-layout bins straight while the tree churns internal
/// and leaf nodes).
#[test]
fn drained_tree_accounts_to_zero_with_pooling() {
    let domain = Ibr::new(cfg(32));
    let tree: Arc<NmTree<u64, Ibr>> = Arc::new(NmTree::new(domain.clone()));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let tree = tree.clone();
            s.spawn(move || {
                let mut h = tree.handle();
                for i in 0..1500u64 {
                    let k = t * 100_000 + (i % 256);
                    tree.insert(&mut h, k);
                    tree.remove(&mut h, &k);
                }
                h.flush();
            });
        }
    });
    let mut h = tree.handle();
    for _ in 0..4 {
        h.flush();
    }
    drop(h);
    assert_eq!(domain.unreclaimed(), 0);
}

/// Skip-list towers are the pool's first multi-layout client: each height
/// class is a distinct block layout, so a recycling bug that crossed bins
/// (handing a short tower's memory to a taller one) would corrupt the upper
/// links or the payload.  A seeded handle guarantees the churn spans several
/// height classes, values verify on every read, and the quiescent domain
/// accounts to zero — with the pool on *and* off.
#[test]
fn skiplist_towers_recycle_within_their_height_bins() {
    fn run(pool_capacity: usize) {
        let domain = Hp::new(cfg(pool_capacity));
        let list: SkipList<u64, Hp, u64> = SkipList::new(domain.clone());
        let mut h = list.handle_with_seed(0xbeef);
        // Reproduce the exact height sequence the handle will draw and make
        // sure the test really exercises the multi-layout path.
        let mut probe = 0xbeefu64 | 1;
        let mut heights = std::collections::BTreeSet::new();
        for _ in 0..3000 {
            heights.insert(tower_height(&mut probe));
        }
        assert!(
            heights.len() >= 4,
            "seed must span several height classes, got {heights:?}"
        );
        use scot::ConcurrentMap;
        for round in 0..3000u64 {
            let k = round % 61;
            {
                let mut g = list.pin(&mut h);
                let _ = list.insert(&mut g, k, !k);
            }
            {
                let mut g = list.pin(&mut h);
                if let Some(v) = list.get(&mut g, &k) {
                    assert_eq!(*v, !k, "value corrupted after recycling");
                }
            }
            {
                let mut g = list.pin(&mut h);
                if let Some(v) = list.remove(&mut g, &k) {
                    assert_eq!(*v, !k, "evicted value corrupted after recycling");
                }
            }
        }
        for _ in 0..4 {
            h.flush();
        }
        drop(h);
        drop(list);
        let mut h = domain.register();
        h.flush();
        drop(h);
        assert_eq!(
            domain.unreclaimed(),
            0,
            "pool_capacity={pool_capacity}: towers must drain to zero"
        );
    }
    run(16); // pool on: every height class recycles through its own bin
    run(0); // pool off: the ablation baseline behaves identically
}

/// Concurrent multi-height churn: four threads with different height-RNG
/// seeds hammer one skip list, so differently-sized towers retire into the
/// shared overflow and refill across threads.  Exact drain afterwards proves
/// the bins never mixed layouts across the spill/refill path either.
#[test]
fn skiplist_tower_bins_survive_cross_thread_spill_and_refill() {
    let domain = Ibr::new(cfg(8));
    let list: Arc<SkipList<u64, Ibr, u64>> = Arc::new(SkipList::new(domain.clone()));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let list = list.clone();
            s.spawn(move || {
                use scot::ConcurrentMap;
                let mut h = list.handle_with_seed(0x1000 + t);
                for i in 0..1500u64 {
                    let k = t * 10_000 + (i % 128);
                    {
                        let mut g = list.pin(&mut h);
                        let _ = list.insert(&mut g, k, !k);
                    }
                    {
                        let mut g = list.pin(&mut h);
                        if let Some(v) = list.remove(&mut g, &k) {
                            assert_eq!(*v, !k, "torn value across pool bins");
                        }
                    }
                }
                h.flush();
            });
        }
    });
    let mut h = list.handle();
    for _ in 0..4 {
        h.flush();
    }
    drop(h);
    assert_eq!(domain.unreclaimed(), 0);
}

/// The pool is a bounded cache, not a leak: with a tiny `pool_capacity`, the
/// domain-wide pooled memory stays within `2 × capacity × max_threads`
/// blocks.  Verified indirectly via the overflow bound plus exactly-once
/// destructors above; here we assert the pool keeps *working* (recycling the
/// same storage) rather than growing — the same small set of block addresses
/// must come back out of `alloc`.
#[test]
fn small_pool_recycles_a_bounded_address_set() {
    let domain = Ebr::new(cfg(4));
    let mut h = domain.register();
    let mut seen = std::collections::HashSet::new();
    // Steady-state alloc→retire→sweep churn: after warmup the scheme's limbo
    // list plus the pool cycle a bounded working set of blocks.
    for i in 0..4096u64 {
        let mut g = h.pin();
        let p = g.alloc(i);
        seen.insert(p.untagged().into_raw());
        unsafe { g.retire(p) };
    }
    for _ in 0..4 {
        h.flush();
    }
    // Limbo can hold up to scan_threshold blocks between sweeps and the
    // epoch lag keeps up to two generations alive; with recycling the
    // address set must stay far below the 4096 allocations performed.
    assert!(
        seen.len() < 1024,
        "expected a bounded recycled working set, saw {} distinct blocks",
        seen.len()
    );
    drop(h);
    assert_eq!(domain.unreclaimed(), 0);
}

/// Pool-off must behave identically from the outside: this is the ablation
/// baseline, so its accounting has to hold to make the comparison fair.
#[test]
fn pool_disabled_accounting_still_exact() {
    let domain = Hp::new(cfg(0));
    let list: Arc<HarrisList<u64, Hp>> = Arc::new(HarrisList::new(domain.clone()));
    let mut h = list.handle();
    for i in 0..512u64 {
        list.insert(&mut h, i % 64);
        list.remove(&mut h, &(i % 64));
    }
    h.flush();
    drop(h);
    assert_eq!(domain.unreclaimed(), 0);
}
