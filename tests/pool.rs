//! Integration tests for the block pool working through the full SMR stack:
//! bounded pool memory, exactly-once destructors under recycling, and exact
//! drain accounting across every scheme with pooling enabled.

use scot::{ConcurrentSet, HarrisList, NmTree};
use scot_smr::{Ebr, He, Hp, Hyaline, Ibr, Nr, Smr, SmrConfig, SmrGuard, SmrHandle};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn cfg(pool_capacity: usize) -> SmrConfig {
    SmrConfig {
        max_threads: 16,
        scan_threshold: 16,
        epoch_freq_per_thread: 1,
        snapshot_scan: false,
        pool_capacity: Some(pool_capacity),
    }
}

/// A payload whose destructor counts its invocations, for exactly-once
/// verification under block recycling.
struct DropCounter(Arc<AtomicUsize>, #[allow(dead_code)] u64);

impl Drop for DropCounter {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

/// Recycling a small pool through thousands of alloc/retire cycles must run
/// every destructor exactly once — no double drops when a block is reused, no
/// missed drops when it is recycled instead of deallocated.
fn destructor_exactly_once<S: Smr>() {
    const N: usize = 5000;
    let count = Arc::new(AtomicUsize::new(0));
    let domain = S::new(cfg(8));
    {
        let mut h = domain.register();
        for i in 0..N {
            let mut g = h.pin();
            let p = g.alloc(DropCounter(count.clone(), i as u64));
            unsafe { g.retire(p) };
        }
        for _ in 0..8 {
            h.flush();
        }
    }
    drop(domain);
    assert_eq!(
        count.load(Ordering::SeqCst),
        N,
        "every retired payload must be dropped exactly once"
    );
}

#[test]
fn destructors_run_exactly_once_under_recycling_ebr() {
    destructor_exactly_once::<Ebr>();
}

#[test]
fn destructors_run_exactly_once_under_recycling_hp() {
    destructor_exactly_once::<Hp>();
}

#[test]
fn destructors_run_exactly_once_under_recycling_he() {
    destructor_exactly_once::<He>();
}

#[test]
fn destructors_run_exactly_once_under_recycling_ibr() {
    destructor_exactly_once::<Ibr>();
}

#[test]
fn destructors_run_exactly_once_under_recycling_hyaline() {
    destructor_exactly_once::<Hyaline>();
}

/// Lost-CAS giveback (`dealloc`) recycles immediately through the pool and
/// must also drop exactly once — including under NR, which never retires.
#[test]
fn dealloc_gives_back_exactly_once_nr() {
    const N: usize = 1000;
    let count = Arc::new(AtomicUsize::new(0));
    let domain = Nr::new(cfg(4));
    let mut h = domain.register();
    for i in 0..N {
        let mut g = h.pin();
        let p = g.alloc(DropCounter(count.clone(), i as u64));
        unsafe { g.dealloc(p) };
    }
    assert_eq!(count.load(Ordering::SeqCst), N);
}

/// After a churn-heavy run drains (all threads quiescent, all handles
/// dropped), `unreclaimed()` must read exactly zero with pooling enabled:
/// recycling must not distort the sharded accounting.
fn drain_accounts_to_zero<S: Smr>() {
    let domain = S::new(cfg(32));
    let list: Arc<HarrisList<u64, S>> = Arc::new(HarrisList::new(domain.clone()));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let list = list.clone();
            s.spawn(move || {
                let mut h = list.handle();
                for i in 0..1500u64 {
                    let k = t * 100_000 + (i % 256);
                    list.insert(&mut h, k);
                    list.remove(&mut h, &k);
                }
                h.flush();
            });
        }
    });
    let mut h = list.handle();
    for _ in 0..4 {
        h.flush();
    }
    drop(h);
    assert_eq!(
        domain.unreclaimed(),
        0,
        "{}: sharded counter must sum to zero after drain",
        domain.name()
    );
}

#[test]
fn drained_list_accounts_to_zero_under_every_reclaiming_scheme() {
    drain_accounts_to_zero::<Ebr>();
    drain_accounts_to_zero::<Hp>();
    drain_accounts_to_zero::<He>();
    drain_accounts_to_zero::<Ibr>();
    drain_accounts_to_zero::<Hyaline>();
}

/// Same property through the tree, whose nodes have a different layout (the
/// pool must keep per-layout bins straight while the tree churns internal
/// and leaf nodes).
#[test]
fn drained_tree_accounts_to_zero_with_pooling() {
    let domain = Ibr::new(cfg(32));
    let tree: Arc<NmTree<u64, Ibr>> = Arc::new(NmTree::new(domain.clone()));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let tree = tree.clone();
            s.spawn(move || {
                let mut h = tree.handle();
                for i in 0..1500u64 {
                    let k = t * 100_000 + (i % 256);
                    tree.insert(&mut h, k);
                    tree.remove(&mut h, &k);
                }
                h.flush();
            });
        }
    });
    let mut h = tree.handle();
    for _ in 0..4 {
        h.flush();
    }
    drop(h);
    assert_eq!(domain.unreclaimed(), 0);
}

/// The pool is a bounded cache, not a leak: with a tiny `pool_capacity`, the
/// domain-wide pooled memory stays within `2 × capacity × max_threads`
/// blocks.  Verified indirectly via the overflow bound plus exactly-once
/// destructors above; here we assert the pool keeps *working* (recycling the
/// same storage) rather than growing — the same small set of block addresses
/// must come back out of `alloc`.
#[test]
fn small_pool_recycles_a_bounded_address_set() {
    let domain = Ebr::new(cfg(4));
    let mut h = domain.register();
    let mut seen = std::collections::HashSet::new();
    // Steady-state alloc→retire→sweep churn: after warmup the scheme's limbo
    // list plus the pool cycle a bounded working set of blocks.
    for i in 0..4096u64 {
        let mut g = h.pin();
        let p = g.alloc(i);
        seen.insert(p.untagged().into_raw());
        unsafe { g.retire(p) };
    }
    for _ in 0..4 {
        h.flush();
    }
    // Limbo can hold up to scan_threshold blocks between sweeps and the
    // epoch lag keeps up to two generations alive; with recycling the
    // address set must stay far below the 4096 allocations performed.
    assert!(
        seen.len() < 1024,
        "expected a bounded recycled working set, saw {} distinct blocks",
        seen.len()
    );
    drop(h);
    assert_eq!(domain.unreclaimed(), 0);
}

/// Pool-off must behave identically from the outside: this is the ablation
/// baseline, so its accounting has to hold to make the comparison fair.
#[test]
fn pool_disabled_accounting_still_exact() {
    let domain = Hp::new(cfg(0));
    let list: Arc<HarrisList<u64, Hp>> = Arc::new(HarrisList::new(domain.clone()));
    let mut h = list.handle();
    for i in 0..512u64 {
        list.insert(&mut h, i % 64);
        list.remove(&mut h, &(i % 64));
    }
    h.flush();
    drop(h);
    assert_eq!(domain.unreclaimed(), 0);
}
