//! Property-based tests (proptest): every structure, under a robust scheme
//! and under EBR, must agree with a `BTreeSet` oracle on arbitrary operation
//! sequences, and the low-level pointer/packing invariants must hold for
//! arbitrary inputs.

use proptest::prelude::*;
use scot::{ConcurrentSet, HarrisList, HarrisMichaelList, HashMap, NmTree, SkipList, WfHarrisList};
use scot_smr::{Ebr, Hp, Hyaline, Nbr, Smr, SmrConfig, SmrHandle, Vbr};
use std::collections::BTreeSet;

fn cfg() -> SmrConfig {
    SmrConfig {
        max_threads: 8,
        scan_threshold: 8,
        epoch_freq_per_thread: 1,
        snapshot_scan: false,
        ..SmrConfig::default()
    }
}

/// A single set operation for the oracle comparison.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u16),
    Remove(u16),
    Contains(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u16>().prop_map(|k| Op::Insert(k % 256)),
        any::<u16>().prop_map(|k| Op::Remove(k % 256)),
        any::<u16>().prop_map(|k| Op::Contains(k % 256)),
    ]
}

fn check_against_oracle<C: ConcurrentSet<u64>>(set: &C, ops: &[Op]) {
    let mut oracle = BTreeSet::new();
    let mut handle = set.handle();
    for op in ops {
        match *op {
            Op::Insert(k) => {
                let k = k as u64;
                prop_assert_eq_like(set.insert(&mut handle, k), oracle.insert(k), "insert", k);
            }
            Op::Remove(k) => {
                let k = k as u64;
                prop_assert_eq_like(set.remove(&mut handle, &k), oracle.remove(&k), "remove", k);
            }
            Op::Contains(k) => {
                let k = k as u64;
                prop_assert_eq_like(
                    set.contains(&mut handle, &k),
                    oracle.contains(&k),
                    "contains",
                    k,
                );
            }
        }
    }
    // Final membership must agree for the whole key universe.
    for k in 0..256u64 {
        assert_eq!(
            set.contains(&mut handle, &k),
            oracle.contains(&k),
            "final membership disagreement on {k}"
        );
    }
}

fn prop_assert_eq_like(got: bool, want: bool, what: &str, key: u64) {
    assert_eq!(
        got, want,
        "{what}({key}) disagreed with the BTreeSet oracle"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn harris_list_matches_btreeset_under_hp(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let set: HarrisList<u64, Hp> = HarrisList::with_config(cfg());
        check_against_oracle(&set, &ops);
    }

    #[test]
    fn harris_list_matches_btreeset_under_ebr(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let set: HarrisList<u64, Ebr> = HarrisList::with_config(cfg());
        check_against_oracle(&set, &ops);
    }

    #[test]
    fn harris_michael_list_matches_btreeset(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let set: HarrisMichaelList<u64, Hp> = HarrisMichaelList::with_config(cfg());
        check_against_oracle(&set, &ops);
    }

    #[test]
    fn nm_tree_matches_btreeset_under_hp(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let set: NmTree<u64, Hp> = NmTree::with_config(cfg());
        check_against_oracle(&set, &ops);
    }

    #[test]
    fn nm_tree_matches_btreeset_under_hyaline(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let set: NmTree<u64, Hyaline> = NmTree::with_config(cfg());
        check_against_oracle(&set, &ops);
    }

    #[test]
    fn wf_list_matches_btreeset(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let set: WfHarrisList<u64, Hp> = WfHarrisList::with_config(cfg());
        check_against_oracle(&set, &ops);
    }

    #[test]
    fn hash_map_matches_btreeset(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let set: HashMap<u64, Hp> = HashMap::with_config(8, cfg());
        check_against_oracle(&set, &ops);
    }

    #[test]
    fn skip_list_matches_btreeset_under_hp(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let set: SkipList<u64, Hp> = SkipList::with_config(cfg());
        check_against_oracle(&set, &ops);
    }

    #[test]
    fn skip_list_matches_btreeset_under_ebr(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let set: SkipList<u64, Ebr> = SkipList::with_config(cfg());
        check_against_oracle(&set, &ops);
    }

    // VBR recycles blocks eagerly through the pool with only a version stamp
    // and an epoch-displacement window guarding reuse, so the oracle runs
    // here double as a recycling-correctness check: a stale read after a
    // version bump would show up as an oracle disagreement.
    #[test]
    fn harris_list_matches_btreeset_under_vbr(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let set: HarrisList<u64, Vbr> = HarrisList::with_config(cfg());
        check_against_oracle(&set, &ops);
    }

    #[test]
    fn skip_list_matches_btreeset_under_vbr(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let set: SkipList<u64, Vbr> = SkipList::with_config(cfg());
        check_against_oracle(&set, &ops);
    }

    // NBR's neutralization can void guard protections mid-operation; the
    // rung-4 Restart::Operation path must retry transparently without ever
    // changing an operation's observable outcome.
    #[test]
    fn nm_tree_matches_btreeset_under_nbr(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let set: NmTree<u64, Nbr> = NmTree::with_config(cfg());
        check_against_oracle(&set, &ops);
    }

    #[test]
    fn skip_list_retire_sequences_never_leak(keys in prop::collection::vec(any::<u16>(), 1..200)) {
        // Arbitrary insert/remove sequences through multi-height towers,
        // followed by quiescence, must leave zero unreclaimed blocks.
        let domain = Hp::new(cfg());
        {
            let list: SkipList<u64, Hp> = SkipList::new(domain.clone());
            let mut h = list.handle();
            for &k in &keys {
                list.insert(&mut h, k as u64);
            }
            for &k in &keys {
                list.remove(&mut h, &(k as u64));
            }
            h.flush();
        }
        let mut h = domain.register();
        h.flush();
        drop(h);
        prop_assert_eq!(domain.unreclaimed(), 0);
    }

    #[test]
    fn tagged_pointer_roundtrip(raw in any::<usize>(), tag in 0usize..8) {
        // Any 8-aligned address must survive tagging and untagging unchanged.
        let aligned = raw & !scot_smr::TAG_MASK;
        let shared: scot_smr::Shared<u64> = scot_smr::Shared::from_raw(aligned);
        let tagged = shared.with_tag(tag);
        prop_assert_eq!(tagged.tag(), tag);
        prop_assert_eq!(tagged.untagged().into_raw(), aligned);
        prop_assert_eq!(tagged.as_ptr() as usize, aligned);
    }

    #[test]
    fn smr_retire_sequences_never_leak(keys in prop::collection::vec(any::<u16>(), 1..200)) {
        // Arbitrary insert/remove sequences followed by quiescence must leave
        // zero unreclaimed blocks for a robust scheme.
        let domain = Hp::new(cfg());
        {
            let list: HarrisList<u64, Hp> = HarrisList::new(domain.clone());
            let mut h = list.handle();
            for &k in &keys {
                list.insert(&mut h, k as u64);
            }
            for &k in &keys {
                list.remove(&mut h, &(k as u64));
            }
            h.flush();
        }
        let mut h = domain.register();
        h.flush();
        drop(h);
        prop_assert_eq!(domain.unreclaimed(), 0);
    }
}
