//! Integration tests for the guard-scoped range-scan API: semantics against a
//! `BTreeMap` oracle for every structure under every scheme, and scans racing
//! concurrent inserts/removes under the robust schemes (HP, IBR) where a
//! traversal bug would surface as a use-after-free or a corrupted value.

#![allow(clippy::drop_non_drop)] // drops end guard borrows; the types are guard wrappers

use scot::{
    ConcurrentMap, ConcurrentSet, HarrisList, HarrisMichaelList, HashMap, NmTree, RangeScan,
    SkipList, WfHarrisList,
};
use scot_smr::{Ebr, He, Hp, Hyaline, Ibr, Nbr, Nr, SmrConfig, Vbr};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn cfg() -> SmrConfig {
    SmrConfig {
        max_threads: 32,
        scan_threshold: 16,
        epoch_freq_per_thread: 1,
        snapshot_scan: false,
        ..SmrConfig::default()
    }
}

/// Key-derived value stamp: lets every scan verify that a yielded borrow
/// still belongs to the key it was filed under.
fn stamp(k: u64) -> u64 {
    k.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5c07
}

/// Drains a scan over `[lo, hi)` into `(key, value)` pairs, checking bounds
/// and value integrity on the fly.
fn drain<M: ConcurrentMap<u64, u64>>(
    map: &M,
    guard: &mut M::Guard<'_>,
    lo: u64,
    hi: u64,
) -> Vec<(u64, u64)> {
    let mut scan = map.range(guard, lo..hi);
    let mut out = Vec::new();
    while let Some((k, v)) = scan.next_entry() {
        assert!((lo..hi).contains(&k), "scan [{lo}, {hi}) yielded {k}");
        assert_eq!(*v, stamp(k), "value borrow for {k} is corrupted");
        out.push((k, *v));
    }
    out
}

/// Quiescent oracle check: a random operation tape applied to both the map
/// and a `BTreeMap`, then a battery of windows compared exactly.  `ordered`
/// selects whether the scan output itself must be ascending (everything but
/// the hash map) or is sorted before comparison.
fn check_range_oracle<M: ConcurrentMap<u64, u64>>(map: &M, ordered: bool) {
    let mut h = map.handle();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let mut x = 0x5eed_0123_4567u64;
    for _ in 0..4000 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let k = x % 512;
        let mut g = map.pin(&mut h);
        if x.is_multiple_of(3) {
            let inserted = map.insert(&mut g, k, stamp(k)).is_ok();
            assert_eq!(inserted, model.insert(k, stamp(k)).is_none(), "insert {k}");
        } else if x % 3 == 1 {
            assert_eq!(
                map.remove(&mut g, &k).copied(),
                model.remove(&k),
                "remove {k}"
            );
        }
    }
    // Windows: empty, inverted, single-key, interior, past-the-end, full.
    let windows = [
        (0, 0),
        (100, 50),
        (7, 8),
        (37, 141),
        (500, 512),
        (510, 9999),
        (0, u64::MAX),
    ];
    for (lo, hi) in windows {
        let mut g = map.pin(&mut h);
        let mut got = drain(map, &mut g, lo, hi);
        if ordered {
            assert!(
                got.windows(2).all(|w| w[0].0 < w[1].0),
                "scan [{lo}, {hi}) not strictly ascending: {got:?}"
            );
        } else {
            got.sort_unstable();
        }
        let expected: Vec<(u64, u64)> =
            model.range(lo..hi.max(lo)).map(|(&k, &v)| (k, v)).collect();
        assert_eq!(got, expected, "window [{lo}, {hi}) disagrees with oracle");
    }
    // `iter_from` runs to the end of the structure.
    {
        let mut g = map.pin(&mut h);
        let mut scan = map.iter_from(&mut g, 256);
        let mut got = Vec::new();
        while let Some((k, v)) = scan.next_entry() {
            assert!(k >= 256);
            assert_eq!(*v, stamp(k));
            got.push(k);
        }
        if !ordered {
            got.sort_unstable();
        }
        let expected: Vec<u64> = model.range(256..).map(|(&k, _)| k).collect();
        assert_eq!(got, expected, "iter_from(256) disagrees with oracle");
    }
}

/// The set-level `collect_range` adapter (over `V = ()`) agrees with a
/// `BTreeSet`-style model and returns ascending keys for ordered structures.
#[test]
fn collect_range_set_adapter_matches_membership() {
    let list: HarrisList<u64, Hp> = HarrisList::with_config(cfg());
    let mut h = ConcurrentSet::handle(&list);
    for k in [5u64, 1, 9, 3, 7, 40, 12] {
        ConcurrentSet::insert(&list, &mut h, k);
    }
    assert_eq!(list.collect_range(&mut h, 3, 13), vec![3, 5, 7, 9, 12]);
    assert_eq!(list.collect_range(&mut h, 0, 2), vec![1]);
    assert_eq!(list.collect_range(&mut h, 13, 40), Vec::<u64>::new());
    let map: HashMap<u64, Ibr> = HashMap::with_config(8, cfg());
    let mut h = ConcurrentSet::handle(&map);
    for k in 0..64u64 {
        ConcurrentSet::insert(&map, &mut h, k);
    }
    let mut keys = map.collect_range(&mut h, 16, 48);
    keys.sort_unstable();
    assert_eq!(keys, (16..48).collect::<Vec<_>>());
}

/// Concurrent churn check: even keys are stable (inserted up front, never
/// touched again), odd keys churn under `writers` threads while scanners
/// sweep windows.  Every scan must yield only in-window keys with intact
/// values, in ascending order for ordered structures, and must contain every
/// stable key of its window — the "continuously present keys are seen"
/// half of the lock-free scan contract.
fn check_concurrent_churn<M: ConcurrentMap<u64, u64> + 'static>(map: Arc<M>, ordered: bool) {
    const RANGE: u64 = 512;
    {
        let mut h = map.handle();
        for k in (0..RANGE).step_by(2) {
            let mut g = map.pin(&mut h);
            map.insert(&mut g, k, stamp(k)).unwrap();
        }
    }
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for t in 0..3u64 {
            let map = map.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut h = map.handle();
                let mut x = t * 7919 + 1;
                while !stop.load(Ordering::Relaxed) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let odd = (x % (RANGE / 2)) * 2 + 1;
                    let mut g = map.pin(&mut h);
                    if x.is_multiple_of(2) {
                        let _ = map.insert(&mut g, odd, stamp(odd));
                    } else {
                        let _ = map.remove(&mut g, &odd);
                    }
                }
            });
        }
        for t in 0..2u64 {
            let map = map.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut h = map.handle();
                let mut x = t * 104729 + 3;
                for _ in 0..300 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let lo = x % RANGE;
                    let hi = (lo + 64).min(RANGE);
                    let mut g = map.pin(&mut h);
                    let got = drain(map.as_ref(), &mut g, lo, hi);
                    if ordered {
                        assert!(
                            got.windows(2).all(|w| w[0].0 < w[1].0),
                            "concurrent scan [{lo}, {hi}) not ascending: {got:?}"
                        );
                    }
                    // No duplicates even for the unordered hash map.
                    let mut keys: Vec<u64> = got.iter().map(|&(k, _)| k).collect();
                    keys.sort_unstable();
                    let before = keys.len();
                    keys.dedup();
                    assert_eq!(keys.len(), before, "scan [{lo}, {hi}) yielded duplicates");
                    // Every stable (even) key of the window must be present.
                    for k in (lo..hi).filter(|k| k.is_multiple_of(2)) {
                        assert!(
                            keys.binary_search(&k).is_ok(),
                            "stable key {k} missing from scan [{lo}, {hi})"
                        );
                    }
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
    });
}

macro_rules! range_oracle_tests {
    ($($name:ident, $smr:ty);* $(;)?) => {$(
        mod $name {
            use super::*;

            #[test]
            fn harris_list() {
                let map: HarrisList<u64, $smr, u64> = HarrisList::with_config(cfg());
                check_range_oracle(&map, true);
            }

            #[test]
            fn harris_michael_list() {
                let map: HarrisMichaelList<u64, $smr, u64> =
                    HarrisMichaelList::with_config(cfg());
                check_range_oracle(&map, true);
            }

            #[test]
            fn nm_tree() {
                let map: NmTree<u64, $smr, u64> = NmTree::with_config(cfg());
                check_range_oracle(&map, true);
            }

            #[test]
            fn wf_harris_list() {
                let map: WfHarrisList<u64, $smr, u64> = WfHarrisList::with_config(cfg());
                check_range_oracle(&map, true);
            }

            #[test]
            fn hash_map() {
                let map: HashMap<u64, $smr, u64> = HashMap::with_config(16, cfg());
                check_range_oracle(&map, false);
            }

            #[test]
            fn skip_list() {
                let map: SkipList<u64, $smr, u64> = SkipList::with_config(cfg());
                check_range_oracle(&map, true);
            }
        }
    )*};
}

range_oracle_tests! {
    under_nr, Nr;
    under_ebr, Ebr;
    under_hp, Hp;
    under_he, He;
    under_ibr, Ibr;
    under_hyaline, Hyaline;
    under_nbr, Nbr;
    under_vbr, Vbr;
}

macro_rules! churn_tests {
    ($($name:ident, $smr:ty);* $(;)?) => {$(
        mod $name {
            use super::*;

            #[test]
            fn harris_list() {
                let map: Arc<HarrisList<u64, $smr, u64>> =
                    Arc::new(HarrisList::with_config(cfg()));
                check_concurrent_churn(map, true);
            }

            #[test]
            fn harris_michael_list() {
                let map: Arc<HarrisMichaelList<u64, $smr, u64>> =
                    Arc::new(HarrisMichaelList::with_config(cfg()));
                check_concurrent_churn(map, true);
            }

            #[test]
            fn nm_tree() {
                let map: Arc<NmTree<u64, $smr, u64>> = Arc::new(NmTree::with_config(cfg()));
                check_concurrent_churn(map, true);
            }

            #[test]
            fn wf_harris_list() {
                let map: Arc<WfHarrisList<u64, $smr, u64>> =
                    Arc::new(WfHarrisList::with_config(cfg()));
                check_concurrent_churn(map, true);
            }

            #[test]
            fn hash_map() {
                let map: Arc<HashMap<u64, $smr, u64>> =
                    Arc::new(HashMap::with_config(16, cfg()));
                check_concurrent_churn(map, false);
            }

            #[test]
            fn skip_list() {
                let map: Arc<SkipList<u64, $smr, u64>> = Arc::new(SkipList::with_config(cfg()));
                check_concurrent_churn(map, true);
            }
        }
    )*};
}

// The robust schemes are where a scan stepping onto a reclaimed node would be
// an observable use-after-free; EBR rides along as the epoch baseline.  NBR
// and VBR exercise the checkpoint protocol mid-scan: between yields the scan
// frontier is held by key (not by pointer), so each advance's re-seek may
// answer a checkpoint and restart — the churn here would turn a botched
// restart into a lost stable key, a duplicate, or a torn value.
churn_tests! {
    churn_under_hp, Hp;
    churn_under_ibr, Ibr;
    churn_under_ebr, Ebr;
    churn_under_nbr, Nbr;
    churn_under_vbr, Vbr;
}

/// A scan parked mid-structure survives the nodes around its frontier being
/// removed: the next advance re-seeks past them instead of touching freed
/// memory.  Single-threaded determinism makes this a precise regression test
/// for the park/re-seek path.
#[test]
fn parked_scan_survives_removal_of_its_frontier() {
    let map: SkipList<u64, Hp, u64> = SkipList::with_config(cfg());
    let mut h = map.handle();
    let mut g = map.pin(&mut h);
    for k in 0..100u64 {
        map.insert(&mut g, k, stamp(k)).unwrap();
    }
    drop(g);
    // Park a scan on key 10...
    let mut g = map.pin(&mut h);
    let mut scan = map.range(&mut g, 10..90);
    assert_eq!(scan.next_entry().map(|(k, _)| k), Some(10));
    drop(scan);
    drop(g);
    // ...then delete the parked key and everything up to 50 from another
    // handle, flushing so the nodes are actually reclaimed.
    let mut other = map.handle();
    for k in 10..50u64 {
        let mut g = map.pin(&mut other);
        map.remove(&mut g, &k);
    }
    other.flush();
    // Resuming from a *fresh* scan with the same state transition (Gt(10))
    // must land on 50.
    let mut g = map.pin(&mut h);
    let mut scan = map.range(&mut g, 11..90);
    assert_eq!(scan.next_entry().map(|(k, _)| k), Some(50));
}

/// The borrow handed out by `next_entry` reads valid data even when the entry
/// was concurrently removed just after being yielded — the guard keeps the
/// node alive until the next advance.
#[test]
fn yielded_borrow_outlives_concurrent_removal() {
    let map: Arc<HarrisList<u64, Hp, u64>> = Arc::new(HarrisList::with_config(cfg()));
    let mut h = map.handle();
    {
        let mut g = map.pin(&mut h);
        for k in 0..8u64 {
            map.insert(&mut g, k, stamp(k)).unwrap();
        }
    }
    let mut g = map.pin(&mut h);
    let mut scan = map.iter_from(&mut g, 0);
    let (k, v) = scan.next_entry().expect("first entry");
    // Remove the yielded key from another thread and force reclamation.
    let map2 = map.clone();
    std::thread::scope(|s| {
        s.spawn(move || {
            let mut h2 = map2.handle();
            let mut g2 = map2.pin(&mut h2);
            assert!(map2.remove(&mut g2, &0).is_some());
            drop(g2);
            h2.flush();
        });
    });
    // The borrow is still protected by our own guard's hazard slot.
    assert_eq!(k, 0);
    assert_eq!(*v, stamp(0));
}
