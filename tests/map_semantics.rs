//! Cross-crate integration tests for the key-value `ConcurrentMap` API:
//! every data structure, under representative SMR schemes, must behave as a
//! map — `get` returns guard-scoped value borrows, `insert` hands rejected
//! values back on conflict, `remove` exposes the evicted value — and value
//! destructors must run exactly once no matter which path a value takes
//! (reclaimed node, structure drop, or conflict give-back).

use scot::{ConcurrentMap, HarrisList, HarrisMichaelList, HashMap, NmTree, SkipList, WfHarrisList};
use scot_smr::{Ebr, He, Hp, Hyaline, Ibr, Nbr, Nr, Smr, SmrConfig, Vbr};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn cfg() -> SmrConfig {
    SmrConfig {
        max_threads: 32,
        scan_threshold: 16,
        epoch_freq_per_thread: 1,
        snapshot_scan: false,
        ..SmrConfig::default()
    }
}

/// Sequential map semantics shared by every structure.
fn check_map_semantics<M: ConcurrentMap<u64, String>>(map: &M) {
    let mut h = map.handle();
    {
        let mut g = map.pin(&mut h);
        assert!(map.get(&mut g, &10).is_none());
        assert!(map.insert(&mut g, 10, "ten".into()).is_ok());
        assert_eq!(
            map.insert(&mut g, 10, "TEN".into()),
            Err("TEN".to_string()),
            "conflicting insert must return the rejected value"
        );
        assert!(map.insert(&mut g, 20, "twenty".into()).is_ok());
        assert!(map.insert(&mut g, 15, "fifteen".into()).is_ok());
        assert_eq!(map.get(&mut g, &10).map(String::as_str), Some("ten"));
        assert_eq!(map.get(&mut g, &15).map(String::as_str), Some("fifteen"));
        assert!(map.get(&mut g, &11).is_none());
        assert!(map.contains(&mut g, &20));
        assert!(!map.contains(&mut g, &21));
        assert_eq!(
            map.remove(&mut g, &15).map(String::as_str),
            Some("fifteen"),
            "remove must expose the evicted value under the guard"
        );
        assert!(map.remove(&mut g, &15).is_none());
        assert!(map.get(&mut g, &15).is_none());
        // Boundary keys.
        assert!(map.insert(&mut g, 0, "zero".into()).is_ok());
        assert!(map.insert(&mut g, u64::MAX, "max".into()).is_ok());
        assert_eq!(map.get(&mut g, &0).map(String::as_str), Some("zero"));
        assert_eq!(
            map.remove(&mut g, &u64::MAX).map(String::as_str),
            Some("max")
        );
        assert!(map.remove(&mut g, &0).is_some());
    }
    // The quiescent snapshot agrees, sorted by key.
    assert_eq!(
        map.collect(&mut h),
        vec![(10, "ten".to_string()), (20, "twenty".to_string())]
    );
}

macro_rules! map_semantics_tests {
    ($($name:ident, $smr:ty);* $(;)?) => {$(
        mod $name {
            use super::*;

            #[test]
            fn harris_list() {
                let map: HarrisList<u64, $smr, String> = HarrisList::with_config(cfg());
                check_map_semantics(&map);
            }

            #[test]
            fn harris_michael_list() {
                let map: HarrisMichaelList<u64, $smr, String> =
                    HarrisMichaelList::with_config(cfg());
                check_map_semantics(&map);
            }

            #[test]
            fn nm_tree() {
                let map: NmTree<u64, $smr, String> = NmTree::with_config(cfg());
                check_map_semantics(&map);
            }

            #[test]
            fn wf_harris_list() {
                let map: WfHarrisList<u64, $smr, String> = WfHarrisList::with_config(cfg());
                check_map_semantics(&map);
            }

            #[test]
            fn hash_map() {
                let map: HashMap<u64, $smr, String> = HashMap::with_config(16, cfg());
                check_map_semantics(&map);
            }

            #[test]
            fn skip_list() {
                let map: SkipList<u64, $smr, String> = SkipList::with_config(cfg());
                check_map_semantics(&map);
            }
        }
    )*};
}

map_semantics_tests! {
    under_nr, Nr;
    under_ebr, Ebr;
    under_hp, Hp;
    under_he, He;
    under_ibr, Ibr;
    under_hyaline, Hyaline;
    under_nbr, Nbr;
    under_vbr, Vbr;
}

/// A guard pinned from one map's handle must be rejected by a different map
/// (different reclamation domain): its protections land in the wrong domain's
/// slot tables, so running the operation would be a silent use-after-free
/// window.  The brand check turns that into a deterministic panic.
#[test]
#[should_panic(expected = "different map's reclamation domain")]
fn foreign_guard_is_rejected() {
    let a: HarrisList<u64, Hp, String> = HarrisList::with_config(cfg());
    let b: HarrisList<u64, Hp, String> = HarrisList::with_config(cfg());
    let mut ha = a.handle();
    let mut hb = b.handle();
    {
        let mut gb = b.pin(&mut hb);
        assert!(b.insert(&mut gb, 1, "own-domain ops work".into()).is_ok());
    }
    let mut ga = a.pin(&mut ha);
    let _ = b.get(&mut ga, &1); // guard from a's domain handed to b
}

/// Foreign-guard rejection for the checkpoint-protocol schemes, across all
/// six structures: NBR and VBR guards carry per-domain checkpoint/epoch
/// state, so honoring a foreign guard would not just misplace protections —
/// it would answer the wrong domain's neutralization signals.  The brand
/// check must fire for every structure under both schemes.
#[test]
fn foreign_guard_is_rejected_under_checkpoint_schemes() {
    fn rejects<M: ConcurrentMap<u64, String>>(make: impl Fn() -> M, what: &str) {
        let a = make();
        let b = make();
        let mut ha = a.handle();
        let mut hb = b.handle();
        {
            let mut gb = b.pin(&mut hb);
            assert!(b.insert(&mut gb, 1, "own-domain ops work".into()).is_ok());
        }
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut ga = a.pin(&mut ha);
            let _ = b.get(&mut ga, &1); // guard from a's domain handed to b
        }));
        let err = panicked.expect_err(&format!("{what}: foreign guard must be rejected"));
        let msg = err
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| err.downcast_ref::<&str>().copied())
            .unwrap_or("");
        assert!(
            msg.contains("different map's reclamation domain"),
            "{what}: wrong panic message: {msg}"
        );
    }

    // The brand-check panic is expected 12 times; silence the default hook's
    // backtrace spam for the duration.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    fn all_six<S: Smr>() {
        let name = std::any::type_name::<S>();
        rejects(
            || HarrisList::<u64, S, String>::with_config(cfg()),
            &format!("HarrisList/{name}"),
        );
        rejects(
            || HarrisMichaelList::<u64, S, String>::with_config(cfg()),
            &format!("HarrisMichaelList/{name}"),
        );
        rejects(
            || NmTree::<u64, S, String>::with_config(cfg()),
            &format!("NmTree/{name}"),
        );
        rejects(
            || WfHarrisList::<u64, S, String>::with_config(cfg()),
            &format!("WfHarrisList/{name}"),
        );
        rejects(
            || HashMap::<u64, S, String>::with_config(16, cfg()),
            &format!("HashMap/{name}"),
        );
        rejects(
            || SkipList::<u64, S, String>::with_config(cfg()),
            &format!("SkipList/{name}"),
        );
    }
    let result = std::panic::catch_unwind(|| {
        all_six::<Nbr>();
        all_six::<Vbr>();
    });
    std::panic::set_hook(hook);
    if let Err(e) = result {
        std::panic::resume_unwind(e);
    }
}

/// A value whose drops are counted, so leaks and double frees are visible.
struct Counted(Arc<AtomicUsize>);

impl Drop for Counted {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

/// Every value must be dropped exactly once, whichever of the three exits it
/// takes: SMR reclamation after `remove`, the conflict give-back of `insert`
/// (which must *not* drop — the caller gets the value back), or the
/// structure's destructor for entries still present at the end.
#[test]
fn value_destructors_run_exactly_once() {
    fn run<S: Smr>() {
        let drops = Arc::new(AtomicUsize::new(0));
        let mut live = 0usize;
        let mut total = 0usize;
        {
            let domain = S::new(cfg());
            let map: HarrisList<u64, S, Counted> = HarrisList::new(domain.clone());
            let mut h = map.handle();
            for i in 0..256u64 {
                let mut g = map.pin(&mut h);
                assert!(map.insert(&mut g, i, Counted(drops.clone())).is_ok());
                total += 1;
                live += 1;
            }
            // Conflicts: the rejected value comes back and is dropped by us,
            // exactly once, on this side of the API.
            for i in 0..64u64 {
                let mut g = map.pin(&mut h);
                let rejected = map.insert(&mut g, i, Counted(drops.clone()));
                assert!(rejected.is_err());
                total += 1;
                drop(rejected); // the Err(value) drop is the caller's
            }
            for i in (0..256u64).step_by(2) {
                let mut g = map.pin(&mut h);
                assert!(map.remove(&mut g, &i).is_some());
                live -= 1;
            }
            h.flush();
            drop(h);
            // Map dropped here: frees all remaining reachable nodes; the
            // domain drop releases anything still parked in orphan lists.
        }
        assert_eq!(
            drops.load(Ordering::SeqCst),
            total,
            "every allocated value must be dropped exactly once \
             (live at drop: {live})"
        );
    }
    run::<Hp>();
    run::<Ebr>();
    run::<Hyaline>();
    run::<Nbr>();
    run::<Vbr>();
}

/// The same exactly-once guarantee through the skip list, whose values take a
/// fourth exit on top of the three above: a tower retired by the *builder*
/// after a removal handed retirement off mid-build.  Multi-height towers also
/// recycle through several pool layout bins at once, so a bin mix-up would
/// surface here as a missed or doubled drop.
#[test]
fn skip_list_value_destructors_run_exactly_once() {
    fn run<S: Smr>() {
        let drops = Arc::new(AtomicUsize::new(0));
        let mut total = 0usize;
        {
            let domain = S::new(cfg());
            let map: SkipList<u64, S, Counted> = SkipList::new(domain.clone());
            let mut h = map.handle();
            for i in 0..256u64 {
                let mut g = map.pin(&mut h);
                assert!(map.insert(&mut g, i, Counted(drops.clone())).is_ok());
                total += 1;
            }
            // Conflict give-back: the rejected value comes back as Err and is
            // dropped by the caller, exactly once.
            for i in 0..64u64 {
                let mut g = map.pin(&mut h);
                let rejected = map.insert(&mut g, i, Counted(drops.clone()));
                assert!(rejected.is_err());
                total += 1;
                drop(rejected);
            }
            for i in (0..256u64).step_by(2) {
                let mut g = map.pin(&mut h);
                assert!(map.remove(&mut g, &i).is_some());
            }
            h.flush();
            drop(h);
        }
        assert_eq!(
            drops.load(Ordering::SeqCst),
            total,
            "every skip-list value must be dropped exactly once"
        );
    }
    run::<Hp>();
    run::<Ibr>();
    run::<Hyaline>();
    run::<Nbr>();
    run::<Vbr>();
}

/// Concurrent kv churn: stable keys keep readable, coherent values while
/// volatile keys are inserted/removed/read from every thread.
#[test]
fn concurrent_value_reads_stay_coherent() {
    fn run<S: Smr>() {
        let map: Arc<HashMap<u64, S, u64>> = Arc::new(HashMap::with_config(32, cfg()));
        {
            let mut h = map.handle();
            for k in 0..64u64 {
                let mut g = map.pin(&mut h);
                assert!(map.insert(&mut g, k * 2, !(k * 2)).is_ok());
            }
        }
        std::thread::scope(|s| {
            for t in 0..6u64 {
                let map = map.clone();
                s.spawn(move || {
                    let mut h = map.handle();
                    let mut x = (t + 1).wrapping_mul(0x9e3779b97f4a7c15);
                    for _ in 0..4000 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let volatile = (x % 64) * 2 + 1;
                        let mut g = map.pin(&mut h);
                        match x % 3 {
                            0 => {
                                let _ = map.insert(&mut g, volatile, !volatile);
                            }
                            1 => {
                                if let Some(v) = map.remove(&mut g, &volatile) {
                                    assert_eq!(*v, !volatile, "evicted value corrupted");
                                }
                            }
                            _ => {
                                if let Some(v) = map.get(&mut g, &volatile) {
                                    assert_eq!(*v, !volatile, "read value corrupted");
                                }
                            }
                        }
                        let stable = (x % 64) * 2;
                        assert_eq!(
                            map.get(&mut g, &stable).copied(),
                            Some(!stable),
                            "stable key {stable} lost or corrupted"
                        );
                    }
                });
            }
        });
    }
    run::<Hp>();
    run::<Ibr>();
    run::<Hyaline>();
    run::<Nbr>();
    run::<Vbr>();
}
