//! Reclamation-focused integration tests: no leaks after quiescence, no
//! premature frees under load, and the robustness behaviour (Theorem 1 versus
//! EBR's unbounded growth) that motivates the whole paper.

use scot::{ConcurrentSet, HarrisList, NmTree, SkipList};
use scot_smr::{Ebr, He, Hp, Hyaline, Ibr, Nbr, Smr, SmrConfig, SmrHandle, Vbr};
use std::sync::Arc;

fn cfg() -> SmrConfig {
    SmrConfig {
        max_threads: 16,
        scan_threshold: 16,
        epoch_freq_per_thread: 1,
        snapshot_scan: false,
        ..SmrConfig::default()
    }
}

/// Every node retired during a churn-heavy run must eventually be reclaimed
/// once all threads are quiescent, for every scheme.
fn churn_then_quiesce<S: Smr>() {
    let domain = S::new(cfg());
    let list: Arc<HarrisList<u64, S>> = Arc::new(HarrisList::new(domain.clone()));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let list = list.clone();
            s.spawn(move || {
                let mut h = list.handle();
                for i in 0..1500u64 {
                    let k = t * 100_000 + (i % 512);
                    list.insert(&mut h, k);
                    list.remove(&mut h, &k);
                }
                h.flush();
            });
        }
    });
    let mut h = list.handle();
    for _ in 0..4 {
        h.flush();
    }
    drop(h);
    assert_eq!(
        domain.unreclaimed(),
        0,
        "{}: retired nodes must all be reclaimed after quiescence",
        domain.name()
    );
}

#[test]
fn churn_then_quiesce_hp() {
    churn_then_quiesce::<Hp>();
}

#[test]
fn churn_then_quiesce_he() {
    churn_then_quiesce::<He>();
}

#[test]
fn churn_then_quiesce_ibr() {
    churn_then_quiesce::<Ibr>();
}

#[test]
fn churn_then_quiesce_ebr() {
    churn_then_quiesce::<Ebr>();
}

#[test]
fn churn_then_quiesce_hyaline() {
    churn_then_quiesce::<Hyaline>();
}

#[test]
fn churn_then_quiesce_nbr() {
    churn_then_quiesce::<Nbr>();
}

#[test]
fn churn_then_quiesce_vbr() {
    churn_then_quiesce::<Vbr>();
}

/// Theorem 1 flavoured robustness check: with a reader stalled inside a
/// critical section, HP keeps the unreclaimed population bounded while EBR's
/// grows with the amount of churn.
#[test]
fn stalled_reader_bounded_under_hp_unbounded_under_ebr() {
    fn run<S: Smr>(churn: u64) -> usize {
        let domain = S::new(cfg());
        let list: Arc<HarrisList<u64, S>> = Arc::new(HarrisList::new(domain.clone()));
        // Stalled reader: registers with the domain, enters a critical section
        // and never leaves (the SMR-level equivalent of a preempted operation).
        let mut stalled = domain.register();
        let _guard = stalled.pin();

        let mut writer = list.handle();
        for i in 0..churn {
            let k = 10 + (i % 1024);
            list.insert(&mut writer, k);
            list.remove(&mut writer, &k);
        }
        writer.flush();
        domain.unreclaimed()
    }

    // Both backlogs depend only on the churn count (the SMR state machines
    // are driven by retire/scan counters, never by wall-clock time), so the
    // assertions below are deterministic regardless of how slowly the host
    // executes: scale the churn tenfold and compare the resulting backlogs.
    const SMALL_CHURN: u64 = 2_000;
    const LARGE_CHURN: u64 = 20_000;
    let hp_small = run::<Hp>(SMALL_CHURN);
    let hp_large = run::<Hp>(LARGE_CHURN);
    let ebr_small = run::<Ebr>(SMALL_CHURN);
    let ebr_large = run::<Ebr>(LARGE_CHURN);

    // HP: bounded by H*N + N*R regardless of churn volume (Theorem 1), so the
    // backlog must NOT scale with the churn: 10x the work, same ceiling.
    let bound = scot_smr::MAX_HAZARDS * 16 + 16 * 16;
    assert!(
        hp_small <= bound,
        "HP small churn exceeded bound: {hp_small}"
    );
    assert!(
        hp_large <= bound,
        "HP large churn exceeded bound: {hp_large}"
    );
    // EBR: the stalled reader freezes the epoch, so the backlog grows in
    // proportion to the churn count.  Demand at least half the 10x churn
    // ratio to leave slack for the limbo entries reclaimed before the stall
    // took effect, while still distinguishing linear growth from any bound.
    assert!(
        ebr_large >= ebr_small.saturating_mul(5),
        "EBR backlog should grow ~linearly with churn under a stalled reader \
         ({ebr_small} -> {ebr_large}, expected >= 5x)"
    );
    assert!(
        ebr_small as u64 >= SMALL_CHURN / 2,
        "EBR backlog ({ebr_small}) should retain most of the {SMALL_CHURN} churned nodes"
    );
}

/// Drop-counting payload: verifies that every allocated node is dropped
/// exactly once, whether it is reclaimed by the SMR scheme or freed by the
/// structure's destructor.
#[test]
fn every_node_dropped_exactly_once() {
    // Keys are Copy, so drop-counting cannot live in the key type; instead we
    // rely on the node-level bookkeeping: every successful insert allocates
    // exactly one list node and every node is freed either via SMR
    // reclamation or at list drop.  "Dropped exactly once" is approximated by
    // the domain's unreclaimed counter reaching zero once the list is gone.
    let domain = Hp::new(cfg());
    {
        let list: HarrisList<u64, Hp> = HarrisList::new(domain.clone());
        let mut h = list.handle();
        for i in 0..1000u64 {
            list.insert(&mut h, i);
        }
        for i in (0..1000u64).step_by(3) {
            list.remove(&mut h, &i);
        }
        h.flush();
        drop(h);
        // List dropped here: frees all reachable nodes.
    }
    let mut h = domain.register();
    h.flush();
    drop(h);
    assert_eq!(
        domain.unreclaimed(),
        0,
        "all retired nodes must be reclaimed once the structure is gone"
    );
}

/// Guard-scoped value reads under reclamation churn: a `get` borrow must
/// never observe a torn or freed value, because the guard's protection (the
/// hazard slot / era interval backing the `&'g V`) outlives the borrow.  This
/// is the runtime half of the guard-lifetime argument — the compile-time half
/// lives in the `ConcurrentMap` compile-fail doc-tests.
///
/// Lives in its own module because the `ConcurrentMap` import would otherwise
/// make the set-style calls above ambiguous.
mod value_reads_under_churn {
    use super::cfg;
    use scot::{ConcurrentMap, HarrisList};
    use scot_smr::{Hp, Ibr, Smr, SmrHandle};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    /// Redundantly encoded value: `check` fails on any torn, stale or
    /// recycled read (`b` is the complement of `a`, and `a` encodes the key).
    struct Pair {
        a: u64,
        b: u64,
    }

    impl Pair {
        fn new(key: u64) -> Self {
            let a = key.wrapping_mul(0x9e3779b97f4a7c15) | 1;
            Self { a, b: !a }
        }

        fn check(&self, key: u64) -> bool {
            self.a == (key.wrapping_mul(0x9e3779b97f4a7c15) | 1) && self.b == !self.a
        }
    }

    fn churn<S: Smr>() {
        let domain = S::new(cfg());
        let list: Arc<HarrisList<u64, S, Pair>> = Arc::new(HarrisList::new(domain.clone()));
        let stop = Arc::new(AtomicBool::new(false));
        const KEYS: u64 = 128;
        std::thread::scope(|s| {
            // Two writers: insert/remove the whole key range and flush
            // aggressively so retired nodes are reclaimed (and pool-recycled)
            // while readers still hold guard-scoped borrows.
            for t in 0..2u64 {
                let list = list.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    let mut h = list.handle();
                    let mut i = t;
                    while !stop.load(Ordering::Relaxed) {
                        let k = i % KEYS;
                        {
                            let mut g = list.pin(&mut h);
                            let _ = list.insert(&mut g, k, Pair::new(k));
                        }
                        {
                            let mut g = list.pin(&mut h);
                            let _ = list.remove(&mut g, &k);
                        }
                        if i.is_multiple_of(64) {
                            h.flush();
                        }
                        i += 1;
                    }
                    h.flush();
                });
            }
            // Four readers: every successful get's value must verify, and the
            // evicted value returned by a successful remove must too.
            for t in 0..4u64 {
                let list = list.clone();
                let stop = stop.clone();
                s.spawn(move || {
                    let mut h = list.handle();
                    let mut x = t + 1;
                    for round in 0..30_000u64 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % KEYS;
                        let mut g = list.pin(&mut h);
                        if let Some(v) = list.get(&mut g, &k) {
                            assert!(
                                v.check(k),
                                "get({k}) observed a torn/freed value \
                                 (a={:#x}, b={:#x}) at round {round}",
                                v.a,
                                v.b
                            );
                        }
                        drop(g);
                        if round == 15_000 && t == 0 {
                            // Half-way through, stop the writers so the test
                            // also covers the quiescent tail.
                            stop.store(true, Ordering::Relaxed);
                        }
                    }
                    stop.store(true, Ordering::Relaxed);
                });
            }
        });
        let mut h = domain.register();
        h.flush();
        drop(h);
        drop(list);
    }

    #[test]
    fn hp_guard_protects_value_borrows() {
        churn::<Hp>();
    }

    #[test]
    fn ibr_guard_protects_value_borrows() {
        churn::<Ibr>();
    }
}

/// Skip-list churn under the restricted schemes, with the block pool both on
/// and off: retired towers must stay bounded while threads churn (no
/// accumulation from the multi-level unlink/handshake protocol) and account
/// to exactly zero at quiescence.  This is the acceptance gate for the
/// skip-list's claim of full reclamation-scheme compatibility.
fn skiplist_churn_bounded_and_drained<S: Smr>(pool: bool) {
    let scan_threshold = 16usize;
    let max_threads = 16usize;
    let config = SmrConfig {
        max_threads,
        scan_threshold,
        epoch_freq_per_thread: 1,
        snapshot_scan: false,
        pool_capacity: Some(if pool { 32 } else { 0 }),
    };
    let domain = S::new(config);
    let list: Arc<SkipList<u64, S>> = Arc::new(SkipList::new(domain.clone()));
    const WORKERS: u64 = 4;
    const CHURN: u64 = 1500;
    std::thread::scope(|s| {
        for t in 0..WORKERS {
            let list = list.clone();
            s.spawn(move || {
                let mut h = list.handle();
                for i in 0..CHURN {
                    let k = t * 100_000 + (i % 256);
                    list.insert(&mut h, k);
                    list.remove(&mut h, &k);
                }
                // No final flush here: the backlog assertion below must see
                // whatever the amortized scans left behind.
            });
        }
    });
    // Quiescent (exact) read before any explicit flush: the leftover backlog
    // is at most the robust bound of hazards plus per-thread limbo slack —
    // never proportional to the 4 × 1500 removals the workers performed.
    let bound = scot_smr::MAX_HAZARDS * max_threads + max_threads * scan_threshold;
    let seen = domain.unreclaimed();
    assert!(
        seen <= bound,
        "{} (pool={pool}): churn backlog {seen} exceeds robust bound {bound} \
         (churned {} nodes)",
        domain.name(),
        WORKERS * CHURN
    );
    let mut h = list.handle();
    for _ in 0..4 {
        h.flush();
    }
    drop(h);
    assert_eq!(
        domain.unreclaimed(),
        0,
        "{} (pool={pool}): retired towers must all be reclaimed after quiescence",
        domain.name()
    );
}

#[test]
fn skiplist_churn_bounded_under_hp_with_pool() {
    skiplist_churn_bounded_and_drained::<Hp>(true);
}

#[test]
fn skiplist_churn_bounded_under_hp_without_pool() {
    skiplist_churn_bounded_and_drained::<Hp>(false);
}

#[test]
fn skiplist_churn_bounded_under_ibr_with_pool() {
    skiplist_churn_bounded_and_drained::<Ibr>(true);
}

#[test]
fn skiplist_churn_bounded_under_ibr_without_pool() {
    skiplist_churn_bounded_and_drained::<Ibr>(false);
}

/// Churn-bounded backlog for the checkpoint-protocol schemes: NBR and VBR
/// are *not* robust (a stalled reader can block them, see
/// `SmrKind::is_robust`), but with every thread making progress their
/// cooperative protocols must still keep the backlog independent of the total
/// churn volume — NBR by neutralizing laggards as eras advance, VBR by
/// draining the recycle-queue prefix as the epoch moves.  After quiescence
/// both must account to exactly zero, with the block pool on and off.
fn checkpoint_scheme_churn_bounded_and_drained<S: Smr>(pool: bool) {
    let scan_threshold = 16usize;
    let max_threads = 16usize;
    let config = SmrConfig {
        max_threads,
        scan_threshold,
        epoch_freq_per_thread: 1,
        snapshot_scan: false,
        pool_capacity: Some(if pool { 32 } else { 0 }),
    };
    let domain = S::new(config);
    let list: Arc<SkipList<u64, S>> = Arc::new(SkipList::new(domain.clone()));
    const WORKERS: u64 = 4;
    const CHURN: u64 = 1500;
    std::thread::scope(|s| {
        for t in 0..WORKERS {
            let list = list.clone();
            s.spawn(move || {
                let mut h = list.handle();
                for i in 0..CHURN {
                    let k = t * 100_000 + (i % 256);
                    list.insert(&mut h, k);
                    list.remove(&mut h, &k);
                }
                // No final flush: the backlog assertion must see what the
                // amortized era/epoch advancement left behind.
            });
        }
    });
    // Not the robust H*N bound — the cooperative bound instead: each thread
    // can hold at most a few scan-threshold batches spanning the two-era
    // (two-epoch) reclamation lag.  What matters is churn-independence: 6000
    // retired towers, yet the residue stays within this fixed ceiling.
    let bound = 4 * max_threads * scan_threshold;
    let seen = domain.unreclaimed();
    assert!(
        seen <= bound,
        "{} (pool={pool}): churn backlog {seen} exceeds cooperative bound {bound} \
         (churned {} nodes)",
        domain.name(),
        WORKERS * CHURN
    );
    let mut h = list.handle();
    for _ in 0..4 {
        h.flush();
    }
    drop(h);
    assert_eq!(
        domain.unreclaimed(),
        0,
        "{} (pool={pool}): retired towers must all be reclaimed after quiescence",
        domain.name()
    );
}

#[test]
fn skiplist_churn_bounded_under_nbr_with_pool() {
    checkpoint_scheme_churn_bounded_and_drained::<Nbr>(true);
}

#[test]
fn skiplist_churn_bounded_under_nbr_without_pool() {
    checkpoint_scheme_churn_bounded_and_drained::<Nbr>(false);
}

#[test]
fn skiplist_churn_bounded_under_vbr_with_pool() {
    checkpoint_scheme_churn_bounded_and_drained::<Vbr>(true);
}

#[test]
fn skiplist_churn_bounded_under_vbr_without_pool() {
    checkpoint_scheme_churn_bounded_and_drained::<Vbr>(false);
}

/// The skip list under the remaining reclaiming schemes must also drain to
/// zero at quiescence (the robustness *bound* above is HP/IBR-specific, the
/// no-leak property is universal).
#[test]
fn skiplist_churn_then_quiesce_all_schemes() {
    fn run<S: Smr>() {
        let domain = S::new(cfg());
        let list: Arc<SkipList<u64, S>> = Arc::new(SkipList::new(domain.clone()));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let list = list.clone();
                s.spawn(move || {
                    let mut h = list.handle();
                    for i in 0..1000u64 {
                        let k = t * 100_000 + (i % 256);
                        list.insert(&mut h, k);
                        list.remove(&mut h, &k);
                    }
                    h.flush();
                });
            }
        });
        let mut h = list.handle();
        for _ in 0..4 {
            h.flush();
        }
        drop(h);
        assert_eq!(domain.unreclaimed(), 0, "{}", domain.name());
    }
    run::<Ebr>();
    run::<He>();
    run::<Hyaline>();
}

/// The tree must likewise reclaim everything after mixed concurrent churn.
#[test]
fn tree_reclaims_everything_after_concurrent_churn() {
    let domain = Ibr::new(cfg());
    let tree: Arc<NmTree<u64, Ibr>> = Arc::new(NmTree::new(domain.clone()));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let tree = tree.clone();
            s.spawn(move || {
                let mut h = tree.handle();
                for i in 0..1500u64 {
                    let k = t * 7 + (i % 256) * 31;
                    tree.insert(&mut h, k);
                    if i % 2 == 0 {
                        tree.remove(&mut h, &k);
                    }
                }
                h.flush();
            });
        }
    });
    let mut h = tree.handle();
    h.flush();
    drop(h);
    assert_eq!(domain.unreclaimed(), 0);
}
