//! Reclamation-focused integration tests: no leaks after quiescence, no
//! premature frees under load, and the robustness behaviour (Theorem 1 versus
//! EBR's unbounded growth) that motivates the whole paper.

use scot::{ConcurrentSet, HarrisList, NmTree};
use scot_smr::{Ebr, He, Hp, Hyaline, Ibr, Smr, SmrConfig, SmrHandle};
use std::sync::Arc;

fn cfg() -> SmrConfig {
    SmrConfig {
        max_threads: 16,
        scan_threshold: 16,
        epoch_freq_per_thread: 1,
        snapshot_scan: false,
        ..SmrConfig::default()
    }
}

/// Every node retired during a churn-heavy run must eventually be reclaimed
/// once all threads are quiescent, for every scheme.
fn churn_then_quiesce<S: Smr>() {
    let domain = S::new(cfg());
    let list: Arc<HarrisList<u64, S>> = Arc::new(HarrisList::new(domain.clone()));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let list = list.clone();
            s.spawn(move || {
                let mut h = list.handle();
                for i in 0..1500u64 {
                    let k = t * 100_000 + (i % 512);
                    list.insert(&mut h, k);
                    list.remove(&mut h, &k);
                }
                h.flush();
            });
        }
    });
    let mut h = list.handle();
    for _ in 0..4 {
        h.flush();
    }
    drop(h);
    assert_eq!(
        domain.unreclaimed(),
        0,
        "{}: retired nodes must all be reclaimed after quiescence",
        domain.name()
    );
}

#[test]
fn churn_then_quiesce_hp() {
    churn_then_quiesce::<Hp>();
}

#[test]
fn churn_then_quiesce_he() {
    churn_then_quiesce::<He>();
}

#[test]
fn churn_then_quiesce_ibr() {
    churn_then_quiesce::<Ibr>();
}

#[test]
fn churn_then_quiesce_ebr() {
    churn_then_quiesce::<Ebr>();
}

#[test]
fn churn_then_quiesce_hyaline() {
    churn_then_quiesce::<Hyaline>();
}

/// Theorem 1 flavoured robustness check: with a reader stalled inside a
/// critical section, HP keeps the unreclaimed population bounded while EBR's
/// grows with the amount of churn.
#[test]
fn stalled_reader_bounded_under_hp_unbounded_under_ebr() {
    fn run<S: Smr>(churn: u64) -> usize {
        let domain = S::new(cfg());
        let list: Arc<HarrisList<u64, S>> = Arc::new(HarrisList::new(domain.clone()));
        // Stalled reader: registers with the domain, enters a critical section
        // and never leaves (the SMR-level equivalent of a preempted operation).
        let mut stalled = domain.register();
        let _guard = stalled.pin();

        let mut writer = list.handle();
        for i in 0..churn {
            let k = 10 + (i % 1024);
            list.insert(&mut writer, k);
            list.remove(&mut writer, &k);
        }
        writer.flush();
        domain.unreclaimed()
    }

    // Both backlogs depend only on the churn count (the SMR state machines
    // are driven by retire/scan counters, never by wall-clock time), so the
    // assertions below are deterministic regardless of how slowly the host
    // executes: scale the churn tenfold and compare the resulting backlogs.
    const SMALL_CHURN: u64 = 2_000;
    const LARGE_CHURN: u64 = 20_000;
    let hp_small = run::<Hp>(SMALL_CHURN);
    let hp_large = run::<Hp>(LARGE_CHURN);
    let ebr_small = run::<Ebr>(SMALL_CHURN);
    let ebr_large = run::<Ebr>(LARGE_CHURN);

    // HP: bounded by H*N + N*R regardless of churn volume (Theorem 1), so the
    // backlog must NOT scale with the churn: 10x the work, same ceiling.
    let bound = scot_smr::MAX_HAZARDS * 16 + 16 * 16;
    assert!(
        hp_small <= bound,
        "HP small churn exceeded bound: {hp_small}"
    );
    assert!(
        hp_large <= bound,
        "HP large churn exceeded bound: {hp_large}"
    );
    // EBR: the stalled reader freezes the epoch, so the backlog grows in
    // proportion to the churn count.  Demand at least half the 10x churn
    // ratio to leave slack for the limbo entries reclaimed before the stall
    // took effect, while still distinguishing linear growth from any bound.
    assert!(
        ebr_large >= ebr_small.saturating_mul(5),
        "EBR backlog should grow ~linearly with churn under a stalled reader \
         ({ebr_small} -> {ebr_large}, expected >= 5x)"
    );
    assert!(
        ebr_small as u64 >= SMALL_CHURN / 2,
        "EBR backlog ({ebr_small}) should retain most of the {SMALL_CHURN} churned nodes"
    );
}

/// Drop-counting payload: verifies that every allocated node is dropped
/// exactly once, whether it is reclaimed by the SMR scheme or freed by the
/// structure's destructor.
#[test]
fn every_node_dropped_exactly_once() {
    // Keys are Copy, so drop-counting cannot live in the key type; instead we
    // rely on the node-level bookkeeping: every successful insert allocates
    // exactly one list node and every node is freed either via SMR
    // reclamation or at list drop.  "Dropped exactly once" is approximated by
    // the domain's unreclaimed counter reaching zero once the list is gone.
    let domain = Hp::new(cfg());
    {
        let list: HarrisList<u64, Hp> = HarrisList::new(domain.clone());
        let mut h = list.handle();
        for i in 0..1000u64 {
            list.insert(&mut h, i);
        }
        for i in (0..1000u64).step_by(3) {
            list.remove(&mut h, &i);
        }
        h.flush();
        drop(h);
        // List dropped here: frees all reachable nodes.
    }
    let mut h = domain.register();
    h.flush();
    drop(h);
    assert_eq!(
        domain.unreclaimed(),
        0,
        "all retired nodes must be reclaimed once the structure is gone"
    );
}

/// The tree must likewise reclaim everything after mixed concurrent churn.
#[test]
fn tree_reclaims_everything_after_concurrent_churn() {
    let domain = Ibr::new(cfg());
    let tree: Arc<NmTree<u64, Ibr>> = Arc::new(NmTree::new(domain.clone()));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let tree = tree.clone();
            s.spawn(move || {
                let mut h = tree.handle();
                for i in 0..1500u64 {
                    let k = t * 7 + (i % 256) * 31;
                    tree.insert(&mut h, k);
                    if i % 2 == 0 {
                        tree.remove(&mut h, &k);
                    }
                }
                h.flush();
            });
        }
    });
    let mut h = tree.handle();
    h.flush();
    drop(h);
    assert_eq!(domain.unreclaimed(), 0);
}
