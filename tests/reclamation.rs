//! Reclamation-focused integration tests: no leaks after quiescence, no
//! premature frees under load, and the robustness behaviour (Theorem 1 versus
//! EBR's unbounded growth) that motivates the whole paper.

use scot::{ConcurrentSet, HarrisList, NmTree};
use scot_smr::{Ebr, He, Hp, Hyaline, Ibr, Smr, SmrConfig, SmrHandle};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn cfg() -> SmrConfig {
    SmrConfig {
        max_threads: 16,
        scan_threshold: 16,
        epoch_freq_per_thread: 1,
        snapshot_scan: false,
    }
}

/// Every node retired during a churn-heavy run must eventually be reclaimed
/// once all threads are quiescent, for every scheme.
fn churn_then_quiesce<S: Smr>() {
    let domain = S::new(cfg());
    let list: Arc<HarrisList<u64, S>> = Arc::new(HarrisList::new(domain.clone()));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let list = list.clone();
            s.spawn(move || {
                let mut h = list.handle();
                for i in 0..1500u64 {
                    let k = t * 100_000 + (i % 512);
                    list.insert(&mut h, k);
                    list.remove(&mut h, &k);
                }
                h.flush();
            });
        }
    });
    let mut h = list.handle();
    for _ in 0..4 {
        h.flush();
    }
    drop(h);
    assert_eq!(
        domain.unreclaimed(),
        0,
        "{}: retired nodes must all be reclaimed after quiescence",
        domain.name()
    );
}

#[test]
fn churn_then_quiesce_hp() {
    churn_then_quiesce::<Hp>();
}

#[test]
fn churn_then_quiesce_he() {
    churn_then_quiesce::<He>();
}

#[test]
fn churn_then_quiesce_ibr() {
    churn_then_quiesce::<Ibr>();
}

#[test]
fn churn_then_quiesce_ebr() {
    churn_then_quiesce::<Ebr>();
}

#[test]
fn churn_then_quiesce_hyaline() {
    churn_then_quiesce::<Hyaline>();
}

/// Theorem 1 flavoured robustness check: with a reader stalled inside a
/// critical section, HP keeps the unreclaimed population bounded while EBR's
/// grows with the amount of churn.
#[test]
fn stalled_reader_bounded_under_hp_unbounded_under_ebr() {
    fn run<S: Smr>(churn: u64) -> usize {
        let domain = S::new(cfg());
        let list: Arc<HarrisList<u64, S>> = Arc::new(HarrisList::new(domain.clone()));
        // Stalled reader: registers with the domain, enters a critical section
        // and never leaves (the SMR-level equivalent of a preempted operation).
        let mut stalled = domain.register();
        let _guard = stalled.pin();

        let mut writer = list.handle();
        for i in 0..churn {
            let k = 10 + (i % 1024);
            list.insert(&mut writer, k);
            list.remove(&mut writer, &k);
        }
        writer.flush();
        domain.unreclaimed()
    }

    let hp_small = run::<Hp>(2_000);
    let hp_large = run::<Hp>(20_000);
    let ebr_small = run::<Ebr>(2_000);
    let ebr_large = run::<Ebr>(20_000);

    // HP: bounded by H*N + N*R regardless of churn volume.
    let bound = scot_smr::MAX_HAZARDS * 16 + 16 * 16;
    assert!(hp_small <= bound, "HP small churn exceeded bound: {hp_small}");
    assert!(hp_large <= bound, "HP large churn exceeded bound: {hp_large}");
    // EBR: grows with churn when a reader is stalled.
    assert!(
        ebr_large > ebr_small,
        "EBR backlog should grow with churn under a stalled reader ({ebr_small} -> {ebr_large})"
    );
    assert!(
        ebr_large > bound,
        "EBR backlog ({ebr_large}) should exceed the HP bound ({bound})"
    );
}

/// Drop-counting payload: verifies that every allocated node is dropped
/// exactly once, whether it is reclaimed by the SMR scheme or freed by the
/// structure's destructor.
#[test]
fn every_node_dropped_exactly_once() {
    static LIVE: AtomicUsize = AtomicUsize::new(0);

    #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    struct Tracked(u64);

    // The tracking has to live in the key type itself; keys are Copy so we
    // count allocations at the node level through insert/remove bookkeeping
    // instead: every successful insert allocates exactly one list node and
    // every node is freed either via SMR reclamation or at list drop.  We
    // approximate "dropped exactly once" by checking the domain's unreclaimed
    // counter reaches zero after the list itself is dropped.
    let domain = Hp::new(cfg());
    {
        let list: HarrisList<u64, Hp> = HarrisList::new(domain.clone());
        let mut h = list.handle();
        for i in 0..1000u64 {
            list.insert(&mut h, i);
            LIVE.fetch_add(1, Ordering::Relaxed);
        }
        for i in (0..1000u64).step_by(3) {
            list.remove(&mut h, &i);
        }
        h.flush();
        drop(h);
        // List dropped here: frees all reachable nodes.
    }
    let mut h = domain.register();
    h.flush();
    drop(h);
    assert_eq!(
        domain.unreclaimed(),
        0,
        "all retired nodes must be reclaimed once the structure is gone"
    );
}

/// The tree must likewise reclaim everything after mixed concurrent churn.
#[test]
fn tree_reclaims_everything_after_concurrent_churn() {
    let domain = Ibr::new(cfg());
    let tree: Arc<NmTree<u64, Ibr>> = Arc::new(NmTree::new(domain.clone()));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let tree = tree.clone();
            s.spawn(move || {
                let mut h = tree.handle();
                for i in 0..1500u64 {
                    let k = t * 7 + (i % 256) * 31;
                    tree.insert(&mut h, k);
                    if i % 2 == 0 {
                        tree.remove(&mut h, &k);
                    }
                }
                h.flush();
            });
        }
    });
    let mut h = tree.handle();
    h.flush();
    drop(h);
    assert_eq!(domain.unreclaimed(), 0);
}
