//! Umbrella crate for the SCOT reproduction: re-exports the public API of the
//! member crates so examples and integration tests have a single import root.
pub use scot;
pub use scot_harness as harness;
pub use scot_smr as smr;
