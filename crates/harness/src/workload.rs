//! Workload generator and runner: the Rust counterpart of the C++ benchmark
//! the paper extends (prefill, timed mixed workload, memory-overhead sampler).

use scot::{
    ConcurrentMap, ConcurrentSet, HarrisList, HarrisMichaelList, HashMap, NmTree, RangeScan,
    SkipList, TraversalSnapshot, WfHarrisList,
};
use scot_smr::{Ebr, He, Hp, Hyaline, Ibr, Nbr, Nr, Smr, SmrConfig, SmrKind, Vbr};
use serde::Serialize;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A tiny, dependency-free xorshift64* generator used in the measurement hot
/// loop (the same generator family the original C++ harness uses); keeping the
/// RNG trivial ensures the benchmark measures the data structure, not the RNG.
#[derive(Clone)]
pub(crate) struct FastRng(u64);

impl FastRng {
    pub(crate) fn new(seed: u64) -> Self {
        Self(seed | 1)
    }

    #[inline]
    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform-enough value in `[0, bound)` (modulo bias is irrelevant at the
    /// key-range sizes used by the paper's workloads).
    #[inline]
    pub(crate) fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    /// Uniform `f64` in `[0, 1)` built from the top 53 bits of one draw.
    #[inline]
    pub(crate) fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Zipfian rank generator over `[0, n)` using Hörmann–Derflinger
/// rejection-inversion (the algorithm behind Apache Commons'
/// `RejectionInversionZipfSampler`): O(1) amortized per sample with no
/// precomputed tables, so it scales to the service preset's multi-million-key
/// ranges, and it is driven entirely by the harness's seedable [`FastRng`],
/// so runs stay repeatable.
///
/// `theta` is the skew exponent: rank `k` (0-based) is drawn with probability
/// proportional to `1 / (k + 1)^theta`.  `theta = 0` degenerates to the
/// uniform distribution (the existing draw); `theta ≈ 0.99` is the YCSB-style
/// hot-key skew the service workload uses.
///
/// [`Zipf::key`] additionally scrambles the rank with a fixed bit-mix so the
/// hot ranks scatter across the key space instead of clustering at the head
/// of the structure (rank and key popularity stay deterministic per rank).
#[derive(Debug, Clone)]
pub(crate) struct Zipf {
    n: u64,
    theta: f64,
    h_x1: f64,
    h_n: f64,
    s: f64,
}

impl Zipf {
    /// Builds a sampler over ranks `[0, n)` with skew exponent `theta >= 0`.
    pub(crate) fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty range");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "Zipf skew must be finite and non-negative (got {theta})"
        );
        let h_x1 = Self::h_integral(1.5, theta) - 1.0;
        let h_n = Self::h_integral(n as f64 + 0.5, theta);
        let s = 2.0
            - Self::h_integral_inverse(Self::h_integral(2.5, theta) - Self::h(2.0, theta), theta);
        Self {
            n,
            theta,
            h_x1,
            h_n,
            s,
        }
    }

    /// `H(x)`, a primitive of the density `h(x) = x^-theta`.
    fn h_integral(x: f64, theta: f64) -> f64 {
        let log_x = x.ln();
        Self::helper2((1.0 - theta) * log_x) * log_x
    }

    /// The density `h(x) = x^-theta`.
    fn h(x: f64, theta: f64) -> f64 {
        (-theta * x.ln()).exp()
    }

    /// Inverse of [`Zipf::h_integral`].
    fn h_integral_inverse(x: f64, theta: f64) -> f64 {
        let mut t = x * (1.0 - theta);
        if t < -1.0 {
            // Limit damage from floating-point round-off outside the domain.
            t = -1.0;
        }
        (Self::helper1(t) * x).exp()
    }

    /// `log1p(x) / x`, with a Taylor fallback near zero.
    fn helper1(x: f64) -> f64 {
        if x.abs() > 1e-8 {
            x.ln_1p() / x
        } else {
            1.0 - x * (0.5 - x * (1.0 / 3.0 - x * 0.25))
        }
    }

    /// `expm1(x) / x`, with a Taylor fallback near zero.
    fn helper2(x: f64) -> f64 {
        if x.abs() > 1e-8 {
            x.exp_m1() / x
        } else {
            1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + x * 0.25))
        }
    }

    /// Draws a 0-based rank in `[0, n)`; rank 0 is the most frequent.
    pub(crate) fn sample(&self, rng: &mut FastRng) -> u64 {
        loop {
            let u = self.h_n + rng.unit_f64() * (self.h_x1 - self.h_n);
            let x = Self::h_integral_inverse(u, self.theta);
            // Clamp to the valid rank range; x can stray just outside it.
            let k64 = x.round().clamp(1.0, self.n as f64);
            let k = k64 as u64;
            // Accept if k is close enough to x, or by the exact density test.
            if k64 - x <= self.s
                || u >= Self::h_integral(k64 + 0.5, self.theta) - Self::h(k64, self.theta)
            {
                return k - 1;
            }
        }
    }

    /// Deterministic rank → key scatter: a splitmix64-style finalizer mixed
    /// rank reduced into `[0, n)`.  Distinct hot ranks land on unrelated keys
    /// (instead of all crowding the head of an ordered structure); the map is
    /// fixed, so a rank's key never changes across threads or runs.
    fn scramble(&self, rank: u64) -> u64 {
        let mut z = rank.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        (z ^ (z >> 31)) % self.n
    }

    /// Draws a Zipf-distributed *key* in `[0, n)` (scrambled rank).
    pub(crate) fn key(&self, rng: &mut FastRng) -> u64 {
        self.scramble(self.sample(rng))
    }
}

/// The data structures evaluated by the paper (plus the hash-map extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DsKind {
    /// Harris' list with SCOT, lock-free traversals (`listlf` in the artifact).
    ListLf,
    /// Harris' list with SCOT and wait-free traversals (`listwf`).
    ListWf,
    /// Harris-Michael list (`hmlist`), the eager-unlink baseline.
    HmList,
    /// Natarajan-Mittal tree with SCOT (`tree`).
    Tree,
    /// Hash map built from Harris lists (extension, Table 1).
    HashMap,
    /// Lock-free skip list with per-level SCOT validation (extension; the
    /// canonical multi-level optimistic-traversal structure).
    SkipList,
}

impl DsKind {
    /// All six kinds: the paper's figure order (baseline list first, then the
    /// SCOT lists, then the tree), followed by this reproduction's two
    /// extensions (hash map, skip list) in the order they were added.
    pub const ALL: [DsKind; 6] = [
        DsKind::HmList,
        DsKind::ListLf,
        DsKind::ListWf,
        DsKind::Tree,
        DsKind::HashMap,
        DsKind::SkipList,
    ];

    /// Parses the artifact's names (`listlf`, `listwf`, `hmlist`, `tree`,
    /// `hashmap`, `skiplist`), case-insensitively.  Every [`DsKind::name`]
    /// display name (`hlist`, `hlist-wf`, `nmtree`, ...) parses back to its
    /// kind, so result tables round-trip through the CLI.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "listlf" | "hlist" | "harris" => Some(DsKind::ListLf),
            "listwf" | "hlistwf" | "hlist-wf" => Some(DsKind::ListWf),
            "hmlist" | "listhm" | "harris-michael" => Some(DsKind::HmList),
            "tree" | "nmtree" => Some(DsKind::Tree),
            "hashmap" | "hash" | "map" => Some(DsKind::HashMap),
            "skiplist" | "slist" | "skip-list" => Some(DsKind::SkipList),
            _ => None,
        }
    }

    /// Display name used in result tables.
    pub fn name(&self) -> &'static str {
        match self {
            DsKind::ListLf => "HList",
            DsKind::ListWf => "HList-WF",
            DsKind::HmList => "HMList",
            DsKind::Tree => "NMTree",
            DsKind::HashMap => "HashMap",
            DsKind::SkipList => "SkipList",
        }
    }

    /// Whether the structure's range scans yield keys in globally ascending
    /// order (everything except the hash map, whose scans run bucket by
    /// bucket).  The scan workload uses this to decide how strictly to check
    /// each scan's output.
    pub fn is_ordered(&self) -> bool {
        !matches!(self, DsKind::HashMap)
    }
}

impl std::fmt::Display for DsKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Operation mix in percent: point reads, inserts, deletes and guard-scoped
/// range scans (the four percentages must sum to 100).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Mix {
    /// Percentage of `contains` operations.
    pub read_pct: u32,
    /// Percentage of `insert` operations.
    pub insert_pct: u32,
    /// Percentage of `remove` operations.
    pub delete_pct: u32,
    /// Percentage of range-scan operations (each scans a window of
    /// [`RunConfig::scan_len`] keys starting at a uniformly drawn key).
    pub scan_pct: u32,
}

impl Mix {
    /// The paper's headline workload: 50% read, 25% insert, 25% delete.
    pub const READ_50: Mix = Mix {
        read_pct: 50,
        insert_pct: 25,
        delete_pct: 25,
        scan_pct: 0,
    };
    /// Read-dominated workload (90% read).
    pub const READ_90: Mix = Mix {
        read_pct: 90,
        insert_pct: 5,
        delete_pct: 5,
        scan_pct: 0,
    };
    /// Write-only workload (50% insert, 50% delete).
    pub const WRITE_ONLY: Mix = Mix {
        read_pct: 0,
        insert_pct: 50,
        delete_pct: 50,
        scan_pct: 0,
    };
    /// Scan-dominated workload: 80% range scans over a churning key space —
    /// the `exp scan` preset's mix.  The scans continuously cross the marked
    /// chains the 20% writers leave behind, which is exactly the dangerous
    /// zone the cursor validates.
    pub const SCAN_HEAVY: Mix = Mix {
        read_pct: 0,
        insert_pct: 10,
        delete_pct: 10,
        scan_pct: 80,
    };

    pub(crate) fn validate(&self) {
        // Widen before summing so absurd percentages are rejected rather than
        // wrapping to a valid-looking total in release builds.
        assert_eq!(
            u64::from(self.read_pct)
                + u64::from(self.insert_pct)
                + u64::from(self.delete_pct)
                + u64::from(self.scan_pct),
            100,
            "operation mix must sum to 100%"
        );
    }
}

/// Backoff policy applied by the shared cursor's restart ladder
/// (`--backoff`): either retry immediately (the seed behavior) or wait out a
/// bounded-exponential number of spin hints between consecutive failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackoffMode {
    /// Retry failed CASes and restarts immediately.
    None,
    /// Bounded exponential backoff (doubling spin hints, capped well below a
    /// scheduling quantum) between consecutive failures.
    Bounded,
}

impl BackoffMode {
    /// Parses the CLI spelling (`none` / `bounded`), case-insensitively.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "none" | "off" => Some(BackoffMode::None),
            "bounded" | "exp" | "exponential" => Some(BackoffMode::Bounded),
            _ => None,
        }
    }

    /// Canonical display name (round-trips through [`BackoffMode::parse`]).
    pub fn name(&self) -> &'static str {
        match self {
            BackoffMode::None => "none",
            BackoffMode::Bounded => "bounded",
        }
    }
}

impl std::fmt::Display for BackoffMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// The vendored serde stub derives only structs; render the mode as its
// canonical CLI spelling.
impl Serialize for BackoffMode {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.name().to_string())
    }
}

/// One benchmark configuration (a single point of a figure).
#[derive(Debug, Clone, Serialize)]
pub struct RunConfig {
    /// Number of worker threads.
    pub threads: usize,
    /// Key range; keys are drawn uniformly from `[0, key_range)`.
    pub key_range: u64,
    /// Operation mix.
    pub mix: Mix,
    /// Wall-clock duration of a timed run.
    pub duration: Duration,
    /// Interval between memory-overhead samples.
    pub sample_interval: Duration,
    /// Seed for the per-thread RNGs (results are repeatable modulo scheduling).
    pub seed: u64,
    /// Whether the SMR block pool is enabled (`false` forces every node
    /// alloc/free through the global allocator — the `exp pool` ablation's
    /// baseline arm).
    pub pool: bool,
    /// Padding bytes carried by each stored value in the key-value workloads
    /// ([`crate::run_timed_kv`]); ignored by the membership-set workloads.
    pub value_bytes: usize,
    /// Width of each range-scan window, in keys: a scan op draws `lo`
    /// uniformly and scans `[lo, lo + scan_len)`.  Only consulted when
    /// [`Mix::scan_pct`] is non-zero.
    pub scan_len: u64,
    /// Zipfian skew exponent for key draws: `0.0` (the default) keeps the
    /// paper's uniform draw; any positive value routes keys through the
    /// rejection-inversion Zipf sampler (`--zipf-theta`; the service preset
    /// uses ≈0.99).  Ignored by the key-value workloads, which stay uniform.
    pub zipf_theta: f64,
    /// Operations executed under one guard before the worker calls
    /// [`ConcurrentMap::repin`] (`--pin-batch`).  `1` refreshes the critical
    /// section after every operation (the per-op pin/unpin discipline of the
    /// seed harness, minus the full fence when the scheme can elide it);
    /// larger batches amortize the repin across N operations, bounding the
    /// reclamation delay to one batch instead of one op.  Must be ≥ 1.
    pub pin_batch: u64,
    /// Backoff policy of the cursor's restart ladder (`--backoff`).
    pub backoff: BackoffMode,
    /// Whether the cursor issues the one-hop successor prefetch (ablation
    /// knob of the `exp cursor` preset; no CLI flag).
    pub prefetch: bool,
    /// Whether unlinked marked chains retire through `retire_batch` (ablation
    /// knob of the `exp cursor` preset; no CLI flag).
    pub chain_batch: bool,
}

impl RunConfig {
    /// A configuration matching the paper's defaults for the given thread
    /// count and key range (50/25/25 mix).
    pub fn paper_default(threads: usize, key_range: u64) -> Self {
        Self {
            threads,
            key_range,
            mix: Mix::READ_50,
            duration: Duration::from_millis(1000),
            sample_interval: Duration::from_millis(10),
            seed: 0x5c07,
            pool: true,
            value_bytes: 0,
            scan_len: 64,
            zipf_theta: 0.0,
            pin_batch: 1,
            backoff: BackoffMode::Bounded,
            prefetch: true,
            chain_batch: true,
        }
    }

    /// Applies this configuration's process-global cursor tuning (prefetch,
    /// backoff, chain batching) — called by every runner before its workers
    /// start, so each run measures exactly the knobs it was configured with.
    pub(crate) fn apply_tuning(&self) {
        scot::tuning::set_prefetch(self.prefetch);
        scot::tuning::set_backoff(self.backoff == BackoffMode::Bounded);
        scot::tuning::set_chain_batch(self.chain_batch);
    }

    /// Shrinks the run duration (used by `--quick` sweeps and unit tests).
    pub fn quick(mut self) -> Self {
        self.duration = Duration::from_millis(150);
        self
    }
}

/// The outcome of one run: the numbers behind one point of one figure.
#[derive(Debug, Clone, Serialize)]
pub struct RunResult {
    /// Data structure under test.
    pub ds: String,
    /// Reclamation scheme under test.
    pub smr: String,
    /// Worker threads.
    pub threads: usize,
    /// Key range.
    pub key_range: u64,
    /// Total completed operations.
    pub ops: u64,
    /// Throughput in operations per second (Figures 8, 9, 12a).
    pub ops_per_sec: f64,
    /// Average number of retired-but-unreclaimed objects, sampled during the
    /// run (Figures 10, 11, 12b).  `None` for Hyaline, as in the paper.
    pub avg_unreclaimed: Option<f64>,
    /// Peak sampled number of unreclaimed objects.
    pub max_unreclaimed: Option<usize>,
    /// Total traversal restarts (Table 2).
    pub restarts: u64,
    /// Total §3.2.1 recoveries (dangerous-zone escapes and skip-list ladder
    /// re-entries that avoided a full restart).
    pub recoveries: u64,
    /// Total backoff spin iterations waited by the cursor's restart ladder
    /// (0 when the run's [`RunConfig::backoff`] is [`BackoffMode::None`]).
    pub spins: u64,
    /// Range-scan window width of this run (0 when the mix has no scans).
    pub scan_len: u64,
    /// Total keys yielded by range scans over the whole run.
    pub scanned_keys: u64,
    /// Wall-clock seconds the measurement ran for.
    pub elapsed_secs: f64,
}

impl RunResult {
    /// One-line human-readable summary (the format the binary prints).
    pub fn row(&self) -> String {
        format!(
            "{:<10} {:<7} thr={:<4} range={:<10} ops/s={:<14.0} unreclaimed(avg)={:<12} restarts={:<8} recoveries={:<8} spins={}",
            self.ds,
            self.smr,
            self.threads,
            self.key_range,
            self.ops_per_sec,
            self.avg_unreclaimed
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "n/a".into()),
            self.restarts,
            self.recoveries,
            self.spins,
        )
    }
}

/// Internal: everything the generic runner needs from a concrete structure.
/// `pub(crate)` so the fault-injection runner ([`crate::faults`]) can drive
/// the same monomorphized targets.
pub(crate) struct Target<C> {
    pub(crate) set: Arc<C>,
    pub(crate) unreclaimed: Arc<dyn Fn() -> usize + Send + Sync>,
    pub(crate) stats: Arc<dyn Fn() -> TraversalSnapshot + Send + Sync>,
    pub(crate) track_memory: bool,
    /// Whether scans must yield globally ascending keys (see
    /// [`DsKind::is_ordered`]).
    pub(crate) ordered: bool,
}

pub(crate) fn smr_config(kind: SmrKind, threads: usize, pool: bool) -> SmrConfig {
    let mut cfg = SmrConfig::for_threads(threads);
    if matches!(kind, SmrKind::HpOpt | SmrKind::HeOpt | SmrKind::IbrOpt) {
        cfg = cfg.with_snapshot_scan();
    }
    if !pool {
        cfg = cfg.without_pool();
    }
    cfg
}

/// Number of hash-map buckets used by the harness (a fraction of the key
/// range, mirroring typical load factors in the artifact's hash-map tests).
pub(crate) fn hash_buckets(key_range: u64) -> usize {
    ((key_range / 16).clamp(16, 65_536)) as usize
}

/// Wraps a freshly built structure and its domain into the type-erased
/// target; shared by every arm of [`with_target`]'s dispatch matrix.
fn make_set_target<C, D>(set: C, domain: Arc<D>, track_memory: bool, ordered: bool) -> TargetAny
where
    C: ConcurrentMap<u64, ()>,
    D: Smr,
{
    let set = Arc::new(set);
    let s = set.clone();
    TargetAny::from(Target {
        set,
        unreclaimed: Arc::new(move || domain.unreclaimed()),
        stats: Arc::new(move || ConcurrentSet::traversal_stats(&*s)),
        track_memory,
        ordered,
    })
}

/// Builds the requested structure/scheme pair and hands it to `f`.
///
/// This is the single dispatch point where the (data structure × SMR) matrix
/// is monomorphized, exactly once for the whole harness.
pub(crate) fn with_target<R>(
    ds: DsKind,
    smr: SmrKind,
    threads: usize,
    key_range: u64,
    pool: bool,
    f: impl FnOnce(TargetAny) -> R,
) -> R {
    macro_rules! build_for_scheme {
        ($scheme:ty) => {{
            let cfg = smr_config(smr, threads, pool);
            let domain = <$scheme as Smr>::new(cfg.clone());
            let track_memory = smr != SmrKind::Hyaline;
            let ordered = ds.is_ordered();
            let target = match ds {
                DsKind::ListLf => make_set_target(
                    HarrisList::<u64, $scheme>::new(domain.clone()),
                    domain,
                    track_memory,
                    ordered,
                ),
                DsKind::ListWf => make_set_target(
                    WfHarrisList::<u64, $scheme>::new(domain.clone(), cfg.max_threads),
                    domain,
                    track_memory,
                    ordered,
                ),
                DsKind::HmList => make_set_target(
                    HarrisMichaelList::<u64, $scheme>::new(domain.clone()),
                    domain,
                    track_memory,
                    ordered,
                ),
                DsKind::Tree => make_set_target(
                    NmTree::<u64, $scheme>::new(domain.clone()),
                    domain,
                    track_memory,
                    ordered,
                ),
                DsKind::HashMap => make_set_target(
                    HashMap::<u64, $scheme>::new(hash_buckets(key_range), domain.clone()),
                    domain,
                    track_memory,
                    ordered,
                ),
                DsKind::SkipList => make_set_target(
                    SkipList::<u64, $scheme>::new(domain.clone()),
                    domain,
                    track_memory,
                    ordered,
                ),
            };
            f(target)
        }};
    }

    match smr {
        SmrKind::Nr => build_for_scheme!(Nr),
        SmrKind::Ebr => build_for_scheme!(Ebr),
        SmrKind::Hp | SmrKind::HpOpt => build_for_scheme!(Hp),
        SmrKind::He | SmrKind::HeOpt => build_for_scheme!(He),
        SmrKind::Ibr | SmrKind::IbrOpt => build_for_scheme!(Ibr),
        SmrKind::Hyaline => build_for_scheme!(Hyaline),
        SmrKind::Nbr => build_for_scheme!(Nbr),
        SmrKind::Vbr => build_for_scheme!(Vbr),
    }
}

/// Raw output of a timed run:
/// `(ops, elapsed_secs, memory_samples, stats, scanned_keys)`.
pub(crate) type TimedOutput = (u64, f64, Vec<usize>, TraversalSnapshot, u64);
/// Raw output of a fixed-ops run: `(ops, elapsed_secs, restarts)`.
type FixedOutput = (u64, f64, u64);
/// Boxed timed-run entry point of a monomorphized target.
type TimedRunner = Box<dyn FnOnce(&RunConfig) -> TimedOutput + Send>;
/// Boxed fixed-ops entry point of a monomorphized target.
type FixedRunner = Box<dyn FnOnce(&RunConfig, u64) -> FixedOutput + Send>;
/// Boxed fault-scenario entry point of a monomorphized target.
type FaultRunner =
    Box<dyn FnOnce(&RunConfig, &crate::faults::FaultPlan) -> crate::faults::FaultOutput + Send>;
/// Boxed service-scenario entry point of a monomorphized target.
type ServiceRunner = Box<
    dyn FnOnce(&RunConfig, &crate::service::ServicePlan) -> crate::service::ServiceOutput + Send,
>;

/// Type-erased target: the generic runner functions below are instantiated per
/// concrete set type through this enum-free trampoline.
pub(crate) struct TargetAny {
    pub(crate) run_timed: TimedRunner,
    pub(crate) run_fixed: FixedRunner,
    pub(crate) run_faults: FaultRunner,
    pub(crate) run_service: ServiceRunner,
}

impl<C> From<Target<C>> for TargetAny
where
    C: ConcurrentMap<u64, ()> + 'static,
{
    fn from(target: Target<C>) -> Self {
        let clone = |t: &Target<C>| Target {
            set: t.set.clone(),
            unreclaimed: t.unreclaimed.clone(),
            stats: t.stats.clone(),
            track_memory: t.track_memory,
            ordered: t.ordered,
        };
        let t2 = clone(&target);
        let t3 = clone(&target);
        let t4 = clone(&target);
        TargetAny {
            run_timed: Box::new(move |cfg| timed_inner(&target, cfg)),
            run_fixed: Box::new(move |cfg, ops| fixed_inner(&t2, cfg, ops)),
            run_faults: Box::new(move |cfg, plan| crate::faults::faults_inner(&t3, cfg, plan)),
            run_service: Box::new(move |cfg, plan| crate::service::service_inner(&t4, cfg, plan)),
        }
    }
}

/// Prefills the structure with unique keys covering 50% of the key range,
/// exactly like the paper's benchmark.
///
/// Large ranges are prefilled in parallel across `threads` workers (each
/// claims keys by successful insert, so collisions between workers just move
/// the work to whoever won), because at the 50M-key range of Figure 12 a
/// single-threaded prefill dwarfs the measurement itself.  Tiny ranges keep
/// the deterministic single-threaded fill so the populated key set (every
/// other key) stays exactly what the small-range figures assume.
pub(crate) fn prefill<C: ConcurrentSet<u64>>(set: &C, key_range: u64, seed: u64, threads: usize) {
    let target = (key_range / 2).max(1);
    if key_range <= 1024 {
        let mut handle = set.handle();
        let mut inserted = 0u64;
        let mut k = 0;
        while inserted < target {
            if set.insert(&mut handle, k) {
                inserted += 1;
            }
            k = (k + 2) % key_range.max(1);
            if k == 0 {
                k = 1;
            }
        }
        return;
    }
    let threads = threads.max(1) as u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            // Split the insert quota across workers; the remainder goes to
            // worker 0 so the total is exactly `target`.
            let share = target / threads + if t == 0 { target % threads } else { 0 };
            s.spawn(move || {
                let mut handle = set.handle();
                let mut rng = FastRng::new(seed ^ (t + 1).wrapping_mul(0x9e3779b97f4a7c15));
                let mut inserted = 0u64;
                while inserted < share {
                    let k = rng.below(key_range);
                    if set.insert(&mut handle, k) {
                        inserted += 1;
                    }
                }
            });
        }
    });
}

/// Runs one guard-scoped range scan over `[lo, lo + scan_len)` and returns
/// the number of keys yielded, verifying the scan's correctness oracle on the
/// fly: every key in bounds, no duplicates, and (for ordered structures)
/// strictly ascending.  A violation is a traversal/reclamation bug, so the
/// harness panics rather than recording garbage throughput.
pub(crate) fn scan_once<C: ConcurrentMap<u64, ()>>(
    set: &C,
    handle: &mut C::Handle,
    lo: u64,
    scan_len: u64,
    ordered: bool,
) -> u64 {
    let mut guard = set.pin(handle);
    scan_once_pinned(set, &mut guard, lo, scan_len, ordered)
}

/// [`scan_once`] against an already-pinned guard — what the batched op loop
/// uses so a scan rides the same critical section as the point ops around it.
pub(crate) fn scan_once_pinned<C: ConcurrentMap<u64, ()>>(
    set: &C,
    guard: &mut C::Guard<'_>,
    lo: u64,
    scan_len: u64,
    ordered: bool,
) -> u64 {
    let hi = lo.saturating_add(scan_len.max(1));
    let mut scan = set.scan(&mut *guard, lo, Some(hi));
    let mut prev: Option<u64> = None;
    // Unordered (hash-map) scans: ascending order cannot prove uniqueness, so
    // the yielded keys are collected and dedup-checked after the scan.  The
    // window is at most `scan_len` keys, so this stays cheap.
    let mut seen: Vec<u64> = Vec::new();
    let mut yielded = 0u64;
    while let Some((k, ())) = scan.next_entry() {
        assert!(
            (lo..hi).contains(&k),
            "scan [{lo}, {hi}) yielded out-of-window key {k} — traversal bug"
        );
        if ordered {
            assert!(
                prev.is_none_or(|p| p < k),
                "scan [{lo}, {hi}) yielded {k} after {prev:?} — ordering bug"
            );
        } else {
            seen.push(k);
        }
        prev = Some(k);
        yielded += 1;
    }
    if !ordered {
        seen.sort_unstable();
        let deduped = seen.len();
        seen.dedup();
        assert_eq!(
            seen.len(),
            deduped,
            "scan [{lo}, {hi}) yielded duplicate keys — traversal bug"
        );
    }
    yielded
}

/// The measurement hot loop.  Returns `(ops, scanned_keys)`.
pub(crate) fn op_loop<C: ConcurrentMap<u64, ()>>(
    set: &C,
    cfg: &RunConfig,
    stop: &AtomicBool,
    thread_idx: usize,
    max_ops: Option<u64>,
    ordered: bool,
) -> (u64, u64) {
    let mut handle = ConcurrentMap::handle(set);
    let mut rng = FastRng::new(cfg.seed ^ (thread_idx as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15));
    let zipf = (cfg.zipf_theta > 0.0).then(|| Zipf::new(cfg.key_range.max(1), cfg.zipf_theta));
    let pin_batch = cfg.pin_batch.max(1);
    let mut ops = 0u64;
    let mut scanned = 0u64;
    // One guard held for the whole loop, refreshed in place every `pin_batch`
    // operations: the guard-entry/exit fences are paid once per batch (and
    // elided entirely by the epoch/era schemes while the epoch stands still)
    // instead of once per operation, while reclamation still advances at
    // every batch edge.
    let mut guard = set.pin(&mut handle);
    let mut in_batch = 0u64;
    loop {
        if let Some(limit) = max_ops {
            if ops >= limit {
                break;
            }
        }
        // Check the stop flag only every few operations to keep the hot loop
        // tight, as the original benchmark does.
        if ops.is_multiple_of(64) && stop.load(Ordering::Relaxed) {
            break;
        }
        if in_batch >= pin_batch {
            set.repin(&mut guard);
            in_batch = 0;
        }
        // One RNG draw per operation, as in the original C++ harness: the low
        // bits choose the key (key ranges stay far below 2^48) and the high 16
        // bits choose the operation, so the two stay independent.  With a
        // Zipfian skew requested, the key comes from the sampler instead (it
        // draws from the same per-thread RNG, so runs stay repeatable).
        let r = rng.next_u64();
        let op = ((r >> 48) % 100) as u32;
        let key = match &zipf {
            Some(z) => z.key(&mut rng),
            None => r % cfg.key_range.max(1),
        };
        if op < cfg.mix.read_pct {
            ConcurrentMap::contains(set, &mut guard, &key);
        } else if op < cfg.mix.read_pct + cfg.mix.insert_pct {
            let _ = ConcurrentMap::insert(set, &mut guard, key, ());
        } else if op < cfg.mix.read_pct + cfg.mix.insert_pct + cfg.mix.delete_pct {
            ConcurrentMap::remove(set, &mut guard, &key);
        } else {
            scanned += scan_once_pinned(set, &mut guard, key, cfg.scan_len, ordered);
        }
        ops += 1;
        in_batch += 1;
    }
    (ops, scanned)
}

fn timed_inner<C: ConcurrentMap<u64, ()> + 'static>(
    target: &Target<C>,
    cfg: &RunConfig,
) -> TimedOutput {
    cfg.mix.validate();
    cfg.apply_tuning();
    prefill(target.set.as_ref(), cfg.key_range, cfg.seed, cfg.threads);
    let stop = Arc::new(AtomicBool::new(false));
    let total_ops = Arc::new(AtomicU64::new(0));
    let total_scanned = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut samples = Vec::new();
    std::thread::scope(|s| {
        for t in 0..cfg.threads {
            let set = target.set.clone();
            let stop = stop.clone();
            let total_ops = total_ops.clone();
            let total_scanned = total_scanned.clone();
            let ordered = target.ordered;
            let cfg = cfg.clone();
            s.spawn(move || {
                let (ops, scanned) = op_loop(set.as_ref(), &cfg, &stop, t, None, ordered);
                total_ops.fetch_add(ops, Ordering::Relaxed);
                total_scanned.fetch_add(scanned, Ordering::Relaxed);
            });
        }
        // The main thread doubles as the memory-overhead sampler.
        let deadline = start + cfg.duration;
        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            if target.track_memory {
                samples.push((target.unreclaimed)());
            }
            std::thread::sleep(cfg.sample_interval.min(deadline - now));
        }
        stop.store(true, Ordering::SeqCst);
    });
    let elapsed = start.elapsed().as_secs_f64();
    (
        total_ops.load(Ordering::Relaxed),
        elapsed,
        samples,
        (target.stats)(),
        total_scanned.load(Ordering::Relaxed),
    )
}

fn fixed_inner<C: ConcurrentMap<u64, ()> + 'static>(
    target: &Target<C>,
    cfg: &RunConfig,
    ops_per_thread: u64,
) -> FixedOutput {
    cfg.mix.validate();
    cfg.apply_tuning();
    prefill(target.set.as_ref(), cfg.key_range, cfg.seed, cfg.threads);
    let stop = AtomicBool::new(false);
    let total_ops = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..cfg.threads {
            let set = target.set.clone();
            let stop = &stop;
            let total_ops = &total_ops;
            let ordered = target.ordered;
            let cfg = cfg.clone();
            s.spawn(move || {
                let (ops, _) = op_loop(set.as_ref(), &cfg, stop, t, Some(ops_per_thread), ordered);
                total_ops.fetch_add(ops, Ordering::Relaxed);
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    (
        total_ops.load(Ordering::Relaxed),
        elapsed,
        (target.stats)().restarts,
    )
}

/// Collapses a memory-overhead sample series into `(average, peak)`.
pub(crate) fn summarize_samples(samples: &[usize]) -> (Option<f64>, Option<usize>) {
    if samples.is_empty() {
        (None, None)
    } else {
        let sum: usize = samples.iter().sum();
        (
            Some(sum as f64 / samples.len() as f64),
            samples.iter().copied().max(),
        )
    }
}

/// Runs a timed workload (the paper's main measurement mode) and returns the
/// numbers behind one figure point.
pub fn run_timed(ds: DsKind, smr: SmrKind, cfg: &RunConfig) -> RunResult {
    let (ops, elapsed, samples, stats, scanned_keys) =
        with_target(ds, smr, cfg.threads, cfg.key_range, cfg.pool, |t| {
            (t.run_timed)(cfg)
        });
    let (avg, max) = summarize_samples(&samples);
    RunResult {
        ds: ds.name().to_string(),
        smr: smr.name().to_string(),
        threads: cfg.threads,
        key_range: cfg.key_range,
        ops,
        ops_per_sec: ops as f64 / elapsed,
        avg_unreclaimed: avg,
        max_unreclaimed: max,
        restarts: stats.restarts,
        recoveries: stats.recoveries,
        spins: stats.spins,
        scan_len: if cfg.mix.scan_pct > 0 {
            cfg.scan_len
        } else {
            0
        },
        scanned_keys,
        elapsed_secs: elapsed,
    }
}

/// Runs a fixed number of operations per thread and returns
/// `(total_ops, elapsed_seconds, restarts)`.  Used by the Criterion benches.
pub fn run_fixed_ops(
    ds: DsKind,
    smr: SmrKind,
    cfg: &RunConfig,
    ops_per_thread: u64,
) -> (u64, f64, u64) {
    with_target(ds, smr, cfg.threads, cfg.key_range, cfg.pool, |t| {
        (t.run_fixed)(cfg, ops_per_thread)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ds_kind_parse_roundtrip() {
        // Every display name must parse back to exactly its kind.
        for k in DsKind::ALL {
            assert_eq!(
                DsKind::parse(k.name()),
                Some(k),
                "display name {} must round-trip",
                k.name()
            );
        }
        assert_eq!(DsKind::parse("listlf"), Some(DsKind::ListLf));
        assert_eq!(DsKind::parse("LISTWF"), Some(DsKind::ListWf));
        assert_eq!(DsKind::parse("HList-WF"), Some(DsKind::ListWf));
        assert_eq!(DsKind::parse("hmlist"), Some(DsKind::HmList));
        assert_eq!(DsKind::parse("tree"), Some(DsKind::Tree));
        assert_eq!(DsKind::parse("hashmap"), Some(DsKind::HashMap));
        assert_eq!(DsKind::parse("skiplist"), Some(DsKind::SkipList));
        assert_eq!(DsKind::parse("SKIP-LIST"), Some(DsKind::SkipList));
        assert_eq!(DsKind::parse("slist"), Some(DsKind::SkipList));
        assert_eq!(DsKind::parse("bogus"), None);
        // The enumeration covers all six structures exactly once.
        assert_eq!(DsKind::ALL.len(), 6);
        let mut names: Vec<&str> = DsKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6, "display names must be unique");
    }

    #[test]
    #[should_panic(expected = "must sum to 100")]
    fn invalid_mix_is_rejected() {
        let mix = Mix {
            read_pct: 50,
            insert_pct: 50,
            delete_pct: 50,
            scan_pct: 0,
        };
        mix.validate();
    }

    #[test]
    fn builtin_mixes_are_valid() {
        for mix in [Mix::READ_50, Mix::READ_90, Mix::WRITE_ONLY, Mix::SCAN_HEAVY] {
            mix.validate();
        }
        assert_eq!(Mix::SCAN_HEAVY.scan_pct, 80);
    }

    #[test]
    fn scan_workload_completes_and_counts_scanned_keys() {
        // Every structure (ordered and not) must survive the scan-heavy mix
        // with its in-loop oracle checks enabled.
        let mut cfg = RunConfig::paper_default(2, 256);
        cfg.duration = Duration::from_millis(60);
        cfg.mix = Mix::SCAN_HEAVY;
        cfg.scan_len = 32;
        for ds in DsKind::ALL {
            let r = run_timed(ds, SmrKind::Hp, &cfg);
            assert!(r.ops > 0, "{ds} completed no operations under scans");
            assert!(
                r.scanned_keys > 0,
                "{ds} scans yielded no keys over a half-full range"
            );
            assert_eq!(r.scan_len, 32);
        }
    }

    #[test]
    fn quick_timed_run_produces_sane_numbers() {
        let cfg = RunConfig::paper_default(2, 256).quick();
        let r = run_timed(DsKind::ListLf, SmrKind::Hp, &cfg);
        assert!(r.ops > 0, "no operations completed");
        assert!(r.ops_per_sec > 0.0);
        assert!(
            r.avg_unreclaimed.is_some(),
            "HP must report memory overhead"
        );
        assert_eq!(r.ds, "HList");
        assert_eq!(r.smr, "HP");
    }

    #[test]
    fn hyaline_runs_without_memory_sampling() {
        let cfg = RunConfig::paper_default(2, 256).quick();
        let r = run_timed(DsKind::HmList, SmrKind::Hyaline, &cfg);
        assert!(r.ops > 0);
        assert!(
            r.avg_unreclaimed.is_none(),
            "Hyaline memory overhead is skipped, as in the paper"
        );
    }

    #[test]
    fn fixed_ops_mode_executes_exactly_the_requested_work() {
        let cfg = RunConfig::paper_default(2, 128).quick();
        let (ops, elapsed, _) = run_fixed_ops(DsKind::Tree, SmrKind::Ebr, &cfg, 1_000);
        assert_eq!(ops, 2 * 1_000);
        assert!(elapsed > 0.0);
    }

    #[test]
    fn zipf_is_deterministic_under_a_seed() {
        let z = Zipf::new(10_000, 0.99);
        let draw = |seed: u64| -> Vec<u64> {
            let mut rng = FastRng::new(seed);
            (0..256).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(draw(42), draw(42), "same seed, same rank stream");
        // (FastRng forces the seed odd, so pick seeds two apart.)
        assert_ne!(draw(42), draw(44), "different seeds must diverge");
        // Keys are a fixed function of rank: replaying the seed replays them.
        let keys = |seed: u64| -> Vec<u64> {
            let mut rng = FastRng::new(seed);
            (0..256).map(|_| z.key(&mut rng)).collect()
        };
        assert_eq!(keys(7), keys(7));
    }

    #[test]
    fn zipf_rank_frequencies_follow_the_skew() {
        // With theta near 1, rank 0 must dominate and frequency must fall
        // with rank; higher theta concentrates more mass on the head.
        let n = 1000u64;
        let count_head = |theta: f64| -> (u64, Vec<u64>) {
            let z = Zipf::new(n, theta);
            let mut rng = FastRng::new(0x5eed);
            let mut counts = vec![0u64; n as usize];
            for _ in 0..200_000 {
                counts[z.sample(&mut rng) as usize] += 1;
            }
            (counts[0], counts)
        };
        let (head_skewed, counts) = count_head(0.99);
        // Expected rank-0 mass at theta=0.99 over 1000 ranks is ~12%; uniform
        // would be 0.1%.  Frequencies must be (noisily) decreasing in rank:
        // compare decade aggregates, which are monotone even with noise.
        assert!(
            head_skewed > 10_000,
            "rank 0 drew only {head_skewed} of 200k at theta=0.99"
        );
        let decade = |lo: usize, hi: usize| counts[lo..hi].iter().sum::<u64>();
        let (d0, d1, d2) = (decade(0, 10), decade(10, 100), decade(100, 1000));
        assert!(
            d0 > d1 / 9 && d1 / 90 > d2 / 900,
            "per-rank mass must fall with rank: {d0}/10 vs {d1}/90 vs {d2}/900"
        );
        // More skew, more head mass.
        let (head_flatter, _) = count_head(0.5);
        assert!(
            head_skewed > head_flatter,
            "theta=0.99 head mass ({head_skewed}) must exceed theta=0.5 ({head_flatter})"
        );
    }

    #[test]
    fn zipf_theta_zero_is_uniform_by_chi_squared() {
        // At theta=0 the sampler must degenerate to the uniform draw: a
        // chi-squared goodness-of-fit smoke over 50 cells.  With 49 degrees
        // of freedom the 99.9th percentile of chi² is ~85; use 100 for slack
        // (the RNG and sampler are deterministic, so this cannot flake).
        let cells = 50u64;
        let per_cell = 4000u64;
        let z = Zipf::new(cells, 0.0);
        let mut rng = FastRng::new(0xc41);
        let mut counts = vec![0u64; cells as usize];
        for _ in 0..cells * per_cell {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - per_cell as f64;
                d * d / per_cell as f64
            })
            .sum();
        assert!(
            chi2 < 100.0,
            "theta=0 sample deviates from uniform (chi2 = {chi2:.1}, counts {counts:?})"
        );
    }

    #[test]
    fn zipf_keys_stay_in_range_and_op_loop_honours_theta() {
        let z = Zipf::new(97, 0.99);
        let mut rng = FastRng::new(1);
        for _ in 0..10_000 {
            assert!(z.key(&mut rng) < 97);
            assert!(z.sample(&mut rng) < 97);
        }
        // A skewed timed run completes operations like a uniform one.
        let mut cfg = RunConfig::paper_default(2, 512).quick();
        cfg.zipf_theta = 0.99;
        let r = run_timed(DsKind::ListLf, SmrKind::Hp, &cfg);
        assert!(r.ops > 0, "zipfian run completed no operations");
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn zipf_rejects_negative_theta() {
        let _ = Zipf::new(10, -0.5);
    }

    #[test]
    fn every_ds_smr_pair_smoke_runs() {
        // Table 1: every structure must work under every scheme.
        let cfg = RunConfig {
            duration: Duration::from_millis(40),
            ..RunConfig::paper_default(2, 64)
        };
        for ds in DsKind::ALL {
            for smr in SmrKind::ALL {
                let r = run_timed(ds, smr, &cfg);
                assert!(r.ops > 0, "{ds} under {smr} completed no operations");
            }
        }
    }

    #[test]
    fn backoff_mode_parse_roundtrip() {
        for m in [BackoffMode::None, BackoffMode::Bounded] {
            assert_eq!(
                BackoffMode::parse(m.name()),
                Some(m),
                "display name {} must round-trip",
                m.name()
            );
            assert_eq!(m.to_string(), m.name());
        }
        // CLI aliases, case-insensitively.
        assert_eq!(BackoffMode::parse("OFF"), Some(BackoffMode::None));
        assert_eq!(BackoffMode::parse("exp"), Some(BackoffMode::Bounded));
        assert_eq!(
            BackoffMode::parse("Exponential"),
            Some(BackoffMode::Bounded)
        );
        assert_eq!(BackoffMode::parse("frantic"), None);
    }

    #[test]
    fn every_scheme_variant_is_correct_with_a_batched_pin() {
        // The `--pin-batch 16` counterpart of the Table-1 smoke: the
        // held-guard hot loop (one guard per run, refreshed in place at batch
        // edges) must stay correct under every scheme variant's repin
        // implementation.  The in-loop scan oracles (window bounds, ordering,
        // uniqueness) turn each run into a semantics check.
        let cfg = RunConfig {
            duration: Duration::from_millis(40),
            pin_batch: 16,
            mix: Mix {
                read_pct: 40,
                insert_pct: 20,
                delete_pct: 20,
                scan_pct: 20,
            },
            ..RunConfig::paper_default(2, 64)
        };
        for ds in [DsKind::ListLf, DsKind::Tree, DsKind::SkipList] {
            for smr in SmrKind::ALL {
                let r = run_timed(ds, smr, &cfg);
                assert!(
                    r.ops > 0,
                    "{ds} under {smr} with pin_batch=16 completed no operations"
                );
            }
        }
    }

    #[test]
    fn held_guard_with_repin_keeps_unreclaimed_bounded() {
        // The repin-elision hot loop holds ONE guard for the whole run and
        // refreshes it in place every `pin_batch` operations.  Under an epoch
        // scheme a guard held forever would pin the epoch and let the retire
        // backlog grow with the operation count; repinning at batch edges
        // must keep the peak bounded by a constant independent of run length.
        let mut cfg = RunConfig::paper_default(2, 256);
        cfg.duration = Duration::from_millis(120);
        cfg.mix = Mix::WRITE_ONLY;
        cfg.pin_batch = 16;
        let r = run_timed(DsKind::HmList, SmrKind::Ebr, &cfg);
        assert!(
            r.ops > 5_000,
            "run too short to observe churn: {} ops",
            r.ops
        );
        let peak = r.max_unreclaimed.expect("EBR reports memory overhead");
        assert!(
            peak < 20_000,
            "peak unreclaimed {peak} scales with the {} completed ops — \
             repin is not advancing the reclamation epoch",
            r.ops
        );
    }
}
