//! Experiment presets: one entry per table and figure of the paper's
//! evaluation section, so `scot-bench exp fig8a` regenerates the corresponding
//! data series.
//!
//! | id     | paper artifact | workload |
//! |--------|----------------|----------|
//! | fig8a  | Figure 8a  | list throughput, key range 512, 50r/50w |
//! | fig8b  | Figure 8b  | list throughput, key range 10,000 |
//! | fig9a  | Figure 9a  | NMTree throughput, key range 128 |
//! | fig9b  | Figure 9b  | NMTree throughput, key range 100,000 |
//! | fig10a | Figure 10a | list unreclaimed objects, key range 512 |
//! | fig10b | Figure 10b | list unreclaimed objects, key range 10,000 |
//! | fig11a | Figure 11a | NMTree unreclaimed objects, key range 128 |
//! | fig11b | Figure 11b | NMTree unreclaimed objects, key range 100,000 |
//! | fig12a | Figure 12a | NMTree throughput, key range 50,000,000 |
//! | fig12b | Figure 12b | NMTree unreclaimed objects, key range 50,000,000 |
//! | tab1   | Table 1    | compatibility matrix (every DS × every SMR) |
//! | tab2   | Table 2    | restart statistics, HP, key range 10,000 |
//! | pool   | (ablation) | block pool on vs off, write-only, HMList + NMTree |
//! | skiplist | (extension) | skip-list 50r/50w sweep over every scheme variant |
//! | scan   | (extension) | guard-scoped range scans, scan-length sweep × every scheme variant |
//! | cursor | (ablation) | hot-path pass: repin/prefetch/backoff/batched-retire arms vs all-off base |
//! | service | (extension) | phased cache-server soak: Zipfian keys, p50/p99/p999 per op-class |
//!
//! Key ranges and mixes match the paper exactly; thread counts are scaled to
//! the host (`default_thread_counts`), and fig12's 50M-key range can be scaled
//! down with `ExperimentOptions::scale_large_range` so the sweep finishes on
//! small machines while still exceeding cache capacity.

use crate::faults::{run_fault_scenario, FaultKind, FaultPlan, FaultReport};
use crate::kv::run_timed_kv;
use crate::service::{run_service_scenario, ServicePlan, ServiceReport};
use crate::workload::{run_timed, BackoffMode, DsKind, Mix, RunConfig, RunResult};
use crate::{default_thread_counts, SmrKind};

use std::time::Duration;

/// Options controlling how a preset is executed.
#[derive(Debug, Clone)]
pub struct ExperimentOptions {
    /// Seconds per run (the paper uses 10; the default here is 1).
    pub duration: Duration,
    /// Repetitions per configuration; the median throughput is reported, as in
    /// the paper (which uses 5 runs).
    pub runs: usize,
    /// Thread counts to sweep; defaults to [`default_thread_counts`].
    pub threads: Vec<usize>,
    /// Scale factor applied to the 50M key range of Figure 12 (1 = full size).
    pub scale_large_range: u64,
    /// Padding bytes per stored value in the key-value `cache` experiment
    /// (the `--value-bytes` CLI knob).
    pub value_bytes: usize,
    /// Scan-window widths swept by the `scan` experiment (the `--scan-lens`
    /// CLI knob).
    pub scan_lens: Vec<u64>,
    /// Fault classes injected by the `faults` experiment (the `--faults` CLI
    /// knob); defaults to all of [`FaultKind::ALL`].
    pub faults: Vec<FaultKind>,
    /// Zipfian skew exponent used by the `service` experiment's key draws
    /// (the `--zipf-theta` CLI knob; the YCSB-style default is 0.99).
    pub zipf_theta: f64,
    /// Operations per guard pin in the measurement hot loops (the
    /// `--pin-batch` CLI knob).  1 preserves the paper's pin-per-operation
    /// protocol; larger values exercise repin elision.  The `cursor`
    /// ablation's repin arms use this value when it is above 1, and 16
    /// otherwise.
    pub pin_batch: u64,
    /// Contention backoff mode for the traversal retry ladder (the
    /// `--backoff` CLI knob).
    pub backoff: BackoffMode,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        Self {
            duration: Duration::from_millis(1000),
            runs: 3,
            threads: default_thread_counts(),
            scale_large_range: 50,
            value_bytes: 64,
            scan_lens: vec![16, 64, 256],
            faults: FaultKind::ALL.to_vec(),
            zipf_theta: 0.99,
            pin_batch: 1,
            backoff: BackoffMode::Bounded,
        }
    }
}

impl ExperimentOptions {
    /// Quick mode: short runs, single repetition — used by tests and CI.
    pub fn quick() -> Self {
        Self {
            duration: Duration::from_millis(120),
            runs: 1,
            threads: vec![1, 2],
            scale_large_range: 5_000,
            value_bytes: 64,
            scan_lens: vec![8, 64],
            faults: FaultKind::ALL.to_vec(),
            zipf_theta: 0.99,
            pin_batch: 1,
            backoff: BackoffMode::Bounded,
        }
    }

    /// Base [`RunConfig`] for a preset point with this options set's tuning
    /// knobs (duration, pin batch, backoff) already applied.
    fn base_config(&self, threads: usize, key_range: u64) -> RunConfig {
        let mut cfg = RunConfig::paper_default(threads, key_range);
        cfg.duration = self.duration;
        cfg.pin_batch = self.pin_batch;
        cfg.backoff = self.backoff;
        cfg
    }
}

/// A fully described experiment (one paper table/figure).
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Identifier (e.g. `fig8a`).
    pub id: &'static str,
    /// Human description matching the paper caption.
    pub description: &'static str,
    /// Data structures compared.
    pub structures: Vec<DsKind>,
    /// Reclamation schemes compared.
    pub schemes: Vec<SmrKind>,
    /// Key range.
    pub key_range: u64,
    /// Whether the headline metric is memory overhead rather than throughput.
    pub memory_metric: bool,
}

/// All experiment identifiers, in paper order (the `pool` ablation, the
/// key-value `cache` workload, the `skiplist` structure sweep and the
/// `faults` robustness validation are this reproduction's own additions and
/// come last).
pub const ALL_EXPERIMENTS: [&str; 19] = [
    "fig8a", "fig8b", "fig9a", "fig9b", "fig10a", "fig10b", "fig11a", "fig11b", "fig12a", "fig12b",
    "tab1", "tab2", "pool", "cache", "skiplist", "scan", "cursor", "faults", "service",
];

/// The scheme list used by the paper's figures, in legend order.
fn paper_schemes() -> Vec<SmrKind> {
    vec![
        SmrKind::Nr,
        SmrKind::Ebr,
        SmrKind::Hp,
        SmrKind::HpOpt,
        SmrKind::Ibr,
        SmrKind::He,
        SmrKind::Hyaline,
    ]
}

/// Robust schemes for which the paper reports memory overhead (Hyaline is
/// skipped, exactly as in §5).
fn memory_schemes() -> Vec<SmrKind> {
    vec![
        SmrKind::Ebr,
        SmrKind::Hp,
        SmrKind::HpOpt,
        SmrKind::Ibr,
        SmrKind::He,
    ]
}

/// Looks up the specification for an experiment id.
pub fn spec(id: &str, opts: &ExperimentOptions) -> Option<ExperimentSpec> {
    let lists = vec![DsKind::HmList, DsKind::ListLf, DsKind::ListWf];
    let tree = vec![DsKind::Tree];
    let large_range = 50_000_000 / opts.scale_large_range.max(1);
    let s = match id {
        "fig8a" => ExperimentSpec {
            id: "fig8a",
            description: "Linked list throughput, 50% read / 50% write, key range 512",
            structures: lists,
            schemes: paper_schemes(),
            key_range: 512,
            memory_metric: false,
        },
        "fig8b" => ExperimentSpec {
            id: "fig8b",
            description: "Linked list throughput, 50% read / 50% write, key range 10,000",
            structures: lists,
            schemes: paper_schemes(),
            key_range: 10_000,
            memory_metric: false,
        },
        "fig9a" => ExperimentSpec {
            id: "fig9a",
            description: "NMTree throughput, 50% read / 50% write, key range 128",
            structures: tree,
            schemes: paper_schemes(),
            key_range: 128,
            memory_metric: false,
        },
        "fig9b" => ExperimentSpec {
            id: "fig9b",
            description: "NMTree throughput, 50% read / 50% write, key range 100,000",
            structures: tree,
            schemes: paper_schemes(),
            key_range: 100_000,
            memory_metric: false,
        },
        "fig10a" => ExperimentSpec {
            id: "fig10a",
            description: "Linked list avg. not-yet-reclaimed objects, key range 512",
            structures: lists,
            schemes: memory_schemes(),
            key_range: 512,
            memory_metric: true,
        },
        "fig10b" => ExperimentSpec {
            id: "fig10b",
            description: "Linked list avg. not-yet-reclaimed objects, key range 10,000",
            structures: lists,
            schemes: memory_schemes(),
            key_range: 10_000,
            memory_metric: true,
        },
        "fig11a" => ExperimentSpec {
            id: "fig11a",
            description: "NMTree avg. not-yet-reclaimed objects, key range 128",
            structures: tree,
            schemes: memory_schemes(),
            key_range: 128,
            memory_metric: true,
        },
        "fig11b" => ExperimentSpec {
            id: "fig11b",
            description: "NMTree avg. not-yet-reclaimed objects, key range 100,000",
            structures: tree,
            schemes: memory_schemes(),
            key_range: 100_000,
            memory_metric: true,
        },
        "fig12a" => ExperimentSpec {
            id: "fig12a",
            description: "NMTree throughput, key range 50,000,000 (out of cache)",
            structures: tree,
            schemes: paper_schemes(),
            key_range: large_range,
            memory_metric: false,
        },
        "fig12b" => ExperimentSpec {
            id: "fig12b",
            description: "NMTree avg. not-yet-reclaimed objects, key range 50,000,000",
            structures: tree,
            schemes: memory_schemes(),
            key_range: large_range,
            memory_metric: true,
        },
        "tab1" => ExperimentSpec {
            id: "tab1",
            description: "Compatibility matrix: every data structure under every SMR scheme",
            structures: DsKind::ALL.to_vec(),
            schemes: SmrKind::ALL.to_vec(),
            key_range: 256,
            memory_metric: false,
        },
        "tab2" => ExperimentSpec {
            id: "tab2",
            description: "Restart statistics under HP, key range 10,000 (Harris-Michael vs Harris)",
            structures: vec![DsKind::HmList, DsKind::ListLf],
            schemes: vec![SmrKind::Hp],
            key_range: 10_000,
            memory_metric: false,
        },
        "pool" => ExperimentSpec {
            id: "pool",
            description: "Block-pool ablation: pool on vs off, write-only, HMList + NMTree",
            structures: vec![DsKind::HmList, DsKind::Tree],
            schemes: vec![SmrKind::Ebr, SmrKind::Hp, SmrKind::Ibr],
            key_range: 512,
            memory_metric: false,
        },
        "cache" => ExperimentSpec {
            id: "cache",
            description:
                "Key-value cache workload: 90% value-returning get, every SMR scheme variant",
            structures: vec![DsKind::HashMap],
            schemes: SmrKind::ALL.to_vec(),
            key_range: 8192,
            memory_metric: false,
        },
        "skiplist" => ExperimentSpec {
            id: "skiplist",
            description: "Skip-list sweep: 50% read / 50% write over every SMR scheme variant",
            structures: vec![DsKind::SkipList],
            schemes: SmrKind::ALL.to_vec(),
            key_range: 10_000,
            memory_metric: false,
        },
        "scan" => ExperimentSpec {
            id: "scan",
            description: "Guard-scoped range scans: scan-length sweep, every SMR scheme variant, \
                 oracle-checked output (skip list + NM tree)",
            structures: vec![DsKind::SkipList, DsKind::Tree],
            schemes: SmrKind::ALL.to_vec(),
            key_range: 8192,
            memory_metric: false,
        },
        "cursor" => ExperimentSpec {
            id: "cursor",
            description: "Cursor hot-path ablation: repin elision, prefetch, CAS backoff and \
                 batched retire, each arm against an all-off base (skip list + NM tree)",
            structures: vec![DsKind::SkipList, DsKind::Tree],
            schemes: vec![SmrKind::Ebr, SmrKind::Hp, SmrKind::Ibr, SmrKind::Vbr],
            key_range: 8192,
            memory_metric: false,
        },
        "faults" => ExperimentSpec {
            id: "faults",
            description: "Fault-injection robustness: stalled, dying and panicking threads \
                 against every SMR scheme variant, with a bounded-footprint verdict per cell",
            // Quick sweeps keep the matrix affordable with a single
            // structure; the full run adds the tree.
            structures: if opts.duration <= Duration::from_millis(150) {
                vec![DsKind::ListLf]
            } else {
                vec![DsKind::ListLf, DsKind::Tree]
            },
            schemes: SmrKind::ALL.to_vec(),
            key_range: 512,
            memory_metric: true,
        },
        "service" => ExperimentSpec {
            id: "service",
            description: "Phased cache-server soak: Zipfian keys, per-phase p50/p99/p999 \
                 latency per op-class, robust vs non-robust scheme spread",
            // Quick sweeps keep the matrix affordable with one structure over
            // a small range; the full run spans list/tree/skip-list over
            // millions of keys.
            structures: if opts.duration <= Duration::from_millis(150) {
                vec![DsKind::ListLf]
            } else {
                vec![DsKind::ListLf, DsKind::Tree, DsKind::SkipList]
            },
            schemes: vec![
                SmrKind::Ebr,
                SmrKind::Hp,
                SmrKind::Ibr,
                SmrKind::Nbr,
                SmrKind::Vbr,
            ],
            key_range: if opts.duration <= Duration::from_millis(150) {
                4096
            } else {
                2_000_000
            },
            memory_metric: false,
        },
        _ => return None,
    };
    Some(s)
}

/// Runs one experiment preset, returning every measured point.
/// `progress` is invoked after each completed run with its textual row.
pub fn run_experiment(
    id: &str,
    opts: &ExperimentOptions,
    mut progress: impl FnMut(&RunResult),
) -> Option<Vec<RunResult>> {
    let spec = spec(id, opts)?;
    if id == "pool" {
        return Some(run_pool_ablation(&spec, opts, progress));
    }
    if id == "faults" {
        // The fault harness has its own richer report type; expose the
        // footprint numbers through the uniform `RunResult` plumbing and let
        // the CLI call `run_faults_experiment` directly for the verdicts.
        let reports = run_faults_experiment(opts, |_| {});
        let results: Vec<RunResult> = reports.iter().map(fault_run_result).collect();
        for r in &results {
            progress(r);
        }
        return Some(results);
    }
    if id == "cache" {
        return Some(run_cache_experiment(&spec, opts, progress));
    }
    if id == "scan" {
        return Some(run_scan_experiment(&spec, opts, progress));
    }
    if id == "cursor" {
        return Some(run_cursor_ablation(&spec, opts, progress));
    }
    if id == "service" {
        // The service runner has its own richer report type; expose the
        // per-phase throughput through the uniform `RunResult` plumbing and
        // let the CLI call `run_service_experiment` directly for the full
        // latency table.
        let reports = run_service_experiment(opts, |_| {});
        let results: Vec<RunResult> = reports
            .iter()
            .filter(|r| r.op_class == "get")
            .map(service_run_result)
            .collect();
        for r in &results {
            progress(r);
        }
        return Some(results);
    }
    // Single-point presets render one table row per scheme at the largest
    // requested thread count instead of sweeping the full thread range.
    let thread_counts: Vec<usize> = if id == "tab1" || id == "skiplist" {
        vec![*opts.threads.last().unwrap_or(&2)]
    } else {
        opts.threads.clone()
    };
    let mut results = Vec::new();
    for &ds in &spec.structures {
        for &smr in &spec.schemes {
            for &threads in &thread_counts {
                let mut cfg = opts.base_config(threads, spec.key_range);
                cfg.mix = Mix::READ_50;
                // Median of `runs` repetitions, as in the paper.
                let mut runs: Vec<RunResult> =
                    (0..opts.runs).map(|_| run_timed(ds, smr, &cfg)).collect();
                runs.sort_by(|a, b| a.ops_per_sec.total_cmp(&b.ops_per_sec));
                let median = runs.swap_remove(runs.len() / 2);
                progress(&median);
                results.push(median);
            }
        }
    }
    Some(results)
}

/// Runs the block-pool ablation: every structure/scheme pair of the spec,
/// write-only mix (the workload where alloc/retire dominate), once with the
/// pool enabled and once without.  The pool-off arm's scheme label carries a
/// `-pool` suffix so the two series stay distinguishable in JSON output and
/// in [`pool_table`].
fn run_pool_ablation(
    spec: &ExperimentSpec,
    opts: &ExperimentOptions,
    mut progress: impl FnMut(&RunResult),
) -> Vec<RunResult> {
    let mut results = Vec::new();
    let threads = *opts.threads.last().unwrap_or(&2);
    for &ds in &spec.structures {
        for &smr in &spec.schemes {
            for pool in [true, false] {
                let mut cfg = opts.base_config(threads, spec.key_range);
                cfg.mix = Mix::WRITE_ONLY;
                cfg.pool = pool;
                let mut runs: Vec<RunResult> =
                    (0..opts.runs).map(|_| run_timed(ds, smr, &cfg)).collect();
                runs.sort_by(|a, b| a.ops_per_sec.total_cmp(&b.ops_per_sec));
                let mut median = runs.swap_remove(runs.len() / 2);
                median.smr = format!("{}{}", smr.name(), if pool { "+pool" } else { "-pool" });
                progress(&median);
                results.push(median);
            }
        }
    }
    results
}

/// Runs the key-value cache experiment: the read-dominated (90% get) workload
/// of [`run_timed_kv`], with `opts.value_bytes` of padding per stored value,
/// swept over every scheme variant in the spec (all of [`SmrKind::ALL`], per
/// the Table-1 claim that one fixed structure serves them all).
fn run_cache_experiment(
    spec: &ExperimentSpec,
    opts: &ExperimentOptions,
    mut progress: impl FnMut(&RunResult),
) -> Vec<RunResult> {
    let mut results = Vec::new();
    let threads = *opts.threads.last().unwrap_or(&2);
    for &ds in &spec.structures {
        for &smr in &spec.schemes {
            let mut cfg = opts.base_config(threads, spec.key_range);
            cfg.mix = Mix::READ_90;
            cfg.value_bytes = opts.value_bytes;
            let mut runs: Vec<RunResult> = (0..opts.runs)
                .map(|_| run_timed_kv(ds, smr, &cfg))
                .collect();
            runs.sort_by(|a, b| a.ops_per_sec.total_cmp(&b.ops_per_sec));
            let median = runs.swap_remove(runs.len() / 2);
            progress(&median);
            results.push(median);
        }
    }
    results
}

/// Runs the range-scan experiment: the scan-heavy mix of [`Mix::SCAN_HEAVY`]
/// (80% guard-scoped scans over a churning key space) swept over every scheme
/// variant and every scan length in `opts.scan_lens`.  Every scan's output is
/// oracle-checked in the hot loop (window bounds, uniqueness, ascending order
/// for the ordered structures), so a run that completes at all certifies
/// scan correctness under that scheme.
fn run_scan_experiment(
    spec: &ExperimentSpec,
    opts: &ExperimentOptions,
    mut progress: impl FnMut(&RunResult),
) -> Vec<RunResult> {
    let mut results = Vec::new();
    let threads = *opts.threads.last().unwrap_or(&2);
    for &ds in &spec.structures {
        for &smr in &spec.schemes {
            for &scan_len in &opts.scan_lens {
                let mut cfg = opts.base_config(threads, spec.key_range);
                cfg.mix = Mix::SCAN_HEAVY;
                cfg.scan_len = scan_len;
                let mut runs: Vec<RunResult> =
                    (0..opts.runs).map(|_| run_timed(ds, smr, &cfg)).collect();
                runs.sort_by(|a, b| a.ops_per_sec.total_cmp(&b.ops_per_sec));
                let median = runs.swap_remove(runs.len() / 2);
                progress(&median);
                results.push(median);
            }
        }
    }
    results
}

/// One arm of the cursor hot-path ablation: a scheme-label suffix plus the
/// tuning knobs it enables on top of the everything-off base.
#[derive(Clone, Copy)]
struct CursorArm {
    /// Appended to the scheme name in results (e.g. `EBR+repin`), mirroring
    /// the pool ablation's `+pool`/`-pool` labelling.
    suffix: &'static str,
    pin_batch: u64,
    prefetch: bool,
    backoff: BackoffMode,
    chain_batch: bool,
}

/// The six ablation arms: the all-off base, each optimization alone, and all
/// four together.  `repin_batch` is the guard-refresh interval used by the
/// repin arms.
fn cursor_arms(repin_batch: u64) -> [CursorArm; 6] {
    let base = CursorArm {
        suffix: "+base",
        pin_batch: 1,
        prefetch: false,
        backoff: BackoffMode::None,
        chain_batch: false,
    };
    [
        base,
        CursorArm {
            suffix: "+repin",
            pin_batch: repin_batch,
            ..base
        },
        CursorArm {
            suffix: "+prefetch",
            prefetch: true,
            ..base
        },
        CursorArm {
            suffix: "+backoff",
            backoff: BackoffMode::Bounded,
            ..base
        },
        CursorArm {
            suffix: "+batch",
            chain_batch: true,
            ..base
        },
        CursorArm {
            suffix: "+all",
            pin_batch: repin_batch,
            prefetch: true,
            backoff: BackoffMode::Bounded,
            chain_batch: true,
        },
    ]
}

/// Runs the cursor hot-path ablation: every structure × scheme pair of the
/// spec at the largest requested thread count, once per arm, with the arm
/// suffix carried on the scheme label (as the pool ablation does), so the
/// JSON artifact and [`cursor_table`] can compute per-arm deltas.
fn run_cursor_ablation(
    spec: &ExperimentSpec,
    opts: &ExperimentOptions,
    mut progress: impl FnMut(&RunResult),
) -> Vec<RunResult> {
    let threads = *opts.threads.last().unwrap_or(&2);
    let repin_batch = if opts.pin_batch > 1 {
        opts.pin_batch
    } else {
        16
    };
    let mut results = Vec::new();
    for &ds in &spec.structures {
        for &smr in &spec.schemes {
            for arm in cursor_arms(repin_batch) {
                let mut cfg = opts.base_config(threads, spec.key_range);
                cfg.mix = Mix::READ_50;
                cfg.pin_batch = arm.pin_batch;
                cfg.prefetch = arm.prefetch;
                cfg.backoff = arm.backoff;
                cfg.chain_batch = arm.chain_batch;
                let mut runs: Vec<RunResult> =
                    (0..opts.runs).map(|_| run_timed(ds, smr, &cfg)).collect();
                runs.sort_by(|a, b| a.ops_per_sec.total_cmp(&b.ops_per_sec));
                let mut median = runs.swap_remove(runs.len() / 2);
                median.smr = format!("{}{}", smr.name(), arm.suffix);
                progress(&median);
                results.push(median);
            }
        }
    }
    results
}

/// Derives the phase schedule for one fault cell from the options: the
/// requested per-run duration is split 1/4 warmup, 1/2 fault, 1/4 recovery
/// (with floors so `--quick` cells still have meaningful phases).
fn fault_plan_for(kind: FaultKind, opts: &ExperimentOptions) -> FaultPlan {
    let d = opts.duration;
    FaultPlan {
        warmup: (d / 4).max(Duration::from_millis(30)),
        fault: (d / 2).max(Duration::from_millis(60)),
        recovery: (d / 4).max(Duration::from_millis(30)),
        ..FaultPlan::new(kind)
    }
}

/// Runs the fault-injection robustness experiment: every structure × scheme
/// pair of the `faults` spec under every fault class in `opts.faults`,
/// returning one verdict per cell.  This is the entry point the CLI uses so
/// it can render the verdict table; [`run_experiment`] wraps it for uniform
/// `RunResult` plumbing.
pub fn run_faults_experiment(
    opts: &ExperimentOptions,
    mut progress: impl FnMut(&FaultReport),
) -> Vec<FaultReport> {
    let spec = spec("faults", opts).expect("faults spec always exists");
    let threads = *opts.threads.last().unwrap_or(&2);
    let mut reports = Vec::new();
    for &ds in &spec.structures {
        for &smr in &spec.schemes {
            for &kind in &opts.faults {
                let cfg = RunConfig::paper_default(threads, spec.key_range);
                let r = run_fault_scenario(ds, smr, &cfg, &fault_plan_for(kind, opts));
                progress(&r);
                reports.push(r);
            }
        }
    }
    reports
}

/// Projects a fault verdict onto the uniform [`RunResult`] shape (footprint
/// numbers only; the verdict itself lives in [`FaultReport`]).
fn fault_run_result(r: &FaultReport) -> RunResult {
    RunResult {
        ds: r.ds.clone(),
        smr: r.smr.clone(),
        threads: r.threads,
        key_range: 0,
        ops: r.ops,
        ops_per_sec: if r.elapsed_secs > 0.0 {
            r.ops as f64 / r.elapsed_secs
        } else {
            0.0
        },
        avg_unreclaimed: Some(r.baseline as f64),
        max_unreclaimed: Some(r.peak),
        restarts: 0,
        recoveries: 0,
        spins: 0,
        scan_len: 0,
        scanned_keys: 0,
        elapsed_secs: r.elapsed_secs,
    }
}

/// Derives the service phase schedule from the options: the requested
/// per-run duration is the *total* across the four phases, split by
/// [`ServicePlan::new`], with the options' Zipfian skew.
fn service_plan_for(opts: &ExperimentOptions) -> ServicePlan {
    ServicePlan::new(opts.duration, opts.zipf_theta)
}

/// Runs the service experiment: every structure × scheme pair of the
/// `service` spec through the four-phase cache-server scenario, at the
/// largest requested thread count.  Returns one row per (structure, scheme,
/// phase, op-class); `progress` fires once per phase (on its `get` row).
/// This is the entry point the CLI uses so it can render the latency table;
/// [`run_experiment`] wraps it for uniform `RunResult` plumbing.
pub fn run_service_experiment(
    opts: &ExperimentOptions,
    mut progress: impl FnMut(&ServiceReport),
) -> Vec<ServiceReport> {
    let spec = spec("service", opts).expect("service spec always exists");
    let threads = *opts.threads.last().unwrap_or(&2);
    let plan = service_plan_for(opts);
    let mut reports = Vec::new();
    for &ds in &spec.structures {
        for &smr in &spec.schemes {
            let cfg = RunConfig::paper_default(threads, spec.key_range);
            let rows = run_service_scenario(ds, smr, &cfg, &plan);
            for r in &rows {
                if r.op_class == "get" {
                    progress(r);
                }
            }
            reports.extend(rows);
        }
    }
    reports
}

/// Projects a service row onto the uniform [`RunResult`] shape (per-phase
/// throughput and footprint only; the latency numbers live in
/// [`ServiceReport`]).
fn service_run_result(r: &ServiceReport) -> RunResult {
    RunResult {
        ds: r.ds.clone(),
        smr: format!("{}/{}", r.smr, r.phase),
        threads: r.threads,
        key_range: 0,
        ops: r.ops,
        ops_per_sec: r.ops_per_sec,
        avg_unreclaimed: None,
        max_unreclaimed: Some(r.peak_unreclaimed),
        restarts: r.restarts,
        recoveries: r.recoveries,
        spins: 0,
        scan_len: 0,
        scanned_keys: 0,
        elapsed_secs: 0.0,
    }
}

/// Renders the service experiment: one row per structure × scheme × phase ×
/// op-class with the phase throughput, the class's latency percentiles (`-`
/// where the class recorded no samples), and the per-phase footprint and
/// restart/recovery counters.
pub fn service_table(reports: &[ServiceReport]) -> String {
    let mut out = String::new();
    out.push_str(
        "Service scenario: Zipfian cache-server phases \
         (warmup -> read-storm -> churn-spike -> reader-stall)\n",
    );
    out.push_str(&format!(
        "{:<10}{:<8}{:<14}{:<8}{:>7}{:>14}{:>10}{:>10}{:>10}{:>9}{:>10}{:>10}{:>11}\n",
        "structure",
        "scheme",
        "phase",
        "class",
        "robust",
        "ops/s",
        "p50_ns",
        "p99_ns",
        "p999_ns",
        "samples",
        "peak",
        "restarts",
        "recoveries"
    ));
    let fmt_ns = |v: Option<u64>| v.map_or_else(|| "-".to_string(), |ns| ns.to_string());
    for r in reports {
        out.push_str(&format!(
            "{:<10}{:<8}{:<14}{:<8}{:>7}{:>14.0}{:>10}{:>10}{:>10}{:>9}{:>10}{:>10}{:>11}\n",
            r.ds,
            r.smr,
            r.phase,
            r.op_class,
            if r.is_robust { "yes" } else { "no" },
            r.ops_per_sec,
            fmt_ns(r.p50_ns),
            fmt_ns(r.p99_ns),
            fmt_ns(r.p999_ns),
            r.samples,
            r.peak_unreclaimed,
            r.restarts,
            r.recoveries,
        ));
    }
    out
}

/// Normalizes service rows into [`BenchRecord`]s: one record per (structure,
/// scheme, phase, op-class), with the percentile fields populated and the
/// phase throughput as `ops_per_sec`.
pub fn service_bench_records(reports: &[ServiceReport]) -> Vec<BenchRecord> {
    reports
        .iter()
        .map(|r| BenchRecord {
            ds: r.ds.clone(),
            smr: r.smr.clone(),
            threads: r.threads,
            is_robust: r.is_robust,
            ops_per_sec: r.ops_per_sec,
            restarts: r.restarts,
            recoveries: r.recoveries,
            peak_unreclaimed: Some(r.peak_unreclaimed),
            phase: Some(r.phase.clone()),
            op_class: Some(r.op_class.clone()),
            samples: Some(r.samples),
            p50_ns: r.p50_ns,
            p99_ns: r.p99_ns,
            p999_ns: r.p999_ns,
        })
        .collect()
}

/// Writes the `BENCH_service.json` artifact into `dir` and returns the path
/// written.  Unlike the throughput presets the records carry `phase`,
/// `op_class` and the latency percentiles, so `bench-diff` can gate tail
/// latency separately from throughput.
pub fn write_service_artifact(dir: &str, reports: &[ServiceReport]) -> std::io::Result<String> {
    std::fs::create_dir_all(dir)?;
    let path = format!("{dir}/BENCH_service.json");
    let artifact = BenchArtifact {
        preset: "service".to_string(),
        schemes: SmrKind::ALL.iter().map(|s| s.name().to_string()).collect(),
        records: service_bench_records(reports),
    };
    let json = serde_json::to_string_pretty(&artifact)
        .expect("service artifact serialization cannot fail");
    std::fs::write(&path, json + "\n")?;
    Ok(path)
}

/// Ablation suffixes a result-table scheme label may carry: the pool
/// ablation's on/off pair and the cursor ablation's arms.
const SCHEME_LABEL_SUFFIXES: [&str; 8] = [
    "+pool",
    "-pool",
    "+base",
    "+repin",
    "+prefetch",
    "+backoff",
    "+batch",
    "+all",
];

/// Strips a known ablation suffix off a scheme label, if present.
fn strip_scheme_suffix(smr: &str) -> &str {
    SCHEME_LABEL_SUFFIXES
        .iter()
        .find_map(|s| smr.strip_suffix(s))
        .unwrap_or(smr)
}

/// Whether a result-table scheme label (possibly carrying an ablation
/// suffix) names a robust scheme.
fn smr_is_robust(smr: &str) -> bool {
    SmrKind::parse(strip_scheme_suffix(smr)).is_some_and(|k| k.is_robust())
}

/// `yes`/`no` robustness column value for a scheme label.
fn robust_cell(smr: &str) -> &'static str {
    if smr_is_robust(smr) {
        "yes"
    } else {
        "no"
    }
}

/// Renders the fault-injection verdict table: peak/steady unreclaimed per
/// scheme × structure per fault class, the bound each peak was judged
/// against, and the verdict.  The `pool-leak` column is the thread-death
/// blind spot made visible: blocks stranded in dead victims' leaked pool
/// caches, which `residual`/`drained` cannot see
/// ([`FaultReport::pool_leak_bound`]).  Ends with a one-line claim-violation
/// summary.
pub fn faults_table(reports: &[FaultReport]) -> String {
    let mut out = String::new();
    out.push_str(
        "Fault-injection robustness: bounded peak unreclaimed per scheme x structure x fault\n",
    );
    out.push_str(&format!(
        "{:<10}{:<8}{:<18}{:>7}{:>10}{:>10}{:>10}{:>10}{:>9}{:>10}  {}\n",
        "structure",
        "scheme",
        "fault",
        "robust",
        "warmup-end",
        "peak",
        "bound",
        "residual",
        "drained",
        "pool-leak",
        "verdict"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<10}{:<8}{:<18}{:>7}{:>10}{:>10}{:>10}{:>10}{:>9}{:>10}  {}\n",
            r.ds,
            r.smr,
            r.fault,
            if r.is_robust { "yes" } else { "no" },
            r.baseline,
            r.peak,
            r.bound,
            r.residual,
            if r.drained { "yes" } else { "no" },
            if r.pool_leak_bound > 0 {
                format!("<={}", r.pool_leak_bound)
            } else {
                "0".to_string()
            },
            r.verdict,
        ));
    }
    let violations = reports.iter().filter(|r| r.violates_claim()).count();
    out.push_str(&format!(
        "{} cells, {} robustness-claim violations\n",
        reports.len(),
        violations
    ));
    out
}

/// The top-level shape of the `BENCH_faults.json` artifact: full fault
/// verdicts rather than throughput rows.
#[derive(Debug, Clone, serde::Serialize)]
pub struct FaultArtifact {
    /// Always `faults`.
    pub preset: String,
    /// Scheme names available at generation time, in [`SmrKind::ALL`] order.
    pub schemes: Vec<String>,
    /// Fault-class names covered, in [`FaultKind::ALL`] order.
    pub faults: Vec<String>,
    /// One verdict per measured (structure, scheme, fault) cell.
    pub records: Vec<FaultReport>,
}

/// Normalizes fault verdicts into the committed-artifact shape.
pub fn fault_artifact(reports: &[FaultReport]) -> FaultArtifact {
    FaultArtifact {
        preset: "faults".to_string(),
        schemes: SmrKind::ALL.iter().map(|s| s.name().to_string()).collect(),
        faults: FaultKind::ALL
            .iter()
            .map(|f| f.name().to_string())
            .collect(),
        records: reports.to_vec(),
    }
}

/// Writes `BENCH_faults.json` into `dir` and returns the path written.
pub fn write_fault_artifact(dir: &str, reports: &[FaultReport]) -> std::io::Result<String> {
    std::fs::create_dir_all(dir)?;
    let path = format!("{dir}/BENCH_faults.json");
    let json = serde_json::to_string_pretty(&fault_artifact(reports))
        .expect("fault artifact serialization cannot fail");
    std::fs::write(&path, json + "\n")?;
    Ok(path)
}

/// Renders the scan experiment: throughput and scanned-key volume per
/// (structure, scheme, scan length), with the uniform restart/recovery
/// columns.  `keys/scan` is the average scan yield — about half the window
/// width at the harness's 50% prefill density.
pub fn scan_table(results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str(
        "Range-scan sweep: 80% guard-scoped scans / 10% insert / 10% delete, \
         oracle-checked output\n",
    );
    out.push_str(&format!(
        "{:<10}{:<8}{:>7}{:>8}{:>10}{:>14}{:>16}{:>11}{:>10}{:>12}\n",
        "structure",
        "scheme",
        "robust",
        "threads",
        "scan_len",
        "ops/s",
        "keys scanned",
        "keys/scan",
        "restarts",
        "recoveries"
    ));
    for r in results {
        // Scans are scan_pct% of all completed operations.
        let scan_ops = (r.ops as f64 * f64::from(Mix::SCAN_HEAVY.scan_pct) / 100.0).max(1.0);
        out.push_str(&format!(
            "{:<10}{:<8}{:>7}{:>8}{:>10}{:>14.0}{:>16}{:>11.1}{:>10}{:>12}\n",
            r.ds,
            r.smr,
            robust_cell(&r.smr),
            r.threads,
            r.scan_len,
            r.ops_per_sec,
            r.scanned_keys,
            r.scanned_keys as f64 / scan_ops,
            r.restarts,
            r.recoveries,
        ));
    }
    out
}

/// Renders the cache experiment as a per-scheme table: value-read throughput
/// plus the sampled reclamation backlog (n/a where the paper skips it).
pub fn cache_table(results: &[RunResult], value_bytes: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Key-value cache workload: 90% get / 5% insert / 5% remove, {value_bytes}-byte values\n"
    ));
    out.push_str(&format!(
        "{:<12}{:<8}{:>7}{:>8}{:>16}{:>18}{:>10}{:>12}\n",
        "structure",
        "scheme",
        "robust",
        "threads",
        "ops/s",
        "unreclaimed(avg)",
        "restarts",
        "recoveries"
    ));
    for r in results {
        out.push_str(&format!(
            "{:<12}{:<8}{:>7}{:>8}{:>16.0}{:>18}{:>10}{:>12}\n",
            r.ds,
            r.smr,
            robust_cell(&r.smr),
            r.threads,
            r.ops_per_sec,
            r.avg_unreclaimed
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "n/a".into()),
            r.restarts,
            r.recoveries,
        ));
    }
    out
}

/// Renders the block-pool ablation as pool-on/pool-off pairs with the
/// throughput delta the pool buys on this machine.
pub fn pool_table(results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str("Block-pool ablation, write-only mix (50% insert / 50% delete)\n");
    out.push_str(&format!(
        "{:<12}{:<8}{:>7}{:>8}{:>16}{:>16}{:>10}{:>12}{:>12}\n",
        "structure",
        "scheme",
        "robust",
        "threads",
        "pool-on ops/s",
        "pool-off ops/s",
        "restarts",
        "recoveries",
        "delta"
    ));
    for on in results {
        let Some(base) = on.smr.strip_suffix("+pool") else {
            continue;
        };
        let off = results
            .iter()
            .find(|r| r.ds == on.ds && r.threads == on.threads && r.smr == format!("{base}-pool"));
        let Some(off) = off else { continue };
        let delta = if off.ops_per_sec > 0.0 {
            100.0 * (on.ops_per_sec - off.ops_per_sec) / off.ops_per_sec
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<12}{:<8}{:>7}{:>8}{:>16.0}{:>16.0}{:>10}{:>12}{:>+11.1}%\n",
            on.ds,
            base,
            robust_cell(base),
            on.threads,
            on.ops_per_sec,
            off.ops_per_sec,
            on.restarts,
            on.recoveries,
            delta
        ));
    }
    out
}

/// Renders the cursor hot-path ablation: one row per structure × scheme with
/// the all-off base throughput and each arm's delta against it, plus the
/// backoff spin count of the `+all` arm (0 proves the arm's backoff never
/// fired; a large count flags a contention-bound configuration).
pub fn cursor_table(results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str(
        "Cursor hot-path ablation: 50% read / 50% write, arms relative to the all-off base\n",
    );
    out.push_str(&format!(
        "{:<12}{:<8}{:>7}{:>8}{:>14}{:>9}{:>11}{:>10}{:>8}{:>8}{:>12}\n",
        "structure",
        "scheme",
        "robust",
        "threads",
        "base ops/s",
        "+repin",
        "+prefetch",
        "+backoff",
        "+batch",
        "+all",
        "spins(all)"
    ));
    for base in results {
        let Some(scheme) = base.smr.strip_suffix("+base") else {
            continue;
        };
        let arm = |suffix: &str| {
            results
                .iter()
                .find(|r| {
                    r.ds == base.ds
                        && r.threads == base.threads
                        && r.smr == format!("{scheme}{suffix}")
                })
                .map(|r| {
                    if base.ops_per_sec > 0.0 {
                        format!(
                            "{:+.1}%",
                            100.0 * (r.ops_per_sec - base.ops_per_sec) / base.ops_per_sec
                        )
                    } else {
                        "-".to_string()
                    }
                })
                .unwrap_or_else(|| "-".to_string())
        };
        let all_spins = results
            .iter()
            .find(|r| {
                r.ds == base.ds && r.threads == base.threads && r.smr == format!("{scheme}+all")
            })
            .map_or(0, |r| r.spins);
        out.push_str(&format!(
            "{:<12}{:<8}{:>7}{:>8}{:>14.0}{:>9}{:>11}{:>10}{:>8}{:>8}{:>12}\n",
            base.ds,
            scheme,
            robust_cell(scheme),
            base.threads,
            base.ops_per_sec,
            arm("+repin"),
            arm("+prefetch"),
            arm("+backoff"),
            arm("+batch"),
            arm("+all"),
            all_spins,
        ));
    }
    out
}

/// Renders the skip-list sweep as a per-scheme table: throughput, the sampled
/// reclamation backlog (n/a where the paper skips it — Hyaline — and where
/// nothing is ever reclaimed — NR) and the traversal restarts the recovery
/// ladder could not absorb.
pub fn skiplist_table(results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str("Skip-list sweep: 50% read / 25% insert / 25% delete, every scheme variant\n");
    out.push_str(&format!(
        "{:<12}{:<8}{:>7}{:>8}{:>16}{:>18}{:>10}{:>12}\n",
        "structure",
        "scheme",
        "robust",
        "threads",
        "ops/s",
        "unreclaimed(avg)",
        "restarts",
        "recoveries"
    ));
    for r in results {
        out.push_str(&format!(
            "{:<12}{:<8}{:>7}{:>8}{:>16.0}{:>18}{:>10}{:>12}\n",
            r.ds,
            r.smr,
            robust_cell(&r.smr),
            r.threads,
            r.ops_per_sec,
            r.avg_unreclaimed
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "n/a".into()),
            r.restarts,
            r.recoveries,
        ));
    }
    out
}

/// Renders a compatibility matrix (Table 1) from smoke-run results: a
/// structure is "compatible" with a scheme if its runs completed operations.
/// Robust schemes (bounded unreclaimed growth under stalled readers) carry a
/// `*` marker.
pub fn compatibility_matrix(results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<12}", "structure"));
    for smr in SmrKind::ALL {
        let label = if smr.is_robust() {
            format!("{}*", smr.name())
        } else {
            smr.name().to_string()
        };
        out.push_str(&format!("{label:>9}"));
    }
    out.push('\n');
    for ds in DsKind::ALL {
        out.push_str(&format!("{:<12}", ds.name()));
        for smr in SmrKind::ALL {
            let ok = results
                .iter()
                .any(|r| r.ds == ds.name() && r.smr == smr.name() && r.ops > 0);
            out.push_str(&format!("{:>9}", if ok { "ok" } else { "-" }));
        }
        out.push('\n');
    }
    out.push_str("(* = robust: bounded unreclaimed memory under stalled/dead readers)\n");
    out
}

/// One normalized row of a `BENCH_<preset>.json` trajectory artifact: the
/// stable subset of [`RunResult`] that is comparable across machines and
/// sessions (throughput and the paper's robustness counters), keyed by
/// scheme × structure × thread count.
#[derive(Debug, Clone, serde::Serialize)]
pub struct BenchRecord {
    /// Data structure name (e.g. `HList`).
    pub ds: String,
    /// Scheme name (e.g. `NBR`; the pool ablation suffixes `+pool`/`-pool`).
    pub smr: String,
    /// Worker threads.
    pub threads: usize,
    /// Whether the scheme is robust ([`SmrKind::is_robust`]): bounded
    /// unreclaimed growth even under stalled or dead readers.
    pub is_robust: bool,
    /// Throughput in operations per second.
    pub ops_per_sec: f64,
    /// Total traversal restarts.
    pub restarts: u64,
    /// Total §3.2.1 recoveries.
    pub recoveries: u64,
    /// Peak sampled retired-but-unreclaimed objects (`None` where the paper
    /// skips the metric, e.g. Hyaline).
    pub peak_unreclaimed: Option<usize>,
    /// Service phase name (`None` for the throughput presets, which have no
    /// phases; serialized as `null`).
    pub phase: Option<String>,
    /// Operation class (`None` for the throughput presets, which do not
    /// split by class).
    pub op_class: Option<String>,
    /// Latency samples behind the percentiles below (`None` where latency is
    /// not measured).  `bench-diff` skips the latency gate on rows with
    /// fewer samples than its stability floor — a median over a handful of
    /// samples is noise, not signal.
    pub samples: Option<u64>,
    /// Median latency in nanoseconds (`None` where latency is not measured).
    /// The separate, looser `bench-diff` latency gate keys on this field:
    /// p50 is stable run-to-run, while p99/p999 on smoke-length phases ride
    /// on a handful of tail samples and are recorded for trend reading only.
    pub p50_ns: Option<u64>,
    /// 99th-percentile latency in nanoseconds (`None` where not measured).
    pub p99_ns: Option<u64>,
    /// 99.9th-percentile latency in nanoseconds (`None` where not measured).
    pub p999_ns: Option<u64>,
}

/// The top-level shape of a `BENCH_<preset>.json` artifact.
#[derive(Debug, Clone, serde::Serialize)]
pub struct BenchArtifact {
    /// Experiment preset id (e.g. `tab1`).
    pub preset: String,
    /// Scheme names available at generation time, in [`SmrKind::ALL`] order —
    /// lets a reader detect artifacts from before a scheme existed.
    pub schemes: Vec<String>,
    /// One record per measured (structure, scheme, threads) point.
    pub records: Vec<BenchRecord>,
}

/// Normalizes experiment results into the committed-trajectory shape.
pub fn bench_artifact(id: &str, results: &[RunResult]) -> BenchArtifact {
    BenchArtifact {
        preset: id.to_string(),
        schemes: SmrKind::ALL.iter().map(|s| s.name().to_string()).collect(),
        records: results
            .iter()
            .map(|r| BenchRecord {
                ds: r.ds.clone(),
                smr: r.smr.clone(),
                threads: r.threads,
                is_robust: smr_is_robust(&r.smr),
                ops_per_sec: r.ops_per_sec,
                restarts: r.restarts,
                recoveries: r.recoveries,
                peak_unreclaimed: r.max_unreclaimed,
                phase: None,
                op_class: None,
                samples: None,
                p50_ns: None,
                p99_ns: None,
                p999_ns: None,
            })
            .collect(),
    }
}

/// Writes the normalized `BENCH_<preset>.json` artifact into `dir` and returns
/// the path written.  Every `exp` invocation of the `scot-bench` CLI calls
/// this, so the benchmark trajectory is regenerated (and diffable) on each
/// run.
pub fn write_bench_artifact(dir: &str, id: &str, results: &[RunResult]) -> std::io::Result<String> {
    std::fs::create_dir_all(dir)?;
    let path = format!("{dir}/BENCH_{id}.json");
    let json = serde_json::to_string_pretty(&bench_artifact(id, results))
        .expect("bench artifact serialization cannot fail");
    std::fs::write(&path, json + "\n")?;
    Ok(path)
}

/// Renders Table 2 (restart statistics) from the tab2 results.
pub fn restart_table(results: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str("Restart statistics under HP (robust), key range 10,000 (paper Table 2)\n");
    out.push_str(&format!(
        "{:<12}{:>10}{:>16}{:>12}{:>16}{:>12}\n",
        "structure", "threads", "restarts", "recoveries", "ops/sec", "restart %"
    ));
    for r in results {
        let pct = if r.ops > 0 {
            100.0 * r.restarts as f64 / r.ops as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<12}{:>10}{:>16}{:>12}{:>16.0}{:>11.2}%\n",
            r.ds, r.threads, r.restarts, r.recoveries, r.ops_per_sec, pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_id_has_a_spec() {
        let opts = ExperimentOptions::quick();
        for id in ALL_EXPERIMENTS {
            assert!(spec(id, &opts).is_some(), "missing spec for {id}");
        }
        assert!(spec("fig99", &opts).is_none());
    }

    #[test]
    fn memory_experiments_skip_hyaline_and_nr() {
        let opts = ExperimentOptions::quick();
        for id in ["fig10a", "fig10b", "fig11a", "fig11b", "fig12b"] {
            let s = spec(id, &opts).unwrap();
            assert!(s.memory_metric);
            assert!(!s.schemes.contains(&SmrKind::Hyaline));
            assert!(!s.schemes.contains(&SmrKind::Nr));
        }
    }

    #[test]
    fn key_ranges_match_the_paper() {
        let opts = ExperimentOptions::quick();
        assert_eq!(spec("fig8a", &opts).unwrap().key_range, 512);
        assert_eq!(spec("fig8b", &opts).unwrap().key_range, 10_000);
        assert_eq!(spec("fig9a", &opts).unwrap().key_range, 128);
        assert_eq!(spec("fig9b", &opts).unwrap().key_range, 100_000);
        assert_eq!(spec("tab2", &opts).unwrap().key_range, 10_000);
        // fig12 honours the scale factor.
        let full = ExperimentOptions {
            scale_large_range: 1,
            ..ExperimentOptions::quick()
        };
        assert_eq!(spec("fig12a", &full).unwrap().key_range, 50_000_000);
    }

    #[test]
    fn quick_pool_ablation_runs_and_renders() {
        let opts = ExperimentOptions::quick();
        let results = run_experiment("pool", &opts, |_| {}).unwrap();
        // 2 structures × 3 schemes × {on, off}.
        assert_eq!(results.len(), 12);
        assert!(results.iter().any(|r| r.smr == "EBR+pool"));
        assert!(results.iter().any(|r| r.smr == "IBR-pool"));
        let table = pool_table(&results);
        assert!(table.contains("HMList"));
        assert!(table.contains("NMTree"));
        assert!(table.contains("delta"));
        // One delta row per structure/scheme pair.
        let delta_rows = table.lines().filter(|l| l.ends_with('%')).count();
        assert_eq!(delta_rows, 6, "table:\n{table}");
    }

    #[test]
    fn quick_cache_experiment_covers_every_scheme() {
        let opts = ExperimentOptions {
            value_bytes: 16,
            ..ExperimentOptions::quick()
        };
        let results = run_experiment("cache", &opts, |_| {}).unwrap();
        // 1 structure × every variant in `SmrKind::ALL`.
        assert_eq!(results.len(), SmrKind::ALL.len());
        for smr in SmrKind::ALL {
            assert!(
                results.iter().any(|r| r.smr == smr.name() && r.ops > 0),
                "cache experiment idle under {smr}"
            );
        }
        let table = cache_table(&results, opts.value_bytes);
        assert!(table.contains("16-byte values"));
        assert!(table.contains("HashMap"));
        assert!(table.contains("HLN"), "table:\n{table}");
    }

    #[test]
    fn quick_skiplist_sweep_covers_every_scheme() {
        let opts = ExperimentOptions::quick();
        let results = run_experiment("skiplist", &opts, |_| {}).unwrap();
        // 1 structure × every variant in `SmrKind::ALL`, single thread point.
        assert_eq!(results.len(), SmrKind::ALL.len());
        for smr in SmrKind::ALL {
            assert!(
                results.iter().any(|r| r.smr == smr.name() && r.ops > 0),
                "skip-list sweep idle under {smr}"
            );
        }
        let table = skiplist_table(&results);
        assert!(table.contains("SkipList"));
        assert!(table.contains("restarts"));
        assert!(table.contains("HLN"), "table:\n{table}");
    }

    #[test]
    fn quick_cursor_ablation_runs_and_renders_deltas() {
        let opts = ExperimentOptions::quick();
        let results = run_experiment("cursor", &opts, |_| {}).unwrap();
        // 2 structures × 4 schemes × 6 arms.
        assert_eq!(results.len(), 48);
        for arm in ["+base", "+repin", "+prefetch", "+backoff", "+batch", "+all"] {
            assert!(
                results
                    .iter()
                    .any(|r| r.smr == format!("EBR{arm}") && r.ops > 0),
                "cursor ablation idle on arm {arm}"
            );
        }
        let table = cursor_table(&results);
        assert!(table.contains("SkipList") && table.contains("NMTree"));
        assert!(table.contains("spins(all)"));
        // One delta row per structure × scheme pair.
        let rows = table
            .lines()
            .filter(|l| l.starts_with("SkipList") || l.starts_with("NMTree"))
            .count();
        assert_eq!(rows, 8, "table:\n{table}");
    }

    #[test]
    fn cursor_arm_labels_do_not_hide_robustness() {
        assert!(
            smr_is_robust("HP+all"),
            "+all must not hide HP's robustness"
        );
        assert!(smr_is_robust("IBR+repin"));
        assert!(!smr_is_robust("EBR+base"));
        assert_eq!(strip_scheme_suffix("VBR+prefetch"), "VBR");
        assert_eq!(strip_scheme_suffix("EBR"), "EBR");
    }

    #[test]
    fn cursor_arms_toggle_exactly_one_knob_each() {
        let arms = cursor_arms(16);
        let base = &arms[0];
        assert_eq!(base.suffix, "+base");
        assert_eq!(base.pin_batch, 1);
        assert!(!base.prefetch && !base.chain_batch);
        assert_eq!(base.backoff, BackoffMode::None);
        let by_suffix = |s: &str| arms.iter().find(|a| a.suffix == s).unwrap();
        assert_eq!(by_suffix("+repin").pin_batch, 16);
        assert!(by_suffix("+prefetch").prefetch);
        assert_eq!(by_suffix("+backoff").backoff, BackoffMode::Bounded);
        assert!(by_suffix("+batch").chain_batch);
        let all = by_suffix("+all");
        assert!(all.pin_batch == 16 && all.prefetch && all.chain_batch);
        assert_eq!(all.backoff, BackoffMode::Bounded);
    }

    #[test]
    fn bench_artifact_is_normalized_and_writable() {
        let results = vec![RunResult {
            ds: "SkipList".into(),
            smr: "NBR".into(),
            threads: 2,
            key_range: 64,
            ops: 10,
            ops_per_sec: 123.0,
            avg_unreclaimed: Some(1.5),
            max_unreclaimed: Some(3),
            restarts: 7,
            recoveries: 2,
            spins: 0,
            scan_len: 0,
            scanned_keys: 0,
            elapsed_secs: 0.1,
        }];
        let artifact = bench_artifact("smoke", &results);
        assert_eq!(artifact.preset, "smoke");
        // The artifact's scheme list is single-sourced from `SmrKind::ALL`.
        assert_eq!(artifact.schemes.len(), SmrKind::ALL.len());
        assert!(artifact.schemes.iter().any(|s| s == "NBR"));
        assert!(artifact.schemes.iter().any(|s| s == "VBR"));
        assert_eq!(artifact.records.len(), 1);
        assert_eq!(artifact.records[0].peak_unreclaimed, Some(3));
        let dir = std::env::temp_dir().join("scot-bench-artifact-test");
        let dir = dir.to_str().unwrap();
        let path = write_bench_artifact(dir, "smoke", &results).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(path.ends_with("BENCH_smoke.json"));
        assert!(body.contains("\"ops_per_sec\""));
        assert!(body.contains("\"peak_unreclaimed\""));
        std::fs::remove_dir_all(dir).ok();
    }

    fn synthetic_report(smr: SmrKind, fault: FaultKind, peak: usize, bound: usize) -> FaultReport {
        FaultReport {
            ds: "HList".into(),
            smr: smr.name().into(),
            fault: fault.name().into(),
            threads: 2,
            victims: 1,
            is_robust: smr.is_robust(),
            baseline: 10,
            peak,
            end_of_fault: peak,
            residual: 0,
            drained: true,
            bound,
            pool_leak_bound: if fault == FaultKind::ThreadDeath {
                256
            } else {
                0
            },
            bounded: peak <= bound,
            verdict: if peak <= bound {
                "bounded".into()
            } else {
                format!("grows (+{})", peak - 10)
            },
            ops: 1000,
            elapsed_secs: 0.2,
        }
    }

    #[test]
    fn faults_table_renders_verdicts_and_violation_count() {
        let reports = vec![
            synthetic_report(SmrKind::Hp, FaultKind::ReaderStall, 100, 5000),
            synthetic_report(SmrKind::Ebr, FaultKind::ReaderStall, 90_000, 5000),
        ];
        let table = faults_table(&reports);
        assert!(table.contains("reader-stall"));
        assert!(table.contains("bounded"));
        assert!(table.contains("pool-leak"));
        assert!(table.contains("grows (+89990)"));
        assert!(table.contains("robust"));
        // EBR exceeding the bound is expected behaviour, not a violation of
        // its (non-)robustness claim.
        assert!(table.contains("2 cells, 0 robustness-claim violations"));
        // A robust scheme exceeding the bound IS a violation.
        let bad = vec![synthetic_report(
            SmrKind::Hp,
            FaultKind::ReaderStall,
            90_000,
            5000,
        )];
        assert!(faults_table(&bad).contains("1 robustness-claim violations"));
    }

    #[test]
    fn fault_artifact_is_writable_and_carries_is_robust() {
        let reports = vec![synthetic_report(
            SmrKind::Vbr,
            FaultKind::ThreadDeath,
            50,
            5000,
        )];
        let artifact = fault_artifact(&reports);
        assert_eq!(artifact.preset, "faults");
        assert_eq!(artifact.faults.len(), FaultKind::ALL.len());
        assert_eq!(artifact.schemes.len(), SmrKind::ALL.len());
        assert!(!artifact.records[0].is_robust);
        let dir = std::env::temp_dir().join("scot-fault-artifact-test");
        let dir = dir.to_str().unwrap();
        let path = write_fault_artifact(dir, &reports).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(path.ends_with("BENCH_faults.json"));
        assert!(body.contains("\"is_robust\""));
        assert!(body.contains("\"verdict\""));
        assert!(body.contains("\"pool_leak_bound\": 256"));
        assert!(faults_table(&reports).contains("<=256"));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn bench_records_carry_the_robustness_flag() {
        let mk = |smr: &str| RunResult {
            ds: "HMList".into(),
            smr: smr.into(),
            threads: 2,
            key_range: 64,
            ops: 10,
            ops_per_sec: 1.0,
            avg_unreclaimed: None,
            max_unreclaimed: None,
            restarts: 0,
            recoveries: 0,
            spins: 0,
            scan_len: 0,
            scanned_keys: 0,
            elapsed_secs: 0.1,
        };
        let artifact = bench_artifact("smoke", &[mk("HP"), mk("EBR"), mk("IBR+pool")]);
        assert!(artifact.records[0].is_robust, "HP is robust");
        assert!(!artifact.records[1].is_robust, "EBR is not robust");
        assert!(
            artifact.records[2].is_robust,
            "pool suffix must not hide IBR's robustness"
        );
    }

    #[test]
    fn quick_faults_experiment_renders_verdicts() {
        // One structure (quick spec), two schemes, one fault class: enough to
        // prove the full pipeline (runner -> table -> artifact) end to end.
        let opts = ExperimentOptions {
            faults: vec![FaultKind::PanicDuringOp],
            ..ExperimentOptions::quick()
        };
        let spec = spec("faults", &opts).unwrap();
        assert_eq!(spec.structures, vec![DsKind::ListLf]);
        let mut small = opts.clone();
        small.faults = vec![FaultKind::ThreadDeath];
        let reports: Vec<FaultReport> = run_faults_experiment(&small, |_| {})
            .into_iter()
            .filter(|r| r.smr == "HP" || r.smr == "EBR")
            .collect();
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.drained, "{}: thread death must drain (adoption)", r.smr);
        }
        let table = faults_table(&reports);
        assert!(table.contains("thread-death"));
    }

    fn synthetic_service_row(phase: &str, class: &str, samples: u64) -> ServiceReport {
        ServiceReport {
            ds: "HList".into(),
            smr: "NBR".into(),
            threads: 2,
            phase: phase.into(),
            op_class: class.into(),
            is_robust: true,
            ops: 2469,
            ops_per_sec: 12345.0,
            samples,
            p50_ns: (samples > 0).then_some(800),
            p99_ns: (samples > 0).then_some(9_000),
            p999_ns: (samples > 0).then_some(55_000),
            peak_unreclaimed: 42,
            restarts: 3,
            recoveries: 1,
        }
    }

    #[test]
    fn service_spec_scales_with_duration_and_spreads_robustness() {
        let quick = spec("service", &ExperimentOptions::quick()).unwrap();
        assert_eq!(quick.structures, vec![DsKind::ListLf]);
        assert_eq!(quick.key_range, 4096);
        let full = spec("service", &ExperimentOptions::default()).unwrap();
        assert_eq!(
            full.structures,
            vec![DsKind::ListLf, DsKind::Tree, DsKind::SkipList]
        );
        assert_eq!(full.key_range, 2_000_000);
        // The scheme spread must mix robust and non-robust schemes, or the
        // tail-latency comparison has no baseline.
        assert!(full.schemes.iter().any(|s| s.is_robust()));
        assert!(full.schemes.iter().any(|s| !s.is_robust()));
    }

    #[test]
    fn service_table_renders_percentiles_and_dashes() {
        let rows = vec![
            synthetic_service_row("read-storm", "get", 100),
            synthetic_service_row("read-storm", "scan", 0),
        ];
        let table = service_table(&rows);
        assert!(table.contains("read-storm"));
        assert!(table.contains("p999_ns"));
        assert!(table.contains("9000"), "table:\n{table}");
        // Empty classes render as a dash, not a fake zero.
        let scan_line = table.lines().find(|l| l.contains("scan")).unwrap();
        assert!(scan_line.contains('-'), "line: {scan_line}");
    }

    #[test]
    fn service_artifact_carries_phase_class_and_percentiles() {
        let rows = vec![synthetic_service_row("churn-spike", "insert", 50)];
        let records = service_bench_records(&rows);
        assert_eq!(records[0].phase.as_deref(), Some("churn-spike"));
        assert_eq!(records[0].op_class.as_deref(), Some("insert"));
        assert_eq!(records[0].p99_ns, Some(9_000));
        let dir = std::env::temp_dir().join("scot-service-artifact-test");
        let dir = dir.to_str().unwrap();
        let path = write_service_artifact(dir, &rows).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(path.ends_with("BENCH_service.json"));
        for field in [
            "\"phase\"",
            "\"op_class\"",
            "\"p50_ns\"",
            "\"p99_ns\"",
            "\"p999_ns\"",
        ] {
            assert!(body.contains(field), "missing {field} in:\n{body}");
        }
        std::fs::remove_dir_all(dir).ok();
        // The throughput presets serialize the new fields as null, keeping
        // one schema across every BENCH_*.json.
        let artifact = bench_artifact("smoke", &[]);
        assert!(artifact.records.is_empty());
    }

    #[test]
    fn quick_tab2_runs_and_renders() {
        let opts = ExperimentOptions::quick();
        let results = run_experiment("tab2", &opts, |_| {}).unwrap();
        assert!(!results.is_empty());
        let table = restart_table(&results);
        assert!(table.contains("HMList"));
        assert!(table.contains("HList"));
    }
}
