//! Shared phased-run machinery: the phase clock, the phase-waiting helper,
//! the injected-panic hook and the stalled-reader actor.
//!
//! Both phased runners — the fault harness ([`crate::faults`]) and the
//! service scenario ([`crate::service`]) — drive their worker and actor
//! threads through a shared `AtomicU8` phase word while the main thread acts
//! as the clock and the memory-footprint sampler.  This module is the single
//! copy of that machinery, so the two runners cannot drift apart.

use crate::workload::FastRng;
use scot::{ConcurrentMap, ConcurrentSet};
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// One observation made by the phase clock ([`drive_phases`]).
pub(crate) enum PhaseEvent {
    /// A periodic footprint sample taken inside a phase.
    Sample {
        /// Phase word value when the sample was taken.
        phase: u8,
        /// The domain's unreclaimed count at that moment.
        unreclaimed: usize,
    },
    /// The edge that *ends* a phase: sampled once, right before the phase
    /// word advances.
    Edge {
        /// The phase that just ended.
        phase: u8,
        /// The domain's unreclaimed count at the edge.
        unreclaimed: usize,
        /// Wall-clock time since the clock started.
        elapsed: Duration,
    },
}

/// The phase clock: walks the phase word through `0..durations.len()` on the
/// given schedule, sampling `unreclaimed()` every `sample_interval` and once
/// more at each phase edge.  After the last phase the word is advanced to
/// `durations.len()` (the stop value every worker/actor polls for) and the
/// total elapsed seconds are returned.
///
/// Runs on the calling thread — the main thread of a phased run is the clock
/// and the footprint sampler, exactly as in the paper's harness.
pub(crate) fn drive_phases(
    phase: &AtomicU8,
    durations: &[Duration],
    sample_interval: Duration,
    unreclaimed: &dyn Fn() -> usize,
    mut on_event: impl FnMut(PhaseEvent),
) -> f64 {
    assert!(!durations.is_empty() && durations.len() < u8::MAX as usize);
    let start = Instant::now();
    // Cumulative deadlines: phase p ends at start + durations[..=p].sum().
    let mut edges = Vec::with_capacity(durations.len());
    let mut acc = Duration::ZERO;
    for d in durations {
        acc += *d;
        edges.push(start + acc);
    }
    loop {
        let cur = phase.load(Ordering::Acquire) as usize;
        debug_assert!(cur < durations.len(), "clock raced past the stop value");
        let next_edge = edges[cur];
        let now = Instant::now();
        if now >= next_edge {
            let n = unreclaimed();
            on_event(PhaseEvent::Edge {
                phase: cur as u8,
                unreclaimed: n,
                elapsed: start.elapsed(),
            });
            let next = cur + 1;
            phase.store(next as u8, Ordering::Release);
            if next == durations.len() {
                break;
            }
            continue;
        }
        let n = unreclaimed();
        on_event(PhaseEvent::Sample {
            phase: cur as u8,
            unreclaimed: n,
        });
        std::thread::sleep(sample_interval.min(next_edge - now));
    }
    start.elapsed().as_secs_f64()
}

/// Installs (once) a panic hook that swallows panics raised on fault-actor
/// threads: injected panics are the *point* of
/// [`crate::faults::FaultKind::PanicDuringOp`], and the default hook's
/// backtrace spam would drown the verdict table.  Panics on any other thread
/// still reach the previously installed hook.
pub(crate) fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("fault-actor"));
            if !injected {
                prev(info);
            }
        }));
    });
}

/// Sleeps until the phase word reaches `at_least`.
pub(crate) fn wait_for_phase(phase: &AtomicU8, at_least: u8) {
    while phase.load(Ordering::Acquire) < at_least {
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// A stalled reader: pins a guard, performs one lookup, then holds the guard
/// for the whole `stall_at` phase — the canonical robustness killer for
/// epoch-style schemes.  The fault harness stalls through its fault phase,
/// the service scenario through its reader-stall phase.
pub(crate) fn stall_actor<C: ConcurrentMap<u64, ()>>(
    set: &C,
    phase: &AtomicU8,
    key_range: u64,
    idx: usize,
    stall_at: u8,
) {
    let mut handle = ConcurrentMap::handle(set);
    wait_for_phase(phase, stall_at);
    let mut guard = set.pin(&mut handle);
    let key = idx as u64 % key_range.max(1);
    let _ = set.get(&mut guard, &key);
    while phase.load(Ordering::Acquire) == stall_at {
        std::thread::sleep(Duration::from_millis(1));
    }
    // Recovery: the guard drops here, releasing whatever the scheme was
    // holding back; the handle drop then releases the slot cleanly.
}

/// One random set operation through a plain handle (no explicit guard).
/// Shared by the fault actors that hammer the structure while misbehaving.
pub(crate) fn do_op<C: ConcurrentMap<u64, ()>>(
    set: &C,
    handle: &mut <C as ConcurrentMap<u64, ()>>::Handle,
    rng: &mut FastRng,
    key_range: u64,
) {
    let r = rng.next_u64();
    let key = r % key_range.max(1);
    match (r >> 48) % 3 {
        0 => {
            ConcurrentSet::contains(set, handle, &key);
        }
        1 => {
            ConcurrentSet::insert(set, handle, key);
        }
        _ => {
            ConcurrentSet::remove(set, handle, &key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn clock_walks_every_phase_and_lands_on_stop() {
        let phase = AtomicU8::new(0);
        let calls = AtomicUsize::new(0);
        let mut edges = Vec::new();
        let mut samples = 0usize;
        let durations = [
            Duration::from_millis(10),
            Duration::from_millis(10),
            Duration::from_millis(10),
        ];
        let elapsed = drive_phases(
            &phase,
            &durations,
            Duration::from_millis(2),
            &|| calls.fetch_add(1, Ordering::Relaxed),
            |ev| match ev {
                PhaseEvent::Edge { phase, elapsed, .. } => edges.push((phase, elapsed)),
                PhaseEvent::Sample { .. } => samples += 1,
            },
        );
        assert_eq!(phase.load(Ordering::Acquire), 3, "stop value is len()");
        assert_eq!(
            edges.iter().map(|(p, _)| *p).collect::<Vec<_>>(),
            vec![0, 1, 2],
            "one edge per phase, in order"
        );
        assert!(samples > 0, "phases must be sampled between edges");
        assert!(elapsed >= 0.03, "clock must span the full schedule");
        // Edge timestamps are non-decreasing.
        assert!(edges.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!(calls.load(Ordering::Relaxed) > 0);
    }
}
