//! `scot-bench` — the command-line benchmark driver, mirroring the paper
//! artifact's `./bench` binary and its experiment scripts.
//!
//! Usage:
//!
//! ```text
//! scot-bench run <ds> <seconds> <key_range> <threads> <read%> <ins%> <del%> <SMR> [scan% [scan_len]]
//! scot-bench exp <experiment-id | all> [--quick] [--seconds N] [--runs N] [--json DIR] [--bench-dir DIR]
//! scot-bench bench-diff <baseline.json> <fresh.json> [--max-regress PCT]
//! scot-bench list
//! ```
//!
//! Examples (the first mirrors the paper's `./bench listlf 2 512 1 50 25 25 EBR 4`;
//! the third adds 20% range scans of 64 keys each to the mix; the fifth runs
//! the fault-injection robustness matrix with only the reader-stall and
//! thread-death fault classes):
//!
//! ```text
//! scot-bench run listlf 2 512 4 50 25 25 EBR
//! scot-bench exp fig8a --quick
//! scot-bench run skiplist 2 8192 4 40 20 20 HP 20 64
//! scot-bench exp scan --quick
//! scot-bench exp faults --quick --faults stall,death
//! scot-bench bench-diff BENCH_tab1.json fresh/BENCH_tab1.json --max-regress 25
//! ```

use scot_harness::experiments::{
    cache_table, compatibility_matrix, cursor_table, faults_table, pool_table, restart_table,
    run_experiment, run_faults_experiment, run_service_experiment, scan_table, service_table,
    skiplist_table, write_bench_artifact, write_fault_artifact, write_service_artifact,
    ExperimentOptions, ALL_EXPERIMENTS,
};
use scot_harness::{run_timed, BackoffMode, DsKind, FaultKind, Mix, RunConfig, RunResult, SmrKind};
use std::time::Duration;

/// Upper bound on `--threads`/`<threads>`: far above any sane benchmark
/// configuration, low enough that a typo ("1000000") is rejected instead of
/// exhausting the machine with thread spawns.
const MAX_THREADS: usize = 1024;

fn usage() -> ! {
    // The scheme list is rendered from `SmrKind::ALL` so a newly added scheme
    // shows up here without touching the CLI; likewise the fault classes.
    let schemes: Vec<&str> = SmrKind::ALL.iter().map(|s| s.name()).collect();
    let faults: Vec<&str> = FaultKind::ALL.iter().map(|f| f.name()).collect();
    eprintln!(
        "usage:\n  scot-bench run <ds> <seconds> <key_range> <threads> <read%> <ins%> <del%> <SMR> [scan% [scan_len]] [--pin-batch N] [--backoff none|bounded] [--no-prefetch] [--no-chain-batch]\n  scot-bench exp <id|all> [--quick] [--seconds N] [--runs N] [--threads A,B,..] [--value-bytes N] [--scan-lens A,B,..] [--faults A,B,..] [--zipf-theta T] [--pin-batch N] [--backoff none|bounded] [--json DIR] [--bench-dir DIR]\n  scot-bench bench-diff <baseline.json> <fresh.json> [--max-regress PCT] [--max-latency-regress PCT]\n  scot-bench list\n\ndata structures: listlf listwf hmlist tree hashmap skiplist\nSMR schemes:     {}\nexperiments:     {}\nfault classes:   {}",
        schemes.join(" "),
        ALL_EXPERIMENTS.join(" "),
        faults.join(" ")
    );
    std::process::exit(2);
}

/// Rendered-error exit used by the validation paths: prints the message and
/// exits 2 without the full usage dump (the message is the diagnosis).
fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Validates a thread count: positive and below [`MAX_THREADS`].
fn check_threads(threads: usize) {
    if threads == 0 {
        fail("thread count must be at least 1");
    }
    if threads > MAX_THREADS {
        fail(&format!(
            "thread count {threads} exceeds the supported maximum of {MAX_THREADS}"
        ));
    }
}

/// Validates a run duration: strictly positive and finite.
fn check_seconds(secs: f64) {
    if !secs.is_finite() || secs <= 0.0 {
        fail(&format!(
            "duration must be a positive number of seconds (got {secs})"
        ));
    }
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("cannot parse {what}: {s}");
        std::process::exit(2);
    })
}

/// Returns the value following a flag, or a rendered error if the flag is the
/// last argument.
fn next_arg<'a>(args: &'a [String], i: &mut usize, flag: &str) -> &'a str {
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
}

/// Parses and validates a `--pin-batch` value: at least 1 (a batch of 0
/// operations per pin would never repin).
fn parse_pin_batch(v: &str) -> u64 {
    let n: u64 = parse(v, "--pin-batch");
    if n == 0 {
        fail("--pin-batch must be at least 1");
    }
    n
}

/// Parses and validates a `--backoff` mode name.
fn parse_backoff(v: &str) -> BackoffMode {
    BackoffMode::parse(v).unwrap_or_else(|| {
        fail(&format!(
            "unknown backoff mode `{v}` (known: none, bounded)"
        ))
    })
}

fn cmd_run(args: &[String]) {
    // Tuning flags may trail the positional arguments; split them off first.
    let mut pos: Vec<&String> = Vec::new();
    let mut pin_batch = 1u64;
    let mut backoff = BackoffMode::Bounded;
    let mut prefetch = true;
    let mut chain_batch = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--pin-batch" => {
                pin_batch = parse_pin_batch(next_arg(args, &mut i, "--pin-batch"));
            }
            "--backoff" => {
                backoff = parse_backoff(next_arg(args, &mut i, "--backoff"));
            }
            "--no-prefetch" => prefetch = false,
            "--no-chain-batch" => chain_batch = false,
            _ => pos.push(&args[i]),
        }
        i += 1;
    }
    if !(8..=10).contains(&pos.len()) {
        usage();
    }
    let ds = DsKind::parse(pos[0]).unwrap_or_else(|| usage());
    let seconds: f64 = parse(pos[1], "seconds");
    check_seconds(seconds);
    let key_range: u64 = parse(pos[2], "key range");
    let threads: usize = parse(pos[3], "threads");
    check_threads(threads);
    let read: u32 = parse(pos[4], "read%");
    let ins: u32 = parse(pos[5], "insert%");
    let del: u32 = parse(pos[6], "delete%");
    let smr = SmrKind::parse(pos[7]).unwrap_or_else(|| usage());
    let scan: u32 = pos.get(8).map_or(0, |a| parse(a, "scan%"));
    let scan_len: u64 = pos.get(9).map_or(64, |a| parse(a, "scan_len"));
    if u64::from(read) + u64::from(ins) + u64::from(del) + u64::from(scan) != 100 {
        eprintln!("operation mix must sum to 100% (got {read}+{ins}+{del}+{scan})");
        std::process::exit(2);
    }
    let cfg = RunConfig {
        threads,
        key_range,
        mix: Mix {
            read_pct: read,
            insert_pct: ins,
            delete_pct: del,
            scan_pct: scan,
        },
        duration: Duration::from_secs_f64(seconds),
        sample_interval: Duration::from_millis(10),
        seed: 0x5c07,
        pool: true,
        value_bytes: 0,
        scan_len,
        zipf_theta: 0.0,
        pin_batch,
        backoff,
        prefetch,
        chain_batch,
    };
    let result = run_timed(ds, smr, &cfg);
    println!("{}", result.row());
    println!("{}", serde_json::to_string_pretty(&result).unwrap());
}

fn write_json(dir: &str, id: &str, results: &[RunResult]) {
    std::fs::create_dir_all(dir).expect("cannot create output directory");
    let path = format!("{dir}/{id}.json");
    let json = serde_json::to_string_pretty(results).unwrap();
    std::fs::write(&path, json).expect("cannot write results file");
    println!("wrote {path}");
}

fn cmd_exp(args: &[String]) {
    if args.is_empty() {
        usage();
    }
    let id = args[0].to_ascii_lowercase();
    let mut opts = ExperimentOptions::default();
    let mut json_dir: Option<String> = None;
    let mut bench_dir = String::from(".");
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                opts = ExperimentOptions::quick();
            }
            "--seconds" => {
                let secs: f64 = parse(next_arg(args, &mut i, "--seconds"), "--seconds");
                check_seconds(secs);
                opts.duration = Duration::from_secs_f64(secs);
            }
            "--runs" => {
                opts.runs = parse(next_arg(args, &mut i, "--runs"), "--runs");
            }
            "--threads" => {
                opts.threads = next_arg(args, &mut i, "--threads")
                    .split(',')
                    .map(|t| parse(t, "--threads"))
                    .collect();
                if opts.threads.is_empty() {
                    fail("--threads needs at least one thread count");
                }
                for &t in &opts.threads {
                    check_threads(t);
                }
            }
            "--faults" => {
                opts.faults = next_arg(args, &mut i, "--faults")
                    .split(',')
                    .map(|name| {
                        FaultKind::parse(name).unwrap_or_else(|| {
                            let known: Vec<&str> =
                                FaultKind::ALL.iter().map(|f| f.name()).collect();
                            fail(&format!(
                                "unknown fault class `{name}` (known: {})",
                                known.join(", ")
                            ))
                        })
                    })
                    .collect();
            }
            "--value-bytes" => {
                opts.value_bytes = parse(next_arg(args, &mut i, "--value-bytes"), "--value-bytes");
            }
            "--scan-lens" => {
                opts.scan_lens = next_arg(args, &mut i, "--scan-lens")
                    .split(',')
                    .map(|t| parse(t, "--scan-lens"))
                    .collect();
            }
            "--pin-batch" => {
                opts.pin_batch = parse_pin_batch(next_arg(args, &mut i, "--pin-batch"));
            }
            "--backoff" => {
                opts.backoff = parse_backoff(next_arg(args, &mut i, "--backoff"));
            }
            "--zipf-theta" => {
                let theta: f64 = parse(next_arg(args, &mut i, "--zipf-theta"), "--zipf-theta");
                if !theta.is_finite() || theta < 0.0 {
                    fail(&format!(
                        "--zipf-theta must be finite and non-negative (got {theta})"
                    ));
                }
                opts.zipf_theta = theta;
            }
            "--json" => {
                json_dir = Some(next_arg(args, &mut i, "--json").to_string());
            }
            "--bench-dir" => {
                bench_dir = next_arg(args, &mut i, "--bench-dir").to_string();
            }
            other => {
                eprintln!("unknown option {other}");
                usage();
            }
        }
        i += 1;
    }

    let ids: Vec<String> = if id == "all" {
        ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect()
    } else {
        vec![id]
    };

    for id in &ids {
        println!("=== {id} ===");
        if id == "faults" {
            // The fault harness renders verdicts, not throughput rows, so it
            // bypasses the generic RunResult plumbing.
            let reports = run_faults_experiment(&opts, |r| {
                println!(
                    "{:<10} {:<7} {:<16} warmup-end={:<8} peak={:<8} residual={:<6} {}",
                    r.ds, r.smr, r.fault, r.baseline, r.peak, r.residual, r.verdict
                )
            });
            println!("\n{}", faults_table(&reports));
            if let Some(dir) = &json_dir {
                std::fs::create_dir_all(dir).expect("cannot create output directory");
                let path = format!("{dir}/faults.json");
                let json = serde_json::to_string_pretty(&reports).unwrap();
                std::fs::write(&path, json).expect("cannot write results file");
                println!("wrote {path}");
            }
            match write_fault_artifact(&bench_dir, &reports) {
                Ok(path) => println!("wrote {path}"),
                Err(e) => {
                    eprintln!("cannot write fault artifact: {e}");
                    std::process::exit(1);
                }
            }
            println!();
            continue;
        }
        if id == "service" {
            // The service runner renders per-phase latency rows, not uniform
            // throughput rows, so it bypasses the RunResult plumbing too.
            let reports = run_service_experiment(&opts, |r| {
                println!(
                    "{:<10} {:<7} {:<14} ops/s={:<12.0} p50={}ns p99={}ns p999={}ns peak={}",
                    r.ds,
                    r.smr,
                    r.phase,
                    r.ops_per_sec,
                    r.p50_ns.unwrap_or(0),
                    r.p99_ns.unwrap_or(0),
                    r.p999_ns.unwrap_or(0),
                    r.peak_unreclaimed,
                )
            });
            println!("\n{}", service_table(&reports));
            if let Some(dir) = &json_dir {
                std::fs::create_dir_all(dir).expect("cannot create output directory");
                let path = format!("{dir}/service.json");
                let json = serde_json::to_string_pretty(&reports).unwrap();
                std::fs::write(&path, json).expect("cannot write results file");
                println!("wrote {path}");
            }
            match write_service_artifact(&bench_dir, &reports) {
                Ok(path) => println!("wrote {path}"),
                Err(e) => {
                    eprintln!("cannot write service artifact: {e}");
                    std::process::exit(1);
                }
            }
            println!();
            continue;
        }
        let Some(results) = run_experiment(id, &opts, |r| println!("{}", r.row())) else {
            eprintln!("unknown experiment id: {id}");
            usage();
        };
        match id.as_str() {
            "tab1" => println!("\n{}", compatibility_matrix(&results)),
            "tab2" => println!("\n{}", restart_table(&results)),
            "pool" => println!("\n{}", pool_table(&results)),
            "cache" => println!("\n{}", cache_table(&results, opts.value_bytes)),
            "skiplist" => println!("\n{}", skiplist_table(&results)),
            "scan" => println!("\n{}", scan_table(&results)),
            "cursor" => println!("\n{}", cursor_table(&results)),
            _ => {}
        }
        if let Some(dir) = &json_dir {
            write_json(dir, id, &results);
        }
        // Every `exp` run refreshes the normalized trajectory artifact, so
        // the committed BENCH_<preset>.json files stay regenerable and
        // diffable across sessions.
        match write_bench_artifact(&bench_dir, id, &results) {
            Ok(path) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("cannot write bench artifact for {id}: {e}");
                std::process::exit(1);
            }
        }
        println!();
    }
}

/// One comparable row extracted from a `BENCH_*.json` artifact.
#[derive(Debug, Clone, PartialEq)]
struct DiffRecord {
    ds: String,
    smr: String,
    threads: u64,
    ops_per_sec: f64,
    /// `p50` latency in nanoseconds where the preset records it (`null` in
    /// the throughput presets' artifacts, which parses to `None` here).  The
    /// gate keys on the *median* deliberately: p99/p999 on sub-second smoke
    /// phases ride on a handful of samples at the stall cliff and swing
    /// orders of magnitude between identical runs, while p50 is stable and
    /// still catches any systematic hot-path slowdown.
    p50_ns: Option<f64>,
    /// Latency samples behind the percentiles, where the artifact records
    /// them.  Rows with fewer than [`LATENCY_SAMPLE_FLOOR`] samples on
    /// either side are exempt from the latency gate.
    samples: Option<f64>,
}

/// Minimum samples on both sides for a row's median to be gated: below
/// this, run-to-run median drift is dominated by sampling noise rather
/// than code changes (the thin scan/insert classes of quick-mode service
/// runs record a dozen samples per phase).
const LATENCY_SAMPLE_FLOOR: f64 = 64.0;

/// Extracts the `records` rows of a `BENCH_*.json` artifact with a
/// line-oriented scanner.  The vendored `serde_json` is serialize-only, and
/// the artifacts are written by this binary with `to_string_pretty` (one
/// `"key": value` pair per line), so a full JSON parser is not needed.
fn parse_bench_records(body: &str) -> Vec<DiffRecord> {
    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let rest = line.trim().strip_prefix(&format!("\"{key}\":"))?;
        Some(rest.trim().trim_end_matches(','))
    }
    let mut records = Vec::new();
    let mut in_records = false;
    let (mut ds, mut smr, mut threads, mut ops) = (None::<String>, None::<String>, None, None);
    let (mut p50, mut samples) = (None, None);
    for line in body.lines() {
        if line.trim_start().starts_with("\"records\"") {
            in_records = true;
            continue;
        }
        if !in_records {
            continue;
        }
        if let Some(v) = field(line, "ds") {
            ds = Some(v.trim_matches('"').to_string());
        } else if let Some(v) = field(line, "smr") {
            smr = Some(v.trim_matches('"').to_string());
        } else if let Some(v) = field(line, "threads") {
            threads = v.parse::<u64>().ok();
        } else if let Some(v) = field(line, "ops_per_sec") {
            ops = v.parse::<f64>().ok();
        } else if let Some(v) = field(line, "p50_ns") {
            // `null` (the throughput presets) fails the parse and stays None.
            p50 = v.parse::<f64>().ok();
        } else if let Some(v) = field(line, "samples") {
            samples = v.parse::<f64>().ok();
        } else if line.trim() == "}" || line.trim() == "}," {
            // End of one record object: emit it if complete.
            if let (Some(d), Some(s), Some(t), Some(o)) = (&ds, &smr, threads, ops) {
                records.push(DiffRecord {
                    ds: d.clone(),
                    smr: s.clone(),
                    threads: t,
                    ops_per_sec: o,
                    p50_ns: p50,
                    samples,
                });
            }
            (ds, smr, threads, ops) = (None, None, None, None);
            (p50, samples) = (None, None);
        }
    }
    records
}

/// `bench-diff <baseline.json> <fresh.json> [--max-regress PCT]
/// [--max-latency-regress PCT]`: compares two trajectory artifacts point by
/// point and exits non-zero if any point's throughput regressed — or, where
/// the artifact records `p50_ns`, its median latency *increased* — by more
/// than the respective threshold.  Latency gets its own, much looser default
/// (tail nanoseconds on a shared CI box are far noisier than throughput).
/// The CI regression gate runs this against the committed artifacts.
fn cmd_bench_diff(args: &[String]) {
    if args.len() < 2 {
        usage();
    }
    let mut max_regress = 25.0f64;
    let mut max_latency_regress = 150.0f64;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--max-regress" => {
                max_regress = parse(next_arg(args, &mut i, "--max-regress"), "--max-regress");
            }
            "--max-latency-regress" => {
                max_latency_regress = parse(
                    next_arg(args, &mut i, "--max-latency-regress"),
                    "--max-latency-regress",
                );
            }
            other => {
                eprintln!("unknown option {other}");
                usage();
            }
        }
        i += 1;
    }
    let read = |path: &str| -> Vec<DiffRecord> {
        let body = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        let records = parse_bench_records(&body);
        if records.is_empty() {
            fail(&format!("{path} contains no comparable records"));
        }
        records
    };
    let baseline = read(&args[0]);
    let fresh = read(&args[1]);
    println!(
        "{:<12}{:<10}{:>8}{:>16}{:>16}{:>10}",
        "structure", "scheme", "threads", "baseline ops/s", "fresh ops/s", "change"
    );
    let mut regressions = 0usize;
    let mut compared = 0usize;
    // Rows present on only one side are a gate failure, not a skip: a fresh
    // row with no baseline means the committed artifact is stale, and a
    // baseline row with no fresh counterpart means coverage silently shrank.
    let mut unmatched = 0usize;
    // Occurrence-indexed matching: presets that sweep an extra dimension
    // (e.g. scan lengths) emit several rows per (ds, smr, threads) key, in a
    // stable order.
    let mut seen: std::collections::HashMap<(String, String, u64), usize> =
        std::collections::HashMap::new();
    for f in &fresh {
        let key = (f.ds.clone(), f.smr.clone(), f.threads);
        let occurrence = seen.entry(key).or_insert(0);
        let base = baseline
            .iter()
            .filter(|b| b.ds == f.ds && b.smr == f.smr && b.threads == f.threads)
            .nth(*occurrence);
        *occurrence += 1;
        let Some(base) = base else {
            unmatched += 1;
            println!(
                "{:<12}{:<10}{:>8}{:>16}{:>16.0}{:>10}  << NOT IN BASELINE",
                f.ds, f.smr, f.threads, "(new)", f.ops_per_sec, "-"
            );
            continue;
        };
        compared += 1;
        let change = if base.ops_per_sec > 0.0 {
            100.0 * (f.ops_per_sec - base.ops_per_sec) / base.ops_per_sec
        } else {
            0.0
        };
        let mut flag = if change < -max_regress {
            regressions += 1;
            "  << REGRESSION"
        } else {
            ""
        };
        // Latency gate: only where both sides recorded p50 (a latency
        // regression is an *increase*, hence the sign flip).  A row whose
        // sample count is recorded and below the floor on either side is
        // shown but not gated — its median is sampling noise.
        let thin = |s: Option<f64>| s.is_some_and(|v| v < LATENCY_SAMPLE_FLOOR);
        let mut lat_col = String::new();
        if let (Some(b), Some(fr)) = (base.p50_ns, f.p50_ns) {
            if b > 0.0 {
                let lat_change = 100.0 * (fr - b) / b;
                if thin(base.samples) || thin(f.samples) {
                    lat_col = format!("  p50 {lat_change:+.1}% (thin)");
                } else {
                    lat_col = format!("  p50 {lat_change:+.1}%");
                    if lat_change > max_latency_regress {
                        regressions += 1;
                        flag = "  << LATENCY REGRESSION";
                    }
                }
            }
        }
        println!(
            "{:<12}{:<10}{:>8}{:>16.0}{:>16.0}{:>+9.1}%{}{}",
            f.ds, f.smr, f.threads, base.ops_per_sec, f.ops_per_sec, change, lat_col, flag
        );
    }
    // The reverse direction: baseline rows the fresh artifact never matched.
    let mut base_seen: std::collections::HashMap<(String, String, u64), usize> =
        std::collections::HashMap::new();
    for b in &baseline {
        let key = (b.ds.clone(), b.smr.clone(), b.threads);
        let occurrence = base_seen.entry(key.clone()).or_insert(0);
        if *occurrence >= seen.get(&key).copied().unwrap_or(0) {
            unmatched += 1;
            println!(
                "{:<12}{:<10}{:>8}{:>16.0}{:>16}{:>10}  << MISSING FROM FRESH",
                b.ds, b.smr, b.threads, b.ops_per_sec, "(gone)", "-"
            );
        }
        *occurrence += 1;
    }
    println!(
        "{compared} points compared, {regressions} regressed beyond {max_regress}%, \
         {unmatched} present on only one side \
         (latency threshold {max_latency_regress}% where p50 is recorded)"
    );
    if regressions > 0 || unmatched > 0 {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("exp") => cmd_exp(&args[1..]),
        Some("bench-diff") => cmd_bench_diff(&args[1..]),
        Some("list") => {
            let opts = ExperimentOptions::quick();
            for id in ALL_EXPERIMENTS {
                let s = scot_harness::experiments::spec(id, &opts).unwrap();
                println!("{:<8} {}", id, s.description);
            }
        }
        _ => usage(),
    }
}
