//! `scot-bench` — the command-line benchmark driver, mirroring the paper
//! artifact's `./bench` binary and its experiment scripts.
//!
//! Usage:
//!
//! ```text
//! scot-bench run <ds> <seconds> <key_range> <threads> <read%> <ins%> <del%> <SMR> [scan% [scan_len]]
//! scot-bench exp <experiment-id | all> [--quick] [--seconds N] [--runs N] [--json DIR] [--bench-dir DIR]
//! scot-bench list
//! ```
//!
//! Examples (the first mirrors the paper's `./bench listlf 2 512 1 50 25 25 EBR 4`;
//! the third adds 20% range scans of 64 keys each to the mix):
//!
//! ```text
//! scot-bench run listlf 2 512 4 50 25 25 EBR
//! scot-bench exp fig8a --quick
//! scot-bench run skiplist 2 8192 4 40 20 20 HP 20 64
//! scot-bench exp scan --quick
//! scot-bench exp all --seconds 2 --json results/
//! ```

use scot_harness::experiments::{
    cache_table, compatibility_matrix, pool_table, restart_table, run_experiment, scan_table,
    skiplist_table, write_bench_artifact, ExperimentOptions, ALL_EXPERIMENTS,
};
use scot_harness::{run_timed, DsKind, Mix, RunConfig, RunResult, SmrKind};
use std::time::Duration;

fn usage() -> ! {
    // The scheme list is rendered from `SmrKind::ALL` so a newly added scheme
    // shows up here without touching the CLI.
    let schemes: Vec<&str> = SmrKind::ALL.iter().map(|s| s.name()).collect();
    eprintln!(
        "usage:\n  scot-bench run <ds> <seconds> <key_range> <threads> <read%> <ins%> <del%> <SMR> [scan% [scan_len]]\n  scot-bench exp <id|all> [--quick] [--seconds N] [--runs N] [--threads A,B,..] [--value-bytes N] [--scan-lens A,B,..] [--json DIR] [--bench-dir DIR]\n  scot-bench list\n\ndata structures: listlf listwf hmlist tree hashmap skiplist\nSMR schemes:     {}\nexperiments:     {}",
        schemes.join(" "),
        ALL_EXPERIMENTS.join(" ")
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("cannot parse {what}: {s}");
        std::process::exit(2);
    })
}

fn cmd_run(args: &[String]) {
    if !(8..=10).contains(&args.len()) {
        usage();
    }
    let ds = DsKind::parse(&args[0]).unwrap_or_else(|| usage());
    let seconds: f64 = parse(&args[1], "seconds");
    let key_range: u64 = parse(&args[2], "key range");
    let threads: usize = parse(&args[3], "threads");
    let read: u32 = parse(&args[4], "read%");
    let ins: u32 = parse(&args[5], "insert%");
    let del: u32 = parse(&args[6], "delete%");
    let smr = SmrKind::parse(&args[7]).unwrap_or_else(|| usage());
    let scan: u32 = args.get(8).map_or(0, |a| parse(a, "scan%"));
    let scan_len: u64 = args.get(9).map_or(64, |a| parse(a, "scan_len"));
    if u64::from(read) + u64::from(ins) + u64::from(del) + u64::from(scan) != 100 {
        eprintln!("operation mix must sum to 100% (got {read}+{ins}+{del}+{scan})");
        std::process::exit(2);
    }
    let cfg = RunConfig {
        threads,
        key_range,
        mix: Mix {
            read_pct: read,
            insert_pct: ins,
            delete_pct: del,
            scan_pct: scan,
        },
        duration: Duration::from_secs_f64(seconds),
        sample_interval: Duration::from_millis(10),
        seed: 0x5c07,
        pool: true,
        value_bytes: 0,
        scan_len,
    };
    let result = run_timed(ds, smr, &cfg);
    println!("{}", result.row());
    println!("{}", serde_json::to_string_pretty(&result).unwrap());
}

fn write_json(dir: &str, id: &str, results: &[RunResult]) {
    std::fs::create_dir_all(dir).expect("cannot create output directory");
    let path = format!("{dir}/{id}.json");
    let json = serde_json::to_string_pretty(results).unwrap();
    std::fs::write(&path, json).expect("cannot write results file");
    println!("wrote {path}");
}

fn cmd_exp(args: &[String]) {
    if args.is_empty() {
        usage();
    }
    let id = args[0].to_ascii_lowercase();
    let mut opts = ExperimentOptions::default();
    let mut json_dir: Option<String> = None;
    let mut bench_dir = String::from(".");
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                opts = ExperimentOptions::quick();
            }
            "--seconds" => {
                i += 1;
                let secs: f64 = parse(&args[i], "--seconds");
                opts.duration = Duration::from_secs_f64(secs);
            }
            "--runs" => {
                i += 1;
                opts.runs = parse(&args[i], "--runs");
            }
            "--threads" => {
                i += 1;
                opts.threads = args[i].split(',').map(|t| parse(t, "--threads")).collect();
            }
            "--value-bytes" => {
                i += 1;
                opts.value_bytes = parse(&args[i], "--value-bytes");
            }
            "--scan-lens" => {
                i += 1;
                opts.scan_lens = args[i]
                    .split(',')
                    .map(|t| parse(t, "--scan-lens"))
                    .collect();
            }
            "--json" => {
                i += 1;
                json_dir = Some(args[i].clone());
            }
            "--bench-dir" => {
                i += 1;
                bench_dir = args[i].clone();
            }
            other => {
                eprintln!("unknown option {other}");
                usage();
            }
        }
        i += 1;
    }

    let ids: Vec<String> = if id == "all" {
        ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect()
    } else {
        vec![id]
    };

    for id in &ids {
        println!("=== {id} ===");
        let Some(results) = run_experiment(id, &opts, |r| println!("{}", r.row())) else {
            eprintln!("unknown experiment id: {id}");
            usage();
        };
        match id.as_str() {
            "tab1" => println!("\n{}", compatibility_matrix(&results)),
            "tab2" => println!("\n{}", restart_table(&results)),
            "pool" => println!("\n{}", pool_table(&results)),
            "cache" => println!("\n{}", cache_table(&results, opts.value_bytes)),
            "skiplist" => println!("\n{}", skiplist_table(&results)),
            "scan" => println!("\n{}", scan_table(&results)),
            _ => {}
        }
        if let Some(dir) = &json_dir {
            write_json(dir, id, &results);
        }
        // Every `exp` run refreshes the normalized trajectory artifact, so
        // the committed BENCH_<preset>.json files stay regenerable and
        // diffable across sessions.
        match write_bench_artifact(&bench_dir, id, &results) {
            Ok(path) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("cannot write bench artifact for {id}: {e}");
                std::process::exit(1);
            }
        }
        println!();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("exp") => cmd_exp(&args[1..]),
        Some("list") => {
            let opts = ExperimentOptions::quick();
            for id in ALL_EXPERIMENTS {
                let s = scot_harness::experiments::spec(id, &opts).unwrap();
                println!("{:<8} {}", id, s.description);
            }
        }
        _ => usage(),
    }
}
