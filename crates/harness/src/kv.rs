//! Key-value (map) workload runner: the value-bearing counterpart of the
//! membership workloads in [`crate::workload`].
//!
//! The paper's benchmark only measures membership (`contains`), but the whole
//! point of the guard-scoped `ConcurrentMap` API is that a `get` can hand back
//! a borrow of the stored value under SMR protection.  This module drives
//! exactly that path: worker threads pin a guard per operation, `get` values
//! and *read their bytes* (so a use-after-free or torn read would be observed,
//! not optimized away), `insert` freshly built payloads, and `remove` entries.
//! The `exp cache` experiment sweeps this read-dominated workload over every
//! scheme variant in [`SmrKind::ALL`].
//!
//! Payload integrity doubles as a safety check: every payload is derived from
//! its key, and the hot loop panics if a value read under a guard ever
//! disagrees with its key — under a correct SMR scheme that must be
//! impossible, no matter how aggressively nodes are recycled.

use crate::workload::{
    hash_buckets, smr_config, summarize_samples, DsKind, FastRng, RunConfig, RunResult, TimedOutput,
};
use scot::{
    ConcurrentMap, HarrisList, HarrisMichaelList, HashMap, NmTree, RangeScan, SkipList,
    TraversalSnapshot, WfHarrisList,
};
use scot_smr::{Ebr, He, Hp, Hyaline, Ibr, Nbr, Nr, Smr, SmrKind, Vbr};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The value stored by the key-value workloads: a key-derived stamp followed
/// by `value_bytes` of padding whose every byte is also derived from the key.
///
/// The redundancy is deliberate: a reader holding `&Payload` can cheaply
/// verify that the borrow still belongs to the key it looked up, which turns
/// every `get` of the benchmark into a use-after-free / torn-read detector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Payload {
    stamp: u64,
    pad: Box<[u8]>,
}

impl Payload {
    /// Builds the payload for `key` with `bytes` bytes of padding.
    pub fn new(key: u64, bytes: usize) -> Self {
        Self {
            stamp: key,
            pad: vec![Self::pad_byte(key); bytes].into_boxed_slice(),
        }
    }

    #[inline]
    fn pad_byte(key: u64) -> u8 {
        (key as u8) ^ 0x5c
    }

    /// The key this payload was built for.
    #[inline]
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Number of padding bytes.
    #[inline]
    pub fn pad_len(&self) -> usize {
        self.pad.len()
    }

    /// Cheap integrity check used in the measurement hot loop: the stamp plus
    /// one padding byte (two loads — cheap enough to keep in the timed path).
    #[inline]
    pub fn quick_check(&self, key: u64) -> bool {
        self.stamp == key && self.pad.last().is_none_or(|&b| b == Self::pad_byte(key))
    }

    /// Full integrity check (every byte); used by the tests.
    pub fn verify(&self, key: u64) -> bool {
        self.stamp == key && self.pad.iter().all(|&b| b == Self::pad_byte(key))
    }
}

/// Internal: everything the kv runner needs from a concrete map.
struct KvTarget<C> {
    map: Arc<C>,
    unreclaimed: Arc<dyn Fn() -> usize + Send + Sync>,
    stats: Arc<dyn Fn() -> TraversalSnapshot + Send + Sync>,
    track_memory: bool,
    ordered: bool,
}

/// Boxed timed-run entry point of a monomorphized kv target.
type KvTimedRunner = Box<dyn FnOnce(&RunConfig) -> TimedOutput + Send>;

/// Type-erased kv target (same trampoline shape as the set runner).
struct KvTargetAny {
    run_timed: KvTimedRunner,
}

impl<C> From<KvTarget<C>> for KvTargetAny
where
    C: ConcurrentMap<u64, Payload>,
{
    fn from(target: KvTarget<C>) -> Self {
        KvTargetAny {
            run_timed: Box::new(move |cfg| kv_timed_inner(&target, cfg)),
        }
    }
}

/// Wraps a freshly built map and its domain into the type-erased target.
fn make_target<C, D>(map: C, domain: Arc<D>, track_memory: bool, ordered: bool) -> KvTargetAny
where
    C: ConcurrentMap<u64, Payload>,
    D: Smr,
{
    let map = Arc::new(map);
    let m = map.clone();
    KvTargetAny::from(KvTarget {
        map,
        unreclaimed: Arc::new(move || domain.unreclaimed()),
        stats: Arc::new(move || m.traversal_stats()),
        track_memory,
        ordered,
    })
}

/// Builds the requested structure/scheme pair with `Payload` values and hands
/// it to `f` — the kv counterpart of the set runner's dispatch point.
fn with_kv_target<R>(
    ds: DsKind,
    smr: SmrKind,
    threads: usize,
    key_range: u64,
    pool: bool,
    f: impl FnOnce(KvTargetAny) -> R,
) -> R {
    macro_rules! build_for_scheme {
        ($scheme:ty) => {{
            let cfg = smr_config(smr, threads, pool);
            let domain = <$scheme as Smr>::new(cfg.clone());
            let track_memory = smr != SmrKind::Hyaline;
            let ordered = ds.is_ordered();
            let target = match ds {
                DsKind::ListLf => make_target(
                    HarrisList::<u64, $scheme, Payload>::new(domain.clone()),
                    domain,
                    track_memory,
                    ordered,
                ),
                DsKind::ListWf => make_target(
                    WfHarrisList::<u64, $scheme, Payload>::new(domain.clone(), cfg.max_threads),
                    domain,
                    track_memory,
                    ordered,
                ),
                DsKind::HmList => make_target(
                    HarrisMichaelList::<u64, $scheme, Payload>::new(domain.clone()),
                    domain,
                    track_memory,
                    ordered,
                ),
                DsKind::Tree => make_target(
                    NmTree::<u64, $scheme, Payload>::new(domain.clone()),
                    domain,
                    track_memory,
                    ordered,
                ),
                DsKind::HashMap => make_target(
                    HashMap::<u64, $scheme, Payload>::new(hash_buckets(key_range), domain.clone()),
                    domain,
                    track_memory,
                    ordered,
                ),
                DsKind::SkipList => make_target(
                    SkipList::<u64, $scheme, Payload>::new(domain.clone()),
                    domain,
                    track_memory,
                    ordered,
                ),
            };
            f(target)
        }};
    }

    match smr {
        SmrKind::Nr => build_for_scheme!(Nr),
        SmrKind::Ebr => build_for_scheme!(Ebr),
        SmrKind::Hp | SmrKind::HpOpt => build_for_scheme!(Hp),
        SmrKind::He | SmrKind::HeOpt => build_for_scheme!(He),
        SmrKind::Ibr | SmrKind::IbrOpt => build_for_scheme!(Ibr),
        SmrKind::Hyaline => build_for_scheme!(Hyaline),
        SmrKind::Nbr => build_for_scheme!(Nbr),
        SmrKind::Vbr => build_for_scheme!(Vbr),
    }
}

/// Prefills the map with unique keys covering 50% of the key range, mirroring
/// the set runner's prefill (values are key-derived payloads).
fn kv_prefill<C: ConcurrentMap<u64, Payload>>(
    map: &C,
    key_range: u64,
    seed: u64,
    threads: usize,
    value_bytes: usize,
) {
    let target = (key_range / 2).max(1);
    if key_range <= 1024 {
        let mut handle = map.handle();
        let mut inserted = 0u64;
        let mut k = 0;
        while inserted < target {
            let mut g = map.pin(&mut handle);
            if map.insert(&mut g, k, Payload::new(k, value_bytes)).is_ok() {
                inserted += 1;
            }
            k = (k + 2) % key_range.max(1);
            if k == 0 {
                k = 1;
            }
        }
        return;
    }
    let threads = threads.max(1) as u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let share = target / threads + if t == 0 { target % threads } else { 0 };
            s.spawn(move || {
                let mut handle = map.handle();
                let mut rng = FastRng::new(seed ^ (t + 1).wrapping_mul(0x9e3779b97f4a7c15));
                let mut inserted = 0u64;
                while inserted < share {
                    let k = rng.below(key_range);
                    let mut g = map.pin(&mut handle);
                    if map.insert(&mut g, k, Payload::new(k, value_bytes)).is_ok() {
                        inserted += 1;
                    }
                }
            });
        }
    });
}

/// The kv measurement hot loop: one guard held for the whole loop and
/// refreshed in place every `pin_batch` operations, `get` reads the value
/// bytes (with the integrity check described in the module docs), `insert`
/// builds a fresh payload, `remove` evicts.
fn kv_op_loop<C: ConcurrentMap<u64, Payload>>(
    map: &C,
    cfg: &RunConfig,
    stop: &AtomicBool,
    thread_idx: usize,
    ordered: bool,
) -> (u64, u64) {
    let mut handle = map.handle();
    let mut rng = FastRng::new(cfg.seed ^ (thread_idx as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15));
    let mut ops = 0u64;
    let mut scanned = 0u64;
    // Accumulated so the value reads cannot be optimized away.
    let mut sink = 0u64;
    let pin_batch = cfg.pin_batch.max(1);
    let mut g = map.pin(&mut handle);
    let mut in_batch = 0u64;
    loop {
        if ops.is_multiple_of(64) && stop.load(Ordering::Relaxed) {
            break;
        }
        if in_batch >= pin_batch {
            map.repin(&mut g);
            in_batch = 0;
        }
        let r = rng.next_u64();
        let key = r % cfg.key_range.max(1);
        let op = ((r >> 48) % 100) as u32;
        if op < cfg.mix.read_pct {
            if let Some(v) = map.get(&mut g, &key) {
                assert!(
                    v.quick_check(key),
                    "get({key}) returned a corrupted value under the guard: \
                     stamp={} — this is a reclamation bug",
                    v.stamp()
                );
                sink = sink.wrapping_add(v.stamp());
            }
        } else if op < cfg.mix.read_pct + cfg.mix.insert_pct {
            let _ = map.insert(&mut g, key, Payload::new(key, cfg.value_bytes));
        } else if op < cfg.mix.read_pct + cfg.mix.insert_pct + cfg.mix.delete_pct {
            if let Some(v) = map.remove(&mut g, &key) {
                // The evicted value is still readable under the guard.
                sink = sink.wrapping_add(v.stamp());
            }
        } else {
            // Range scan: every yielded value is read and integrity-checked
            // under the guard, so a scan that ever hands out a reclaimed or
            // torn payload is caught on the spot.
            let lo = key;
            let hi = lo.saturating_add(cfg.scan_len.max(1));
            let mut scan = map.scan(&mut g, lo, Some(hi));
            let mut prev: Option<u64> = None;
            // Unordered (hash-map) scans: uniqueness is dedup-checked after
            // the scan, since ascending order cannot prove it there.
            let mut seen: Vec<u64> = Vec::new();
            while let Some((k, v)) = scan.next_entry() {
                assert!(
                    (lo..hi).contains(&k),
                    "kv scan [{lo}, {hi}) yielded out-of-window key {k}"
                );
                if ordered {
                    assert!(
                        prev.is_none_or(|p| p < k),
                        "kv scan [{lo}, {hi}) yielded {k} after {prev:?}"
                    );
                } else {
                    seen.push(k);
                }
                assert!(
                    v.quick_check(k),
                    "scan yielded a corrupted value for key {k}: stamp={} — \
                     this is a reclamation bug",
                    v.stamp()
                );
                prev = Some(k);
                sink = sink.wrapping_add(v.stamp());
                scanned += 1;
            }
            if !ordered {
                seen.sort_unstable();
                let len = seen.len();
                seen.dedup();
                assert_eq!(seen.len(), len, "kv scan [{lo}, {hi}) yielded duplicates");
            }
        }
        ops += 1;
        in_batch += 1;
    }
    drop(g);
    std::hint::black_box(sink);
    (ops, scanned)
}

fn kv_timed_inner<C: ConcurrentMap<u64, Payload>>(
    target: &KvTarget<C>,
    cfg: &RunConfig,
) -> TimedOutput {
    cfg.apply_tuning();
    kv_prefill(
        target.map.as_ref(),
        cfg.key_range,
        cfg.seed,
        cfg.threads,
        cfg.value_bytes,
    );
    let stop = Arc::new(AtomicBool::new(false));
    let total_ops = Arc::new(AtomicU64::new(0));
    let total_scanned = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut samples = Vec::new();
    std::thread::scope(|s| {
        for t in 0..cfg.threads {
            let map = target.map.clone();
            let stop = stop.clone();
            let total_ops = total_ops.clone();
            let total_scanned = total_scanned.clone();
            let ordered = target.ordered;
            let cfg = cfg.clone();
            s.spawn(move || {
                let (ops, scanned) = kv_op_loop(map.as_ref(), &cfg, &stop, t, ordered);
                total_ops.fetch_add(ops, Ordering::Relaxed);
                total_scanned.fetch_add(scanned, Ordering::Relaxed);
            });
        }
        // The main thread doubles as the memory-overhead sampler.
        let deadline = start + cfg.duration;
        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            if target.track_memory {
                samples.push((target.unreclaimed)());
            }
            std::thread::sleep(cfg.sample_interval.min(deadline - now));
        }
        stop.store(true, Ordering::SeqCst);
    });
    let elapsed = start.elapsed().as_secs_f64();
    (
        total_ops.load(Ordering::Relaxed),
        elapsed,
        samples,
        (target.stats)(),
        total_scanned.load(Ordering::Relaxed),
    )
}

/// Runs a timed **key-value** workload (the `exp cache` measurement mode):
/// like [`crate::run_timed`], but over `ConcurrentMap<u64, Payload>` with a
/// value-reading `get` in the mix and `cfg.value_bytes` of padding per value.
pub fn run_timed_kv(ds: DsKind, smr: SmrKind, cfg: &RunConfig) -> RunResult {
    cfg.mix.validate();
    let (ops, elapsed, samples, stats, scanned_keys) =
        with_kv_target(ds, smr, cfg.threads, cfg.key_range, cfg.pool, |t| {
            (t.run_timed)(cfg)
        });
    let (avg, max) = summarize_samples(&samples);
    RunResult {
        ds: ds.name().to_string(),
        smr: smr.name().to_string(),
        threads: cfg.threads,
        key_range: cfg.key_range,
        ops,
        ops_per_sec: ops as f64 / elapsed,
        avg_unreclaimed: avg,
        max_unreclaimed: max,
        restarts: stats.restarts,
        recoveries: stats.recoveries,
        spins: stats.spins,
        scan_len: if cfg.mix.scan_pct > 0 {
            cfg.scan_len
        } else {
            0
        },
        scanned_keys,
        elapsed_secs: elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Mix;
    use std::time::Duration;

    #[test]
    fn payload_integrity_roundtrip() {
        let p = Payload::new(42, 64);
        assert_eq!(p.stamp(), 42);
        assert_eq!(p.pad_len(), 64);
        assert!(p.verify(42));
        assert!(p.quick_check(42));
        assert!(!p.verify(43));
        assert!(!p.quick_check(43));
        // Zero padding is valid (the knob's lower bound).
        let empty = Payload::new(7, 0);
        assert!(empty.verify(7));
        assert!(empty.quick_check(7));
    }

    #[test]
    fn quick_kv_run_produces_sane_numbers() {
        let mut cfg = RunConfig::paper_default(2, 256).quick();
        cfg.mix = Mix::READ_90;
        cfg.value_bytes = 32;
        let r = run_timed_kv(DsKind::HashMap, SmrKind::Hp, &cfg);
        assert!(r.ops > 0, "no kv operations completed");
        assert!(r.ops_per_sec > 0.0);
        assert!(
            r.avg_unreclaimed.is_some(),
            "HP must report memory overhead"
        );
        assert_eq!(r.ds, "HashMap");
        assert_eq!(r.smr, "HP");
    }

    #[test]
    fn every_ds_runs_the_kv_workload_under_a_robust_scheme() {
        let cfg = RunConfig {
            duration: Duration::from_millis(40),
            value_bytes: 16,
            ..RunConfig::paper_default(2, 64)
        };
        for ds in DsKind::ALL {
            let r = run_timed_kv(ds, SmrKind::Ibr, &cfg);
            assert!(r.ops > 0, "{ds} completed no kv operations under IBR");
        }
    }
}
