//! Fault-injection harness: measures reclamation robustness under stalled,
//! panicking, and dying threads.
//!
//! The paper's benchmark assumes well-behaved workers: every thread pins,
//! operates, unpins, and eventually unregisters.  Real systems are not that
//! polite — threads stall inside read-side critical sections, panic halfway
//! through an operation, or die without unregistering.  A reclamation scheme
//! is *robust* if a stalled or dead reader cannot cause unbounded memory
//! growth ([`SmrKind::is_robust`]); the fault harness turns that claim into a
//! measured verdict instead of a table footnote.
//!
//! Each scenario runs in four phases driven by a shared phase word:
//!
//! 1. **warmup** — only the regular workers run; the unreclaimed count at the
//!    end of the phase is the scheme's steady-state `baseline`.
//! 2. **fault** — `victims` fault actors misbehave according to the
//!    [`FaultKind`] while the workers keep hammering the structure.  The main
//!    thread samples the domain's unreclaimed count throughout (including for
//!    Hyaline, which the timed runner skips): the `peak` of those samples is
//!    the scheme's footprint under the fault.
//! 3. **recovery** — the actors stop misbehaving (stalled guards drop, dead
//!    threads are gone) and the workers run on, which lets schemes with
//!    amortized reclamation work off their backlog.
//! 4. **drain** — after every thread has joined, a fresh handle repeatedly
//!    [`ConcurrentMap::flush`]es the domain (adopting any slots orphaned by
//!    dead threads) until the unreclaimed count reaches zero or the drain
//!    timeout expires.  The drain *reports* a timeout rather than hanging.
//!
//! The verdict compares `peak` against a generous linear bound (a small
//! multiple of the steady-state baseline plus a per-thread allowance): robust
//! schemes must stay under it through every fault class, non-robust schemes
//! are expected to exceed it under reader stalls — and the table shows by how
//! much, instead of crashing or wedging the process.
//!
//! One measurement blind spot is deliberate: a [`FaultKind::ThreadDeath`]
//! victim leaks its handle, and with it the handle's per-thread block-pool
//! cache.  Pooled blocks are *recycled capacity*, not live garbage — they
//! left the `unreclaimed` count the moment they were reclaimed into the pool
//! — so a drain can legitimately report zero while up to
//! `victims × pool_blocks` cached blocks went out with the dead handles.
//! Rather than silently fold that into the verdict, each report carries the
//! worst case explicitly as [`FaultReport::pool_leak_bound`].

use crate::phases::{
    do_op, drive_phases, silence_injected_panics, stall_actor, wait_for_phase, PhaseEvent,
};
use crate::workload::{
    op_loop, prefill, smr_config, with_target, DsKind, FastRng, RunConfig, Target,
};
use scot::{ConcurrentMap, ConcurrentSet, RangeScan};
use scot_smr::SmrKind;
use serde::Serialize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Phase word value: fault-free warmup (baseline measurement at its end).
pub const PHASE_WARMUP: u8 = 0;
/// Phase word value: fault actors are misbehaving.
pub const PHASE_FAULT: u8 = 1;
/// Phase word value: actors recovered, workers running off the backlog.
pub const PHASE_RECOVERY: u8 = 2;
/// Phase word value: everyone exits.
pub const PHASE_STOP: u8 = 3;

/// Phase names, indexed by the phase word — the single source of truth for
/// the verdict table, the CLI progress lines, and the docs (the warmup phase
/// *ends* with the `baseline` measurement, hence `warmup-end` in table
/// headers).
pub const FAULT_PHASE_NAMES: [&str; 3] = ["warmup", "fault", "recovery"];

/// The fault classes the harness can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A reader pins a guard, performs one lookup, and then stalls with the
    /// guard held for the whole fault phase — the canonical robustness
    /// killer for epoch-style schemes.
    ReaderStall,
    /// A thread retires some nodes and then exits without releasing its
    /// handle (the handle is leaked), orphaning its registry slot and its
    /// retire list.  Recovery depends on orphan adoption.  The leaked
    /// handle also strands its block-pool cache — bounded, and reported
    /// separately as [`FaultReport::pool_leak_bound`].
    ThreadDeath,
    /// A thread repeatedly panics in the middle of operations (rotating
    /// through get/insert/remove/scan) with a guard live; the unwind must
    /// tear down the guard and handle without wedging the domain.
    PanicDuringOp,
    /// A thread creates and drops short-lived handles at a high rate, each
    /// performing a burst of writes — stresses slot churn and handle-drop
    /// flushing.
    ChurnSpike,
    /// Extra oversubscribed threads (4× `victims`) run ops with a yield
    /// after every operation, forcing constant preemption.
    PreemptionStorm,
}

impl FaultKind {
    /// All five fault classes, in the order the verdict table prints them.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::ReaderStall,
        FaultKind::ThreadDeath,
        FaultKind::PanicDuringOp,
        FaultKind::ChurnSpike,
        FaultKind::PreemptionStorm,
    ];

    /// Parses a fault name (the CLI's `--faults` values), case-insensitively.
    /// Every [`FaultKind::name`] round-trips.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "stall" | "reader-stall" | "readerstall" => Some(FaultKind::ReaderStall),
            "death" | "thread-death" | "die" => Some(FaultKind::ThreadDeath),
            "panic" | "panic-during-op" => Some(FaultKind::PanicDuringOp),
            "churn" | "churn-spike" => Some(FaultKind::ChurnSpike),
            "storm" | "preemption-storm" | "oversubscribe" => Some(FaultKind::PreemptionStorm),
            _ => None,
        }
    }

    /// Display name used in tables and JSON artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::ReaderStall => "reader-stall",
            FaultKind::ThreadDeath => "thread-death",
            FaultKind::PanicDuringOp => "panic",
            FaultKind::ChurnSpike => "churn-spike",
            FaultKind::PreemptionStorm => "preemption-storm",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One fault scenario: which fault to inject, the phase schedule, and how
/// many misbehaving actors to run alongside the regular workers.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The fault class to inject.
    pub kind: FaultKind,
    /// Length of the fault-free warmup phase (ends with the `baseline`
    /// unreclaimed measurement).
    pub warmup: Duration,
    /// Length of the fault phase (actors misbehave).
    pub fault: Duration,
    /// Length of the recovery phase (actors behave again, workers run on).
    pub recovery: Duration,
    /// Number of fault actors ([`FaultKind::PreemptionStorm`] spawns 4× this
    /// many).
    pub victims: usize,
    /// Upper bound on the post-join drain loop; zero skips the drain (used
    /// for NR, which never reclaims and would just burn the whole timeout).
    pub drain_timeout: Duration,
}

impl FaultPlan {
    /// Default schedule for a fault class: 150 ms warmup, 300 ms fault,
    /// 150 ms recovery, two victims, a 2 s drain allowance.
    pub fn new(kind: FaultKind) -> Self {
        Self {
            kind,
            warmup: Duration::from_millis(150),
            fault: Duration::from_millis(300),
            recovery: Duration::from_millis(150),
            victims: 2,
            drain_timeout: Duration::from_secs(2),
        }
    }

    /// Shrunk schedule for `--quick` sweeps and tests.
    pub fn quick(kind: FaultKind) -> Self {
        Self {
            warmup: Duration::from_millis(40),
            fault: Duration::from_millis(120),
            recovery: Duration::from_millis(60),
            ..Self::new(kind)
        }
    }

    /// Number of threads the fault actors occupy (slots they may claim
    /// concurrently).
    pub fn actor_threads(&self) -> usize {
        match self.kind {
            FaultKind::PreemptionStorm => self.victims * 4,
            _ => self.victims,
        }
    }
}

/// Raw output of one phased fault run (one structure × scheme × fault cell).
#[derive(Debug, Clone)]
pub struct FaultOutput {
    /// Unreclaimed count at the end of warmup (steady state).
    pub baseline: usize,
    /// Peak sampled unreclaimed count from the fault phase onwards.
    pub peak: usize,
    /// Unreclaimed count when the fault phase ended.
    pub end_of_fault: usize,
    /// Unreclaimed count after the post-join drain loop.
    pub residual: usize,
    /// Whether the drain reached zero within the timeout.
    pub drained: bool,
    /// Total worker operations completed.
    pub ops: u64,
    /// Wall-clock seconds for the phased run (drain excluded).
    pub elapsed_secs: f64,
    /// `(phase, unreclaimed)` series sampled every
    /// [`RunConfig::sample_interval`] — the memory-footprint-over-time trace.
    pub samples: Vec<(u8, usize)>,
}

/// [`FaultKind::ThreadDeath`]: retire some garbage, then exit without
/// releasing the handle.  The slot stays claimed until the thread's exit
/// beacon fires, at which point survivors adopt it.
fn death_actor<C: ConcurrentMap<u64, ()>>(set: &C, phase: &AtomicU8, key_range: u64, seed: u64) {
    let mut handle = ConcurrentMap::handle(set);
    let mut rng = FastRng::new(seed);
    while phase.load(Ordering::Acquire) < PHASE_FAULT {
        do_op(set, &mut handle, &mut rng, key_range);
    }
    // Freshly retired nodes land in this slot's vault right before death.
    for _ in 0..64 {
        let k = rng.below(key_range);
        if !ConcurrentSet::insert(set, &mut handle, k) {
            ConcurrentSet::remove(set, &mut handle, &k);
        }
    }
    // Die mid-run: leak the handle so the slot is orphaned, not released.
    std::mem::forget(handle);
}

/// [`FaultKind::PanicDuringOp`]: panic with a guard live, rotating through
/// the four operation kinds; each unwind must tear down guard and handle.
fn panic_actor<C: ConcurrentMap<u64, ()>>(set: &C, phase: &AtomicU8, key_range: u64, seed: u64) {
    let mut rng = FastRng::new(seed);
    wait_for_phase(phase, PHASE_FAULT);
    let mut op = 0u64;
    while phase.load(Ordering::Acquire) == PHASE_FAULT {
        let key = rng.below(key_range);
        let result = catch_unwind(AssertUnwindSafe(|| {
            // Fresh handle per attempt: the unwind tears down the guard
            // (dropping its protections) and then the handle (releasing its
            // slot) — exactly the RAII path a panicking application exercises.
            let mut handle = ConcurrentMap::handle(set);
            let mut guard = set.pin(&mut handle);
            match op % 4 {
                0 => {
                    let _ = set.get(&mut guard, &key);
                }
                1 => {
                    let _ = set.insert(&mut guard, key, ());
                }
                2 => {
                    let _ = set.remove(&mut guard, &key);
                }
                _ => {
                    let mut scan = set.scan(&mut guard, key, Some(key.saturating_add(16)));
                    let _ = scan.next_entry();
                }
            }
            panic!("injected fault");
        }));
        assert!(result.is_err(), "injected panic did not propagate");
        op += 1;
    }
}

/// [`FaultKind::ChurnSpike`]: bursts of writes through short-lived handles.
fn churn_actor<C: ConcurrentMap<u64, ()>>(set: &C, phase: &AtomicU8, key_range: u64, seed: u64) {
    let mut rng = FastRng::new(seed);
    wait_for_phase(phase, PHASE_FAULT);
    while phase.load(Ordering::Acquire) == PHASE_FAULT {
        let mut handle = ConcurrentMap::handle(set);
        for _ in 0..256 {
            let k = rng.below(key_range);
            if !ConcurrentSet::insert(set, &mut handle, k) {
                ConcurrentSet::remove(set, &mut handle, &k);
            }
        }
        // Handle drops here: slot released, retire list flushed — at spike
        // rate.
    }
}

/// [`FaultKind::PreemptionStorm`]: ops with a yield after each one, on 4×
/// oversubscribed threads.
fn storm_actor<C: ConcurrentMap<u64, ()>>(set: &C, phase: &AtomicU8, key_range: u64, seed: u64) {
    let mut handle = ConcurrentMap::handle(set);
    let mut rng = FastRng::new(seed);
    wait_for_phase(phase, PHASE_FAULT);
    while phase.load(Ordering::Acquire) == PHASE_FAULT {
        do_op(set, &mut handle, &mut rng, key_range);
        std::thread::yield_now();
    }
}

/// The phased fault runner (monomorphized per structure × scheme via
/// [`crate::workload::TargetAny`]).
pub(crate) fn faults_inner<C: ConcurrentMap<u64, ()> + 'static>(
    target: &Target<C>,
    cfg: &RunConfig,
    plan: &FaultPlan,
) -> FaultOutput {
    cfg.mix.validate();
    silence_injected_panics();
    prefill(target.set.as_ref(), cfg.key_range, cfg.seed, cfg.threads);
    let phase = Arc::new(AtomicU8::new(PHASE_WARMUP));
    let stop = Arc::new(AtomicBool::new(false));
    let total_ops = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut samples: Vec<(u8, usize)> = Vec::new();
    let mut baseline = 0usize;
    let mut end_of_fault = 0usize;
    let mut peak = 0usize;
    std::thread::scope(|s| {
        for t in 0..cfg.threads {
            let set = target.set.clone();
            let stop = stop.clone();
            let total_ops = total_ops.clone();
            let ordered = target.ordered;
            let cfg = cfg.clone();
            s.spawn(move || {
                let (ops, _) = op_loop(set.as_ref(), &cfg, &stop, t, None, ordered);
                total_ops.fetch_add(ops, Ordering::Relaxed);
            });
        }
        for v in 0..plan.actor_threads() {
            let set = target.set.clone();
            let phase = phase.clone();
            let kind = plan.kind;
            let key_range = cfg.key_range;
            let seed = cfg.seed ^ (v as u64 + 0x0fa7).wrapping_mul(0x9e3779b97f4a7c15);
            std::thread::Builder::new()
                .name(format!("fault-actor-{v}"))
                .spawn_scoped(s, move || match kind {
                    FaultKind::ReaderStall => {
                        stall_actor(set.as_ref(), &phase, key_range, v, PHASE_FAULT)
                    }
                    FaultKind::ThreadDeath => death_actor(set.as_ref(), &phase, key_range, seed),
                    FaultKind::PanicDuringOp => panic_actor(set.as_ref(), &phase, key_range, seed),
                    FaultKind::ChurnSpike => churn_actor(set.as_ref(), &phase, key_range, seed),
                    FaultKind::PreemptionStorm => {
                        storm_actor(set.as_ref(), &phase, key_range, seed)
                    }
                })
                .expect("failed to spawn fault actor");
        }
        // The main thread is the phase clock and the footprint sampler
        // (shared with the service runner via [`crate::phases`]).  Unlike
        // the timed runner, Hyaline is sampled too: robustness is precisely
        // a question about footprint under faults.
        drive_phases(
            &phase,
            &[plan.warmup, plan.fault, plan.recovery],
            cfg.sample_interval,
            target.unreclaimed.as_ref(),
            |ev| match ev {
                PhaseEvent::Edge {
                    phase: PHASE_WARMUP,
                    unreclaimed,
                    ..
                } => baseline = unreclaimed,
                PhaseEvent::Edge {
                    phase: PHASE_FAULT,
                    unreclaimed,
                    ..
                } => {
                    end_of_fault = unreclaimed;
                    peak = peak.max(unreclaimed);
                }
                PhaseEvent::Edge { .. } => {}
                PhaseEvent::Sample {
                    phase: p,
                    unreclaimed,
                } => {
                    samples.push((p, unreclaimed));
                    if p >= PHASE_FAULT {
                        peak = peak.max(unreclaimed);
                    }
                }
            },
        );
        stop.store(true, Ordering::SeqCst);
    });
    let elapsed = start.elapsed().as_secs_f64();
    // Every worker and actor has joined; dead actors' exit beacons have
    // fired, so their orphaned slots are adoptable.  Shutdown drain: flush
    // through a fresh handle until empty or the timeout expires — report,
    // never hang.
    let mut residual = (target.unreclaimed)();
    let mut drained = residual == 0;
    if !drained && plan.drain_timeout > Duration::ZERO {
        let deadline = Instant::now() + plan.drain_timeout;
        let mut handle = ConcurrentMap::handle(target.set.as_ref());
        loop {
            ConcurrentMap::flush(target.set.as_ref(), &mut handle);
            residual = (target.unreclaimed)();
            if residual == 0 {
                drained = true;
                break;
            }
            if Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    peak = peak.max(residual);
    FaultOutput {
        baseline,
        peak,
        end_of_fault,
        residual,
        drained,
        ops: total_ops.load(Ordering::Relaxed),
        elapsed_secs: elapsed,
        samples,
    }
}

/// The robustness bound a scheme's peak footprint is judged against: a small
/// multiple of its fault-free steady state plus a generous per-thread
/// allowance (`8 × scan_threshold` per worker/actor).  Robust schemes sit far
/// below it; a stalled reader under an epoch-style scheme blows through it by
/// orders of magnitude, so the verdict is insensitive to the exact constants.
pub fn robustness_bound(
    smr: SmrKind,
    threads: usize,
    actors: usize,
    pool: bool,
    baseline: usize,
) -> usize {
    let threshold = smr_config(smr, threads + actors, pool).scan_threshold;
    4 * baseline.max(64) + (threads + actors + 1) * threshold * 8
}

/// The verdict for one structure × scheme × fault cell.
#[derive(Debug, Clone, Serialize)]
pub struct FaultReport {
    /// Data structure under test.
    pub ds: String,
    /// Reclamation scheme under test.
    pub smr: String,
    /// Fault class injected ([`FaultKind::name`]).
    pub fault: String,
    /// Regular worker threads.
    pub threads: usize,
    /// Fault actors (threads misbehaving).
    pub victims: usize,
    /// Whether the scheme claims robustness ([`SmrKind::is_robust`]).
    pub is_robust: bool,
    /// Steady-state unreclaimed count at the end of warmup.
    pub baseline: usize,
    /// Peak sampled unreclaimed count from fault injection onwards.
    pub peak: usize,
    /// Unreclaimed count when the fault phase ended.
    pub end_of_fault: usize,
    /// Unreclaimed count after the post-join drain.
    pub residual: usize,
    /// Whether the drain reached zero within its timeout.
    pub drained: bool,
    /// The bound `peak` was judged against ([`robustness_bound`]).
    pub bound: usize,
    /// Worst-case blocks stranded in dead victims' leaked block-pool caches
    /// (`victims × pool_blocks` for [`FaultKind::ThreadDeath`] with the pool
    /// enabled, zero otherwise).  Pooled blocks are recycled capacity that
    /// already left the `unreclaimed` count, so they are invisible to
    /// `residual`/`drained` — this field makes the blind spot explicit
    /// instead of letting `drained` over-claim.
    pub pool_leak_bound: usize,
    /// `peak <= bound`.
    pub bounded: bool,
    /// Human-readable verdict: `bounded`, `grows (+N)`, `undrained (N left)`,
    /// or `leaks (by design)` for NR.
    pub verdict: String,
    /// Total worker operations completed.
    pub ops: u64,
    /// Wall-clock seconds of the phased run.
    pub elapsed_secs: f64,
}

impl FaultReport {
    /// Whether this cell violates the scheme's own robustness claim: a
    /// scheme advertising `is_robust` must stay bounded *and* drain to zero
    /// after the fault; non-robust schemes only promise the drain.
    pub fn violates_claim(&self) -> bool {
        if self.smr == SmrKind::Nr.name() {
            return false; // NR promises nothing.
        }
        let growth_violation = self.is_robust && !self.bounded;
        let drain_violation = !self.drained;
        growth_violation || drain_violation
    }
}

/// Runs one fault scenario against one structure × scheme pair and renders
/// the verdict.
pub fn run_fault_scenario(
    ds: DsKind,
    smr: SmrKind,
    cfg: &RunConfig,
    plan: &FaultPlan,
) -> FaultReport {
    let mut plan = plan.clone();
    if smr == SmrKind::Nr {
        // NR never reclaims; draining would spin for the whole timeout.
        plan.drain_timeout = Duration::ZERO;
    }
    let actors = plan.actor_threads();
    // Size the registry for workers + actors + the post-join drain handle.
    // (Actors that churn handles only hold one claim at a time each.)
    let capacity_threads = cfg.threads + actors + 1;
    let out = with_target(ds, smr, capacity_threads, cfg.key_range, cfg.pool, |t| {
        (t.run_faults)(cfg, &plan)
    });
    let bound = robustness_bound(smr, cfg.threads, actors, cfg.pool, out.baseline);
    // Dead victims leak their handles, and with them their block-pool
    // caches; those blocks are pool capacity, not tracked garbage, so the
    // drain cannot see them.  Surface the worst case alongside the verdict.
    let pool_leak_bound = if plan.kind == FaultKind::ThreadDeath {
        plan.victims * smr_config(smr, capacity_threads, cfg.pool).pool_blocks()
    } else {
        0
    };
    let bounded = out.peak <= bound;
    let growth = out.peak.saturating_sub(out.baseline);
    let verdict = if smr == SmrKind::Nr {
        "leaks (by design)".to_string()
    } else if !bounded {
        format!("grows (+{growth})")
    } else if !out.drained {
        format!("undrained ({} left)", out.residual)
    } else {
        "bounded".to_string()
    };
    FaultReport {
        ds: ds.name().to_string(),
        smr: smr.name().to_string(),
        fault: plan.kind.name().to_string(),
        threads: cfg.threads,
        victims: plan.victims,
        is_robust: smr.is_robust(),
        baseline: out.baseline,
        peak: out.peak,
        end_of_fault: out.end_of_fault,
        residual: out.residual,
        drained: out.drained,
        bound,
        pool_leak_bound,
        bounded,
        verdict,
        ops: out.ops,
        elapsed_secs: out.elapsed_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cfg(threads: usize, key_range: u64) -> RunConfig {
        RunConfig {
            sample_interval: Duration::from_millis(2),
            ..RunConfig::paper_default(threads, key_range)
        }
    }

    fn micro_plan(kind: FaultKind) -> FaultPlan {
        FaultPlan {
            warmup: Duration::from_millis(10),
            fault: Duration::from_millis(30),
            recovery: Duration::from_millis(15),
            victims: 1,
            drain_timeout: Duration::from_secs(5),
            ..FaultPlan::new(kind)
        }
    }

    #[test]
    fn fault_kind_parse_roundtrip() {
        assert_eq!(FaultKind::ALL.len(), 5);
        for k in FaultKind::ALL {
            assert_eq!(FaultKind::parse(k.name()), Some(k), "{k} must round-trip");
        }
        assert_eq!(FaultKind::parse("STALL"), Some(FaultKind::ReaderStall));
        assert_eq!(FaultKind::parse("death"), Some(FaultKind::ThreadDeath));
        assert_eq!(FaultKind::parse("panic"), Some(FaultKind::PanicDuringOp));
        assert_eq!(FaultKind::parse("churn"), Some(FaultKind::ChurnSpike));
        assert_eq!(FaultKind::parse("storm"), Some(FaultKind::PreemptionStorm));
        assert_eq!(FaultKind::parse("bogus"), None);
    }

    #[test]
    fn storm_plan_oversubscribes() {
        let plan = FaultPlan::new(FaultKind::PreemptionStorm);
        assert_eq!(plan.actor_threads(), 4 * plan.victims);
        assert_eq!(FaultPlan::new(FaultKind::ReaderStall).actor_threads(), 2);
    }

    /// The satellite matrix: a panic inside get/insert/remove/scan (the
    /// actor rotates through all four) on every structure under every scheme
    /// variant must unwind cleanly, and the domain must drain to zero
    /// afterwards (NR excepted — it never reclaims by definition).
    #[test]
    fn panic_unwind_matrix_drains_to_zero() {
        let cfg = test_cfg(1, 64);
        let plan = micro_plan(FaultKind::PanicDuringOp);
        for ds in DsKind::ALL {
            for smr in SmrKind::ALL {
                let r = run_fault_scenario(ds, smr, &cfg, &plan);
                assert!(r.ops > 0, "{ds}/{smr}: workers made no progress");
                if smr != SmrKind::Nr {
                    assert!(
                        r.drained,
                        "{ds}/{smr}: domain failed to drain after injected \
                         panics (residual {})",
                        r.residual
                    );
                    assert_eq!(r.residual, 0, "{ds}/{smr}");
                }
            }
        }
    }

    /// Thread death orphans a slot with a non-empty retire list; adoption
    /// must hand the garbage to a survivor so the domain still drains.
    #[test]
    fn thread_death_drains_under_every_reclaiming_scheme() {
        let cfg = test_cfg(2, 64);
        let plan = micro_plan(FaultKind::ThreadDeath);
        for smr in SmrKind::ALL {
            if smr == SmrKind::Nr {
                continue;
            }
            let r = run_fault_scenario(DsKind::ListLf, smr, &cfg, &plan);
            assert!(
                r.drained,
                "{smr}: dead thread's garbage was not adopted (residual {})",
                r.residual
            );
        }
    }

    /// The robustness claim itself: a stalled reader must not blow up HP's
    /// footprint, and must blow up EBR's (that is what non-robust means).
    #[test]
    fn reader_stall_separates_hp_from_ebr() {
        let mut cfg = test_cfg(4, 128);
        cfg.mix = crate::workload::Mix::WRITE_ONLY;
        let mut plan = FaultPlan::quick(FaultKind::ReaderStall);
        plan.victims = 1;
        // Long enough that even an unoptimized build retires well past the
        // bound while the reader stalls.
        plan.fault = Duration::from_millis(500);
        let hp = run_fault_scenario(DsKind::HmList, SmrKind::Hp, &cfg, &plan);
        assert!(
            hp.bounded && hp.drained,
            "HP must stay bounded under a stalled reader \
             (peak {} vs bound {}, residual {})",
            hp.peak,
            hp.bound,
            hp.residual
        );
        let ebr = run_fault_scenario(DsKind::HmList, SmrKind::Ebr, &cfg, &plan);
        assert!(
            !ebr.bounded,
            "EBR under a stalled reader should exceed the bound \
             (peak {} vs bound {})",
            ebr.peak, ebr.bound
        );
        assert!(ebr.verdict.starts_with("grows"), "verdict: {}", ebr.verdict);
        assert!(
            ebr.drained,
            "EBR must still drain once the stalled guard drops (residual {})",
            ebr.residual
        );
        assert!(!ebr.is_robust && hp.is_robust);
    }

    #[test]
    fn churn_and_storm_smoke_run_bounded_under_hp() {
        let cfg = test_cfg(2, 128);
        for kind in [FaultKind::ChurnSpike, FaultKind::PreemptionStorm] {
            let r = run_fault_scenario(DsKind::HashMap, SmrKind::Hp, &cfg, &micro_plan(kind));
            assert!(r.ops > 0);
            assert!(
                r.drained,
                "{kind}: HP failed to drain (residual {})",
                r.residual
            );
        }
    }

    /// The pool-cache blind spot is reported, not hidden: thread-death cells
    /// carry the worst-case count of blocks stranded in the dead victims'
    /// leaked pool caches, and every other configuration reports zero.
    #[test]
    fn thread_death_reports_pool_leak_bound() {
        let cfg = test_cfg(1, 64);
        let plan = micro_plan(FaultKind::ThreadDeath);
        let r = run_fault_scenario(DsKind::ListLf, SmrKind::Hp, &cfg, &plan);
        let per_handle =
            smr_config(SmrKind::Hp, cfg.threads + plan.victims + 1, cfg.pool).pool_blocks();
        assert!(per_handle > 0, "pooled config must cache blocks");
        assert_eq!(r.pool_leak_bound, plan.victims * per_handle);

        let mut no_pool = cfg.clone();
        no_pool.pool = false;
        let r = run_fault_scenario(DsKind::ListLf, SmrKind::Hp, &no_pool, &plan);
        assert_eq!(r.pool_leak_bound, 0, "no pool, nothing to strand");

        let r = run_fault_scenario(
            DsKind::ListLf,
            SmrKind::Hp,
            &cfg,
            &micro_plan(FaultKind::ReaderStall),
        );
        assert_eq!(r.pool_leak_bound, 0, "stalled readers keep their handles");
    }

    #[test]
    fn nr_reports_leak_by_design() {
        let cfg = test_cfg(2, 64);
        let r = run_fault_scenario(
            DsKind::ListLf,
            SmrKind::Nr,
            &cfg,
            &micro_plan(FaultKind::ThreadDeath),
        );
        assert_eq!(r.verdict, "leaks (by design)");
        assert!(!r.violates_claim(), "NR promises nothing");
    }
}
