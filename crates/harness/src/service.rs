//! The `exp service` scenario: a production-shaped cache-server run with
//! per-phase, per-op-class latency histograms.
//!
//! Every other experiment is a fixed-duration uniform-key throughput run, but
//! the paper's central claim — fixed optimistic traversals make the
//! structures compatible with *robust* reclamation at little cost — only
//! matters in production if that cost stays invisible in the tail, which is
//! exactly where reclamation stalls (HP scans, NBR neutralization, VBR
//! checkpoint restarts) surface.  The service scenario therefore runs a
//! Zipfian-skewed key-value style workload through four phases driven by the
//! shared phase clock (the crate-private `phases` module, shared with the
//! fault runner):
//!
//! 1. **warmup** — the paper's 50/25/25 mix (minus a sliver of scans) brings
//!    the structure and the reclamation scheme to steady state.
//! 2. **read-storm** — a 90%-read phase with scans: the cache-hit regime
//!    where get tail latency is the product.
//! 3. **churn-spike** — writes dominate (≈88%): retirement pressure peaks,
//!    so reclamation work (and its latency cost) peaks with it.
//! 4. **reader-stall** — the paper-default mix again, but with stalled
//!    readers pinned for the whole phase: non-robust schemes balloon their
//!    footprint here and every scheme shows what a stalled reader does to
//!    its tail.
//!
//! Latency is recorded into lock-free *thread-local* histograms
//! ([`crate::hist::OpHistograms`]) — one per op-class — and merged into the
//! per-phase accumulators only when a worker observes a phase edge, so the
//! hot loop never touches shared state.  Timing is amortized: only 1-in-N
//! operations are stamped (two `Instant::now` calls), which leaves the
//! percentile estimate unbiased while keeping the timer out of the
//! measurement for the other N−1 ops (see DESIGN.md § Latency methodology).

use crate::hist::{OpClass, OpHistograms};
use crate::phases::{drive_phases, silence_injected_panics, stall_actor, PhaseEvent};
use crate::workload::{
    prefill, scan_once, with_target, DsKind, FastRng, Mix, RunConfig, Target, Zipf,
};
use scot::{ConcurrentMap, ConcurrentSet, TraversalSnapshot};
use scot_smr::SmrKind;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of service phases (the phase word's stop value).
pub const NUM_SERVICE_PHASES: usize = 4;

/// Phase names, indexed by the phase word — the single source of truth used
/// by the table renderer, the JSON artifact, and the docs.
pub const SERVICE_PHASE_NAMES: [&str; NUM_SERVICE_PHASES] =
    ["warmup", "read-storm", "churn-spike", "reader-stall"];

/// The service scenario's schedule and knobs.
#[derive(Debug, Clone)]
pub struct ServicePlan {
    /// Length of the steady-state warmup phase.
    pub warmup: Duration,
    /// Length of the read-dominated phase.
    pub read_storm: Duration,
    /// Length of the write-dominated phase.
    pub churn_spike: Duration,
    /// Length of the stalled-reader phase.
    pub reader_stall: Duration,
    /// Zipfian skew for key draws (`0.0` = uniform; the preset uses 0.99).
    pub zipf_theta: f64,
    /// Stalled readers pinned through the reader-stall phase.
    pub stall_victims: usize,
    /// Amortized timing rate: 1-in-`sample_every` operations are stamped.
    pub sample_every: u32,
}

impl ServicePlan {
    /// Splits a total run length into the four phases (≈ 20/30/25/25 with
    /// floors so `--quick` runs still give every phase time to mean
    /// something) with the preset's default victim count and sampling rate.
    pub fn new(total: Duration, zipf_theta: f64) -> Self {
        Self {
            warmup: (total * 20 / 100).max(Duration::from_millis(30)),
            read_storm: (total * 30 / 100).max(Duration::from_millis(40)),
            churn_spike: (total * 25 / 100).max(Duration::from_millis(40)),
            reader_stall: (total * 25 / 100).max(Duration::from_millis(40)),
            zipf_theta,
            stall_victims: 2,
            sample_every: 16,
        }
    }

    /// The phase schedule in phase-word order.
    pub fn durations(&self) -> [Duration; NUM_SERVICE_PHASES] {
        [
            self.warmup,
            self.read_storm,
            self.churn_spike,
            self.reader_stall,
        ]
    }

    /// The operation mix for a phase.  Every phase carries at least a sliver
    /// of every op-class so all four histograms populate in every phase.
    pub fn mix_for(&self, phase: u8) -> Mix {
        match phase as usize {
            1 => Mix {
                read_pct: 90,
                insert_pct: 3,
                delete_pct: 3,
                scan_pct: 4,
            },
            2 => Mix {
                read_pct: 10,
                insert_pct: 44,
                delete_pct: 44,
                scan_pct: 2,
            },
            // warmup (0) and reader-stall (3): the paper-default mix with a
            // sliver of scans, so the stall phase is directly comparable to
            // warmup.
            _ => Mix {
                read_pct: 50,
                insert_pct: 24,
                delete_pct: 24,
                scan_pct: 2,
            },
        }
    }
}

/// Per-phase shared accumulator: workers merge their thread-local histograms
/// and op counts here when they observe the phase edge — never per-op.
struct PhaseAccum {
    hists: Mutex<OpHistograms>,
    ops: AtomicU64,
}

impl PhaseAccum {
    fn new() -> Self {
        Self {
            hists: Mutex::new(OpHistograms::new()),
            ops: AtomicU64::new(0),
        }
    }
}

/// What one phase produced, before flattening into report rows.
#[derive(Debug)]
pub struct ServicePhaseOutput {
    /// Phase name ([`SERVICE_PHASE_NAMES`]).
    pub name: &'static str,
    /// Worker operations completed during the phase.
    pub ops: u64,
    /// Wall-clock length of the phase as driven (edge-to-edge).
    pub secs: f64,
    /// Merged latency histograms, one per op-class.
    pub hists: OpHistograms,
    /// Peak sampled unreclaimed count during the phase.
    pub peak_unreclaimed: usize,
    /// Traversal restarts during the phase (edge-to-edge delta).
    pub restarts: u64,
    /// §3.2.1 recoveries during the phase (edge-to-edge delta).
    pub recoveries: u64,
}

/// Raw output of one service run (one structure × scheme cell).
#[derive(Debug)]
pub struct ServiceOutput {
    /// One entry per phase, in phase order.
    pub phases: Vec<ServicePhaseOutput>,
    /// Total wall-clock seconds for the phased run.
    pub elapsed_secs: f64,
    /// Total worker operations across all phases.
    pub ops: u64,
}

/// The service hot loop: one worker thread's life across all four phases.
///
/// The worker keeps *thread-local* histograms and an op counter, re-reads the
/// phase word every operation (an uncontended `Acquire` load), and flushes
/// its locals into the phase's shared accumulator only when the word changes
/// — so the measurement adds no shared-memory traffic to the hot path.
fn service_worker<C: ConcurrentMap<u64, ()>>(
    set: &C,
    phase: &AtomicU8,
    cfg: &RunConfig,
    plan: &ServicePlan,
    thread_idx: usize,
    ordered: bool,
    accums: &[PhaseAccum; NUM_SERVICE_PHASES],
) {
    let mut handle = ConcurrentMap::handle(set);
    let mut rng = FastRng::new(cfg.seed ^ (thread_idx as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15));
    let zipf = (plan.zipf_theta > 0.0).then(|| Zipf::new(cfg.key_range.max(1), plan.zipf_theta));
    let sample_every = plan.sample_every.max(1);
    let mut my_phase = 0u8;
    let mut mix = plan.mix_for(my_phase);
    let mut local = OpHistograms::new();
    let mut local_ops = 0u64;
    let mut tick = 0u32;
    loop {
        let cur = phase.load(Ordering::Acquire);
        if cur != my_phase {
            // Phase edge: drain the thread-local measurements into the phase
            // that just ended.  This is the only shared-state touch.
            let acc = &accums[my_phase as usize];
            acc.hists.lock().unwrap().merge(&local);
            acc.ops.fetch_add(local_ops, Ordering::Relaxed);
            local = OpHistograms::new();
            local_ops = 0;
            my_phase = cur;
            if cur as usize >= NUM_SERVICE_PHASES {
                break;
            }
            mix = plan.mix_for(my_phase);
        }
        let r = rng.next_u64();
        let op = ((r >> 48) % 100) as u32;
        let key = match &zipf {
            Some(z) => z.key(&mut rng),
            None => r % cfg.key_range.max(1),
        };
        let class = if op < mix.read_pct {
            OpClass::Get
        } else if op < mix.read_pct + mix.insert_pct {
            OpClass::Insert
        } else if op < mix.read_pct + mix.insert_pct + mix.delete_pct {
            OpClass::Remove
        } else {
            OpClass::Scan
        };
        tick = tick.wrapping_add(1);
        let stamp = tick.is_multiple_of(sample_every);
        let t0 = stamp.then(Instant::now);
        match class {
            OpClass::Get => {
                ConcurrentSet::contains(set, &mut handle, &key);
            }
            OpClass::Insert => {
                ConcurrentSet::insert(set, &mut handle, key);
            }
            OpClass::Remove => {
                ConcurrentSet::remove(set, &mut handle, &key);
            }
            OpClass::Scan => {
                scan_once(set, &mut handle, key, cfg.scan_len, ordered);
            }
        }
        if let Some(t0) = t0 {
            local.record(class, t0.elapsed().as_nanos() as u64);
        }
        local_ops += 1;
    }
}

/// The phased service runner (monomorphized per structure × scheme via
/// [`crate::workload::TargetAny`]).
pub(crate) fn service_inner<C: ConcurrentMap<u64, ()> + 'static>(
    target: &Target<C>,
    cfg: &RunConfig,
    plan: &ServicePlan,
) -> ServiceOutput {
    for p in 0..NUM_SERVICE_PHASES {
        plan.mix_for(p as u8).validate();
    }
    // Stall actors run on "fault-actor-…" named threads; keep their panics
    // (there are none by design, but symmetry with the fault harness is
    // cheap) from spamming if one ever trips.
    silence_injected_panics();
    prefill(target.set.as_ref(), cfg.key_range, cfg.seed, cfg.threads);
    let phase = AtomicU8::new(0);
    let accums: [PhaseAccum; NUM_SERVICE_PHASES] = std::array::from_fn(|_| PhaseAccum::new());
    let baseline: TraversalSnapshot = (target.stats)();
    let mut edge_stats: Vec<TraversalSnapshot> = Vec::with_capacity(NUM_SERVICE_PHASES);
    let mut edge_elapsed: Vec<f64> = Vec::with_capacity(NUM_SERVICE_PHASES);
    let mut peaks = [0usize; NUM_SERVICE_PHASES];
    let durations = plan.durations();
    let mut elapsed_secs = 0.0;
    std::thread::scope(|s| {
        for t in 0..cfg.threads {
            let set = target.set.clone();
            let phase = &phase;
            let accums = &accums;
            let ordered = target.ordered;
            s.spawn(move || {
                service_worker(set.as_ref(), phase, cfg, plan, t, ordered, accums);
            });
        }
        for v in 0..plan.stall_victims {
            let set = target.set.clone();
            let phase = &phase;
            let key_range = cfg.key_range;
            let stall_at = (NUM_SERVICE_PHASES - 1) as u8;
            std::thread::Builder::new()
                .name(format!("fault-actor-stall-{v}"))
                .spawn_scoped(s, move || {
                    stall_actor(set.as_ref(), phase, key_range, v, stall_at);
                })
                .expect("failed to spawn stall actor");
        }
        // The main thread is the phase clock and the footprint sampler —
        // Hyaline included, since the stall phase is a robustness question.
        elapsed_secs = drive_phases(
            &phase,
            &durations,
            cfg.sample_interval,
            target.unreclaimed.as_ref(),
            |ev| match ev {
                PhaseEvent::Sample {
                    phase: p,
                    unreclaimed,
                } => {
                    let p = p as usize;
                    peaks[p] = peaks[p].max(unreclaimed);
                }
                PhaseEvent::Edge {
                    phase: p,
                    unreclaimed,
                    elapsed,
                } => {
                    let p = p as usize;
                    peaks[p] = peaks[p].max(unreclaimed);
                    edge_stats.push((target.stats)());
                    edge_elapsed.push(elapsed.as_secs_f64());
                }
            },
        );
    });
    // Every worker flushed its locals when it saw the stop value, and every
    // thread has joined, so the accumulators are complete and unaliased.
    let mut phases = Vec::with_capacity(NUM_SERVICE_PHASES);
    let mut prev_stats = baseline;
    let mut prev_t = 0.0;
    let mut total_ops = 0u64;
    for (p, acc) in accums.into_iter().enumerate() {
        let hists = acc.hists.into_inner().unwrap();
        let ops = acc.ops.into_inner();
        let at_edge = edge_stats[p];
        let t_edge = edge_elapsed[p];
        total_ops += ops;
        phases.push(ServicePhaseOutput {
            name: SERVICE_PHASE_NAMES[p],
            ops,
            secs: (t_edge - prev_t).max(0.0),
            hists,
            peak_unreclaimed: peaks[p],
            restarts: at_edge.restarts.saturating_sub(prev_stats.restarts),
            recoveries: at_edge.recoveries.saturating_sub(prev_stats.recoveries),
        });
        prev_stats = at_edge;
        prev_t = t_edge;
    }
    ServiceOutput {
        phases,
        elapsed_secs,
        ops: total_ops,
    }
}

/// One row of the service result: one structure × scheme × phase × op-class.
///
/// `ops_per_sec` is the *phase's* total throughput (repeated across its four
/// class rows); the percentiles are per-class.  Percentiles are `None` when
/// the class recorded no samples in the phase (rendered as `-` in the table
/// and `null` in `BENCH_service.json`).
#[derive(Debug, Clone, Serialize)]
pub struct ServiceReport {
    /// Data structure under test.
    pub ds: String,
    /// Reclamation scheme under test.
    pub smr: String,
    /// Regular worker threads (stall actors excluded).
    pub threads: usize,
    /// Phase name ([`SERVICE_PHASE_NAMES`]).
    pub phase: String,
    /// Operation class ([`OpClass::name`]).
    pub op_class: String,
    /// Whether the scheme claims robustness ([`SmrKind::is_robust`]).
    pub is_robust: bool,
    /// Total operations the phase completed across all classes (repeated
    /// across the phase's class rows, like `ops_per_sec`).
    pub ops: u64,
    /// Phase throughput across all classes, in operations per second.
    pub ops_per_sec: f64,
    /// Latency samples recorded for this class in this phase.
    pub samples: u64,
    /// Median latency in nanoseconds.
    pub p50_ns: Option<u64>,
    /// 99th-percentile latency in nanoseconds.
    pub p99_ns: Option<u64>,
    /// 99.9th-percentile latency in nanoseconds.
    pub p999_ns: Option<u64>,
    /// Peak sampled unreclaimed count during the phase.
    pub peak_unreclaimed: usize,
    /// Traversal restarts during the phase.
    pub restarts: u64,
    /// §3.2.1 recoveries during the phase.
    pub recoveries: u64,
}

/// Runs the service scenario against one structure × scheme pair and
/// flattens the result into per-phase × per-op-class rows.
pub fn run_service_scenario(
    ds: DsKind,
    smr: SmrKind,
    cfg: &RunConfig,
    plan: &ServicePlan,
) -> Vec<ServiceReport> {
    // Size the registry for the workers plus the stalled readers.
    let capacity_threads = cfg.threads + plan.stall_victims;
    let out = with_target(ds, smr, capacity_threads, cfg.key_range, cfg.pool, |t| {
        (t.run_service)(cfg, plan)
    });
    let mut reports = Vec::with_capacity(out.phases.len() * OpClass::ALL.len());
    for ph in &out.phases {
        let ops_per_sec = if ph.secs > 0.0 {
            ph.ops as f64 / ph.secs
        } else {
            0.0
        };
        for class in OpClass::ALL {
            let h = ph.hists.class(class);
            let samples = h.count();
            reports.push(ServiceReport {
                ds: ds.name().to_string(),
                smr: smr.name().to_string(),
                threads: cfg.threads,
                phase: ph.name.to_string(),
                op_class: class.name().to_string(),
                is_robust: smr.is_robust(),
                ops: ph.ops,
                ops_per_sec,
                samples,
                p50_ns: (samples > 0).then(|| h.p50()),
                p99_ns: (samples > 0).then(|| h.p99()),
                p999_ns: (samples > 0).then(|| h.p999()),
                peak_unreclaimed: ph.peak_unreclaimed,
                restarts: ph.restarts,
                recoveries: ph.recoveries,
            });
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro_plan() -> ServicePlan {
        ServicePlan {
            warmup: Duration::from_millis(15),
            read_storm: Duration::from_millis(25),
            churn_spike: Duration::from_millis(25),
            reader_stall: Duration::from_millis(25),
            zipf_theta: 0.99,
            stall_victims: 1,
            sample_every: 4,
        }
    }

    fn micro_cfg(threads: usize) -> RunConfig {
        RunConfig {
            sample_interval: Duration::from_millis(2),
            ..RunConfig::paper_default(threads, 256)
        }
    }

    #[test]
    fn plan_splits_and_floors_the_schedule() {
        let plan = ServicePlan::new(Duration::from_secs(10), 0.99);
        let d = plan.durations();
        assert_eq!(d[0], Duration::from_secs(2));
        assert_eq!(d[1], Duration::from_secs(3));
        assert_eq!(d[2], Duration::from_millis(2500));
        assert_eq!(d[3], Duration::from_millis(2500));
        // Tiny totals hit the floors instead of collapsing to zero.
        let quick = ServicePlan::new(Duration::from_millis(1), 0.0);
        assert!(quick
            .durations()
            .iter()
            .all(|d| *d >= Duration::from_millis(30)));
        // Every phase's mix is valid and includes every op-class.
        for p in 0..NUM_SERVICE_PHASES as u8 {
            let m = plan.mix_for(p);
            m.validate();
            assert!(m.read_pct > 0 && m.insert_pct > 0 && m.delete_pct > 0 && m.scan_pct > 0);
        }
        assert_eq!(SERVICE_PHASE_NAMES.len(), NUM_SERVICE_PHASES);
    }

    #[test]
    fn service_run_populates_every_phase_and_class() {
        let reports =
            run_service_scenario(DsKind::ListLf, SmrKind::Hp, &micro_cfg(2), &micro_plan());
        assert_eq!(reports.len(), NUM_SERVICE_PHASES * OpClass::ALL.len());
        for name in SERVICE_PHASE_NAMES {
            let rows: Vec<_> = reports.iter().filter(|r| r.phase == name).collect();
            assert_eq!(rows.len(), OpClass::ALL.len(), "{name}");
            assert!(
                rows.iter().all(|r| r.ops_per_sec > 0.0),
                "{name}: no throughput recorded"
            );
            // The dominant classes must have gathered samples with real
            // percentiles in every phase; thin classes may legitimately be
            // empty in a 25 ms phase.
            let get = rows.iter().find(|r| r.op_class == "get").unwrap();
            assert!(get.samples > 0, "{name}: no get samples");
            let (p50, p99, p999) = (
                get.p50_ns.unwrap(),
                get.p99_ns.unwrap(),
                get.p999_ns.unwrap(),
            );
            assert!(
                p50 <= p99 && p99 <= p999,
                "{name}: percentiles not monotone"
            );
            assert!(p50 > 0, "{name}: zero-ns median is not a real measurement");
        }
        assert!(reports.iter().all(|r| r.is_robust), "HP is robust");
    }

    #[test]
    fn stall_phase_balloons_ebr_but_not_hp() {
        // The reader-stall phase is the robustness story in miniature: EBR's
        // peak footprint in that phase should dwarf its warmup peak, while
        // HP's stays the same order of magnitude.  Keep the churn high so
        // there is something to balloon.
        let mut cfg = micro_cfg(4);
        cfg.key_range = 128;
        let mut plan = micro_plan();
        plan.reader_stall = Duration::from_millis(300);
        let peak_in = |reports: &[ServiceReport], phase: &str| {
            reports
                .iter()
                .find(|r| r.phase == phase)
                .map(|r| r.peak_unreclaimed)
                .unwrap()
        };
        let ebr = run_service_scenario(DsKind::ListLf, SmrKind::Ebr, &cfg, &plan);
        let hp = run_service_scenario(DsKind::ListLf, SmrKind::Hp, &cfg, &plan);
        let ebr_stall = peak_in(&ebr, "reader-stall");
        let hp_stall = peak_in(&hp, "reader-stall");
        assert!(
            ebr_stall > 4 * peak_in(&ebr, "warmup").max(64),
            "EBR stall peak {ebr_stall} did not balloon past warmup {}",
            peak_in(&ebr, "warmup")
        );
        assert!(
            hp_stall < ebr_stall,
            "HP stall peak {hp_stall} should undercut EBR's {ebr_stall}"
        );
    }
}
