//! Benchmark harness reproducing the paper's evaluation (§5).
//!
//! The harness mirrors the methodology of the paper's artifact:
//!
//! * every run **prefills** the structure with unique keys drawn from 50% of
//!   the key range;
//! * worker threads execute a read/insert/delete/scan mix (50/25/25 for the
//!   "50% read – 50% write" workload of Figures 8-12; 90/5/5, 0/50/50 and the
//!   scan-heavy 80%-range-scan mix are also available) over uniformly random
//!   keys for a fixed duration — every measured range scan is oracle-checked
//!   (window bounds, uniqueness, ordering) as it runs;
//! * throughput is reported in operations per second and the **memory
//!   overhead** as the average number of retired-but-not-yet-reclaimed
//!   objects, sampled periodically during the run (Figures 10-12b);
//! * traversal **restarts** are counted for Table 2.
//!
//! Two run modes exist: [`run_timed`] (duration-based, like the paper's
//! `./bench <ds> <seconds> ...`) used by the `scot-bench` binary, and
//! [`run_fixed_ops`] (fixed operation count) used by the Criterion benches so
//! that every sample performs a deterministic amount of work.
//!
//! The hardware substitution relative to the paper (128-core EPYC + mimalloc
//! versus whatever machine this crate runs on with the system allocator) is
//! documented in `DESIGN.md`; relative trends rather than absolute numbers are
//! the reproduction target.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod faults;
pub mod hist;
pub mod kv;
mod phases;
pub mod service;
pub mod workload;

pub use faults::{run_fault_scenario, FaultKind, FaultPlan, FaultReport};
pub use hist::{LatencyHistogram, OpClass, OpHistograms};
pub use kv::{run_timed_kv, Payload};
pub use service::{run_service_scenario, ServicePlan, ServiceReport};
pub use workload::{run_fixed_ops, run_timed, BackoffMode, DsKind, Mix, RunConfig, RunResult};

pub use scot_smr::SmrKind;

/// Returns the thread counts used by the experiment presets, scaled to the
/// host: the paper sweeps 1..384 threads on a 256-hardware-thread box; here we
/// sweep powers of two up to twice the available parallelism (the last point
/// being the oversubscribed configuration, like the paper's 384-thread point).
pub fn default_thread_counts() -> Vec<usize> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut counts = vec![1usize];
    let mut t = 2;
    while t < cores {
        counts.push(t);
        t *= 2;
    }
    if cores > 1 {
        counts.push(cores);
    }
    counts.push((cores * 2).max(4)); // oversubscription point
    counts.dedup();
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_counts_start_at_one_and_oversubscribe() {
        let counts = default_thread_counts();
        assert_eq!(counts[0], 1);
        let cores = std::thread::available_parallelism().unwrap().get();
        assert!(*counts.last().unwrap() >= cores);
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        assert_eq!(counts, sorted, "thread counts must be ascending");
    }
}
