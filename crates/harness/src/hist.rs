//! Log-bucketed latency histogram (HDR-style) for the service workload.
//!
//! The recording path must be cheap enough to sit inside the benchmark hot
//! loop without perturbing the thing it measures, so the design is the
//! classic HdrHistogram layout stripped to what the harness needs:
//!
//! * **fixed-size storage** — one flat `u64` array of
//!   [`LatencyHistogram::SLOTS`] buckets (~15 KiB), no allocation after
//!   construction;
//! * **log-linear buckets** — values below `2 * SUB` are stored exactly (one
//!   slot per nanosecond); above that, each power-of-two range is split into
//!   `SUB` linear sub-buckets, so the worst-case relative error of any
//!   reported quantile is `1 / SUB` (3.125% at `SUB_BITS = 5`), and the
//!   midpoint reporting used here halves that again;
//! * **lock-free recording** — a histogram is owned by one thread (`&mut
//!   self`, plain adds, no atomics); per-thread histograms are merged into a
//!   shared accumulator only at phase boundaries, so the hot path never
//!   touches a lock;
//! * **amortized timing** — callers stamp only 1-in-N operations (see
//!   [`crate::service::ServicePlan::sample_every`]), so the per-op cost of
//!   the timer syscall amortizes away while the percentile estimate stays
//!   unbiased (the sampled ops are a deterministic stride over an i.i.d.
//!   random op stream).
//!
//! The bucket math and the error analysis are documented in DESIGN.md
//! ("Latency methodology").

/// Number of linear sub-bucket bits per power-of-two range.
const SUB_BITS: u32 = 5;
/// Linear sub-buckets per power-of-two range (`2^SUB_BITS`).
const SUB: usize = 1 << SUB_BITS;

/// A log-bucketed histogram of `u64` values (nanoseconds, in this harness).
///
/// Any `u64` value can be recorded; quantiles are reported as the midpoint of
/// the slot they fall in, which bounds the relative error by `1 / (2 * SUB)`
/// for values at or above `2 * SUB` and is exact below that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Box<[u64; Self::SLOTS]>,
    total: u64,
}

impl LatencyHistogram {
    /// Total number of buckets: `2 * SUB` exact slots plus `SUB` linear
    /// sub-buckets for each of the remaining `64 - SUB_BITS - 1` powers of
    /// two — every `u64` value maps to exactly one slot.
    pub const SLOTS: usize = (64 - SUB_BITS as usize + 1) * SUB;

    /// Creates an empty histogram (one fixed ~15 KiB allocation).
    pub fn new() -> Self {
        let counts: Box<[u64]> = vec![0u64; Self::SLOTS].into_boxed_slice();
        Self {
            counts: counts.try_into().expect("SLOTS-sized box"),
            total: 0,
        }
    }

    /// Slot index for a value: exact below `2 * SUB`, log-linear above.
    #[inline]
    fn index_of(v: u64) -> usize {
        if v < (2 * SUB) as u64 {
            v as usize
        } else {
            // Highest set bit is at least SUB_BITS + 1 here.
            let top = 63 - v.leading_zeros();
            let shift = top - SUB_BITS;
            let sub = ((v >> shift) as usize) - SUB;
            (top - SUB_BITS + 1) as usize * SUB + sub
        }
    }

    /// Inclusive `[lo, hi]` value range covered by a slot.
    fn slot_bounds(i: usize) -> (u64, u64) {
        if i < 2 * SUB {
            (i as u64, i as u64)
        } else {
            let shift = (i / SUB - 1) as u32;
            let sub = (i % SUB) as u64;
            let lo = (SUB as u64 + sub) << shift;
            // Width first: the top slot's `lo + width` would wrap past
            // `u64::MAX` before the `- 1` could bring it back.
            let hi = lo + ((1u64 << shift) - 1);
            (lo, hi)
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[Self::index_of(v)] += 1;
        self.total += 1;
    }

    /// Records `n` occurrences of a value.
    pub fn record_n(&mut self, v: u64, n: u64) {
        self.counts[Self::index_of(v)] += n;
        self.total += n;
    }

    /// Adds every count of `other` into `self` (the phase-boundary merge).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The `p`-th percentile (`p` in `[0, 100]`), reported as the midpoint of
    /// the slot holding the rank-`ceil(p/100 * count)` value.  Returns 0 for
    /// an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, hi) = Self::slot_bounds(i);
                return lo + (hi - lo) / 2;
            }
        }
        // Unreachable: `seen` reaches `total >= rank` on the last counted slot.
        u64::MAX
    }

    /// Median (`p50`).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.percentile(99.9)
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The operation classes the service workload records latency for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Point lookup (`contains`).
    Get,
    /// Insert.
    Insert,
    /// Remove.
    Remove,
    /// Guard-scoped range scan.
    Scan,
}

impl OpClass {
    /// All four classes, in the order the service table prints them.
    pub const ALL: [OpClass; 4] = [
        OpClass::Get,
        OpClass::Insert,
        OpClass::Remove,
        OpClass::Scan,
    ];

    /// Display name used in tables and JSON artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            OpClass::Get => "get",
            OpClass::Insert => "insert",
            OpClass::Remove => "remove",
            OpClass::Scan => "scan",
        }
    }
}

impl std::fmt::Display for OpClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One latency histogram per operation class — what each worker thread keeps
/// per phase, and what the per-phase accumulators merge into.
#[derive(Debug, Clone, Default)]
pub struct OpHistograms {
    by_class: [LatencyHistogram; OpClass::ALL.len()],
}

impl OpHistograms {
    /// Creates four empty histograms.
    pub fn new() -> Self {
        Self {
            by_class: std::array::from_fn(|_| LatencyHistogram::new()),
        }
    }

    /// Records one sampled latency for an operation class.
    #[inline]
    pub fn record(&mut self, class: OpClass, ns: u64) {
        self.by_class[class as usize].record(ns);
    }

    /// Merges every class histogram of `other` into `self`.
    pub fn merge(&mut self, other: &OpHistograms) {
        for (a, b) in self.by_class.iter_mut().zip(other.by_class.iter()) {
            a.merge(b);
        }
    }

    /// The histogram for one operation class.
    pub fn class(&self, class: OpClass) -> &LatencyHistogram {
        &self.by_class[class as usize]
    }

    /// Total sampled latencies across all classes.
    pub fn count(&self) -> u64 {
        self.by_class.iter().map(LatencyHistogram::count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Oracle percentile: the histogram's rank definition applied to the
    /// exact sorted values.
    fn oracle(sorted: &[u64], p: f64) -> u64 {
        let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank.min(sorted.len()) - 1]
    }

    /// The acceptance bound: the reported percentile must land in the same
    /// slot as the true percentile (index_of is monotone, so this is exact),
    /// and its value must be within one bucket width of the truth.
    fn assert_close(h: &LatencyHistogram, sorted: &[u64]) {
        for p in [0.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let want = oracle(sorted, p);
            let got = h.percentile(p);
            assert_eq!(
                LatencyHistogram::index_of(got),
                LatencyHistogram::index_of(want),
                "p{p}: reported {got} not in the true value's slot ({want})"
            );
            let err = got.abs_diff(want) as f64;
            let allowed = (want as f64 / SUB as f64).max(1.0);
            assert!(
                err <= allowed,
                "p{p}: |{got} - {want}| = {err} exceeds bucket-width bound {allowed}"
            );
        }
    }

    fn hist_of(values: &[u64]) -> (LatencyHistogram, Vec<u64>) {
        let mut h = LatencyHistogram::new();
        for &v in values {
            h.record(v);
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        (h, sorted)
    }

    /// Deterministic xorshift for test data (no external RNG deps).
    fn xorshift(seed: &mut u64) -> u64 {
        let mut x = *seed;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *seed = x;
        x
    }

    #[test]
    fn oracle_uniform_distribution() {
        let mut seed = 0x5c07;
        let values: Vec<u64> = (0..10_000)
            .map(|_| xorshift(&mut seed) % 1_000_000)
            .collect();
        let (h, sorted) = hist_of(&values);
        assert_eq!(h.count(), 10_000);
        assert_close(&h, &sorted);
    }

    #[test]
    fn oracle_heavy_tailed_distribution() {
        // Exponentially spread magnitudes: mostly small with a long tail, the
        // shape real latency series have.
        let mut seed = 0xfeed;
        let values: Vec<u64> = (0..10_000)
            .map(|_| {
                let r = xorshift(&mut seed);
                let scale = r % 40; // up to ~2^40 ns
                (xorshift(&mut seed) % 1000) << scale
            })
            .collect();
        let (h, sorted) = hist_of(&values);
        assert_close(&h, &sorted);
    }

    #[test]
    fn oracle_all_zero_distribution() {
        let values = vec![0u64; 5000];
        let (h, sorted) = hist_of(&values);
        assert_close(&h, &sorted);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
    }

    #[test]
    fn oracle_extreme_values_including_u64_max() {
        let mut values = vec![u64::MAX; 100];
        values.extend([0u64, 1, 2, 63, 64, u64::MAX - 1]);
        let (h, sorted) = hist_of(&values);
        assert_close(&h, &sorted);
        // The top slot covers u64::MAX without overflow.
        assert_eq!(
            LatencyHistogram::index_of(u64::MAX),
            LatencyHistogram::SLOTS - 1
        );
    }

    #[test]
    fn merge_is_associative_and_matches_single_recording() {
        let mut seed = 0xabc;
        let chunks: Vec<Vec<u64>> = (0..3)
            .map(|_| (0..2000).map(|_| xorshift(&mut seed) % 500_000).collect())
            .collect();
        let hist = |vals: &[u64]| hist_of(vals).0;
        let (a, b, c) = (hist(&chunks[0]), hist(&chunks[1]), hist(&chunks[2]));
        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "merge must be associative");
        // Both equal recording everything into one histogram.
        let all: Vec<u64> = chunks.concat();
        assert_eq!(left, hist(&all));
        assert_eq!(left.count(), 6000);
    }

    #[test]
    fn bucket_boundaries_map_exactly_and_monotonically() {
        // Below 2*SUB every value is its own slot.
        for v in 0..(2 * SUB as u64) {
            assert_eq!(LatencyHistogram::index_of(v), v as usize);
            let mut h = LatencyHistogram::new();
            h.record(v);
            assert_eq!(h.p50(), v, "small values must be exact");
        }
        // Around every power-of-two boundary the index is monotone and the
        // slot bounds actually contain the value.
        for top in (SUB_BITS + 1)..64 {
            let base = 1u64 << top;
            for v in [base - 1, base, base + 1, base + (base >> 1)] {
                let i = LatencyHistogram::index_of(v);
                let (lo, hi) = LatencyHistogram::slot_bounds(i);
                assert!(
                    (lo..=hi).contains(&v),
                    "v={v}: slot {i} covers [{lo}, {hi}]"
                );
                assert!(
                    LatencyHistogram::index_of(v.saturating_add(1)) >= i,
                    "index_of must be monotone at {v}"
                );
            }
        }
        // Slot bounds tile the space: each slot starts where the previous
        // ended.
        for i in 1..LatencyHistogram::SLOTS {
            let (_, prev_hi) = LatencyHistogram::slot_bounds(i - 1);
            let (lo, _) = LatencyHistogram::slot_bounds(i);
            assert_eq!(lo, prev_hi + 1, "slots {i} and {} must tile", i - 1);
        }
        let (_, top_hi) = LatencyHistogram::slot_bounds(LatencyHistogram::SLOTS - 1);
        assert_eq!(top_hi, u64::MAX);
    }

    #[test]
    fn record_n_and_empty_behaviour() {
        let mut h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(99.0), 0, "empty histogram reports 0");
        h.record_n(1000, 500);
        assert_eq!(h.count(), 500);
        let got = h.p50();
        assert_eq!(
            LatencyHistogram::index_of(got),
            LatencyHistogram::index_of(1000)
        );
    }

    #[test]
    fn op_histograms_track_classes_independently() {
        let mut o = OpHistograms::new();
        o.record(OpClass::Get, 100);
        o.record(OpClass::Get, 200);
        o.record(OpClass::Scan, 50_000);
        assert_eq!(o.class(OpClass::Get).count(), 2);
        assert_eq!(o.class(OpClass::Scan).count(), 1);
        assert_eq!(o.class(OpClass::Insert).count(), 0);
        assert_eq!(o.count(), 3);
        let mut merged = OpHistograms::new();
        merged.merge(&o);
        merged.merge(&o);
        assert_eq!(merged.class(OpClass::Get).count(), 4);
        assert_eq!(OpClass::ALL.len(), 4);
        for c in OpClass::ALL {
            assert!(!c.name().is_empty());
        }
    }
}
