//! CLI tests for the `scot-bench` binary: every subcommand arm (`run`, `exp`,
//! `list`) plus the argument-validation failure paths, driven through the real
//! executable so the usage surface documented in the binary's doc comment is
//! covered end to end.

use scot_harness::SmrKind;
use std::process::{Command, Output};

fn scot_bench(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_scot-bench"))
        .args(args)
        .output()
        .expect("failed to spawn scot-bench")
}

/// A scratch directory for the `BENCH_<preset>.json` artifacts an `exp` run
/// always emits, so CLI tests don't litter the crate directory.  Removed on
/// drop.
struct BenchDir(std::path::PathBuf);

impl BenchDir {
    fn new(test: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("scot-bench-cli-{test}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn arg(&self) -> &str {
        self.0.to_str().unwrap()
    }

    fn artifact(&self, id: &str) -> std::path::PathBuf {
        self.0.join(format!("BENCH_{id}.json"))
    }
}

impl Drop for BenchDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Every scheme name, single-sourced from `SmrKind::ALL` so these tests grow
/// automatically when a scheme family is added.
fn all_scheme_names() -> Vec<&'static str> {
    SmrKind::ALL.iter().map(|s| s.name()).collect()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn list_prints_every_experiment_id() {
    let out = scot_bench(&["list"]);
    assert!(out.status.success(), "list must exit 0: {}", stderr(&out));
    let text = stdout(&out);
    for id in [
        "fig8a", "fig8b", "fig9a", "fig9b", "fig10a", "fig10b", "fig11a", "fig11b", "fig12a",
        "fig12b", "tab1", "tab2", "pool", "cache", "skiplist", "scan", "cursor", "faults",
        "service",
    ] {
        assert!(text.contains(id), "list output missing {id}:\n{text}");
    }
}

#[test]
fn exp_skiplist_sweeps_every_scheme_and_renders_the_table() {
    // This is also the exact invocation the CI smoke step runs (CI passes
    // `--bench-dir .` instead, committing the artifact at the repo root).
    let bench = BenchDir::new("skiplist");
    let out = scot_bench(&[
        "exp",
        "skiplist",
        "--seconds",
        "0.05",
        "--runs",
        "1",
        "--threads",
        "1",
        "--bench-dir",
        bench.arg(),
    ]);
    assert!(
        out.status.success(),
        "exp skiplist must exit 0: {}",
        stderr(&out)
    );
    let text = stdout(&out);
    for smr in all_scheme_names() {
        assert!(text.contains(smr), "skiplist table missing {smr}:\n{text}");
    }
    assert!(
        text.contains("SkipList") && text.contains("restarts"),
        "skiplist table must name the structure and the restart column:\n{text}"
    );
    // Every exp run emits the normalized trajectory artifact.
    let body = std::fs::read_to_string(bench.artifact("skiplist"))
        .expect("exp must write BENCH_skiplist.json");
    for smr in all_scheme_names() {
        assert!(
            body.contains(&format!("\"{smr}\"")),
            "bench artifact missing {smr}:\n{body}"
        );
    }
    assert!(body.contains("\"ops_per_sec\"") && body.contains("\"peak_unreclaimed\""));
}

#[test]
fn run_arm_accepts_the_skiplist_structure() {
    let out = scot_bench(&["run", "skiplist", "0.05", "64", "1", "50", "25", "25", "HP"]);
    assert!(out.status.success(), "run must exit 0: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("SkipList"),
        "row output missing ds name:\n{text}"
    );
}

#[test]
fn exp_cache_sweeps_every_scheme_and_renders_the_value_table() {
    let bench = BenchDir::new("cache");
    let out = scot_bench(&[
        "exp",
        "cache",
        "--seconds",
        "0.05",
        "--runs",
        "1",
        "--threads",
        "1",
        "--value-bytes",
        "32",
        "--bench-dir",
        bench.arg(),
    ]);
    assert!(
        out.status.success(),
        "exp cache must exit 0: {}",
        stderr(&out)
    );
    let text = stdout(&out);
    // Every scheme variant appears in the rendered table.
    for smr in all_scheme_names() {
        assert!(text.contains(smr), "cache table missing {smr}:\n{text}");
    }
    assert!(
        text.contains("32-byte values"),
        "--value-bytes must flow into the table header:\n{text}"
    );
}

#[test]
fn exp_pool_reports_a_throughput_delta() {
    let bench = BenchDir::new("pool");
    let out = scot_bench(&["exp", "pool", "--quick", "--bench-dir", bench.arg()]);
    assert!(
        out.status.success(),
        "exp pool must exit 0: {}",
        stderr(&out)
    );
    let text = stdout(&out);
    // Pool-on and pool-off arms for HMList and NMTree under EBR/HP/IBR...
    for label in ["EBR+pool", "EBR-pool", "HP+pool", "IBR+pool"] {
        assert!(text.contains(label), "missing {label} series:\n{text}");
    }
    // ...and the delta table comparing them.
    assert!(text.contains("delta"), "missing delta column:\n{text}");
    assert!(text.contains("HMList") && text.contains("NMTree"));
}

#[test]
fn exp_scan_sweeps_every_scheme_and_renders_the_table() {
    // This is also the exact invocation the CI smoke step runs (CI passes
    // `--bench-dir .` instead, committing the artifact at the repo root).
    let bench = BenchDir::new("scan");
    let out = scot_bench(&[
        "exp",
        "scan",
        "--seconds",
        "0.05",
        "--runs",
        "1",
        "--threads",
        "1",
        "--scan-lens",
        "8,32",
        "--bench-dir",
        bench.arg(),
    ]);
    assert!(
        out.status.success(),
        "exp scan must exit 0: {}",
        stderr(&out)
    );
    let text = stdout(&out);
    for smr in all_scheme_names() {
        assert!(text.contains(smr), "scan table missing {smr}:\n{text}");
    }
    assert!(
        text.contains("SkipList") && text.contains("NMTree"),
        "scan table must cover both ordered scan implementations:\n{text}"
    );
    assert!(
        text.contains("keys/scan") && text.contains("recoveries"),
        "scan table must render the scan and recovery columns:\n{text}"
    );
}

#[test]
fn run_arm_accepts_a_scan_mix() {
    // 20% scans of 16 keys each on the skip list.
    let out = scot_bench(&[
        "run", "skiplist", "0.05", "256", "1", "40", "20", "20", "HP", "20", "16",
    ]);
    assert!(out.status.success(), "run must exit 0: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("\"scanned_keys\""),
        "JSON output missing scan volume:\n{text}"
    );
}

#[test]
fn run_arm_rejects_scan_mix_not_summing_to_100() {
    let out = scot_bench(&[
        "run", "listlf", "0.05", "64", "1", "50", "25", "25", "EBR", "20",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("must sum to 100"));
}

#[test]
fn no_arguments_shows_usage_and_fails() {
    let out = scot_bench(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage:"));
}

#[test]
fn unknown_subcommand_shows_usage_and_fails() {
    let out = scot_bench(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage:"));
}

#[test]
fn run_arm_executes_a_short_workload() {
    // Mirrors the paper's `./bench listlf ...` invocation in miniature.
    let out = scot_bench(&["run", "listlf", "0.05", "64", "1", "50", "25", "25", "EBR"]);
    assert!(out.status.success(), "run must exit 0: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("HList"),
        "row output missing ds name:\n{text}"
    );
    assert!(
        text.contains("\"ops_per_sec\""),
        "JSON output missing:\n{text}"
    );
}

#[test]
fn run_arm_rejects_bad_ds_name() {
    let out = scot_bench(&["run", "bogusds", "0.05", "64", "1", "50", "25", "25", "EBR"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage:"));
}

#[test]
fn run_arm_rejects_bad_smr_name() {
    let out = scot_bench(&[
        "run", "listlf", "0.05", "64", "1", "50", "25", "25", "BOGUS",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage:"));
}

#[test]
fn run_arm_rejects_mix_not_summing_to_100() {
    let out = scot_bench(&["run", "listlf", "0.05", "64", "1", "60", "25", "25", "EBR"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("must sum to 100"));
}

#[test]
fn run_arm_rejects_wrong_arity() {
    let out = scot_bench(&["run", "listlf", "0.05"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn run_arm_rejects_unparseable_numbers() {
    let out = scot_bench(&["run", "listlf", "xyz", "64", "1", "50", "25", "25", "EBR"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("cannot parse seconds"));
}

#[test]
fn exp_arm_rejects_unknown_experiment_id() {
    let out = scot_bench(&["exp", "fig99", "--quick"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown experiment id"));
}

#[test]
fn exp_arm_rejects_unknown_option() {
    let out = scot_bench(&["exp", "fig8a", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown option"));
}

#[test]
fn exp_arm_requires_an_experiment_id() {
    let out = scot_bench(&["exp"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("usage:"));
}

#[test]
fn exp_faults_renders_the_verdict_table_and_artifact() {
    // The CI fault-smoke lane runs this same invocation (with `--bench-dir .`).
    // One fault class on the quick preset keeps the test cheap while still
    // driving the full phased runner for every scheme.
    let bench = BenchDir::new("faults");
    let out = scot_bench(&[
        "exp",
        "faults",
        "--quick",
        "--faults",
        "death",
        "--bench-dir",
        bench.arg(),
    ]);
    assert!(
        out.status.success(),
        "exp faults must exit 0: {}",
        stderr(&out)
    );
    let text = stdout(&out);
    for smr in all_scheme_names() {
        assert!(text.contains(smr), "faults table missing {smr}:\n{text}");
    }
    for col in ["fault", "robust", "peak", "bound", "verdict", "drained"] {
        assert!(text.contains(col), "faults table missing {col}:\n{text}");
    }
    assert!(
        text.contains("thread-death"),
        "faults table must name the injected fault class:\n{text}"
    );
    assert!(
        text.contains("0 robustness-claim violations"),
        "thread-death must not violate any scheme's robustness claim:\n{text}"
    );
    let body = std::fs::read_to_string(bench.artifact("faults"))
        .expect("exp faults must write BENCH_faults.json");
    for key in ["\"is_robust\"", "\"verdict\"", "\"peak\"", "\"drained\""] {
        assert!(body.contains(key), "fault artifact missing {key}:\n{body}");
    }
}

#[test]
fn exp_service_renders_latency_table_and_artifact() {
    // The CI latency-smoke lane runs this same invocation (with `--bench-dir .`).
    // The quick preset pins the phase schedule at its floors (~150ms total per
    // cell), so 5 schemes x 1 structure stays affordable for a CLI test.
    let bench = BenchDir::new("service");
    let out = scot_bench(&[
        "exp",
        "service",
        "--quick",
        "--threads",
        "1",
        "--zipf-theta",
        "0.9",
        "--bench-dir",
        bench.arg(),
    ]);
    assert!(
        out.status.success(),
        "exp service must exit 0: {}",
        stderr(&out)
    );
    let text = stdout(&out);
    for phase in ["warmup", "read-storm", "churn-spike", "reader-stall"] {
        assert!(
            text.contains(phase),
            "service table missing {phase}:\n{text}"
        );
    }
    for col in [
        "p50_ns",
        "p99_ns",
        "p999_ns",
        "peak",
        "restarts",
        "recoveries",
    ] {
        assert!(text.contains(col), "service table missing {col}:\n{text}");
    }
    for class in ["get", "insert", "remove", "scan"] {
        assert!(
            text.contains(class),
            "service table missing op class {class}:\n{text}"
        );
    }
    for smr in ["EBR", "HP", "IBR", "NBR", "VBR"] {
        assert!(text.contains(smr), "service table missing {smr}:\n{text}");
    }
    let body = std::fs::read_to_string(bench.artifact("service"))
        .expect("exp service must write BENCH_service.json");
    for key in [
        "\"phase\"",
        "\"op_class\"",
        "\"samples\"",
        "\"p50_ns\"",
        "\"p99_ns\"",
        "\"p999_ns\"",
    ] {
        assert!(
            body.contains(key),
            "service artifact missing {key}:\n{body}"
        );
    }
}

#[test]
fn exp_arm_rejects_negative_zipf_theta() {
    let out = scot_bench(&["exp", "service", "--quick", "--zipf-theta", "-1"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--zipf-theta"));
}

#[test]
fn bench_diff_gates_median_latency_regressions() {
    let bench = BenchDir::new("latdiff");
    let base = bench.0.join("base.json");
    let slow = bench.0.join("slow.json");
    // Same throughput in both artifacts: only the latency gate can fire.
    // The gate keys on p50 (stable across runs), not p99 (a handful of tail
    // samples on smoke-length phases).
    let record = |p50: u64| {
        format!(
            "{{\n  \"records\": [\n    {{\n      \"ds\": \"HList\",\n      \"smr\": \"HP\",\n      \"threads\": 1,\n      \"ops_per_sec\": 1000.0,\n      \"p50_ns\": {p50}\n    }}\n  ]\n}}\n"
        )
    };
    std::fs::write(&base, record(1000)).unwrap();
    std::fs::write(&slow, record(10000)).unwrap();

    let same = scot_bench(&["bench-diff", base.to_str().unwrap(), base.to_str().unwrap()]);
    assert!(
        same.status.success(),
        "identical latency must pass: {}",
        stderr(&same)
    );

    let bad = scot_bench(&[
        "bench-diff",
        base.to_str().unwrap(),
        slow.to_str().unwrap(),
        "--max-latency-regress",
        "100",
    ]);
    assert_eq!(
        bad.status.code(),
        Some(1),
        "a 10x p50 blowup must fail the gate: {}",
        stdout(&bad)
    );
    assert!(stdout(&bad).contains("LATENCY REGRESSION"));
}

#[test]
fn exp_arm_rejects_unknown_fault_class() {
    let out = scot_bench(&["exp", "faults", "--quick", "--faults", "bogus"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(
        err.contains("unknown fault class") && err.contains("reader-stall"),
        "error must name the bad class and list the known ones:\n{err}"
    );
}

#[test]
fn exp_arm_rejects_oversized_thread_count() {
    let out = scot_bench(&["exp", "tab2", "--quick", "--threads", "99999"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("thread count"));
}

#[test]
fn exp_arm_rejects_zero_threads() {
    let out = scot_bench(&["exp", "tab2", "--quick", "--threads", "0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("thread count"));
}

#[test]
fn exp_arm_rejects_zero_duration() {
    let out = scot_bench(&["exp", "tab2", "--seconds", "0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("duration"));
}

#[test]
fn run_arm_rejects_zero_duration() {
    let out = scot_bench(&["run", "listlf", "0", "64", "1", "50", "25", "25", "EBR"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("duration"));
}

#[test]
fn run_arm_rejects_oversized_thread_count() {
    let out = scot_bench(&[
        "run", "listlf", "0.05", "64", "99999", "50", "25", "25", "EBR",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("thread count"));
}

#[test]
fn exp_arm_rejects_trailing_flag_without_value() {
    // A flag as the last token used to walk off the end of argv and panic;
    // it must render an error instead.
    let out = scot_bench(&["exp", "tab2", "--seconds"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("needs a value"));
}

#[test]
fn bench_diff_passes_identical_artifacts_and_flags_regressions() {
    let bench = BenchDir::new("diff");
    let base = bench.0.join("base.json");
    let regressed = bench.0.join("regressed.json");
    // Minimal artifact in the committed BENCH_*.json shape: a `records` array
    // of per-point objects.
    let record = |ops: f64| {
        format!(
            "{{\n  \"records\": [\n    {{\n      \"ds\": \"HList\",\n      \"smr\": \"HP\",\n      \"threads\": 1,\n      \"ops_per_sec\": {ops}\n    }}\n  ]\n}}\n"
        )
    };
    std::fs::write(&base, record(1000.0)).unwrap();
    std::fs::write(&regressed, record(100.0)).unwrap();

    let same = scot_bench(&["bench-diff", base.to_str().unwrap(), base.to_str().unwrap()]);
    assert!(
        same.status.success(),
        "identical artifacts must pass: {}",
        stderr(&same)
    );
    assert!(stdout(&same).contains("0 regressed"));

    let bad = scot_bench(&[
        "bench-diff",
        base.to_str().unwrap(),
        regressed.to_str().unwrap(),
    ]);
    assert_eq!(bad.status.code(), Some(1), "a 10x drop must fail the gate");
    assert!(stdout(&bad).contains("REGRESSION"));
}

#[test]
fn bench_diff_rejects_missing_files() {
    let out = scot_bench(&["bench-diff", "/nonexistent/a.json", "/nonexistent/b.json"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn exp_cursor_renders_ablation_arms_and_deltas() {
    // This is also the exact invocation the CI cursor-smoke lane runs (CI
    // passes `--bench-dir .` instead, committing the artifact at the root).
    let bench = BenchDir::new("cursor");
    let out = scot_bench(&[
        "exp",
        "cursor",
        "--seconds",
        "0.05",
        "--runs",
        "1",
        "--threads",
        "1",
        "--bench-dir",
        bench.arg(),
    ]);
    assert!(
        out.status.success(),
        "exp cursor must exit 0: {}",
        stderr(&out)
    );
    let text = stdout(&out);
    // Every arm label appears for at least one scheme...
    for arm in ["+base", "+repin", "+prefetch", "+backoff", "+batch", "+all"] {
        assert!(
            text.contains(&format!("EBR{arm}")),
            "cursor output missing arm {arm}:\n{text}"
        );
    }
    // ...both structures are swept, and the delta table renders.
    assert!(text.contains("SkipList") && text.contains("NMTree"));
    for col in ["base ops/s", "+repin", "spins(all)"] {
        assert!(text.contains(col), "cursor table missing {col}:\n{text}");
    }
    let body = std::fs::read_to_string(bench.artifact("cursor"))
        .expect("exp cursor must write BENCH_cursor.json");
    assert!(body.contains("\"EBR+all\"") && body.contains("\"VBR+base\""));
}

#[test]
fn run_arm_accepts_tuning_flags_anywhere() {
    let out = scot_bench(&[
        "run",
        "listlf",
        "0.05",
        "64",
        "1",
        "50",
        "25",
        "25",
        "EBR",
        "--pin-batch",
        "16",
        "--backoff",
        "none",
        "--no-prefetch",
        "--no-chain-batch",
    ]);
    assert!(out.status.success(), "run must exit 0: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("spins="), "row output missing spins:\n{text}");
    assert!(
        text.contains("\"ops_per_sec\""),
        "JSON result missing:\n{text}"
    );
}

#[test]
fn run_arm_rejects_zero_pin_batch() {
    let out = scot_bench(&[
        "run",
        "listlf",
        "0.05",
        "64",
        "1",
        "50",
        "25",
        "25",
        "EBR",
        "--pin-batch",
        "0",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--pin-batch"));
}

#[test]
fn run_arm_rejects_unknown_backoff_mode() {
    let out = scot_bench(&[
        "run",
        "listlf",
        "0.05",
        "64",
        "1",
        "50",
        "25",
        "25",
        "EBR",
        "--backoff",
        "frantic",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr(&out);
    assert!(
        err.contains("unknown backoff mode") && err.contains("bounded"),
        "error must name the bad mode and list the known ones:\n{err}"
    );
}

#[test]
fn exp_arm_rejects_zero_pin_batch() {
    let out = scot_bench(&["exp", "tab2", "--quick", "--pin-batch", "0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--pin-batch"));
}

#[test]
fn bench_diff_fails_on_rows_missing_in_either_direction() {
    let bench = BenchDir::new("missingdiff");
    let two = bench.0.join("two.json");
    let one = bench.0.join("one.json");
    let record = |smr: &str| {
        format!(
            "    {{\n      \"ds\": \"HList\",\n      \"smr\": \"{smr}\",\n      \"threads\": 1,\n      \"ops_per_sec\": 1000.0\n    }}"
        )
    };
    std::fs::write(
        &two,
        format!(
            "{{\n  \"records\": [\n{},\n{}\n  ]\n}}\n",
            record("HP"),
            record("EBR")
        ),
    )
    .unwrap();
    std::fs::write(
        &one,
        format!("{{\n  \"records\": [\n{}\n  ]\n}}\n", record("HP")),
    )
    .unwrap();

    // Fresh side lost a row: the coverage shrink must fail the gate.
    let lost = scot_bench(&["bench-diff", two.to_str().unwrap(), one.to_str().unwrap()]);
    assert_eq!(lost.status.code(), Some(1), "a lost row must fail the gate");
    assert!(stdout(&lost).contains("MISSING FROM FRESH"));

    // Fresh side grew a row the baseline lacks: stale baseline, also a failure.
    let grew = scot_bench(&["bench-diff", one.to_str().unwrap(), two.to_str().unwrap()]);
    assert_eq!(grew.status.code(), Some(1), "a new row must fail the gate");
    assert!(stdout(&grew).contains("NOT IN BASELINE"));
}

#[test]
fn exp_arm_runs_tab2_with_custom_knobs() {
    // tab2 is the cheapest preset (2 structures x 1 scheme); constrain it
    // further so the CLI test stays fast while exercising the option parser.
    let bench = BenchDir::new("tab2");
    let out = scot_bench(&[
        "exp",
        "tab2",
        "--seconds",
        "0.05",
        "--runs",
        "1",
        "--threads",
        "1",
        "--bench-dir",
        bench.arg(),
    ]);
    assert!(out.status.success(), "exp must exit 0: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("=== tab2 ==="));
    assert!(
        text.contains("restart"),
        "tab2 must render the restart table"
    );
}
