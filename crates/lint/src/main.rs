//! CLI driver: `scot-lint check [--fix-safety-stubs] [--root <dir>]`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: scot-lint check [--fix-safety-stubs] [--root <dir>]\n\
     \n\
     Enforces the repo's concurrency-protocol invariants:\n\
     \x20 L1 unsafe-audit         every unsafe site carries // SAFETY:\n\
     \x20 L2 ordering-audit       Relaxed on protection state carries // ORDERING:\n\
     \x20 L3 slot-discipline      hazard slots are named HP_* constants\n\
     \x20 L4 matrix-completeness  SmrKind/DsKind matrices enumerate every variant\n\
     \x20 L5 guard-discipline     no mem::forget on guards; guards are #[must_use]\n\
     \n\
     Exit codes: 0 clean, 1 findings, 2 usage/IO error.\n\
     Grandfathered sites live in lint.allow (`RULE path[:line]` per line);\n\
     stale entries are findings, so the file can only shrink."
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    if cmd != "check" {
        eprintln!("scot-lint: unknown command {cmd:?}\n\n{}", usage());
        return ExitCode::from(2);
    }
    let mut opts = scot_lint::Options::default();
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fix-safety-stubs" => opts.fix_safety_stubs = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("scot-lint: --root needs a directory\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("scot-lint: unknown flag {other:?}\n\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    // Default root: the workspace this binary was built from, so
    // `cargo run -p scot-lint -- check` works from any cwd inside it.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });

    match scot_lint::check(&root, &opts) {
        Err(e) => {
            eprintln!("scot-lint: {e}");
            ExitCode::from(2)
        }
        Ok(report) => {
            for f in &report.findings {
                println!("{f}\n");
            }
            for stale in &report.stale_allows {
                println!("error[allowlist]: stale lint.allow entry (matches nothing): {stale}\n");
            }
            if report.is_clean() {
                println!(
                    "scot-lint: clean — {} files scanned, 5 rules, 0 findings",
                    report.files_scanned
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "scot-lint: {} finding(s), {} stale allowlist entr(ies) across {} files",
                    report.findings.len(),
                    report.stale_allows.len(),
                    report.files_scanned
                );
                ExitCode::FAILURE
            }
        }
    }
}
