//! A line-oriented Rust source scanner: no parse tree, just a faithful split
//! of every line into *code* (comments stripped, string/char contents
//! blanked) and *comment text* (everything the compiler ignores, which is
//! where `// SAFETY:` / `// ORDERING:` justifications live).
//!
//! The scanner understands exactly as much Rust lexing as the rules need and
//! no more: line comments, nested block comments, doc comments, string /
//! raw-string / byte-string / char literals (so `"unsafe"` in a string never
//! looks like code), and the lifetime-vs-char-literal ambiguity around `'`.
//! Everything else passes through as code.

/// One scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the lint root, with `/` separators.
    pub rel: String,
    /// The raw line text (used only for extracting string-literal contents,
    /// e.g. display names in `name()` match arms).
    pub raw: Vec<String>,
    /// Line text with comments removed and string/char contents blanked.
    pub code: Vec<String>,
    /// Comment text per line (line + block + doc comments, concatenated).
    pub comment: Vec<String>,
    /// `true` for every line inside a `#[cfg(test)] mod … { … }` region.
    pub test_lines: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

impl SourceFile {
    /// Scans `src` into per-line code/comment channels.
    pub fn scan(rel: String, src: &str) -> SourceFile {
        let mut code_lines = Vec::new();
        let mut comment_lines = Vec::new();
        let mut raw_lines = Vec::new();
        let mut state = State::Normal;

        for line in src.lines() {
            raw_lines.push(line.to_string());
            let mut code = String::with_capacity(line.len());
            let mut comment = String::new();
            let chars: Vec<char> = line.chars().collect();
            let mut i = 0usize;
            if state == State::LineComment {
                state = State::Normal; // line comments never span lines
            }
            while i < chars.len() {
                let c = chars[i];
                let next = chars.get(i + 1).copied();
                match state {
                    State::Normal => match c {
                        '/' if next == Some('/') => {
                            state = State::LineComment;
                            comment.push_str(&line[byte_ix(line, i)..]);
                            break;
                        }
                        '/' if next == Some('*') => {
                            state = State::BlockComment(1);
                            i += 2;
                        }
                        '"' => {
                            code.push('"');
                            state = State::Str;
                            i += 1;
                        }
                        'r' | 'b' if is_raw_or_byte_start(&chars, i) => {
                            let (consumed, new_state) = enter_raw_or_byte(&chars, i);
                            for _ in 0..consumed {
                                code.push(' ');
                            }
                            // Keep the opening quote visible so argument
                            // splitting still sees a token boundary.
                            state = new_state;
                            i += consumed;
                        }
                        '\'' => {
                            // Char literal iff it closes within a couple of
                            // chars ('x' or '\n'); otherwise a lifetime.
                            if next == Some('\\') {
                                code.push('\'');
                                state = State::Char;
                                i += 1;
                            } else if chars.get(i + 2) == Some(&'\'') && next != Some('\'') {
                                code.push_str("' '");
                                i += 3;
                            } else {
                                code.push('\'');
                                i += 1;
                            }
                        }
                        _ => {
                            code.push(c);
                            i += 1;
                        }
                    },
                    State::LineComment => unreachable!("broken out of the loop above"),
                    State::BlockComment(depth) => {
                        if c == '*' && next == Some('/') {
                            if depth == 1 {
                                state = State::Normal;
                            } else {
                                state = State::BlockComment(depth - 1);
                            }
                            i += 2;
                        } else if c == '/' && next == Some('*') {
                            state = State::BlockComment(depth + 1);
                            i += 2;
                        } else {
                            comment.push(c);
                            i += 1;
                        }
                    }
                    State::Str => match c {
                        '\\' => {
                            code.push(' ');
                            if next.is_some() {
                                code.push(' ');
                                i += 2;
                            } else {
                                i += 1; // escaped newline: string continues
                            }
                        }
                        '"' => {
                            code.push('"');
                            state = State::Normal;
                            i += 1;
                        }
                        _ => {
                            code.push(' ');
                            i += 1;
                        }
                    },
                    State::RawStr(hashes) => {
                        if c == '"' && closes_raw(&chars, i, hashes) {
                            code.push('"');
                            for _ in 0..hashes {
                                code.push(' ');
                            }
                            state = State::Normal;
                            i += 1 + hashes as usize;
                        } else {
                            code.push(' ');
                            i += 1;
                        }
                    }
                    State::Char => match c {
                        '\\' => {
                            code.push(' ');
                            if next.is_some() {
                                code.push(' ');
                                i += 2;
                            } else {
                                i += 1;
                            }
                        }
                        '\'' => {
                            code.push('\'');
                            state = State::Normal;
                            i += 1;
                        }
                        _ => {
                            code.push(' ');
                            i += 1;
                        }
                    },
                }
            }
            code_lines.push(code);
            comment_lines.push(comment);
        }

        let test_lines = mark_test_regions(&code_lines);
        SourceFile {
            rel,
            raw: raw_lines,
            code: code_lines,
            comment: comment_lines,
            test_lines,
        }
    }

    /// Whether line `i` (0-based) carries a marker comment — on the line
    /// itself, or in the contiguous comment/attribute block directly above.
    /// Attribute lines (`#[…]`) may sit between the marker and the code, so
    /// `// SAFETY:` above `#[inline] unsafe fn …` is accepted.
    pub fn marker_above(&self, i: usize, markers: &[&str]) -> Option<String> {
        let hit = |text: &str| markers.iter().any(|m| text.contains(m));
        if hit(&self.comment[i]) {
            return Some(self.comment[i].clone());
        }
        let mut j = i;
        while j > 0 {
            j -= 1;
            let code = self.code[j].trim();
            let comment = self.comment[j].trim();
            if code.is_empty() && !comment.is_empty() {
                if hit(comment) {
                    return Some(comment.to_string());
                }
                continue; // keep walking up the comment block
            }
            if comment.is_empty() && (code.starts_with("#[") || code.starts_with("#![")) {
                continue; // attributes between comment and item
            }
            break; // any other code (or a blank line) ends the block
        }
        None
    }

    /// Identifiers appearing in the code channel of line `i`.
    pub fn idents(&self, i: usize) -> Vec<&str> {
        idents_of(&self.code[i])
    }
}

/// Splits a code line into Rust identifiers (ASCII is all this repo uses).
pub fn idents_of(code: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut start = None;
    for (ix, &b) in bytes.iter().enumerate() {
        let is_ident = b == b'_' || b.is_ascii_alphanumeric();
        match (start, is_ident) {
            (None, true) => start = Some(ix),
            (Some(s), false) => {
                if !bytes[s].is_ascii_digit() {
                    out.push(&code[s..ix]);
                }
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        if !bytes[s].is_ascii_digit() {
            out.push(&code[s..]);
        }
    }
    out
}

/// Whether `needle` occurs in `hay` as a whole word (no identifier chars on
/// either side).
pub fn word_in(hay: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0
            || !hay.as_bytes()[at - 1].is_ascii_alphanumeric() && hay.as_bytes()[at - 1] != b'_';
        let end = at + needle.len();
        let after_ok = end == hay.len()
            || !hay.as_bytes()[end].is_ascii_alphanumeric() && hay.as_bytes()[end] != b'_';
        if before_ok && after_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

fn byte_ix(line: &str, char_ix: usize) -> usize {
    line.char_indices()
        .nth(char_ix)
        .map(|(b, _)| b)
        .unwrap_or(line.len())
}

fn is_raw_or_byte_start(chars: &[char], i: usize) -> bool {
    // Only at an identifier boundary: `br#"` yes, `attr"` no.
    if i > 0 {
        let p = chars[i - 1];
        if p == '_' || p.is_ascii_alphanumeric() {
            return false;
        }
    }
    let rest = &chars[i..];
    match rest {
        ['b', '\'', ..] => true,
        ['b', '"', ..] => true,
        ['b', 'r', t @ ..] | ['r', t @ ..] => {
            let mut k = 0;
            while t.get(k) == Some(&'#') {
                k += 1;
            }
            t.get(k) == Some(&'"')
        }
        _ => false,
    }
}

fn enter_raw_or_byte(chars: &[char], i: usize) -> (usize, State) {
    let rest = &chars[i..];
    if rest.starts_with(&['b', '\'']) {
        return (2, State::Char);
    }
    if rest.starts_with(&['b', '"']) {
        return (2, State::Str);
    }
    let (mut k, _byte) = if rest.starts_with(&['b', 'r']) {
        (2, true)
    } else {
        (1, false)
    };
    let mut hashes = 0u32;
    while rest.get(k) == Some(&'#') {
        hashes += 1;
        k += 1;
    }
    debug_assert_eq!(rest.get(k), Some(&'"'));
    (k + 1, State::RawStr(hashes))
}

fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Marks every line inside a `#[cfg(test)]`-gated `mod` block.  Scheme files
/// keep their unit tests inline; rules that audit *production* discipline
/// (L5's `mem::forget` ban) skip these regions, because leaking a guard on
/// purpose is exactly what fault/stall tests do.
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let mut test = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if code[i].contains("#[cfg(test)]") {
            // Find the `mod … {` this attribute gates (within a few lines).
            let mut j = i;
            let mut found = None;
            while j < code.len().min(i + 4) {
                if word_in(&code[j], "mod") {
                    found = Some(j);
                    break;
                }
                j += 1;
            }
            if let Some(start) = found {
                let mut depth = 0i32;
                let mut opened = false;
                let mut k = start;
                while k < code.len() {
                    for b in code[k].bytes() {
                        match b {
                            b'{' => {
                                depth += 1;
                                opened = true;
                            }
                            b'}' => depth -= 1,
                            _ => {}
                        }
                    }
                    test[k] = true;
                    if opened && depth <= 0 {
                        break;
                    }
                    k += 1;
                }
                i = k + 1;
                continue;
            }
        }
        i += 1;
    }
    test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_stripped() {
        let f = SourceFile::scan(
            "t.rs".into(),
            "let x = \"unsafe // not code\"; // SAFETY: trailing\nunsafe { y() }",
        );
        assert!(!f.code[0].contains("unsafe"));
        assert!(f.comment[0].contains("SAFETY:"));
        assert!(word_in(&f.code[1], "unsafe"));
    }

    #[test]
    fn nested_block_comments() {
        let f = SourceFile::scan("t.rs".into(), "/* a /* b */ still comment */ code()");
        assert!(f.code[0].contains("code()"));
        assert!(!f.code[0].contains("still"));
        assert!(f.comment[0].contains("still comment"));
    }

    #[test]
    fn raw_strings_hide_contents() {
        let f = SourceFile::scan("t.rs".into(), r##"let s = r#"unsafe " quote"# ; f()"##);
        assert!(!f.code[0].contains("unsafe"));
        assert!(f.code[0].contains("f()"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let f = SourceFile::scan("t.rs".into(), "fn f<'a>(x: &'a str) { let c = '{'; }");
        // The brace inside the char literal must not look like code.
        let opens = f.code[0].bytes().filter(|&b| b == b'{').count();
        let closes = f.code[0].bytes().filter(|&b| b == b'}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn marker_above_walks_comments_and_attrs() {
        let f = SourceFile::scan(
            "t.rs".into(),
            "// SAFETY: fine\n#[inline]\nunsafe fn g() {}\n\nunsafe fn h() {}",
        );
        assert!(f.marker_above(2, &["SAFETY:"]).is_some());
        assert!(f.marker_above(4, &["SAFETY:"]).is_none());
    }

    #[test]
    fn test_regions_are_marked() {
        let f = SourceFile::scan(
            "t.rs".into(),
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}",
        );
        assert!(!f.test_lines[0]);
        assert!(f.test_lines[2] && f.test_lines[3] && f.test_lines[4]);
        assert!(!f.test_lines[5]);
    }
}
