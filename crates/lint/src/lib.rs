//! `scot-lint` — a protocol-invariant static analyzer for the SCOT/SMR
//! stack.
//!
//! The reclamation protocol this repository implements (validate before
//! deref, publish protections before use, one slot-map table, closed
//! scheme×structure matrices) is exactly the kind of invariant Rust's type
//! system cannot see: a missing `// SAFETY:` argument, a hazard index that
//! bypasses the slot map, or a dispatch `match` that silently forgot the
//! newest scheme all compile cleanly and fail only under churn.  This crate
//! walks the workspace sources with a hand-rolled scanner (no parser
//! dependencies — it must build in the vendored-offline environment) and
//! enforces five named rules:
//!
//! | rule | name | invariant |
//! |------|------|-----------|
//! | `L1` | `unsafe-audit` | every `unsafe` site in `crates/smr` + `crates/scot` carries a `// SAFETY:` (or `# Safety` doc) justification |
//! | `L2` | `ordering-audit` | every `Ordering::Relaxed` on protection-publication state carries an `// ORDERING:` justification |
//! | `L3` | `slot-discipline` | hazard-slot indices are the named `HP_*` constants, never raw integers, outside `scot::slots` |
//! | `L4` | `matrix-completeness` | `SmrKind`/`DsKind` dispatch matches, test matrices and doc tables enumerate the full variant set |
//! | `L5` | `guard-discipline` | no `mem::forget`/`ManuallyDrop` on guards outside `faults.rs`; guard types and `fn pin` are `#[must_use]` |
//!
//! Violations can be grandfathered in a committed `lint.allow` file (one
//! `RULE path[:line]` entry per line) or suppressed at the site with a
//! `LINT-ALLOW: <rule>` comment; both are meant to be empty-or-justified,
//! and *stale* allowlist entries are themselves findings so the file can
//! only shrink.

#![forbid(unsafe_code)]

pub mod rules;
pub mod scan;

use rules::DocFile;
use scan::SourceFile;
use std::fmt;
use std::path::{Path, PathBuf};

/// Rule identifiers; `Display` renders the `L<n>` id used in diagnostics,
/// allowlist entries and `LINT-ALLOW` comments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// unsafe-audit.
    L1,
    /// ordering-audit.
    L2,
    /// slot-discipline.
    L3,
    /// matrix-completeness.
    L4,
    /// guard-discipline.
    L5,
}

impl Rule {
    /// All rules, in id order.
    pub const ALL: [Rule; 5] = [Rule::L1, Rule::L2, Rule::L3, Rule::L4, Rule::L5];

    /// The short id (`L1`).
    pub fn id(&self) -> &'static str {
        match self {
            Rule::L1 => "L1",
            Rule::L2 => "L2",
            Rule::L3 => "L3",
            Rule::L4 => "L4",
            Rule::L5 => "L5",
        }
    }

    /// The human name (`unsafe-audit`).
    pub fn name(&self) -> &'static str {
        match self {
            Rule::L1 => "unsafe-audit",
            Rule::L2 => "ordering-audit",
            Rule::L3 => "slot-discipline",
            Rule::L4 => "matrix-completeness",
            Rule::L5 => "guard-discipline",
        }
    }

    /// Parses `L1`..`L5` (or the rule name).
    pub fn parse(s: &str) -> Option<Rule> {
        Rule::ALL
            .into_iter()
            .find(|r| r.id().eq_ignore_ascii_case(s) || r.name() == s)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// Root-relative path with `/` separators.
    pub file: String,
    /// 1-based line number (0 = whole-file finding).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "error[{} {}]: {}",
            self.rule.id(),
            self.rule.name(),
            self.message
        )?;
        if self.line > 0 {
            write!(f, "  --> {}:{}", self.file, self.line)
        } else {
            write!(f, "  --> {}", self.file)
        }
    }
}

/// The outcome of a `check` run.
pub struct Report {
    /// Findings that survived the allowlist, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Allowlist entries that matched nothing (stale — these fail the run
    /// too, so `lint.allow` can only shrink).
    pub stale_allows: Vec<String>,
    /// Number of Rust files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the run is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.stale_allows.is_empty()
    }
}

/// One parsed `lint.allow` entry: `RULE path[:line]` (anything after `#` is
/// a comment).
#[derive(Debug, PartialEq)]
struct AllowEntry {
    rule: Rule,
    file: String,
    line: Option<usize>,
    raw: String,
}

fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut out = Vec::new();
    for (ix, line) in text.lines().enumerate() {
        let stripped = line.split('#').next().unwrap_or("").trim();
        if stripped.is_empty() {
            continue;
        }
        let mut parts = stripped.split_whitespace();
        let (rule, target) = match (parts.next(), parts.next(), parts.next()) {
            (Some(r), Some(t), None) => (r, t),
            _ => {
                return Err(format!(
                    "lint.allow:{}: expected `RULE path[:line]`, got {stripped:?}",
                    ix + 1
                ))
            }
        };
        let rule = Rule::parse(rule)
            .ok_or_else(|| format!("lint.allow:{}: unknown rule {rule:?}", ix + 1))?;
        let (file, line_no) = match target.rsplit_once(':') {
            Some((f, n)) if n.bytes().all(|b| b.is_ascii_digit()) && !n.is_empty() => {
                (f.to_string(), Some(n.parse::<usize>().unwrap()))
            }
            _ => (target.to_string(), None),
        };
        out.push(AllowEntry {
            rule,
            file,
            line: line_no,
            raw: stripped.to_string(),
        });
    }
    Ok(out)
}

/// Options for a `check` run.
#[derive(Default)]
pub struct Options {
    /// Insert `// SAFETY: TODO(audit): …` stubs above uncovered `unsafe`
    /// sites (the stubs still count as L1 findings until filled in).
    pub fix_safety_stubs: bool,
}

/// Runs every rule over the workspace rooted at `root`.
pub fn check(root: &Path, opts: &Options) -> Result<Report, String> {
    let files = load_sources(root)?;
    let docs = load_docs(root)?;

    let mut findings = Vec::new();
    findings.extend(rules::l1_unsafe_audit(&files));
    findings.extend(rules::l2_ordering_audit(&files));
    findings.extend(rules::l3_slot_discipline(&files));
    findings.extend(rules::l4_matrix_completeness(&files, &docs));
    findings.extend(rules::l5_guard_discipline(&files));

    // Site-level suppression: `LINT-ALLOW: L<n>` in a comment on the line or
    // directly above it.
    findings.retain(|f| {
        if f.line == 0 {
            return true;
        }
        let Some(src) = files.iter().find(|s| s.rel == f.file) else {
            return true;
        };
        src.marker_above(f.line - 1, &[&format!("LINT-ALLOW: {}", f.rule.id())])
            .is_none()
    });

    if opts.fix_safety_stubs {
        let stubbed = write_safety_stubs(root, &findings)?;
        if stubbed > 0 {
            // Re-run so line numbers and stub findings reflect the new text.
            return check(root, &Options::default());
        }
    }

    // Allowlist.
    let allow_path = root.join("lint.allow");
    let allows = match std::fs::read_to_string(&allow_path) {
        Ok(text) => parse_allowlist(&text)?,
        Err(_) => Vec::new(),
    };
    let mut used = vec![false; allows.len()];
    findings.retain(|f| {
        for (ix, a) in allows.iter().enumerate() {
            if a.rule == f.rule && a.file == f.file && a.line.is_none_or(|l| l == f.line) {
                used[ix] = true;
                return false;
            }
        }
        true
    });
    let stale_allows = allows
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(a, _)| a.raw.clone())
        .collect();

    findings.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    Ok(Report {
        findings,
        stale_allows,
        files_scanned: files.len(),
    })
}

/// Walks the workspace's own Rust sources: `crates/*/src`, top-level
/// `tests/`, `src/`, `examples/`.  `vendor/`, `target/` and the lint's own
/// test fixtures (which contain violations *on purpose*) are excluded.
fn load_sources(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    for top in ["crates", "tests", "src", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut paths)?;
        }
    }
    paths.sort();
    let mut files = Vec::new();
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .map_err(|e| e.to_string())?
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if rel.contains("/fixtures/") || rel.starts_with("crates/lint/tests/") {
            continue;
        }
        let text = std::fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
        files.push(SourceFile::scan(rel, &text));
    }
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "vendor" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn load_docs(root: &Path) -> Result<Vec<DocFile>, String> {
    let mut docs = Vec::new();
    for rel in ["README.md", "DESIGN.md"] {
        let p = root.join(rel);
        if let Ok(text) = std::fs::read_to_string(&p) {
            docs.push(DocFile {
                rel: rel.to_string(),
                lines: text.lines().map(str::to_string).collect(),
            });
        }
    }
    Ok(docs)
}

/// Inserts a `// SAFETY: TODO(audit)` stub above every L1 finding, matching
/// the site's indentation.  Returns how many stubs were written.
fn write_safety_stubs(root: &Path, findings: &[Finding]) -> Result<usize, String> {
    let mut by_file: std::collections::BTreeMap<&str, Vec<usize>> = Default::default();
    for f in findings {
        if f.rule == Rule::L1 && f.line > 0 && !f.message.contains("TODO") {
            by_file.entry(&f.file).or_default().push(f.line);
        }
    }
    let mut written = 0;
    for (rel, mut lines) in by_file {
        let path = root.join(rel);
        let text = std::fs::read_to_string(&path).map_err(|e| format!("{rel}: {e}"))?;
        let mut out: Vec<String> = text.lines().map(str::to_string).collect();
        lines.sort_unstable_by(|a, b| b.cmp(a)); // bottom-up keeps indices valid
        for line in lines {
            let ix = line - 1;
            let indent: String = out[ix].chars().take_while(|c| c.is_whitespace()).collect();
            out.insert(
                ix,
                format!(
                    "{indent}// SAFETY: TODO(audit): document the invariant that makes this sound."
                ),
            );
            written += 1;
        }
        let mut joined = out.join("\n");
        if text.ends_with('\n') {
            joined.push('\n');
        }
        std::fs::write(&path, joined).map_err(|e| format!("{rel}: {e}"))?;
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_parses_and_rejects() {
        let entries =
            parse_allowlist("# comment\nL1 crates/smr/src/hp.rs:10\nL4 README.md  # table\n")
                .unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rule, Rule::L1);
        assert_eq!(entries[0].line, Some(10));
        assert_eq!(entries[1].line, None);
        assert!(parse_allowlist("L9 foo.rs").is_err());
        assert!(parse_allowlist("L1").is_err());
    }

    #[test]
    fn rule_ids_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::parse(r.id()), Some(r));
            assert_eq!(Rule::parse(r.name()), Some(r));
        }
    }
}
