//! The rule catalog.  Each rule is a pure function from scanned sources to
//! findings; `DESIGN.md § Static analysis` documents the invariant behind
//! each one and what a justification comment must say.

use crate::scan::{idents_of, word_in, SourceFile};
use crate::{Finding, Rule};

/// A non-Rust documentation file (README.md / DESIGN.md), checked by L4.
pub struct DocFile {
    /// Path relative to the lint root.
    pub rel: String,
    /// Raw lines.
    pub lines: Vec<String>,
}

fn in_scope(file: &SourceFile, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| file.rel.starts_with(p))
}

fn finding(rule: Rule, file: &str, line0: usize, message: String) -> Finding {
    Finding {
        rule,
        file: file.to_string(),
        line: line0 + 1,
        message,
    }
}

// ---------------------------------------------------------------------------
// L1 · unsafe-audit
// ---------------------------------------------------------------------------

/// Every `unsafe` site in the core crates must carry a justification: a
/// `// SAFETY:` comment directly above (attributes may intervene), a trailing
/// `// SAFETY:` on the same line, or — for `unsafe fn`/`unsafe trait`
/// declarations — a `# Safety` section in the doc comment.  A stub left by
/// `--fix-safety-stubs` (contains `TODO`) still counts as a violation: the
/// flag produces *placeholders to fill in*, not passes.
pub fn l1_unsafe_audit(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if !in_scope(f, &["crates/smr/src/", "crates/scot/src/"]) {
            continue;
        }
        for i in 0..f.code.len() {
            // `unsafe fn(` is a function-pointer *type*, not a definition —
            // there is no body whose soundness needs arguing at this site.
            let line = f.code[i].replace("unsafe fn(", "");
            if !word_in(&line, "unsafe") {
                continue;
            }
            let form = if f.code[i].contains("unsafe fn") {
                "`unsafe fn`"
            } else if f.code[i].contains("unsafe impl") {
                "`unsafe impl`"
            } else if f.code[i].contains("unsafe trait") {
                "`unsafe trait`"
            } else {
                "`unsafe` block"
            };
            match f.marker_above(i, &["SAFETY:", "# Safety"]) {
                None => out.push(finding(
                    Rule::L1,
                    &f.rel,
                    i,
                    format!("{form} without a `// SAFETY:` justification"),
                )),
                Some(text) if text.contains("TODO") => out.push(finding(
                    Rule::L1,
                    &f.rel,
                    i,
                    format!("{form} carries an unaudited `SAFETY: TODO` stub"),
                )),
                Some(_) => {}
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L2 · ordering-audit
// ---------------------------------------------------------------------------

/// Identifier components that name protection-publication state: hazard
/// slots, era/epoch/checkpoint words, liveness beacons, interval bounds
/// (IBR/HE `lower`/`upper`), recycling version stamps, and the pool
/// free-list links.  A `Ordering::Relaxed` that touches one of these is
/// load-bearing for the reclamation protocol and must say *why* relaxed is
/// enough in an `// ORDERING:` comment.
const PROTECTION_STEMS: &[&str] = &[
    "hazard",
    "hazards",
    "era",
    "eras",
    "epoch",
    "epochs",
    "checkpoint",
    "checkpoints",
    "beacon",
    "beacons",
    "announce",
    "announced",
    "lower",
    "upper",
    "version",
    "versions",
    "head",
    "next",
    "neutralize",
    "neutralized",
    "phase",
];

fn touches_protection_word(code: &str) -> bool {
    idents_of(code).iter().any(|id| {
        id.split('_')
            .any(|component| PROTECTION_STEMS.contains(&component.to_ascii_lowercase().as_str()))
    })
}

/// `Ordering::Relaxed` on protection-publication state must carry an
/// `// ORDERING:` justification.  The previous line is inspected too, because
/// rustfmt regularly splits `x.store(v, Ordering::Relaxed)` across lines and
/// the field name lands one line up.
pub fn l2_ordering_audit(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if !in_scope(f, &["crates/smr/src/", "crates/scot/src/"]) {
            continue;
        }
        for i in 0..f.code.len() {
            if !f.code[i].contains("Ordering::Relaxed") {
                continue;
            }
            let mut relevant = touches_protection_word(&f.code[i]);
            if !relevant && i > 0 {
                let prev = f.code[i - 1].trim_end();
                // Only join with the previous line when it is visibly the
                // same statement (does not end one).
                if !prev.ends_with(';') && !prev.ends_with('}') && !prev.ends_with('{') {
                    relevant = touches_protection_word(prev);
                }
            }
            if relevant && f.marker_above(i, &["ORDERING:"]).is_none() {
                out.push(finding(
                    Rule::L2,
                    &f.rel,
                    i,
                    "`Ordering::Relaxed` on protection-publication state without an \
                     `// ORDERING:` justification"
                        .to_string(),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L3 · slot-discipline
// ---------------------------------------------------------------------------

/// Hazard-slot indices passed to `protect` / `protect_link` / `dup` must be
/// the named `HP_*` constants from `scot::slots` — a raw integer bypasses the
/// one documented slot-map table and is exactly how two call sites end up
/// silently sharing a slot.  `crates/scot/src/slots.rs` itself (where the
/// constants are defined) is exempt.
pub fn l3_slot_discipline(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if !f.rel.starts_with("crates/scot/src/") || f.rel.ends_with("/slots.rs") {
            continue;
        }
        for i in 0..f.code.len() {
            let code = &f.code[i];
            for callee in ["protect_link(", "protect(", "dup("] {
                let mut from = 0;
                while let Some(pos) = code[from..].find(callee) {
                    let at = from + pos;
                    from = at + callee.len();
                    // Skip declarations (`fn protect(`) and longer names that
                    // merely end with the callee (`reprotect(`).
                    let before = code[..at].trim_end();
                    if before.ends_with("fn") {
                        continue;
                    }
                    if at > 0 {
                        let b = code.as_bytes()[at - 1];
                        if b == b'_' || b.is_ascii_alphanumeric() {
                            continue;
                        }
                    }
                    let args = &code[at + callee.len()..];
                    let n_slot_args = if callee == "dup(" { 2 } else { 1 };
                    for (argi, arg) in args.split(',').take(n_slot_args).enumerate() {
                        let arg = arg.trim().trim_end_matches([')', ';']);
                        if !arg.is_empty() && arg.bytes().all(|b| b.is_ascii_digit()) {
                            out.push(finding(
                                Rule::L3,
                                &f.rel,
                                i,
                                format!(
                                    "raw slot index `{arg}` in `{}` argument {} — use the \
                                     named `HP_*` constants from `scot::slots`",
                                    callee.trim_end_matches('('),
                                    argi + 1,
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L4 · matrix-completeness
// ---------------------------------------------------------------------------

/// What the lint learned about one `#[derive(...)] enum` that the repo
/// treats as a closed matrix axis (`SmrKind`, `DsKind`).
pub struct EnumInfo {
    /// Enum name (`SmrKind`).
    pub name: String,
    /// File it was parsed from.
    pub file: String,
    /// Variant identifiers, in declaration order.
    pub variants: Vec<String>,
    /// Variants enumerated by the `ALL` const.
    pub all: Vec<String>,
    /// `(variant, display)` pairs from the `name()` match.
    pub display: Vec<(String, String)>,
    /// Variants referenced anywhere in the `parse()` body.
    pub parse_refs: Vec<String>,
}

impl EnumInfo {
    fn display_of(&self, variant: &str) -> Option<&str> {
        self.display
            .iter()
            .find(|(v, _)| v == variant)
            .map(|(_, d)| d.as_str())
    }
}

/// Extracts variant idents, the `ALL` array, and `name()` display strings for
/// `enum_name` from `file`.
pub fn parse_enum(file: &SourceFile, enum_name: &str) -> Option<EnumInfo> {
    let decl = format!("enum {enum_name}");
    let start = (0..file.code.len()).find(|&i| file.code[i].contains(&decl))?;
    let (block, _) = collect_block(file, start, '{', '}')?;
    let mut variants = Vec::new();
    for seg in block.split(',') {
        if let Some(id) = idents_of(seg)
            .into_iter()
            .find(|id| id.chars().next().is_some_and(|c| c.is_ascii_uppercase()))
        {
            variants.push(id.to_string());
        }
    }

    let all_start = (0..file.code.len()).find(|&i| {
        file.code[i].contains("const ALL") && {
            // The const must belong to this enum: its type annotation names it.
            file.code[i].contains(enum_name)
        }
    });
    let all = match all_start {
        Some(i) => {
            // Start after the `=` so the `[SmrKind; 11]` type annotation's
            // brackets are not mistaken for the initializer array.
            let col = file.code[i].find('=').map(|p| p + 1).unwrap_or(0);
            let (block, _) = collect_block_at(file, i, col, '[', ']')?;
            enum_refs(&block, enum_name)
        }
        None => Vec::new(),
    };

    let parse_refs = match (0..file.code.len()).find(|&i| file.code[i].contains("fn parse")) {
        Some(i) => {
            let (block, _) = collect_block(file, i, '{', '}')?;
            enum_refs(&block, enum_name)
        }
        None => Vec::new(),
    };

    let mut display = Vec::new();
    if let Some(i) = (0..file.code.len()).find(|&i| file.code[i].contains("fn name")) {
        if let Some((_, end)) = collect_block(file, i, '{', '}') {
            let needle = format!("{enum_name}::");
            for j in i..=end.min(file.raw.len() - 1) {
                let code = &file.code[j];
                if let Some(p) = code.find(&needle) {
                    let variant: String = code[p + needle.len()..]
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                        .collect();
                    // Pull the display string out of the raw line (the code
                    // channel blanks string contents).
                    let raw = &file.raw[j];
                    if let Some(q) = raw.find("=> \"") {
                        let rest = &raw[q + 4..];
                        if let Some(e) = rest.find('"') {
                            display.push((variant, rest[..e].to_string()));
                        }
                    }
                }
            }
        }
    }

    Some(EnumInfo {
        name: enum_name.to_string(),
        file: file.rel.clone(),
        variants,
        all,
        display,
        parse_refs,
    })
}

/// Concatenates the code channel from the first `open` delimiter at/after
/// `start_line` to its matching `close`, returning the text and the end line.
fn collect_block(
    file: &SourceFile,
    start_line: usize,
    open: char,
    close: char,
) -> Option<(String, usize)> {
    collect_block_at(file, start_line, 0, open, close)
}

/// Like [`collect_block`] but starts looking at byte column `start_col` of
/// the first line.
fn collect_block_at(
    file: &SourceFile,
    start_line: usize,
    start_col: usize,
    open: char,
    close: char,
) -> Option<(String, usize)> {
    let mut depth = 0i32;
    let mut begun = false;
    let mut text = String::new();
    for i in start_line..file.code.len().min(start_line + 600) {
        let line = if i == start_line && start_col <= file.code[i].len() {
            &file.code[i][start_col..]
        } else {
            &file.code[i]
        };
        for c in line.chars() {
            if c == open {
                depth += 1;
                begun = true;
            } else if c == close {
                depth -= 1;
            }
            if begun {
                text.push(c);
            }
            if begun && depth == 0 {
                return Some((text, i));
            }
        }
        text.push('\n');
    }
    None
}

/// Like [`enum_refs`] but keeps only references in *pattern position*: the
/// next non-whitespace token after the variant is `=>` or `|`.  This is what
/// distinguishes a dispatch `match smr { SmrKind::Nr => … }` from a match
/// whose *bodies* happen to mention the enum.
fn enum_pattern_refs(text: &str, enum_name: &str) -> Vec<String> {
    let needle = format!("{enum_name}::");
    let mut out: Vec<String> = Vec::new();
    let mut from = 0;
    while let Some(pos) = text[from..].find(&needle) {
        let at = from + pos + needle.len();
        from = at;
        let id: String = text[at..]
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        let rest = text[at + id.len()..].trim_start();
        let is_pattern = rest.starts_with("=>") || rest.starts_with('|');
        if is_pattern && !id.is_empty() && id != "ALL" && !out.contains(&id) {
            out.push(id);
        }
    }
    out
}

/// All `Enum::Variant` idents referenced in `text`, deduplicated in order.
fn enum_refs(text: &str, enum_name: &str) -> Vec<String> {
    let needle = format!("{enum_name}::");
    let mut out: Vec<String> = Vec::new();
    let mut from = 0;
    while let Some(pos) = text[from..].find(&needle) {
        let at = from + pos + needle.len();
        from = at;
        let id: String = text[at..]
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !id.is_empty() && id != "ALL" && !out.contains(&id) {
            out.push(id);
        }
    }
    out
}

/// The matrix-completeness rule.  One canonical variant set per axis enum —
/// `SmrKind` in `crates/smr/src/lib.rs`, `DsKind` in
/// `crates/harness/src/workload.rs` — is cross-checked against:
///
/// * the enum's own `ALL` const and `name()` / `parse()` matches,
/// * every near-complete `match` block and `[Enum::…]` array literal in the
///   workspace (a hand-enumerated matrix mentioning most-but-not-all
///   variants is presumed to have drifted),
/// * the README compatibility table header and the README/DESIGN.md scheme
///   and structure mentions.
pub fn l4_matrix_completeness(files: &[SourceFile], docs: &[DocFile]) -> Vec<Finding> {
    let mut out = Vec::new();

    let mut axes = Vec::new();
    for (enum_name, path) in [
        ("SmrKind", "crates/smr/src/lib.rs"),
        ("DsKind", "crates/harness/src/workload.rs"),
    ] {
        let Some(file) = files.iter().find(|f| f.rel == path) else {
            out.push(finding(
                Rule::L4,
                path,
                0,
                format!("expected to parse `{enum_name}` here but the file is missing — update the lint's axis table"),
            ));
            continue;
        };
        let Some(info) = parse_enum(file, enum_name) else {
            out.push(finding(
                Rule::L4,
                path,
                0,
                format!("failed to parse `enum {enum_name}` — update the lint's axis table"),
            ));
            continue;
        };
        check_axis_self_consistency(&info, &mut out);
        axes.push(info);
    }

    for info in &axes {
        check_code_matrices(files, info, &mut out);
        check_docs(docs, info, &mut out);
    }
    out
}

/// `ALL`, `name()` and `parse()` must each cover the full variant set.
fn check_axis_self_consistency(info: &EnumInfo, out: &mut Vec<Finding>) {
    let missing_all: Vec<_> = info
        .variants
        .iter()
        .filter(|v| !info.all.contains(v))
        .cloned()
        .collect();
    if !missing_all.is_empty() {
        out.push(finding(
            Rule::L4,
            &info.file,
            0,
            format!(
                "`{}::ALL` is missing variant(s) {:?}",
                info.name, missing_all
            ),
        ));
    }
    let missing_name: Vec<_> = info
        .variants
        .iter()
        .filter(|v| info.display_of(v).is_none())
        .cloned()
        .collect();
    if !missing_name.is_empty() {
        out.push(finding(
            Rule::L4,
            &info.file,
            0,
            format!(
                "`{}::name()` has no display arm for variant(s) {:?}",
                info.name, missing_name
            ),
        ));
    }
    let missing_parse: Vec<_> = info
        .variants
        .iter()
        .filter(|v| !info.parse_refs.contains(v))
        .cloned()
        .collect();
    if !missing_parse.is_empty() {
        out.push(finding(
            Rule::L4,
            &info.file,
            0,
            format!(
                "`{}::parse()` never produces variant(s) {:?}",
                info.name, missing_parse
            ),
        ));
    }
}

/// How many variants a `match` block must mention before the lint presumes it
/// is a full dispatch matrix (and therefore must mention *all* of them).
/// Small predicate matches (`is_robust`'s four non-robust kinds) stay exempt;
/// a dispatch that has merely forgotten the newest scheme does not.
fn match_threshold(total: usize) -> usize {
    (total / 2 + 1).max(3)
}

/// Array literals are held to a tighter bar: only near-complete enumerations
/// (missing at most 2) are presumed to be drifted matrices, because partial
/// arrays (the robust/non-robust splits in tests) are legitimate.
fn array_threshold(total: usize) -> usize {
    total.saturating_sub(2).max(3)
}

fn check_code_matrices(files: &[SourceFile], info: &EnumInfo, out: &mut Vec<Finding>) {
    let scopes = [
        "crates/smr/src/",
        "crates/scot/src/",
        "crates/harness/src/",
        "crates/bench/src/",
        "tests/",
        "src/",
        "examples/",
    ];
    for f in files {
        if !in_scope(f, &scopes) {
            continue;
        }
        for i in 0..f.code.len() {
            if word_in(&f.code[i], "match") {
                if let Some((block, _end)) = collect_block(f, i, '{', '}') {
                    let refs = enum_pattern_refs(&block, &info.name);
                    report_incomplete(
                        info,
                        &refs,
                        match_threshold(info.variants.len()),
                        "dispatch `match`",
                        &f.rel,
                        i,
                        out,
                    );
                }
            }
            // Array literals: only start scanning at an opening bracket that
            // is directly followed by an enum reference, which is what a
            // hand-enumerated matrix looks like.
            let needle = format!("[{}::", info.name);
            if f.code[i].contains(&needle)
                || (f.code[i].trim_end().ends_with('[')
                    && f.code
                        .get(i + 1)
                        .is_some_and(|l| l.trim_start().starts_with(&format!("{}::", info.name))))
            {
                if let Some((block, _)) = collect_block(f, i, '[', ']') {
                    let refs = enum_refs(&block, &info.name);
                    report_incomplete(
                        info,
                        &refs,
                        array_threshold(info.variants.len()),
                        "hand-enumerated array",
                        &f.rel,
                        i,
                        out,
                    );
                }
            }
        }
    }
}

fn report_incomplete(
    info: &EnumInfo,
    refs: &[String],
    threshold: usize,
    what: &str,
    rel: &str,
    line0: usize,
    out: &mut Vec<Finding>,
) {
    if refs.len() < threshold {
        return;
    }
    let missing: Vec<_> = info
        .variants
        .iter()
        .filter(|v| !refs.contains(v))
        .cloned()
        .collect();
    if !missing.is_empty() {
        out.push(finding(
            Rule::L4,
            rel,
            line0,
            format!(
                "{what} mentions {}/{} `{}` variants but is missing {:?}",
                refs.len(),
                info.variants.len(),
                info.name,
                missing
            ),
        ));
    }
}

/// A variant is "documented" if the doc mentions its display name (exact
/// word) or its identifier (case-insensitive word — this is how `listlf`
/// documents `DsKind::ListLf`).
fn doc_mentions(doc: &DocFile, info: &EnumInfo, variant: &str) -> bool {
    let ident_lc = variant.to_ascii_lowercase();
    let display = info.display_of(variant);
    doc.lines.iter().any(|l| {
        let lc = l.to_ascii_lowercase();
        display.is_some_and(|d| word_in(l, d)) || word_in(&lc, &ident_lc)
    })
}

fn check_docs(docs: &[DocFile], info: &EnumInfo, out: &mut Vec<Finding>) {
    for doc in docs {
        for v in &info.variants {
            if !doc_mentions(doc, info, v) {
                out.push(finding(
                    Rule::L4,
                    &doc.rel,
                    0,
                    format!(
                        "{} never mentions `{}::{}` (display name {:?})",
                        doc.rel,
                        info.name,
                        v,
                        info.display_of(v).unwrap_or("?")
                    ),
                ));
            }
        }
        // The README compatibility table must carry every scheme display
        // name in its header row.
        if doc.rel.ends_with("README.md") && info.name == "SmrKind" {
            match doc
                .lines
                .iter()
                .position(|l| l.trim_start().starts_with("| structure |"))
            {
                None => out.push(finding(
                    Rule::L4,
                    &doc.rel,
                    0,
                    "README compatibility table (`| structure | …`) not found".to_string(),
                )),
                Some(ix) => {
                    let header = &doc.lines[ix];
                    let missing: Vec<_> = info
                        .variants
                        .iter()
                        .filter_map(|v| info.display_of(v))
                        .filter(|d| !header.contains(*d))
                        .collect();
                    if !missing.is_empty() {
                        out.push(finding(
                            Rule::L4,
                            &doc.rel,
                            ix,
                            format!("README compatibility table header is missing scheme(s) {missing:?}"),
                        ));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// L5 · guard-discipline
// ---------------------------------------------------------------------------

/// Item context for a line: whether it sits inside a `impl Trait for Type`
/// block (where `#[must_use]` on methods is inert and therefore not
/// required), some other item, or at file scope.
#[derive(Clone, Copy, PartialEq, Debug)]
enum ItemCtx {
    TraitImpl,
    Other,
}

/// Computes, per line, the innermost `impl`/`trait` context.
fn item_contexts(file: &SourceFile) -> Vec<ItemCtx> {
    #[derive(Clone, Copy)]
    enum Kind {
        TraitImpl,
        Plain,
    }
    let mut stack: Vec<Kind> = Vec::new();
    let mut pending: Option<Kind> = None;
    let mut ctxs = Vec::with_capacity(file.code.len());
    for code in &file.code {
        // Context of the line = innermost trait-impl marker currently open.
        let ctx = if stack.iter().rev().any(|k| matches!(k, Kind::TraitImpl)) {
            ItemCtx::TraitImpl
        } else {
            ItemCtx::Other
        };
        ctxs.push(ctx);
        if pending.is_none() && (word_in(code, "impl") || word_in(code, "trait")) {
            pending = Some(if word_in(code, "impl") && word_in(code, "for") {
                Kind::TraitImpl
            } else {
                Kind::Plain
            });
        }
        for c in code.chars() {
            match c {
                '{' => stack.push(pending.take().unwrap_or(Kind::Plain)),
                '}' => {
                    stack.pop();
                }
                _ => {}
            }
        }
    }
    ctxs
}

/// Whether the attribute/comment block directly above line `i` (or the line
/// itself) contains `#[must_use…`.
fn has_must_use(file: &SourceFile, i: usize) -> bool {
    let is_attr = |code: &str| code.trim_start().starts_with("#[");
    if file.code[i].contains("#[must_use") {
        return true;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let code = file.code[j].trim();
        let comment = file.comment[j].trim();
        if code.is_empty() && !comment.is_empty() {
            continue;
        }
        if is_attr(code) {
            if code.contains("#[must_use") {
                return true;
            }
            continue;
        }
        break;
    }
    false
}

/// Guard discipline:
///
/// * `mem::forget` / `ManuallyDrop` are forbidden in production code outside
///   `crates/harness/src/faults.rs` — leaking a guard silently disables its
///   protections *and* (since PR 7) its slot's liveness accounting, which is
///   exactly the fault class `faults.rs` exists to inject deliberately.
///   `#[cfg(test)]` regions are exempt: stall/leak tests forget on purpose.
/// * Every `…Guard` type and every `fn pin` declaration outside a trait-impl
///   block must be `#[must_use]`, so dropping a freshly pinned guard on the
///   floor — which unpublishes every protection — is always a compiler
///   warning.
pub fn l5_guard_discipline(files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        let forget_scope = in_scope(
            f,
            &[
                "crates/smr/src/",
                "crates/scot/src/",
                "crates/harness/src/",
                "crates/bench/src/",
            ],
        ) && !f.rel.ends_with("harness/src/faults.rs");
        let must_use_scope = in_scope(f, &["crates/smr/src/", "crates/scot/src/"]);
        if !forget_scope && !must_use_scope {
            continue;
        }
        let ctxs = item_contexts(f);
        for (i, ctx) in ctxs.iter().enumerate() {
            if f.test_lines[i] {
                continue;
            }
            let code = &f.code[i];
            if forget_scope {
                if code.contains("mem::forget") {
                    out.push(finding(
                        Rule::L5,
                        &f.rel,
                        i,
                        "`mem::forget` outside `faults.rs` — leaking guards/handles is \
                         reserved for the fault-injection harness"
                            .to_string(),
                    ));
                }
                if word_in(code, "ManuallyDrop") {
                    out.push(finding(
                        Rule::L5,
                        &f.rel,
                        i,
                        "`ManuallyDrop` outside `faults.rs` — guard/handle teardown must \
                         stay RAII"
                            .to_string(),
                    ));
                }
            }
            if must_use_scope {
                if word_in(code, "struct") {
                    if let Some(name) = idents_of(code)
                        .iter()
                        .find(|id| id.ends_with("Guard") && id.len() > "Guard".len())
                    {
                        if !has_must_use(f, i) {
                            out.push(finding(
                                Rule::L5,
                                &f.rel,
                                i,
                                format!("guard type `{name}` is not `#[must_use]`"),
                            ));
                        }
                    }
                }
                if (code.contains("fn pin(") || code.contains("fn pin<"))
                    && *ctx != ItemCtx::TraitImpl
                    && !has_must_use(f, i)
                {
                    out.push(finding(
                        Rule::L5,
                        &f.rel,
                        i,
                        "`fn pin` declaration is not `#[must_use]`".to_string(),
                    ));
                }
            }
        }
    }
    out
}
