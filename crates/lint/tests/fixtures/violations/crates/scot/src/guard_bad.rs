//! Fixture: seeded L5 violations — a guard type without `#[must_use]`, a
//! bare `fn pin`, and forbidden leak idioms outside `faults.rs`.

pub struct LeakyGuard {
    slot: usize,
}

#[must_use = "fixture: this one is compliant"]
pub struct GoodGuard {
    slot: usize,
}

impl LeakyGuard {
    pub fn pin(&mut self) -> GoodGuard {
        GoodGuard { slot: self.slot }
    }
}

pub fn leak_one(g: LeakyGuard) {
    core::mem::forget(g);
}

pub fn wrap_one(g: LeakyGuard) -> core::mem::ManuallyDrop<LeakyGuard> {
    core::mem::ManuallyDrop::new(g)
}

#[cfg(test)]
mod tests {
    // Test regions are exempt from the leak ban (stall tests leak on
    // purpose), so this must NOT fire.
    #[test]
    fn leaks_on_purpose() {
        core::mem::forget(super::LeakyGuard { slot: 0 });
    }
}
