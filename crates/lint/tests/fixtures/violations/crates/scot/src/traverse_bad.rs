//! Fixture: seeded L3 violations — raw integer slot indices outside
//! `slots.rs` — next to compliant calls that must not fire.

pub fn bad_protect(g: &mut Guard, cell: &Cell) {
    g.protect(2, cell);
}

pub fn bad_dup(g: &mut Guard) {
    g.dup(0, 1);
}

pub fn good_calls(g: &mut Guard, cell: &Cell) {
    g.protect(HP_NEXT, cell);
    g.dup(HP_CURR, HP_PREV);
    g.protect_link(HP_ANCHOR, cell);
}
