//! Fixture axis: a complete `DsKind`, plus a dispatch `match` over
//! `SmrKind` that silently forgot `He` (seeded L4 drift).

pub enum DsKind {
    ListLf,
    Tree,
}

impl DsKind {
    pub const ALL: [DsKind; 2] = [DsKind::ListLf, DsKind::Tree];

    pub fn name(self) -> &'static str {
        match self {
            DsKind::ListLf => "HList",
            DsKind::Tree => "NMTree",
        }
    }

    pub fn parse(s: &str) -> Option<DsKind> {
        Some(match s {
            "listlf" => DsKind::ListLf,
            "tree" => DsKind::Tree,
            _ => return None,
        })
    }
}

pub fn dispatch(kind: SmrKind) -> u32 {
    match kind {
        SmrKind::Nr => 0,
        SmrKind::Ebr => 1,
        SmrKind::Hp => 2,
        SmrKind::Ibr => 4,
        _ => 9,
    }
}
