//! Fixture axis: a miniature `SmrKind` with one seeded drift — `ALL` forgot
//! the newest variant.  Never compiled; scanned by the lint's tests only.

#[derive(Clone, Copy, PartialEq)]
pub enum SmrKind {
    Nr,
    Ebr,
    Hp,
    He,
    Ibr,
}

impl SmrKind {
    pub const ALL: [SmrKind; 4] = [SmrKind::Nr, SmrKind::Ebr, SmrKind::Hp, SmrKind::He];

    pub fn name(self) -> &'static str {
        match self {
            SmrKind::Nr => "NR",
            SmrKind::Ebr => "EBR",
            SmrKind::Hp => "HP",
            SmrKind::He => "HE",
            SmrKind::Ibr => "IBR",
        }
    }

    pub fn parse(s: &str) -> Option<SmrKind> {
        Some(match s {
            "nr" => SmrKind::Nr,
            "ebr" => SmrKind::Ebr,
            "hp" => SmrKind::Hp,
            "he" => SmrKind::He,
            "ibr" => SmrKind::Ibr,
            _ => return None,
        })
    }
}
