//! Fixture: seeded L1 and L2 violations (plus covered sites that must NOT
//! fire, and an inline-suppressed site).

pub unsafe fn undocumented(p: *mut u8) {
    p.write(0);
}

pub fn block_without_comment(x: &mut u8) {
    unsafe { core::ptr::write(x, 1) };
}

// SAFETY: the pointer is non-null by construction in this fixture.
pub unsafe fn documented(p: *mut u8) {
    p.write(2);
}

// LINT-ALLOW: L1 fixture exercises inline suppression
pub unsafe fn inline_allowed(p: *mut u8) {
    p.write(3);
}

pub fn publish(slot: &core::sync::atomic::AtomicUsize) {
    // The identifier stem below ("hazard") marks this as protection state.
    let hazard_word = 7usize;
    slot.store(hazard_word, Ordering::Relaxed);
}

pub fn publish_justified(slot: &core::sync::atomic::AtomicUsize) {
    let epoch_word = 9usize;
    // ORDERING: fixture — justified relaxed store on an epoch counter.
    slot.store(epoch_word, Ordering::Relaxed);
}
