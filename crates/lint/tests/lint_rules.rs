//! Integration tests for `scot-lint`.
//!
//! Two directions: the seeded fixture tree must produce *exactly* the
//! expected findings (rule id + file + line, nothing more, nothing less),
//! and the real workspace must be clean — the latter is what makes the
//! lint a tier-1 gate rather than an aspiration.

use scot_lint::{check, Options, Rule};
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("violations")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn fixture_tree_produces_exactly_the_seeded_findings() {
    let report = check(&fixture_root(), &Options::default()).expect("check runs");
    let got: Vec<(Rule, String, usize)> = report
        .findings
        .iter()
        .map(|f| (f.rule, f.file.clone(), f.line))
        .collect();
    let want: Vec<(Rule, String, usize)> = [
        // A dispatch `match` that forgot SmrKind::He.
        (Rule::L4, "crates/harness/src/workload.rs", 29),
        // A guard struct without #[must_use].
        (Rule::L5, "crates/scot/src/guard_bad.rs", 4),
        // A bare `fn pin` outside a trait impl.
        (Rule::L5, "crates/scot/src/guard_bad.rs", 14),
        // mem::forget outside faults.rs (non-test region).
        (Rule::L5, "crates/scot/src/guard_bad.rs", 20),
        // ManuallyDrop in the body; the signature-line twin (line 23) is
        // suppressed by the fixture's lint.allow.
        (Rule::L5, "crates/scot/src/guard_bad.rs", 24),
        // Raw slot indices: protect arg 1, dup args 1 and 2.
        (Rule::L3, "crates/scot/src/traverse_bad.rs", 5),
        (Rule::L3, "crates/scot/src/traverse_bad.rs", 9),
        (Rule::L3, "crates/scot/src/traverse_bad.rs", 9),
        // SmrKind::ALL forgot Ibr (whole-axis finding, anchored line 1).
        (Rule::L4, "crates/smr/src/lib.rs", 1),
        // unsafe fn / unsafe block without SAFETY.  The LINT-ALLOW'd
        // `inline_allowed` fn and the documented one must NOT appear.
        (Rule::L1, "crates/smr/src/unsafe_bad.rs", 4),
        (Rule::L1, "crates/smr/src/unsafe_bad.rs", 9),
        // Relaxed on protection state; the ORDERING-justified twin is
        // covered and must NOT appear.
        (Rule::L2, "crates/smr/src/unsafe_bad.rs", 25),
    ]
    .into_iter()
    .map(|(r, f, l)| (r, f.to_string(), l))
    .collect();
    assert_eq!(got, want, "full findings: {:#?}", report.findings);

    // The deliberately stale allowlist entry is reported, so the fixture
    // run is NOT clean even though one finding was suppressed.
    assert_eq!(
        report.stale_allows,
        vec!["L3 crates/scot/src/nonexistent.rs:1".to_string()]
    );
    assert!(!report.is_clean());
}

#[test]
fn fixture_messages_name_the_violation() {
    let report = check(&fixture_root(), &Options::default()).expect("check runs");
    let msg = |rule: Rule, line: usize| {
        report
            .findings
            .iter()
            .find(|f| f.rule == rule && f.line == line)
            .map(|f| f.message.clone())
            .unwrap_or_default()
    };
    assert!(msg(Rule::L4, 29).contains("missing [\"He\"]"));
    assert!(msg(Rule::L4, 1).contains("`SmrKind::ALL` is missing variant(s) [\"Ibr\"]"));
    assert!(msg(Rule::L5, 4).contains("`LeakyGuard`"));
    assert!(msg(Rule::L2, 25).contains("ORDERING"));
    // Both dup arguments are checked.
    let dup: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::L3 && f.line == 9)
        .map(|f| f.message.as_str())
        .collect();
    assert!(dup[0].contains("argument 1") && dup[1].contains("argument 2"));
}

#[test]
fn rendered_diagnostics_are_rustc_shaped() {
    let report = check(&fixture_root(), &Options::default()).expect("check runs");
    let first = report.findings.first().expect("at least one finding");
    let rendered = first.to_string();
    assert!(
        rendered.starts_with("error[L4 matrix-completeness]:"),
        "{rendered}"
    );
    assert!(
        rendered.contains("--> crates/harness/src/workload.rs:29"),
        "{rendered}"
    );
}

#[test]
fn the_real_workspace_is_clean() {
    let report = check(&workspace_root(), &Options::default()).expect("check runs");
    assert!(
        report.is_clean(),
        "workspace must stay lint-clean; findings: {:#?}, stale: {:?}",
        report.findings,
        report.stale_allows
    );
    // Sanity: the scan actually covered the workspace, rather than
    // vacuously passing on an empty file set.
    assert!(report.files_scanned > 40, "{} files", report.files_scanned);
}

#[test]
fn cli_exit_codes_separate_clean_from_dirty() {
    let bin = env!("CARGO_BIN_EXE_scot-lint");
    let dirty = std::process::Command::new(bin)
        .args(["check", "--root"])
        .arg(fixture_root())
        .output()
        .expect("run scot-lint");
    assert_eq!(dirty.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&dirty.stdout);
    assert!(stdout.contains("error[L1 unsafe-audit]:"), "{stdout}");
    assert!(stdout.contains("stale lint.allow entry"), "{stdout}");

    let clean = std::process::Command::new(bin)
        .args(["check", "--root"])
        .arg(workspace_root())
        .output()
        .expect("run scot-lint");
    assert_eq!(clean.status.code(), Some(0));
}

#[test]
fn fix_safety_stubs_inserts_todo_and_still_fails() {
    // Build a throwaway mini-tree; --fix-safety-stubs rewrites files, so it
    // must never run against the committed fixtures.
    let root = std::env::temp_dir().join(format!("scot-lint-fix-{}", std::process::id()));
    let src = root.join("crates").join("smr").join("src");
    std::fs::create_dir_all(&src).expect("mkdir");
    let file = src.join("stubme.rs");
    std::fs::write(
        &file,
        "pub fn poke(x: &mut u8) {\n    unsafe { core::ptr::write(x, 1) };\n}\n",
    )
    .expect("write");

    let report = check(
        &root,
        &Options {
            fix_safety_stubs: true,
        },
    )
    .expect("check runs");
    let text = std::fs::read_to_string(&file).expect("read back");
    assert!(
        text.contains("// SAFETY: TODO(audit):"),
        "stub not inserted:\n{text}"
    );
    // The stub is a placeholder, not a pass: L1 still fires on it.
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == Rule::L1 && f.message.contains("TODO")),
        "{:#?}",
        report.findings
    );
    std::fs::remove_dir_all(&root).ok();
}
