//! HP — hazard pointers (Michael 2004), plus the snapshot-scan optimization
//! the paper evaluates as "HPopt".
//!
//! Each thread owns [`crate::MAX_HAZARDS`] globally visible hazard slots.
//! `protect` publishes the pointer it is about to dereference and re-reads the
//! source until the published value is stable (the paper's Figure 1); `dup`
//! copies one slot into another so a pointer never passes through an
//! unprotected state while traversal roles shift (next → curr → prev).
//!
//! Guards track which slots they published (a small bitmask) and clear them on
//! drop, so a panic that unwinds out of a traversal releases its protections —
//! without this, one panicked operation would pin its last-protected nodes for
//! the life of the thread and the domain could never drain to zero.
//!
//! Reclamation scans every slot of every registered thread:
//!
//! * **HP** (baseline): for each retired node, rescan the global hazard array —
//!   the straightforward O(retired × slots) scan of the original scheme as
//!   implemented in the benchmark the paper builds on.
//! * **HPopt**: capture one local snapshot of all hazard slots, sort it, and
//!   binary-search each retired node — the optimization the paper borrows from
//!   the Hyaline work, which it reports as substantially faster in some tests.
//!
//! ## `dup` ordering
//!
//! `dup` uses a `Release` store, exactly as the paper specifies, and relies on
//! two disciplines that the data-structure code upholds: duplication only
//! copies a **lower** slot index into a **higher** one, and scans read slots in
//! ascending index order.  Together these close the window in which a scanning
//! thread could observe the old value of the destination slot after the source
//! slot was already overwritten (§3.2 of the paper).  This matches the
//! x86-TSO evaluation platform of the paper; the conservative alternative
//! (SeqCst `dup`) would reintroduce the memory barrier the unrolled traversal
//! is designed to avoid.

use crate::block::{header_of, Retired};
use crate::pool::{BlockPool, PoolShared, ShardedCounter};
use crate::ptr::{Atomic, Shared};
use crate::registry::{PinBinding, SlotClaim, SlotRegistry};
use crate::{Smr, SmrConfig, SmrError, SmrGuard, SmrHandle, SmrKind, MAX_HAZARDS};
use crossbeam_utils::CachePadded;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct HpSlot {
    hazards: [AtomicUsize; MAX_HAZARDS],
}

impl HpSlot {
    fn new() -> Self {
        Self {
            hazards: std::array::from_fn(|_| AtomicUsize::new(0)),
        }
    }
}

/// The hazard-pointer domain.  `snapshot_scan` in the configuration selects
/// between the paper's "HP" and "HPopt" variants.
pub struct Hp {
    config: SmrConfig,
    registry: SlotRegistry,
    slots: Box<[CachePadded<HpSlot>]>,
    unreclaimed: ShardedCounter,
    pool: Arc<PoolShared>,
    /// Per-slot retire lists, domain-owned so a dead thread's list is
    /// adoptable (see [`Hp::adopt_orphans`]).
    vaults: Box<[Mutex<Vec<Retired>>]>,
    orphans: Mutex<Vec<Retired>>,
}

impl Smr for Hp {
    type Handle = HpHandle;

    fn new(config: SmrConfig) -> Arc<Self> {
        let config = config.validated();
        let slots = (0..config.max_threads)
            .map(|_| CachePadded::new(HpSlot::new()))
            .collect();
        Arc::new(Self {
            registry: SlotRegistry::new(config.max_threads),
            slots,
            unreclaimed: ShardedCounter::new(config.max_threads),
            pool: PoolShared::new(config.pool_blocks(), config.max_threads),
            vaults: (0..config.max_threads)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            orphans: Mutex::new(Vec::new()),
            config,
        })
    }

    fn try_register(self: &Arc<Self>) -> Result<HpHandle, SmrError> {
        let claim = self.registry.try_claim().ok_or(SmrError::RegistryFull {
            capacity: self.registry.capacity(),
        })?;
        for h in &self.slots[claim.index].hazards {
            // ORDERING: Relaxed — the slot is not yet visible to any scan
            // (the claim CAS in `try_claim` is what publishes it, and scans
            // skip unclaimed slots); the first real publication goes through
            // `protect`'s SeqCst store.
            h.store(0, Ordering::Relaxed);
        }
        Ok(HpHandle {
            pool: BlockPool::new(self.pool.clone(), self.config.pool_blocks()),
            domain: self.clone(),
            claim,
            binding: PinBinding::new(),
        })
    }

    fn unreclaimed(&self) -> usize {
        self.unreclaimed.sum()
    }

    fn kind(&self) -> SmrKind {
        if self.config.snapshot_scan {
            SmrKind::HpOpt
        } else {
            SmrKind::Hp
        }
    }
}

impl Hp {
    /// True if `addr` is currently published in any hazard slot.  Used by the
    /// baseline (non-snapshot) scan: one full pass over the hazard array per
    /// retired node.
    fn is_protected(&self, addr: usize) -> bool {
        for (i, slot) in self.slots.iter().enumerate() {
            if !self.registry.is_claimed(i) {
                continue;
            }
            // Ascending index order; see the module documentation on `dup`.
            for h in &slot.hazards {
                if h.load(Ordering::SeqCst) == addr {
                    return true;
                }
            }
        }
        false
    }

    /// Collects one snapshot of every published hazard (HPopt).
    fn snapshot(&self) -> Vec<usize> {
        let mut snap = Vec::with_capacity(self.config.max_threads * 2);
        for (i, slot) in self.slots.iter().enumerate() {
            if !self.registry.is_claimed(i) {
                continue;
            }
            for h in &slot.hazards {
                let v = h.load(Ordering::SeqCst);
                if v != 0 {
                    snap.push(v);
                }
            }
        }
        snap.sort_unstable();
        snap.dedup();
        snap
    }

    fn sweep(&self, limbo: &mut Vec<Retired>, slot: usize, pool: &mut BlockPool) {
        let mut freed = 0usize;
        if self.config.snapshot_scan {
            let snap = self.snapshot();
            limbo.retain(|r| {
                if snap.binary_search(&r.value).is_err() {
                    // SAFETY: the node was retired (unlinked) and its address
                    // is absent from the hazard snapshot taken *after* it was
                    // unlinked, so no thread can still dereference it.
                    unsafe { r.free_into(pool) };
                    freed += 1;
                    false
                } else {
                    true
                }
            });
        } else {
            limbo.retain(|r| {
                if !self.is_protected(r.value) {
                    // SAFETY: the node was retired (unlinked) and a full
                    // SeqCst scan of every claimed slot's hazards found no
                    // publication of its address, so no thread can still
                    // dereference it.
                    unsafe { r.free_into(pool) };
                    freed += 1;
                    false
                } else {
                    true
                }
            });
        }
        if freed > 0 {
            self.unreclaimed.sub(slot, freed);
        }
    }

    fn sweep_vault(&self, vault_idx: usize, counter_slot: usize, pool: &mut BlockPool) {
        let mut vault = self.vaults[vault_idx].lock();
        if !vault.is_empty() {
            self.sweep(&mut vault, counter_slot, pool);
        }
    }

    fn sweep_orphans(&self, slot: usize, pool: &mut BlockPool) {
        if let Some(mut orphans) = self.orphans.try_lock() {
            if !orphans.is_empty() {
                self.sweep(&mut orphans, slot, pool);
            }
        }
    }

    /// Adopts slots abandoned by dead threads: clears the dead thread's
    /// hazard slots (sound — the owner can issue no further loads, so nothing
    /// those hazards protected is still being dereferenced by it) and drains
    /// its retire vault into the orphan list.
    fn adopt_orphans(&self, my_slot: usize, pool: &mut BlockPool) {
        for i in 0..self.registry.capacity() {
            if i == my_slot {
                continue;
            }
            if let Some(adoption) = self.registry.try_begin_adopt(i) {
                for h in &self.slots[i].hazards {
                    h.store(0, Ordering::SeqCst);
                }
                let mut vault = self.vaults[i].lock();
                if !vault.is_empty() {
                    self.orphans.lock().append(&mut vault);
                }
                drop(vault);
                adoption.finish();
            }
        }
        self.sweep_orphans(my_slot, pool);
    }
}

impl Drop for Hp {
    fn drop(&mut self) {
        for vault in self.vaults.iter() {
            for r in vault.lock().drain(..) {
                // SAFETY: dropping the domain means no handle (and hence no
                // guard) exists; no hazard can be published any more.
                unsafe { r.free() };
            }
        }
        let mut orphans = self.orphans.lock();
        for r in orphans.drain(..) {
            // SAFETY: as above — no guards can exist at domain drop.
            unsafe { r.free() };
        }
    }
}

/// Per-thread handle for [`Hp`].
pub struct HpHandle {
    domain: Arc<Hp>,
    claim: SlotClaim,
    binding: PinBinding,
    pool: BlockPool,
}

impl SmrHandle for HpHandle {
    type Guard<'g>
        = HpGuard<'g>
    where
        Self: 'g;

    fn pin(&mut self) -> HpGuard<'_> {
        self.domain
            .registry
            .check_owner_and_bind(self.claim, &mut self.binding);
        // Hazard pointers have no notion of a critical section: protection is
        // entirely per-pointer, so `pin` publishes nothing.
        HpGuard {
            handle: self,
            used: 0,
            _thread_bound: std::marker::PhantomData,
        }
    }

    fn flush(&mut self) {
        let domain = self.domain.clone();
        domain.sweep_vault(self.claim.index, self.claim.index, &mut self.pool);
        domain.adopt_orphans(self.claim.index, &mut self.pool);
    }
}

impl Drop for HpHandle {
    fn drop(&mut self) {
        // Guards cannot outlive the handle, so our hazards are already clear;
        // sweep what we can before handing the remainder to the orphan list.
        let domain = self.domain.clone();
        domain.sweep_vault(self.claim.index, self.claim.index, &mut self.pool);
        domain.registry.release_with(self.claim, || {
            for h in &domain.slots[self.claim.index].hazards {
                h.store(0, Ordering::Release);
            }
            let mut vault = domain.vaults[self.claim.index].lock();
            if !vault.is_empty() {
                domain.orphans.lock().append(&mut vault);
            }
        });
    }
}

/// Critical-section guard for [`Hp`].
#[must_use = "dropping a guard unpublishes every protection it holds"]
pub struct HpGuard<'g> {
    handle: &'g mut HpHandle,
    /// Makes the guard `!Send`/`!Sync`: a guard is the pinning thread's
    /// read-side critical section, and the slot registry's liveness beacon
    /// tracks exactly that thread (see [`crate::registry`]) -- a guard that
    /// crossed threads could see its protections neutralized when the
    /// pinning thread exits.
    _thread_bound: std::marker::PhantomData<*mut ()>,
    /// Bitmask of hazard slots this guard published; cleared on drop so a
    /// panicking operation releases its protections (RAII unwind safety).
    used: u8,
}

impl HpGuard<'_> {
    #[inline]
    fn hazards(&self) -> &[AtomicUsize; MAX_HAZARDS] {
        &self.handle.domain.slots[self.handle.claim.index].hazards
    }
}

impl Drop for HpGuard<'_> {
    fn drop(&mut self) {
        if self.used != 0 {
            for (idx, hazard) in self.hazards().iter().enumerate() {
                if self.used & (1 << idx) != 0 {
                    hazard.store(0, Ordering::Release);
                }
            }
        }
    }
}

impl SmrGuard for HpGuard<'_> {
    #[inline]
    fn domain_addr(&self) -> usize {
        std::sync::Arc::as_ptr(&self.handle.domain) as usize
    }

    #[inline]
    fn protect<T>(&mut self, idx: usize, src: &Atomic<T>) -> Shared<T> {
        // Figure 1 `protect`: publish, then verify the source still holds the
        // published pointer.  The hazard slot always stores the untagged
        // address ("also clear logical-deletion bits").
        self.used |= 1 << idx;
        let hazards = &self.handle.domain.slots[self.handle.claim.index].hazards;
        let mut published = usize::MAX;
        loop {
            let ptr = src.load(Ordering::Acquire);
            let addr = ptr.untagged().into_raw();
            if addr == published {
                return ptr;
            }
            hazards[idx].store(addr, Ordering::SeqCst);
            published = addr;
        }
    }

    #[inline]
    fn announce<T>(&mut self, idx: usize, ptr: Shared<T>) {
        self.used |= 1 << idx;
        self.hazards()[idx].store(ptr.untagged().into_raw(), Ordering::SeqCst);
    }

    #[inline]
    fn dup(&mut self, from: usize, to: usize) {
        debug_assert!(
            from < to,
            "dup must copy a lower slot into a higher slot (paper §3.2)"
        );
        self.used |= 1 << to;
        let hazards = self.hazards();
        // ORDERING: Relaxed — `from` was last written by this same thread
        // (protect/announce), so the read needs no synchronization; the
        // Release store plus the lower-to-higher slot discipline and the
        // ascending-order scan close the publication window (module docs).
        let v = hazards[from].load(Ordering::Relaxed);
        hazards[to].store(v, Ordering::Release);
    }

    #[inline]
    fn clear(&mut self, idx: usize) {
        self.hazards()[idx].store(0, Ordering::Release);
    }

    fn alloc<T: Send + 'static>(&mut self, value: T) -> Shared<T> {
        Shared::from_ptr(self.handle.pool.alloc(value))
    }

    // SAFETY: callers must guarantee `ptr` has been unlinked from every shared location before retiring it.
    unsafe fn retire<T: Send + 'static>(&mut self, ptr: Shared<T>) {
        let value = ptr.untagged().as_ptr();
        debug_assert!(!value.is_null());
        let handle = &mut *self.handle;
        let slot = handle.claim.index;
        let pending = {
            let mut vault = handle.domain.vaults[slot].lock();
            // SAFETY: the caller guarantees `ptr` came from `alloc` on this
            // domain and is already unlinked, so the block header is live.
            vault.push(unsafe { Retired::from_value(value) });
            vault.len()
        };
        handle.domain.unreclaimed.add(slot, 1);
        if pending >= handle.domain.config.scan_threshold {
            let domain = handle.domain.clone();
            domain.sweep_vault(slot, slot, &mut handle.pool);
            domain.adopt_orphans(slot, &mut handle.pool);
        }
    }

    // SAFETY: callers must guarantee `ptr` was never published to other threads.
    unsafe fn dealloc<T>(&mut self, ptr: Shared<T>) {
        // SAFETY: the caller guarantees the pointer was never published, so
        // no other thread has observed the block; pool-freeing it runs the
        // destructor exactly once.
        unsafe { self.handle.pool.free(header_of(ptr.untagged().as_ptr())) };
    }

    /// Hazard pointers have no epoch to elide, but a repin boundary is the
    /// moment the caller promises it holds no guard-derived references, so we
    /// unpublish everything — equivalent to drop + pin without re-running the
    /// registry owner check.
    #[inline]
    fn repin(&mut self) {
        if self.used != 0 {
            for (idx, hazard) in self.hazards().iter().enumerate() {
                if self.used & (1 << idx) != 0 {
                    hazard.store(0, Ordering::Release);
                }
            }
            self.used = 0;
        }
    }

    // SAFETY: callers must guarantee every pointer in `batch` satisfies the
    // per-node `retire` contract (unlinked, owned, retired exactly once).
    unsafe fn retire_batch<T: Send + 'static>(&mut self, batch: &[Shared<T>]) {
        if batch.is_empty() {
            return;
        }
        let handle = &mut *self.handle;
        let slot = handle.claim.index;
        let pending = {
            let mut vault = handle.domain.vaults[slot].lock();
            vault.reserve(batch.len());
            for &ptr in batch {
                let value = ptr.untagged().as_ptr();
                debug_assert!(!value.is_null());
                // SAFETY: the caller guarantees every element came from
                // `alloc` on this domain and is already unlinked, so each
                // block header is live.
                vault.push(unsafe { Retired::from_value(value) });
            }
            vault.len()
        };
        handle.domain.unreclaimed.add(slot, batch.len());
        if pending >= handle.domain.config.scan_threshold {
            let domain = handle.domain.clone();
            domain.sweep_vault(slot, slot, &mut handle.pool);
            domain.adopt_orphans(slot, &mut handle.pool);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(snapshot: bool) -> SmrConfig {
        SmrConfig {
            max_threads: 4,
            scan_threshold: 8,
            snapshot_scan: snapshot,
            ..SmrConfig::default()
        }
    }

    #[test]
    fn kind_reflects_snapshot_mode() {
        assert_eq!(Hp::new(config(false)).kind(), SmrKind::Hp);
        assert_eq!(Hp::new(config(true)).kind(), SmrKind::HpOpt);
    }

    #[test]
    fn protect_publishes_untagged_address() {
        let d = Hp::new(config(false));
        let mut h = d.register();
        let mut g = h.pin();
        let p = g.alloc(9u64);
        let cell = Atomic::new(p.with_tag(1));
        let seen = g.protect(2, &cell);
        assert_eq!(seen.tag(), 1);
        assert_eq!(seen.untagged(), p);
        let published = d.slots[0].hazards[2].load(Ordering::SeqCst);
        assert_eq!(published, p.into_raw());
        // SAFETY: `p` was never published to another thread; only this guard's own hazard names it.
        unsafe { g.dealloc(p) };
    }

    #[test]
    fn protected_node_survives_scan() {
        for snapshot in [false, true] {
            let d = Hp::new(config(snapshot));
            let mut owner = d.register();
            let mut worker = d.register();
            // The owner keeps its guard (and thus hazard slot 0) alive across
            // the worker's retire storm.
            let mut og = owner.pin();
            let target = {
                let p = og.alloc(123u64);
                let cell = Atomic::new(p);
                let seen = og.protect(0, &cell);
                assert_eq!(seen, p);
                p
            };

            {
                let mut g = worker.pin();
                // SAFETY: the node was unlinked by this test and is retired exactly once.
                unsafe { g.retire(target) };
                for i in 0..64u64 {
                    let p = g.alloc(i);
                    // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
                    unsafe { g.retire(p) };
                }
            }
            worker.flush();
            // Everything except the protected node must be gone.
            assert_eq!(d.unreclaimed(), 1, "snapshot={snapshot}");

            // Dropping the guard releases the hazard (RAII unwind safety).
            drop(og);
            worker.flush();
            assert_eq!(d.unreclaimed(), 0, "snapshot={snapshot}");
        }
    }

    #[test]
    fn dup_keeps_protection_alive() {
        let d = Hp::new(config(true));
        let mut owner = d.register();
        let mut worker = d.register();
        let mut og = owner.pin();
        let p = {
            let p = og.alloc(5u64);
            let cell = Atomic::new(p);
            og.protect(0, &cell);
            og.dup(0, 3);
            og.clear(0);
            p
        };
        {
            let mut g = worker.pin();
            // SAFETY: the node was unlinked by this test and is retired exactly once.
            unsafe { g.retire(p) };
        }
        worker.flush();
        assert_eq!(d.unreclaimed(), 1, "slot 3 still protects the node");
        og.clear(3);
        worker.flush();
        assert_eq!(d.unreclaimed(), 0);
        drop(og);
    }

    #[test]
    fn guard_drop_clears_published_hazards() {
        let d = Hp::new(config(false));
        let mut h = d.register();
        let mut g = h.pin();
        let p = g.alloc(7u64);
        let cell = Atomic::new(p);
        g.protect(1, &cell);
        g.dup(1, 4);
        assert_ne!(d.slots[0].hazards[1].load(Ordering::SeqCst), 0);
        assert_ne!(d.slots[0].hazards[4].load(Ordering::SeqCst), 0);
        // SAFETY: `p` is unlinked; this guard's own hazards do not block its later reclamation.
        unsafe { g.retire(p) };
        drop(g);
        for i in 0..MAX_HAZARDS {
            assert_eq!(
                d.slots[0].hazards[i].load(Ordering::SeqCst),
                0,
                "hazard {i} must be cleared by guard drop"
            );
        }
        h.flush();
        assert_eq!(d.unreclaimed(), 0);
    }

    #[test]
    fn repin_unpublishes_every_hazard() {
        let d = Hp::new(config(false));
        let mut h = d.register();
        let mut g = h.pin();
        let p = g.alloc(11u64);
        let cell = Atomic::new(p);
        g.protect(1, &cell);
        g.dup(1, 5);
        assert_ne!(d.slots[0].hazards[1].load(Ordering::SeqCst), 0);
        assert_ne!(d.slots[0].hazards[5].load(Ordering::SeqCst), 0);
        g.repin();
        for i in 0..MAX_HAZARDS {
            assert_eq!(
                d.slots[0].hazards[i].load(Ordering::SeqCst),
                0,
                "hazard {i} must be unpublished by repin"
            );
        }
        // The guard is still usable after repin.
        let seen = g.protect(0, &cell);
        assert_eq!(seen, p);
        g.clear(0);
        // SAFETY: `p` is unlinked and no hazard names it any more.
        unsafe { g.retire(p) };
        drop(g);
        h.flush();
        assert_eq!(d.unreclaimed(), 0);
    }

    #[test]
    fn retire_batch_reclaims_like_per_node_retire() {
        for snapshot in [false, true] {
            let d = Hp::new(config(snapshot));
            let mut h = d.register();
            {
                let mut g = h.pin();
                let batch: Vec<_> = (0..48u64).map(|i| g.alloc(i)).collect();
                // SAFETY: each block was just allocated and never published,
                // so this thread is its sole owner and retires it exactly once.
                unsafe { g.retire_batch(&batch) };
            }
            h.flush();
            assert_eq!(d.unreclaimed(), 0, "snapshot={snapshot}");
        }
    }

    #[test]
    fn leaked_handle_on_dead_thread_is_adopted() {
        for snapshot in [false, true] {
            let d = Hp::new(config(snapshot));
            {
                let d = d.clone();
                std::thread::spawn(move || {
                    let mut h = d.register();
                    let mut g = h.pin();
                    let p = g.alloc(1u64);
                    let cell = Atomic::new(p);
                    g.protect(0, &cell);
                    // SAFETY: `p` is test-local; the published hazard is exactly what keeps this retire from freeing it.
                    unsafe { g.retire(p) };
                    // Leak guard + handle: the hazard stays published and the
                    // slot stays claimed past thread death.
                    std::mem::forget(g);
                    std::mem::forget(h);
                })
                .join()
                .unwrap();
            }
            assert_eq!(d.unreclaimed(), 1, "snapshot={snapshot}");
            let mut h = d.register();
            h.flush();
            assert_eq!(
                d.unreclaimed(),
                0,
                "adoption must clear the dead thread's hazards and drain its \
                 vault (snapshot={snapshot})"
            );
        }
    }

    #[test]
    fn moved_handle_survives_registrant_death() {
        // The use-after-free scenario from the moved-handle report: a handle
        // is registered on thread A, moved to this thread, and A exits.  The
        // first pin here re-binds the slot's beacon to this (live) thread, so
        // a reclaiming peer must NOT adopt the slot and must keep honouring
        // the hazards this thread publishes through the moved handle.
        for snapshot in [false, true] {
            let d = Hp::new(config(snapshot));
            let mut moved = {
                let d = d.clone();
                std::thread::spawn(move || d.register()).join().unwrap()
            };
            // Registrant is dead; pin from here before anyone adopts.
            let mut g = moved.pin();
            let target = {
                let p = g.alloc(77u64);
                let cell = Atomic::new(p);
                let seen = g.protect(0, &cell);
                assert_eq!(seen, p);
                p
            };
            // A peer retires the protected node plus a storm of garbage and
            // sweeps (which also attempts orphan adoption).  Without pin-time
            // re-binding this would adopt our slot, wipe hazard 0, and free
            // `target` while we still hold a reference to it.
            let mut worker = d.register();
            {
                let mut wg = worker.pin();
                // SAFETY: the node was unlinked by this test and is retired exactly once.
                unsafe { wg.retire(target) };
                for i in 0..64u64 {
                    let p = wg.alloc(i);
                    // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
                    unsafe { wg.retire(p) };
                }
            }
            worker.flush();
            assert_eq!(
                d.unreclaimed(),
                1,
                "protected node must survive adoption attempts \
                 (snapshot={snapshot})"
            );
            // SAFETY: the published hazard pins `target`, so the read cannot race reclamation.
            unsafe { assert_eq!(*target.as_ptr(), 77, "snapshot={snapshot}") };
            drop(g);
            worker.flush();
            assert_eq!(d.unreclaimed(), 0, "snapshot={snapshot}");
        }
    }

    #[test]
    #[should_panic(expected = "slot was adopted")]
    fn moved_handle_pin_after_adoption_panics() {
        // The lossy window: the handle moved off the registering thread and
        // that thread died BEFORE the handle's first pin here.  A survivor
        // adopts the slot; the handle's next pin must panic, not publish
        // hazards into the recycled slot.
        let d = Hp::new(config(false));
        let mut moved = {
            let d = d.clone();
            std::thread::spawn(move || d.register()).join().unwrap()
        };
        let mut survivor = d.register();
        survivor.flush(); // adopts the orphaned slot
        let _ = moved.pin();
    }

    #[test]
    fn bounded_memory_with_stalled_reader() {
        // Theorem 1: HP keeps at most H*N + N*R unreclaimed nodes even with a
        // stalled thread holding protections forever.
        let cfg = config(true);
        let d = Hp::new(cfg.clone());
        let mut stalled = d.register();
        let mut worker = d.register();
        let mut sg = stalled.pin();
        {
            let p = sg.alloc(u64::MAX);
            let cell = Atomic::new(p);
            sg.protect(0, &cell);
            // never cleared: the guard stays alive for the whole test
        }
        for i in 0..4096u64 {
            let mut g = worker.pin();
            let p = g.alloc(i);
            // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
            unsafe { g.retire(p) };
        }
        worker.flush();
        let bound = MAX_HAZARDS * cfg.max_threads + cfg.max_threads * cfg.scan_threshold;
        assert!(
            d.unreclaimed() <= bound,
            "unreclaimed {} exceeds the Theorem 1 bound {}",
            d.unreclaimed(),
            bound
        );
        drop(sg);
    }

    #[test]
    fn concurrent_retires_all_reclaimed_when_unprotected() {
        for snapshot in [false, true] {
            let d = Hp::new(SmrConfig {
                max_threads: 8,
                scan_threshold: 32,
                snapshot_scan: snapshot,
                ..SmrConfig::default()
            });
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let d = d.clone();
                    s.spawn(move || {
                        let mut h = d.register();
                        for i in 0..500u64 {
                            let mut g = h.pin();
                            let p = g.alloc(i);
                            // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
                            unsafe { g.retire(p) };
                        }
                        h.flush();
                    });
                }
            });
            assert_eq!(d.unreclaimed(), 0, "snapshot={snapshot}");
        }
    }
}
