//! HP — hazard pointers (Michael 2004), plus the snapshot-scan optimization
//! the paper evaluates as "HPopt".
//!
//! Each thread owns [`crate::MAX_HAZARDS`] globally visible hazard slots.
//! `protect` publishes the pointer it is about to dereference and re-reads the
//! source until the published value is stable (the paper's Figure 1); `dup`
//! copies one slot into another so a pointer never passes through an
//! unprotected state while traversal roles shift (next → curr → prev).
//!
//! Reclamation scans every slot of every registered thread:
//!
//! * **HP** (baseline): for each retired node, rescan the global hazard array —
//!   the straightforward O(retired × slots) scan of the original scheme as
//!   implemented in the benchmark the paper builds on.
//! * **HPopt**: capture one local snapshot of all hazard slots, sort it, and
//!   binary-search each retired node — the optimization the paper borrows from
//!   the Hyaline work, which it reports as substantially faster in some tests.
//!
//! ## `dup` ordering
//!
//! `dup` uses a `Release` store, exactly as the paper specifies, and relies on
//! two disciplines that the data-structure code upholds: duplication only
//! copies a **lower** slot index into a **higher** one, and scans read slots in
//! ascending index order.  Together these close the window in which a scanning
//! thread could observe the old value of the destination slot after the source
//! slot was already overwritten (§3.2 of the paper).  This matches the
//! x86-TSO evaluation platform of the paper; the conservative alternative
//! (SeqCst `dup`) would reintroduce the memory barrier the unrolled traversal
//! is designed to avoid.

use crate::block::{header_of, Retired};
use crate::pool::{BlockPool, PoolShared, ShardedCounter};
use crate::ptr::{Atomic, Shared};
use crate::registry::SlotRegistry;
use crate::{Smr, SmrConfig, SmrError, SmrGuard, SmrHandle, SmrKind, MAX_HAZARDS};
use crossbeam_utils::CachePadded;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct HpSlot {
    hazards: [AtomicUsize; MAX_HAZARDS],
}

impl HpSlot {
    fn new() -> Self {
        Self {
            hazards: std::array::from_fn(|_| AtomicUsize::new(0)),
        }
    }
}

/// The hazard-pointer domain.  `snapshot_scan` in the configuration selects
/// between the paper's "HP" and "HPopt" variants.
pub struct Hp {
    config: SmrConfig,
    registry: SlotRegistry,
    slots: Box<[CachePadded<HpSlot>]>,
    unreclaimed: ShardedCounter,
    pool: Arc<PoolShared>,
    orphans: Mutex<Vec<Retired>>,
}

impl Smr for Hp {
    type Handle = HpHandle;

    fn new(config: SmrConfig) -> Arc<Self> {
        let config = config.validated();
        let slots = (0..config.max_threads)
            .map(|_| CachePadded::new(HpSlot::new()))
            .collect();
        Arc::new(Self {
            registry: SlotRegistry::new(config.max_threads),
            slots,
            unreclaimed: ShardedCounter::new(config.max_threads),
            pool: PoolShared::new(config.pool_blocks(), config.max_threads),
            orphans: Mutex::new(Vec::new()),
            config,
        })
    }

    fn try_register(self: &Arc<Self>) -> Result<HpHandle, SmrError> {
        let slot = self.registry.try_claim().ok_or(SmrError::RegistryFull {
            capacity: self.registry.capacity(),
        })?;
        for h in &self.slots[slot].hazards {
            h.store(0, Ordering::Relaxed);
        }
        Ok(HpHandle {
            pool: BlockPool::new(self.pool.clone(), self.config.pool_blocks()),
            domain: self.clone(),
            slot,
            limbo: Vec::new(),
        })
    }

    fn unreclaimed(&self) -> usize {
        self.unreclaimed.sum()
    }

    fn kind(&self) -> SmrKind {
        if self.config.snapshot_scan {
            SmrKind::HpOpt
        } else {
            SmrKind::Hp
        }
    }
}

impl Hp {
    /// True if `addr` is currently published in any hazard slot.  Used by the
    /// baseline (non-snapshot) scan: one full pass over the hazard array per
    /// retired node.
    fn is_protected(&self, addr: usize) -> bool {
        for (i, slot) in self.slots.iter().enumerate() {
            if !self.registry.is_claimed(i) {
                continue;
            }
            // Ascending index order; see the module documentation on `dup`.
            for h in &slot.hazards {
                if h.load(Ordering::SeqCst) == addr {
                    return true;
                }
            }
        }
        false
    }

    /// Collects one snapshot of every published hazard (HPopt).
    fn snapshot(&self) -> Vec<usize> {
        let mut snap = Vec::with_capacity(self.config.max_threads * 2);
        for (i, slot) in self.slots.iter().enumerate() {
            if !self.registry.is_claimed(i) {
                continue;
            }
            for h in &slot.hazards {
                let v = h.load(Ordering::SeqCst);
                if v != 0 {
                    snap.push(v);
                }
            }
        }
        snap.sort_unstable();
        snap.dedup();
        snap
    }

    fn sweep(&self, limbo: &mut Vec<Retired>, slot: usize, pool: &mut BlockPool) {
        let mut freed = 0usize;
        if self.config.snapshot_scan {
            let snap = self.snapshot();
            limbo.retain(|r| {
                if snap.binary_search(&r.value).is_err() {
                    unsafe { r.free_into(pool) };
                    freed += 1;
                    false
                } else {
                    true
                }
            });
        } else {
            limbo.retain(|r| {
                if !self.is_protected(r.value) {
                    unsafe { r.free_into(pool) };
                    freed += 1;
                    false
                } else {
                    true
                }
            });
        }
        if freed > 0 {
            self.unreclaimed.sub(slot, freed);
        }
    }

    fn sweep_orphans(&self, slot: usize, pool: &mut BlockPool) {
        if let Some(mut orphans) = self.orphans.try_lock() {
            if !orphans.is_empty() {
                self.sweep(&mut orphans, slot, pool);
            }
        }
    }
}

impl Drop for Hp {
    fn drop(&mut self) {
        let mut orphans = self.orphans.lock();
        for r in orphans.drain(..) {
            unsafe { r.free() };
        }
    }
}

/// Per-thread handle for [`Hp`].
pub struct HpHandle {
    domain: Arc<Hp>,
    slot: usize,
    limbo: Vec<Retired>,
    pool: BlockPool,
}

impl SmrHandle for HpHandle {
    type Guard<'g>
        = HpGuard<'g>
    where
        Self: 'g;

    fn pin(&mut self) -> HpGuard<'_> {
        // Hazard pointers have no notion of a critical section: protection is
        // entirely per-pointer, so `pin` is free.
        HpGuard { handle: self }
    }

    fn flush(&mut self) {
        let domain = self.domain.clone();
        domain.sweep(&mut self.limbo, self.slot, &mut self.pool);
        domain.sweep_orphans(self.slot, &mut self.pool);
    }
}

impl Drop for HpHandle {
    fn drop(&mut self) {
        for h in &self.domain.slots[self.slot].hazards {
            h.store(0, Ordering::Release);
        }
        let domain = self.domain.clone();
        domain.sweep(&mut self.limbo, self.slot, &mut self.pool);
        if !self.limbo.is_empty() {
            self.domain.orphans.lock().append(&mut self.limbo);
        }
        self.domain.registry.release(self.slot);
    }
}

/// Critical-section guard for [`Hp`].
pub struct HpGuard<'g> {
    handle: &'g mut HpHandle,
}

impl HpGuard<'_> {
    #[inline]
    fn hazards(&self) -> &[AtomicUsize; MAX_HAZARDS] {
        &self.handle.domain.slots[self.handle.slot].hazards
    }
}

impl SmrGuard for HpGuard<'_> {
    #[inline]
    fn domain_addr(&self) -> usize {
        std::sync::Arc::as_ptr(&self.handle.domain) as usize
    }

    #[inline]
    fn protect<T>(&mut self, idx: usize, src: &Atomic<T>) -> Shared<T> {
        // Figure 1 `protect`: publish, then verify the source still holds the
        // published pointer.  The hazard slot always stores the untagged
        // address ("also clear logical-deletion bits").
        let hazards = &self.handle.domain.slots[self.handle.slot].hazards;
        let mut published = usize::MAX;
        loop {
            let ptr = src.load(Ordering::Acquire);
            let addr = ptr.untagged().into_raw();
            if addr == published {
                return ptr;
            }
            hazards[idx].store(addr, Ordering::SeqCst);
            published = addr;
        }
    }

    #[inline]
    fn announce<T>(&mut self, idx: usize, ptr: Shared<T>) {
        self.hazards()[idx].store(ptr.untagged().into_raw(), Ordering::SeqCst);
    }

    #[inline]
    fn dup(&mut self, from: usize, to: usize) {
        debug_assert!(
            from < to,
            "dup must copy a lower slot into a higher slot (paper §3.2)"
        );
        let hazards = self.hazards();
        let v = hazards[from].load(Ordering::Relaxed);
        hazards[to].store(v, Ordering::Release);
    }

    #[inline]
    fn clear(&mut self, idx: usize) {
        self.hazards()[idx].store(0, Ordering::Release);
    }

    fn alloc<T: Send + 'static>(&mut self, value: T) -> Shared<T> {
        Shared::from_ptr(self.handle.pool.alloc(value))
    }

    unsafe fn retire<T: Send + 'static>(&mut self, ptr: Shared<T>) {
        let value = ptr.untagged().as_ptr();
        debug_assert!(!value.is_null());
        self.handle.limbo.push(Retired::from_value(value));
        self.handle.domain.unreclaimed.add(self.handle.slot, 1);
        if self.handle.limbo.len() >= self.handle.domain.config.scan_threshold {
            let domain = self.handle.domain.clone();
            domain.sweep(
                &mut self.handle.limbo,
                self.handle.slot,
                &mut self.handle.pool,
            );
            domain.sweep_orphans(self.handle.slot, &mut self.handle.pool);
        }
    }

    unsafe fn dealloc<T>(&mut self, ptr: Shared<T>) {
        self.handle.pool.free(header_of(ptr.untagged().as_ptr()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(snapshot: bool) -> SmrConfig {
        SmrConfig {
            max_threads: 4,
            scan_threshold: 8,
            snapshot_scan: snapshot,
            ..SmrConfig::default()
        }
    }

    #[test]
    fn kind_reflects_snapshot_mode() {
        assert_eq!(Hp::new(config(false)).kind(), SmrKind::Hp);
        assert_eq!(Hp::new(config(true)).kind(), SmrKind::HpOpt);
    }

    #[test]
    fn protect_publishes_untagged_address() {
        let d = Hp::new(config(false));
        let mut h = d.register();
        let mut g = h.pin();
        let p = g.alloc(9u64);
        let cell = Atomic::new(p.with_tag(1));
        let seen = g.protect(2, &cell);
        assert_eq!(seen.tag(), 1);
        assert_eq!(seen.untagged(), p);
        let published = d.slots[0].hazards[2].load(Ordering::SeqCst);
        assert_eq!(published, p.into_raw());
        unsafe { g.dealloc(p) };
    }

    #[test]
    fn protected_node_survives_scan() {
        for snapshot in [false, true] {
            let d = Hp::new(config(snapshot));
            let mut owner = d.register();
            let mut worker = d.register();
            let target = {
                let mut g = owner.pin();
                let p = g.alloc(123u64);
                let cell = Atomic::new(p);
                let seen = g.protect(0, &cell);
                assert_eq!(seen, p);
                p
            }; // guard dropped but the hazard slot is still published

            {
                let mut g = worker.pin();
                unsafe { g.retire(target) };
                for i in 0..64u64 {
                    let p = g.alloc(i);
                    unsafe { g.retire(p) };
                }
            }
            worker.flush();
            // Everything except the protected node must be gone.
            assert_eq!(d.unreclaimed(), 1, "snapshot={snapshot}");

            // Clearing the hazard releases it.
            {
                let mut g = owner.pin();
                g.clear(0);
            }
            worker.flush();
            assert_eq!(d.unreclaimed(), 0, "snapshot={snapshot}");
        }
    }

    #[test]
    fn dup_keeps_protection_alive() {
        let d = Hp::new(config(true));
        let mut owner = d.register();
        let mut worker = d.register();
        let p = {
            let mut g = owner.pin();
            let p = g.alloc(5u64);
            let cell = Atomic::new(p);
            g.protect(0, &cell);
            g.dup(0, 3);
            g.clear(0);
            p
        };
        {
            let mut g = worker.pin();
            unsafe { g.retire(p) };
        }
        worker.flush();
        assert_eq!(d.unreclaimed(), 1, "slot 3 still protects the node");
        {
            let mut g = owner.pin();
            g.clear(3);
        }
        worker.flush();
        assert_eq!(d.unreclaimed(), 0);
    }

    #[test]
    fn bounded_memory_with_stalled_reader() {
        // Theorem 1: HP keeps at most H*N + N*R unreclaimed nodes even with a
        // stalled thread holding protections forever.
        let cfg = config(true);
        let d = Hp::new(cfg.clone());
        let mut stalled = d.register();
        let mut worker = d.register();
        {
            let mut g = stalled.pin();
            let p = g.alloc(u64::MAX);
            let cell = Atomic::new(p);
            g.protect(0, &cell);
            // never cleared
        }
        for i in 0..4096u64 {
            let mut g = worker.pin();
            let p = g.alloc(i);
            unsafe { g.retire(p) };
        }
        worker.flush();
        let bound = MAX_HAZARDS * cfg.max_threads + cfg.max_threads * cfg.scan_threshold;
        assert!(
            d.unreclaimed() <= bound,
            "unreclaimed {} exceeds the Theorem 1 bound {}",
            d.unreclaimed(),
            bound
        );
    }

    #[test]
    fn concurrent_retires_all_reclaimed_when_unprotected() {
        for snapshot in [false, true] {
            let d = Hp::new(SmrConfig {
                max_threads: 8,
                scan_threshold: 32,
                snapshot_scan: snapshot,
                ..SmrConfig::default()
            });
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let d = d.clone();
                    s.spawn(move || {
                        let mut h = d.register();
                        for i in 0..500u64 {
                            let mut g = h.pin();
                            let p = g.alloc(i);
                            unsafe { g.retire(p) };
                        }
                        h.flush();
                    });
                }
            });
            assert_eq!(d.unreclaimed(), 0, "snapshot={snapshot}");
        }
    }
}
