//! VBR — version-based reclamation (Cohen's "Every Data Structure Deserves
//! Lock-Free Memory Reclamation"), epoch-displaced variant.
//!
//! Cohen's VBR never scans limbo lists: retired nodes go straight onto a
//! per-thread FIFO recycle queue and are handed back to the allocator in
//! retire-order, while readers that may still hold references detect the
//! reuse *after the fact* by re-checking a per-block version stamp.  This
//! module keeps that shape — O(1) retire, FIFO recycling in epoch order
//! through the [`BlockPool`]'s layout bins, a monotonic per-incarnation
//! version stamp in every block header, allocation-driven epoch advancement —
//! but gates the actual memory handoff on a two-epoch displacement bound
//! instead of unconditional reuse:
//!
//! * every operation announces the global epoch at [`SmrHandle::pin`];
//! * a recycle-queue entry is released to the pool once its retire epoch is
//!   two behind the minimum announced epoch;
//! * a reader whose announced epoch falls two behind the advancing global
//!   epoch is asked to restart through [`SmrGuard::needs_restart`] /
//!   [`SmrGuard::checkpoint`] (the same cursor-routed protocol as NBR), which
//!   re-announces the current epoch and lets recycling proceed past it.
//!
//! The reason for the gate is Rust-specific and spelled out in `DESIGN.md`:
//! the structure API hands out guard-scoped borrows (`&'g V`), and a borrow
//! into memory that is recycled mid-lifetime is undefined behavior even if a
//! later version re-check would discard the value — Cohen's deref-then-
//! validate is sound in C but not under Rust references.  The version stamp
//! ([`crate::block::version_of`]) still travels with every block and the
//! traversal cursor re-checks it on validation as a hardening layer; the
//! two-epoch bound is what turns "probably caught by validation" into a
//! memory-safety guarantee.  The price is the cooperative-caveat shared with
//! [`crate::Nbr`]: a reader that never polls pins the minimum epoch, so
//! [`SmrKind::is_robust`] reports `false`.

use crate::block::{header_of, Retired};
use crate::pool::{BlockPool, PoolShared, ShardedCounter};
use crate::ptr::{Atomic, Shared};
use crate::registry::{PinBinding, SlotClaim, SlotRegistry};
use crate::{Smr, SmrConfig, SmrError, SmrGuard, SmrHandle, SmrKind};
use crossbeam_utils::CachePadded;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Epoch value meaning "not in a critical section".
const INACTIVE: u64 = 0;
/// First valid epoch; starting above `INACTIVE + 2` keeps the "retire epoch
/// + 2" comparison free of underflow special cases.
const FIRST_EPOCH: u64 = 4;

/// How many epochs a reader may lag the global epoch before it is asked to
/// restart.  One epoch of slack means an epoch tick does not stampede every
/// in-flight operation; two epochs of lag is exactly where the reader starts
/// delaying the recycle queue (entries retired at its announce epoch become
/// eligible only once the minimum rises).
const DISPLACEMENT_SLACK: u64 = 2;

struct VbrSlot {
    /// Epoch announced by the slot's owner, or [`INACTIVE`].
    epoch: AtomicU64,
}

/// The version-based reclamation domain.
pub struct Vbr {
    config: SmrConfig,
    registry: SlotRegistry,
    global_epoch: CachePadded<AtomicU64>,
    slots: Box<[CachePadded<VbrSlot>]>,
    unreclaimed: ShardedCounter,
    pool: Arc<PoolShared>,
    /// Per-slot FIFO recycle queues, domain-owned so a dead thread's queue is
    /// adoptable (see [`Vbr::adopt_orphans`]).
    vaults: Box<[Mutex<VecDeque<Retired>>]>,
    /// Recycle entries inherited from threads that deregistered before their
    /// entries became eligible.
    orphans: Mutex<Vec<Retired>>,
    /// Total reader displacements acknowledged via `checkpoint` (diagnostic).
    displacements: AtomicU64,
}

impl Smr for Vbr {
    type Handle = VbrHandle;

    fn new(config: SmrConfig) -> Arc<Self> {
        let config = config.validated();
        let slots = (0..config.max_threads)
            .map(|_| {
                CachePadded::new(VbrSlot {
                    epoch: AtomicU64::new(INACTIVE),
                })
            })
            .collect();
        Arc::new(Self {
            registry: SlotRegistry::new(config.max_threads),
            global_epoch: CachePadded::new(AtomicU64::new(FIRST_EPOCH)),
            slots,
            unreclaimed: ShardedCounter::new(config.max_threads),
            pool: PoolShared::new(config.pool_blocks(), config.max_threads),
            vaults: (0..config.max_threads)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            orphans: Mutex::new(Vec::new()),
            displacements: AtomicU64::new(0),
            config,
        })
    }

    fn try_register(self: &Arc<Self>) -> Result<VbrHandle, SmrError> {
        let claim = self.registry.try_claim().ok_or(SmrError::RegistryFull {
            capacity: self.registry.capacity(),
        })?;
        self.slots[claim.index]
            .epoch
            // ORDERING: the slot is newly claimed and not yet observed by reclamation scans; this reset is owner-only.
            .store(INACTIVE, Ordering::Relaxed);
        Ok(VbrHandle {
            pool: BlockPool::new(self.pool.clone(), self.config.pool_blocks()),
            domain: self.clone(),
            claim,
            binding: PinBinding::new(),
            alloc_count: 0,
            retire_count: 0,
        })
    }

    fn unreclaimed(&self) -> usize {
        self.unreclaimed.sum()
    }

    fn kind(&self) -> SmrKind {
        SmrKind::Vbr
    }
}

impl Vbr {
    /// Minimum epoch announced by any active slot, or `u64::MAX` when no
    /// thread is inside a critical section.
    fn min_active_epoch(&self) -> u64 {
        let mut min = u64::MAX;
        for (i, slot) in self.slots.iter().enumerate() {
            if !self.registry.is_claimed(i) {
                continue;
            }
            let e = slot.epoch.load(Ordering::SeqCst);
            if e != INACTIVE && e < min {
                min = e;
            }
        }
        min
    }

    /// Releases eligible entries from the front of `recycle` into the pool.
    ///
    /// The queue is FIFO and retire epochs are stamped from a monotonic
    /// counter, so eligibility is a prefix: the drain stops at the first
    /// entry retired later than two epochs before the minimum announced
    /// epoch.  One `min_active_epoch` scan amortizes over the whole prefix —
    /// there is no per-entry rescan, which is the structural difference from
    /// the limbo-list schemes.
    fn drain(&self, recycle: &mut VecDeque<Retired>, slot: usize, pool: &mut BlockPool) {
        let min = self.min_active_epoch();
        let mut freed = 0usize;
        while let Some(front) = recycle.front() {
            if front.retire_era().saturating_add(2) <= min {
                let r = recycle.pop_front().expect("front was just observed");
                // SAFETY: two full epochs have passed since retirement, so no reader can still be validating this incarnation.
                unsafe { r.free_into(pool) };
                freed += 1;
            } else {
                break;
            }
        }
        if freed > 0 {
            self.unreclaimed.sub(slot, freed);
        }
    }

    /// Drains the recycle queue of slot `vault_idx`, charging frees to the
    /// drainer's counter shard.
    fn drain_vault(&self, vault_idx: usize, counter_slot: usize, pool: &mut BlockPool) {
        let mut vault = self.vaults[vault_idx].lock();
        if !vault.is_empty() {
            self.drain(&mut vault, counter_slot, pool);
        }
    }

    /// Adopts slots abandoned by dead threads: clears the dead thread's
    /// epoch announcement (sound — the owner can issue no further loads) and
    /// moves its recycle queue into the orphan list.
    fn adopt_orphans(&self, my_slot: usize, pool: &mut BlockPool) {
        for i in 0..self.registry.capacity() {
            if i == my_slot {
                continue;
            }
            if let Some(adoption) = self.registry.try_begin_adopt(i) {
                self.slots[i].epoch.store(INACTIVE, Ordering::SeqCst);
                let mut vault = self.vaults[i].lock();
                if !vault.is_empty() {
                    self.orphans.lock().extend(vault.drain(..));
                }
                drop(vault);
                adoption.finish();
            }
        }
        self.drain_orphans(my_slot, pool);
    }

    /// Adopts and drains orphaned recycle entries left by deregistered
    /// threads.  Orphans lose their FIFO ordering guarantee (several queues
    /// may have been appended), so this path re-checks every entry.
    fn drain_orphans(&self, slot: usize, pool: &mut BlockPool) {
        if let Some(mut orphans) = self.orphans.try_lock() {
            if orphans.is_empty() {
                return;
            }
            let min = self.min_active_epoch();
            let mut freed = 0usize;
            orphans.retain(|r| {
                if r.retire_era().saturating_add(2) <= min {
                    // SAFETY: two full epochs have passed since the orphan was retired; no reader can still address it.
                    unsafe { r.free_into(pool) };
                    freed += 1;
                    false
                } else {
                    true
                }
            });
            if freed > 0 {
                self.unreclaimed.sub(slot, freed);
            }
        }
    }

    /// Total reader displacements acknowledged so far (diagnostic).
    pub fn displacements(&self) -> u64 {
        self.displacements.load(Ordering::Relaxed)
    }
}

impl Drop for Vbr {
    fn drop(&mut self) {
        for vault in self.vaults.iter() {
            for r in vault.lock().drain(..) {
                // SAFETY: the domain is being dropped, so no handle can still reference the block.
                unsafe { r.free() };
            }
        }
        let mut orphans = self.orphans.lock();
        for r in orphans.drain(..) {
            // SAFETY: the domain is being dropped, so no handle can still reference the block.
            unsafe { r.free() };
        }
    }
}

/// Per-thread handle for [`Vbr`].
pub struct VbrHandle {
    domain: Arc<Vbr>,
    claim: SlotClaim,
    binding: PinBinding,
    pool: BlockPool,
    alloc_count: usize,
    retire_count: usize,
}

impl SmrHandle for VbrHandle {
    type Guard<'g>
        = VbrGuard<'g>
    where
        Self: 'g;

    fn pin(&mut self) -> VbrGuard<'_> {
        self.domain
            .registry
            .check_owner_and_bind(self.claim, &mut self.binding);
        let slot = &self.domain.slots[self.claim.index];
        let op_epoch = loop {
            let e = self.domain.global_epoch.load(Ordering::SeqCst);
            slot.epoch.store(e, Ordering::SeqCst);
            if self.domain.global_epoch.load(Ordering::SeqCst) == e {
                break e;
            }
        };
        VbrGuard {
            op_epoch,
            handle: self,
            _thread_bound: std::marker::PhantomData,
        }
    }

    fn flush(&mut self) {
        let idx = self.claim.index;
        let domain = self.domain.clone();
        domain.drain_vault(idx, idx, &mut self.pool);
        domain.adopt_orphans(idx, &mut self.pool);
        if !domain.vaults[idx].lock().is_empty() {
            // Entries retired at the current epoch need the epoch to move two
            // ticks before any quiescent observer may release them.
            domain.global_epoch.fetch_add(1, Ordering::SeqCst);
            domain.drain_vault(idx, idx, &mut self.pool);
        }
    }
}

impl Drop for VbrHandle {
    fn drop(&mut self) {
        let domain = self.domain.clone();
        domain.drain_vault(self.claim.index, self.claim.index, &mut self.pool);
        domain.registry.release_with(self.claim, || {
            domain.slots[self.claim.index]
                .epoch
                .store(INACTIVE, Ordering::SeqCst);
            let mut vault = domain.vaults[self.claim.index].lock();
            if !vault.is_empty() {
                domain.orphans.lock().extend(vault.drain(..));
            }
        });
    }
}

/// Critical-section guard for [`Vbr`].
#[must_use = "dropping a guard unpublishes every protection it holds"]
pub struct VbrGuard<'g> {
    handle: &'g mut VbrHandle,
    /// Makes the guard `!Send`/`!Sync`: a guard is the pinning thread's
    /// read-side critical section, and the slot registry's liveness beacon
    /// tracks exactly that thread (see [`crate::registry`]) -- a guard that
    /// crossed threads could see its protections neutralized when the
    /// pinning thread exits.
    _thread_bound: std::marker::PhantomData<*mut ()>,
    /// Epoch announced for this operation (re-announced by `checkpoint`).
    op_epoch: u64,
}

impl Drop for VbrGuard<'_> {
    fn drop(&mut self) {
        // Deactivating the epoch announcement on drop also covers panicking
        // operations (RAII unwind safety).
        let slot = &self.handle.domain.slots[self.handle.claim.index];
        slot.epoch.store(INACTIVE, Ordering::Release);
    }
}

impl SmrGuard for VbrGuard<'_> {
    #[inline]
    fn domain_addr(&self) -> usize {
        std::sync::Arc::as_ptr(&self.handle.domain) as usize
    }

    #[inline]
    fn protect<T>(&mut self, _idx: usize, src: &Atomic<T>) -> Shared<T> {
        // The epoch announced at pin (or the last checkpoint) holds the
        // recycle queues back; per-pointer work is unnecessary.
        src.load(Ordering::Acquire)
    }

    #[inline]
    fn announce<T>(&mut self, _idx: usize, _ptr: Shared<T>) {}

    #[inline]
    fn dup(&mut self, _from: usize, _to: usize) {}

    #[inline]
    fn clear(&mut self, _idx: usize) {}

    fn alloc<T: Send + 'static>(&mut self, value: T) -> Shared<T> {
        let ptr = self.handle.pool.alloc(value);
        // ORDERING: an approximate epoch read is fine here -- VBR safety rests on version-stamp validation, not on epoch precision.
        let epoch = self.handle.domain.global_epoch.load(Ordering::Relaxed);
        // SAFETY: `ptr` was just handed out by the pool, so the header is initialized and unaliased.
        // ORDERING: the birth-era stamp becomes visible via the Release publish that first links the block.
        unsafe { (*header_of(ptr)).birth_era.store(epoch, Ordering::Relaxed) };
        self.handle.alloc_count += 1;
        if self
            .handle
            .alloc_count
            .is_multiple_of(self.handle.domain.config.epoch_freq())
        {
            // Allocation-driven epoch advancement: reuse pressure, not limbo
            // growth, is what moves the clock under VBR.
            self.handle
                .domain
                .global_epoch
                .fetch_add(1, Ordering::SeqCst);
        }
        Shared::from_ptr(ptr)
    }

    // SAFETY: callers must guarantee `ptr` has been unlinked from every shared location before retiring it.
    unsafe fn retire<T: Send + 'static>(&mut self, ptr: Shared<T>) {
        let value = ptr.untagged().as_ptr();
        debug_assert!(!value.is_null());
        // SAFETY: the caller guarantees `ptr` came from `alloc` on this
        // domain and is already unlinked, so its block header is live.
        let retired = unsafe { Retired::from_value(value) };
        let handle = &mut *self.handle;
        // ORDERING: a stale epoch read only delays reclamation; safety comes from the two-era grace-period check.
        let epoch = handle.domain.global_epoch.load(Ordering::Relaxed);
        // SAFETY: the block is unlinked but not yet in any vault; this
        // thread has exclusive access to its header stamp.
        // ORDERING: Relaxed on both — the stamp only has to be no older than
        // the epoch this thread announced at its last checkpoint (published
        // with SeqCst there), and it is handed to the recycler through the
        // vault mutex acquired just below, which orders the store.
        unsafe { (*retired.hdr).retire_era.store(epoch, Ordering::Relaxed) };
        let slot = handle.claim.index;
        let pending = {
            let mut vault = handle.domain.vaults[slot].lock();
            vault.push_back(retired);
            vault.len()
        };
        handle.retire_count += 1;
        handle.domain.unreclaimed.add(slot, 1);
        if handle
            .retire_count
            .is_multiple_of(handle.domain.config.epoch_freq())
        {
            handle.domain.global_epoch.fetch_add(1, Ordering::SeqCst);
        }
        if pending >= handle.domain.config.scan_threshold {
            let domain = handle.domain.clone();
            domain.drain_vault(slot, slot, &mut handle.pool);
            domain.adopt_orphans(slot, &mut handle.pool);
            if domain.vaults[slot].lock().len() >= domain.config.scan_threshold {
                // Still blocked: advance the epoch so lagging readers trip
                // the displacement bound and re-announce.
                domain.global_epoch.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    // SAFETY: callers must guarantee `ptr` was never published to other threads.
    unsafe fn dealloc<T>(&mut self, ptr: Shared<T>) {
        // SAFETY: the caller guarantees the pointer was never published, so
        // this thread is the only one that has ever seen the block; freeing
        // it through the pool runs its destructor exactly once. VBR's version
        // stamp is irrelevant here — an unpublished block has no readers to
        // displace.
        unsafe { self.handle.pool.free(header_of(ptr.untagged().as_ptr())) };
    }

    #[inline]
    fn needs_restart(&self) -> bool {
        let global = self.handle.domain.global_epoch.load(Ordering::Acquire);
        global.saturating_sub(self.op_epoch) >= DISPLACEMENT_SLACK
    }

    /// Re-announces the current epoch at an op boundary — same announcement
    /// protocol as `checkpoint`, but without bumping the displacement
    /// diagnostic (a repin is routine housekeeping, not a sweep-forced
    /// restart).  Elided entirely when the epoch has not moved.
    #[inline]
    fn repin(&mut self) {
        let domain = &self.handle.domain;
        let global = domain.global_epoch.load(Ordering::SeqCst);
        if global == self.op_epoch {
            return;
        }
        let slot = &domain.slots[self.handle.claim.index];
        // The loop breaks with exactly the epoch stored into the slot, so the
        // cached `op_epoch` can never run ahead of the announcement (a cached
        // value ahead of the slot would elide forever while the stale
        // announcement pins the recycle queues).
        self.op_epoch = loop {
            let e = domain.global_epoch.load(Ordering::SeqCst);
            slot.epoch.store(e, Ordering::SeqCst);
            if domain.global_epoch.load(Ordering::SeqCst) == e {
                break e;
            }
        };
    }

    // SAFETY: callers must guarantee every pointer in `batch` satisfies the
    // per-node `retire` contract (unlinked, owned, retired exactly once).
    unsafe fn retire_batch<T: Send + 'static>(&mut self, batch: &[Shared<T>]) {
        if batch.is_empty() {
            return;
        }
        let handle = &mut *self.handle;
        // ORDERING: a stale epoch read only delays reclamation; safety comes
        // from the two-era grace-period check (same argument as `retire`).
        let epoch = handle.domain.global_epoch.load(Ordering::Relaxed);
        let slot = handle.claim.index;
        let pending = {
            let mut vault = handle.domain.vaults[slot].lock();
            vault.reserve(batch.len());
            for &ptr in batch {
                let value = ptr.untagged().as_ptr();
                debug_assert!(!value.is_null());
                // SAFETY: the caller guarantees every element came from
                // `alloc` on this domain and is already unlinked, so each
                // block header is live.
                let retired = unsafe { Retired::from_value(value) };
                // SAFETY: the record was just built from a live block; its
                // header is valid until the record is freed.
                // ORDERING: published to the recycler by the vault mutex.
                unsafe { (*retired.hdr).retire_era.store(epoch, Ordering::Relaxed) };
                vault.push_back(retired);
            }
            vault.len()
        };
        handle.domain.unreclaimed.add(slot, batch.len());
        // Preserve the per-retire epoch cadence across the batch: bump once
        // per epoch-frequency multiple the batch crossed.
        let freq = handle.domain.config.epoch_freq();
        let before = handle.retire_count;
        handle.retire_count += batch.len();
        let bumps = (handle.retire_count / freq - before / freq) as u64;
        if bumps > 0 {
            handle
                .domain
                .global_epoch
                .fetch_add(bumps, Ordering::SeqCst);
        }
        if pending >= handle.domain.config.scan_threshold {
            let domain = handle.domain.clone();
            domain.drain_vault(slot, slot, &mut handle.pool);
            domain.adopt_orphans(slot, &mut handle.pool);
            if domain.vaults[slot].lock().len() >= domain.config.scan_threshold {
                // Still blocked: advance the epoch so lagging readers trip
                // the displacement bound and re-announce.
                domain.global_epoch.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    #[inline]
    fn checkpoint(&mut self) {
        let slot = &self.handle.domain.slots[self.handle.claim.index];
        self.op_epoch = loop {
            let e = self.handle.domain.global_epoch.load(Ordering::SeqCst);
            slot.epoch.store(e, Ordering::SeqCst);
            if self.handle.domain.global_epoch.load(Ordering::SeqCst) == e {
                break e;
            }
        };
        self.handle
            .domain
            .displacements
            .fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::version_of;

    fn small_config() -> SmrConfig {
        SmrConfig {
            max_threads: 4,
            scan_threshold: 4,
            epoch_freq_per_thread: 1,
            ..SmrConfig::default()
        }
    }

    #[test]
    fn quiescent_flush_drains_to_zero() {
        let d = Vbr::new(small_config());
        let mut h = d.register();
        for i in 0..64u64 {
            let mut g = h.pin();
            let p = g.alloc(i);
            // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
            unsafe { g.retire(p) };
        }
        for _ in 0..4 {
            h.flush();
        }
        assert_eq!(d.unreclaimed(), 0);
    }

    #[test]
    fn retired_blocks_are_recycled_with_bumped_versions() {
        let d = Vbr::new(small_config());
        let mut h = d.register();
        // Churn enough for the recycle queue to feed the pool and for the
        // pool to hand memory back out.
        let mut max_version = 0;
        for i in 0..512u64 {
            let mut g = h.pin();
            let p = g.alloc(i);
            // SAFETY: `p` is live and owned by this test.
            max_version = max_version.max(unsafe { version_of(p.as_ptr()) });
            // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
            unsafe { g.retire(p) };
        }
        assert!(
            max_version > 0,
            "VBR churn must recycle memory through the pool (version stamp)"
        );
    }

    #[test]
    fn lagging_reader_is_displaced() {
        let d = Vbr::new(small_config());
        let mut reader = d.register();
        let mut worker = d.register();

        let mut g = reader.pin();
        assert!(!g.needs_restart());

        // Alloc/retire churn advances the epoch (epoch_freq = 4 here) until
        // the reader is two behind.
        for i in 0..64u64 {
            let mut wg = worker.pin();
            let p = wg.alloc(i);
            // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
            unsafe { wg.retire(p) };
        }
        assert!(
            g.needs_restart(),
            "a reader two epochs behind must be asked to restart"
        );
        g.checkpoint();
        assert!(!g.needs_restart());
        assert!(d.displacements() > 0);
        let epoch = d.global_epoch.load(Ordering::SeqCst);
        assert_eq!(
            d.slots[0].epoch.load(Ordering::SeqCst),
            epoch,
            "checkpoint must re-announce the current epoch"
        );
        drop(g);
        for _ in 0..4 {
            worker.flush();
        }
        assert_eq!(d.unreclaimed(), 0);
    }

    #[test]
    fn cooperative_reader_does_not_block_recycling() {
        let d = Vbr::new(small_config());
        let mut reader = d.register();
        let mut worker = d.register();
        let mut g = reader.pin();
        for i in 0..128u64 {
            let mut wg = worker.pin();
            let p = wg.alloc(i);
            // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
            unsafe { wg.retire(p) };
            if g.needs_restart() {
                g.checkpoint();
            }
        }
        if g.needs_restart() {
            g.checkpoint();
        }
        for _ in 0..4 {
            worker.flush();
            if g.needs_restart() {
                g.checkpoint();
            }
        }
        assert!(
            d.unreclaimed() <= 4,
            "a checkpointing reader must not pin the recycle queues (got {})",
            d.unreclaimed()
        );
        drop(g);
    }

    #[test]
    fn uncooperative_reader_blocks_recycling() {
        let d = Vbr::new(small_config());
        let mut stalled = d.register();
        let mut worker = d.register();
        let _guard = stalled.pin();
        for i in 0..256u64 {
            let mut g = worker.pin();
            let p = g.alloc(i);
            // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
            unsafe { g.retire(p) };
        }
        worker.flush();
        assert!(
            d.unreclaimed() > 128,
            "VBR must not recycle past an uncooperative reader (got {})",
            d.unreclaimed()
        );
    }

    #[test]
    fn repin_reannounces_without_counting_as_displacement() {
        let d = Vbr::new(small_config());
        let mut h = d.register();
        let mut g = h.pin();
        let announced = d.slots[0].epoch.load(Ordering::SeqCst);
        g.repin();
        assert_eq!(
            d.slots[0].epoch.load(Ordering::SeqCst),
            announced,
            "repin with an unmoved epoch must elide"
        );
        d.global_epoch.fetch_add(1, Ordering::SeqCst);
        g.repin();
        assert_eq!(
            d.slots[0].epoch.load(Ordering::SeqCst),
            announced + 1,
            "repin must re-announce after the epoch moved"
        );
        assert!(
            !g.needs_restart(),
            "a freshly repinned reader is not displaced"
        );
        assert_eq!(d.displacements(), 0, "repin is not a displacement");
        drop(g);
    }

    #[test]
    fn guard_held_across_repins_does_not_block_recycling() {
        let d = Vbr::new(small_config());
        let mut holder = d.register();
        let mut worker = d.register();
        let mut g = holder.pin();
        for i in 0..256u64 {
            let mut wg = worker.pin();
            let p = wg.alloc(i);
            // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
            unsafe { wg.retire(p) };
            drop(wg);
            g.repin();
        }
        worker.flush();
        assert!(
            d.unreclaimed() < 128,
            "a reader repinning at op boundaries must not pin the queues (got {})",
            d.unreclaimed()
        );
        drop(g);
    }

    #[test]
    fn retire_batch_reclaims_like_per_node_retire() {
        let d = Vbr::new(small_config());
        let mut h = d.register();
        {
            let mut g = h.pin();
            let batch: Vec<_> = (0..48u64).map(|i| g.alloc(i)).collect();
            // SAFETY: each block was just allocated and never published, so
            // this thread is its sole owner and retires it exactly once.
            unsafe { g.retire_batch(&batch) };
        }
        for _ in 0..4 {
            h.flush();
        }
        assert_eq!(d.unreclaimed(), 0);
    }

    #[test]
    fn fifo_drain_stops_at_the_first_protected_entry() {
        let d = Vbr::new(SmrConfig {
            max_threads: 4,
            scan_threshold: 1024, // no automatic drains
            epoch_freq_per_thread: 1024,
            ..SmrConfig::default()
        });
        let mut worker = d.register();
        let mut reader = d.register();
        // Two entries retired at the initial epoch...
        for i in 0..2u64 {
            let mut g = worker.pin();
            let p = g.alloc(i);
            // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
            unsafe { g.retire(p) };
        }
        // ...epoch moves two ahead, a reader pins at the new epoch...
        d.global_epoch.fetch_add(2, Ordering::SeqCst);
        let g = reader.pin();
        // ...and two more entries are retired at the reader's epoch.
        {
            let mut wg = worker.pin();
            for i in 10..12u64 {
                let p = wg.alloc(i);
                // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
                unsafe { wg.retire(p) };
            }
        }
        assert_eq!(d.unreclaimed(), 4);
        let domain = d.clone();
        domain.drain_vault(worker.claim.index, worker.claim.index, &mut worker.pool);
        assert_eq!(
            d.unreclaimed(),
            2,
            "the pre-pin prefix drains, the reader-epoch suffix stays"
        );
        drop(g);
    }

    #[test]
    fn leaked_handle_on_dead_thread_is_adopted() {
        let d = Vbr::new(small_config());
        let dd = d.clone();
        std::thread::spawn(move || {
            let mut h = dd.register();
            {
                let mut g = h.pin();
                for i in 0..3u64 {
                    let p = g.alloc(i);
                    // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
                    unsafe { g.retire(p) };
                }
            }
            // Simulate a thread dying without unwinding its handle.
            std::mem::forget(h);
        })
        .join()
        .unwrap();
        let mut survivor = d.register();
        for _ in 0..8 {
            survivor.flush();
        }
        assert_eq!(
            d.unreclaimed(),
            0,
            "a survivor must adopt and drain the dead thread's recycle queue"
        );
    }

    #[test]
    fn multi_threaded_churn_reclaims_everything() {
        let d = Vbr::new(SmrConfig {
            max_threads: 8,
            scan_threshold: 16,
            epoch_freq_per_thread: 1,
            ..SmrConfig::default()
        });
        std::thread::scope(|s| {
            for t in 0..4 {
                let d = d.clone();
                s.spawn(move || {
                    let mut h = d.register();
                    for i in 0..1000u64 {
                        let mut g = h.pin();
                        let p = g.alloc(t * 10_000 + i);
                        // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
                        unsafe { g.retire(p) };
                        if g.needs_restart() {
                            g.checkpoint();
                        }
                    }
                    for _ in 0..8 {
                        h.flush();
                    }
                });
            }
        });
        let mut h = d.register();
        for _ in 0..8 {
            h.flush();
        }
        drop(h);
        assert_eq!(d.unreclaimed(), 0);
    }

    #[test]
    fn orphans_are_freed_on_domain_drop() {
        let d = Vbr::new(small_config());
        let mut reader = d.register();
        let mut h = d.register();
        {
            let mut g = h.pin();
            let p = g.alloc(1u64);
            // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
            unsafe { g.retire(p) };
        }
        // A pinned reader keeps the entry ineligible, so the handle drop must
        // orphan it instead of draining it.
        let rg = reader.pin();
        drop(h);
        assert_eq!(d.unreclaimed(), 1);
        drop(rg);
        drop(reader);
        drop(d);
    }
}
