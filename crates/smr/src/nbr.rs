//! NBR — neutralization-based reclamation (Brown's DEBRA+ line), cooperative
//! variant.
//!
//! Like EBR, every operation publishes an era (its *checkpoint*) and a retired
//! node is reclaimable once every active thread's checkpoint is two eras past
//! its retirement.  Unlike EBR, the global era does not wait for laggards:
//! when a sweep finds the minimum checkpoint blocking its limbo list, it bumps
//! the global era and raises a per-thread *neutralize* flag on every lagging
//! reader.  A cooperative reader polls the flag through
//! [`SmrGuard::needs_restart`] at restart-safe points of its traversal (the
//! `scot` cursor does this), acknowledges with [`SmrGuard::checkpoint`] —
//! which discards all of its protections and re-announces the current era —
//! and restarts from the structure root.  The minimum checkpoint then rises
//! and the blocked sweep succeeds.
//!
//! DEBRA+ neutralizes readers *preemptively* with a POSIX signal, which makes
//! it robust against stalled threads.  Signals cannot restart a Rust
//! traversal safely (the paper's own artifact confines them to setjmp-style
//! recovery code), so this variant is cooperative: safety is carried entirely
//! by the published checkpoint eras, and the flag is only a progress
//! accelerator.  A reader that never polls keeps its checkpoint pinned and
//! blocks reclamation exactly like a stalled EBR reader — which is why
//! [`SmrKind::is_robust`] reports `false` for NBR.

use crate::block::{header_of, Retired};
use crate::pool::{BlockPool, PoolShared, ShardedCounter};
use crate::ptr::{Atomic, Shared};
use crate::registry::{PinBinding, SlotClaim, SlotRegistry};
use crate::{Smr, SmrConfig, SmrError, SmrGuard, SmrHandle, SmrKind};
use crossbeam_utils::CachePadded;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Checkpoint value meaning "not in a critical section".
const INACTIVE: u64 = 0;
/// First valid era; starting above `INACTIVE + 2` keeps the "retire era + 2"
/// comparison free of underflow special cases.
const FIRST_ERA: u64 = 4;

struct NbrSlot {
    /// Era announced by the slot's owner at pin/checkpoint, or [`INACTIVE`].
    checkpoint: AtomicU64,
    /// Raised by a blocked sweep to ask the owner to checkpoint; cleared by
    /// the owner when it does (or when it pins afresh).
    neutralize: AtomicBool,
}

/// The neutralization-based reclamation domain.
pub struct Nbr {
    config: SmrConfig,
    registry: SlotRegistry,
    global_era: CachePadded<AtomicU64>,
    slots: Box<[CachePadded<NbrSlot>]>,
    unreclaimed: ShardedCounter,
    pool: Arc<PoolShared>,
    /// Per-slot retire lists, domain-owned so a dead thread's list is
    /// adoptable (see [`Nbr::adopt_orphans`]).
    vaults: Box<[Mutex<Vec<Retired>>]>,
    orphans: Mutex<Vec<Retired>>,
    /// Total neutralize flags raised by blocked sweeps (monotonic; a
    /// diagnostic mirror of how often reclamation had to push readers).
    neutralizations: AtomicU64,
}

impl Smr for Nbr {
    type Handle = NbrHandle;

    fn new(config: SmrConfig) -> Arc<Self> {
        let config = config.validated();
        let slots = (0..config.max_threads)
            .map(|_| {
                CachePadded::new(NbrSlot {
                    checkpoint: AtomicU64::new(INACTIVE),
                    neutralize: AtomicBool::new(false),
                })
            })
            .collect();
        Arc::new(Self {
            registry: SlotRegistry::new(config.max_threads),
            global_era: CachePadded::new(AtomicU64::new(FIRST_ERA)),
            slots,
            unreclaimed: ShardedCounter::new(config.max_threads),
            pool: PoolShared::new(config.pool_blocks(), config.max_threads),
            vaults: (0..config.max_threads)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            orphans: Mutex::new(Vec::new()),
            neutralizations: AtomicU64::new(0),
            config,
        })
    }

    fn try_register(self: &Arc<Self>) -> Result<NbrHandle, SmrError> {
        let claim = self.registry.try_claim().ok_or(SmrError::RegistryFull {
            capacity: self.registry.capacity(),
        })?;
        // ORDERING: Relaxed is enough for both resets — the slot is not yet
        // visible to sweepers (the claim above publishes it, and `is_claimed`
        // readers synchronize through the registry).
        self.slots[claim.index]
            .checkpoint
            // ORDERING: the slot is newly claimed and not yet observed by reclamation scans; this reset is owner-only.
            .store(INACTIVE, Ordering::Relaxed);
        self.slots[claim.index]
            .neutralize
            // ORDERING: the slot is newly claimed and not yet observed by reclamation scans; this reset is owner-only.
            .store(false, Ordering::Relaxed);
        Ok(NbrHandle {
            pool: BlockPool::new(self.pool.clone(), self.config.pool_blocks()),
            domain: self.clone(),
            claim,
            binding: PinBinding::new(),
        })
    }

    fn unreclaimed(&self) -> usize {
        self.unreclaimed.sum()
    }

    fn kind(&self) -> SmrKind {
        SmrKind::Nbr
    }
}

impl Nbr {
    /// Minimum checkpoint era over all active slots, or `u64::MAX` when no
    /// thread is inside a critical section (everything retired is then safe).
    fn min_checkpoint(&self) -> u64 {
        let mut min = u64::MAX;
        for (i, slot) in self.slots.iter().enumerate() {
            if !self.registry.is_claimed(i) {
                continue;
            }
            let c = slot.checkpoint.load(Ordering::SeqCst);
            if c != INACTIVE && c < min {
                min = c;
            }
        }
        min
    }

    /// Frees every limbo entry retired at least two eras before the minimum
    /// active checkpoint.  A reader checkpointed at era `C` can only reach
    /// nodes retired at `C - 1` or later (anything older was unlinked before
    /// the reader announced `C`), so `retire + 2 <= C` leaves one era of
    /// slack — the same grace argument as EBR, with the quiescence check
    /// moved from the epoch-advance path to the sweep itself.
    fn sweep(&self, limbo: &mut Vec<Retired>, slot: usize, pool: &mut BlockPool) {
        let min = self.min_checkpoint();
        let mut freed = 0usize;
        limbo.retain(|r| {
            if r.retire_era().saturating_add(2) <= min {
                // SAFETY: every active checkpoint is at least two eras past
                // this entry's retirement, so no thread can still reach the
                // block (the grace argument above); the record owns the block
                // and is dropped from the list.
                unsafe { r.free_into(pool) };
                freed += 1;
                false
            } else {
                true
            }
        });
        if freed > 0 {
            self.unreclaimed.sub(slot, freed);
        }
    }

    /// The neutralization step: bumps the global era and raises the
    /// neutralize flag on every active reader still checkpointed below it.
    /// Called when a sweep leaves its limbo list over the scan threshold —
    /// i.e. exactly when lagging readers are what blocks reclamation.
    fn neutralize_laggards(&self) {
        let era = self.global_era.fetch_add(1, Ordering::SeqCst) + 1;
        let mut raised = 0u64;
        for (i, slot) in self.slots.iter().enumerate() {
            if !self.registry.is_claimed(i) {
                continue;
            }
            let c = slot.checkpoint.load(Ordering::SeqCst);
            if c != INACTIVE && c < era && !slot.neutralize.swap(true, Ordering::AcqRel) {
                raised += 1;
            }
        }
        if raised > 0 {
            // ORDERING: Relaxed — a monotonic statistics counter read only by
            // the diagnostic accessor; no other memory depends on it.
            self.neutralizations.fetch_add(raised, Ordering::Relaxed);
        }
    }

    fn sweep_vault(&self, vault_idx: usize, counter_slot: usize, pool: &mut BlockPool) {
        let mut vault = self.vaults[vault_idx].lock();
        if !vault.is_empty() {
            self.sweep(&mut vault, counter_slot, pool);
        }
    }

    /// Adopts and sweeps orphaned limbo entries left by deregistered threads.
    fn sweep_orphans(&self, slot: usize, pool: &mut BlockPool) {
        if let Some(mut orphans) = self.orphans.try_lock() {
            if !orphans.is_empty() {
                self.sweep(&mut orphans, slot, pool);
            }
        }
    }

    /// Adopts slots abandoned by dead threads: clears the dead thread's
    /// checkpoint (sound — the owner can issue no further loads, so its
    /// protection requirement has lapsed) plus its pending neutralize flag,
    /// and drains its retire vault into the orphan list.
    fn adopt_orphans(&self, my_slot: usize, pool: &mut BlockPool) {
        for i in 0..self.registry.capacity() {
            if i == my_slot {
                continue;
            }
            if let Some(adoption) = self.registry.try_begin_adopt(i) {
                self.slots[i].checkpoint.store(INACTIVE, Ordering::SeqCst);
                // ORDERING: Relaxed — the flag is advisory (a progress hint,
                // never a safety signal) and the dead owner will never poll
                // it again; the adoption fence publishes it to any claimant.
                self.slots[i].neutralize.store(false, Ordering::Relaxed);
                let mut vault = self.vaults[i].lock();
                if !vault.is_empty() {
                    self.orphans.lock().append(&mut vault);
                }
                drop(vault);
                adoption.finish();
            }
        }
        self.sweep_orphans(my_slot, pool);
    }

    /// Total neutralize flags raised so far (diagnostic).
    pub fn neutralizations(&self) -> u64 {
        // ORDERING: Relaxed — statistics read, see `neutralize_laggards`.
        self.neutralizations.load(Ordering::Relaxed)
    }
}

impl Drop for Nbr {
    fn drop(&mut self) {
        // No handles remain (they hold `Arc<Nbr>`), so nothing can be
        // protected any more: release whatever is still in the vaults and
        // the orphan list.
        for vault in self.vaults.iter() {
            for r in vault.lock().drain(..) {
                // SAFETY: `&mut self` proves every handle (and so every
                // guard) is gone; no checkpoint can still protect the block.
                unsafe { r.free() };
            }
        }
        let mut orphans = self.orphans.lock();
        for r in orphans.drain(..) {
            // SAFETY: as above — the domain is being dropped.
            unsafe { r.free() };
        }
    }
}

/// Per-thread handle for [`Nbr`].
pub struct NbrHandle {
    domain: Arc<Nbr>,
    claim: SlotClaim,
    binding: PinBinding,
    pool: BlockPool,
}

impl NbrHandle {
    /// Publishes the current global era as this thread's checkpoint,
    /// confirming it is still current, and clears a pending neutralize flag —
    /// the shared body of `pin` and `checkpoint`.
    fn announce_checkpoint(&mut self) {
        let slot = &self.domain.slots[self.claim.index];
        // ORDERING: Relaxed — the flag is a progress hint, not a safety
        // signal; clearing it late at worst triggers one redundant restart.
        slot.neutralize.store(false, Ordering::Relaxed);
        loop {
            let e = self.domain.global_era.load(Ordering::SeqCst);
            slot.checkpoint.store(e, Ordering::SeqCst);
            if self.domain.global_era.load(Ordering::SeqCst) == e {
                break;
            }
        }
    }

    fn scan(&mut self) {
        let idx = self.claim.index;
        let domain = self.domain.clone();
        domain.sweep_vault(idx, idx, &mut self.pool);
        domain.adopt_orphans(idx, &mut self.pool);
        if domain.vaults[idx].lock().len() >= domain.config.scan_threshold {
            // Readers are what blocks us: neutralize them and retry once —
            // flags raised now typically pay off at the *next* scan, but a
            // quiescent domain drains immediately.
            domain.neutralize_laggards();
            domain.sweep_vault(idx, idx, &mut self.pool);
        }
    }
}

impl SmrHandle for NbrHandle {
    type Guard<'g>
        = NbrGuard<'g>
    where
        Self: 'g;

    fn pin(&mut self) -> NbrGuard<'_> {
        self.domain
            .registry
            .check_owner_and_bind(self.claim, &mut self.binding);
        self.announce_checkpoint();
        NbrGuard {
            handle: self,
            _thread_bound: std::marker::PhantomData,
        }
    }

    fn flush(&mut self) {
        let idx = self.claim.index;
        self.domain.global_era.fetch_add(1, Ordering::SeqCst);
        let domain = self.domain.clone();
        domain.sweep_vault(idx, idx, &mut self.pool);
        domain.adopt_orphans(idx, &mut self.pool);
        if !domain.vaults[idx].lock().is_empty() {
            // A forced flush is the impatient path: neutralize whoever blocks
            // even a single entry, then retry.
            domain.neutralize_laggards();
            domain.sweep_vault(idx, idx, &mut self.pool);
        }
    }
}

impl Drop for NbrHandle {
    fn drop(&mut self) {
        let domain = self.domain.clone();
        domain.registry.release_with(self.claim, || {
            let slot = &domain.slots[self.claim.index];
            slot.checkpoint.store(INACTIVE, Ordering::SeqCst);
            // ORDERING: Relaxed — advisory flag; the release_with callback is
            // published to the next claimant by the registry itself.
            slot.neutralize.store(false, Ordering::Relaxed);
            let mut vault = domain.vaults[self.claim.index].lock();
            if !vault.is_empty() {
                domain.orphans.lock().append(&mut vault);
            }
        });
    }
}

/// Critical-section guard for [`Nbr`].
#[must_use = "dropping a guard unpublishes every protection it holds"]
pub struct NbrGuard<'g> {
    handle: &'g mut NbrHandle,
    /// Makes the guard `!Send`/`!Sync`: a guard is the pinning thread's
    /// read-side critical section, and the slot registry's liveness beacon
    /// tracks exactly that thread (see [`crate::registry`]) -- a guard that
    /// crossed threads could see its protections neutralized when the
    /// pinning thread exits.
    _thread_bound: std::marker::PhantomData<*mut ()>,
}

impl Drop for NbrGuard<'_> {
    fn drop(&mut self) {
        // Deactivating the checkpoint on drop also covers panicking
        // operations (RAII unwind safety).
        let slot = &self.handle.domain.slots[self.handle.claim.index];
        slot.checkpoint.store(INACTIVE, Ordering::Release);
    }
}

impl SmrGuard for NbrGuard<'_> {
    #[inline]
    fn domain_addr(&self) -> usize {
        std::sync::Arc::as_ptr(&self.handle.domain) as usize
    }

    #[inline]
    fn protect<T>(&mut self, _idx: usize, src: &Atomic<T>) -> Shared<T> {
        // The checkpoint era announced at pin (or at the last `checkpoint`
        // call) protects everything reachable; per-pointer work is
        // unnecessary, exactly as under EBR.
        src.load(Ordering::Acquire)
    }

    #[inline]
    fn announce<T>(&mut self, _idx: usize, _ptr: Shared<T>) {}

    #[inline]
    fn dup(&mut self, _from: usize, _to: usize) {}

    #[inline]
    fn clear(&mut self, _idx: usize) {}

    fn alloc<T: Send + 'static>(&mut self, value: T) -> Shared<T> {
        Shared::from_ptr(self.handle.pool.alloc(value))
    }

    // SAFETY: callers must guarantee `ptr` has been unlinked from every shared location before retiring it.
    unsafe fn retire<T: Send + 'static>(&mut self, ptr: Shared<T>) {
        let value = ptr.untagged().as_ptr();
        debug_assert!(!value.is_null());
        // SAFETY: the caller guarantees `ptr` came from `alloc` on this
        // domain, is unlinked, and is retired exactly once.
        let retired = unsafe { Retired::from_value(value) };
        let handle = &mut *self.handle;
        // SAFETY: the record was just built from a live block; its header is
        // valid until the record is freed.
        // ORDERING: a Relaxed era read can only lag the true era, stamping
        // the retirement conservatively early — at worst it delays
        // reclamation by one sweep; the stamp is published to sweepers by
        // the vault mutex acquired just below.
        unsafe {
            (*retired.hdr).retire_era.store(
                // ORDERING: see the comment above this unsafe block.
                handle.domain.global_era.load(Ordering::Relaxed),
                // ORDERING: see the comment above this unsafe block.
                Ordering::Relaxed,
            );
        }
        let slot = handle.claim.index;
        let pending = {
            let mut vault = handle.domain.vaults[slot].lock();
            vault.push(retired);
            vault.len()
        };
        handle.domain.unreclaimed.add(slot, 1);
        if pending >= handle.domain.config.scan_threshold {
            handle.scan();
        }
    }

    // SAFETY: callers must guarantee `ptr` was never published to other threads.
    unsafe fn dealloc<T>(&mut self, ptr: Shared<T>) {
        // SAFETY: the caller guarantees the pointer was never published, so
        // no other thread has observed the block; pool-freeing it runs the
        // destructor exactly once.
        unsafe { self.handle.pool.free(header_of(ptr.untagged().as_ptr())) };
    }

    #[inline]
    fn needs_restart(&self) -> bool {
        self.handle.domain.slots[self.handle.claim.index]
            .neutralize
            .load(Ordering::Acquire)
    }

    #[inline]
    fn checkpoint(&mut self) {
        self.handle.announce_checkpoint();
    }

    /// An op-boundary repin is semantically a checkpoint: re-announce the
    /// current era so the minimum checkpoint keeps rising.  Elided when this
    /// slot already announces the current era and no sweep has asked us to
    /// restart — then the announcement is already as fresh as it can get.
    #[inline]
    fn repin(&mut self) {
        let slot = &self.handle.domain.slots[self.handle.claim.index];
        let era = self.handle.domain.global_era.load(Ordering::SeqCst);
        // ORDERING: Relaxed — our own checkpoint is single-writer (only this
        // thread stores real eras into it), so the read needs no ordering.
        if era == slot.checkpoint.load(Ordering::Relaxed) && !self.needs_restart() {
            return;
        }
        self.handle.announce_checkpoint();
    }

    // SAFETY: callers must guarantee every pointer in `batch` satisfies the
    // per-node `retire` contract (unlinked, owned, retired exactly once).
    unsafe fn retire_batch<T: Send + 'static>(&mut self, batch: &[Shared<T>]) {
        if batch.is_empty() {
            return;
        }
        let handle = &mut *self.handle;
        // ORDERING: a lagging retire-era stamp only delays reclamation by one
        // sweep; safety is unaffected (same argument as single `retire`).
        let era = handle.domain.global_era.load(Ordering::Relaxed);
        let slot = handle.claim.index;
        let pending = {
            let mut vault = handle.domain.vaults[slot].lock();
            vault.reserve(batch.len());
            for &ptr in batch {
                let value = ptr.untagged().as_ptr();
                debug_assert!(!value.is_null());
                // SAFETY: the caller guarantees every element came from
                // `alloc` on this domain and is already unlinked, so each
                // block header is live.
                let retired = unsafe { Retired::from_value(value) };
                // SAFETY: the record was just built from a live block; its
                // header is valid until the record is freed.
                // ORDERING: published to sweepers by the vault mutex.
                unsafe { (*retired.hdr).retire_era.store(era, Ordering::Relaxed) };
                vault.push(retired);
            }
            vault.len()
        };
        handle.domain.unreclaimed.add(slot, batch.len());
        if pending >= handle.domain.config.scan_threshold {
            handle.scan();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SmrConfig {
        SmrConfig {
            max_threads: 4,
            scan_threshold: 4,
            ..SmrConfig::default()
        }
    }

    #[test]
    fn retired_nodes_are_eventually_freed() {
        let d = Nbr::new(small_config());
        let mut h = d.register();
        for i in 0..64u64 {
            let mut g = h.pin();
            let p = g.alloc(i);
            // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
            unsafe { g.retire(p) };
        }
        for _ in 0..4 {
            h.flush();
        }
        assert_eq!(d.unreclaimed(), 0);
    }

    #[test]
    fn blocked_sweep_neutralizes_the_lagging_reader() {
        let d = Nbr::new(small_config());
        let mut reader = d.register();
        let mut worker = d.register();

        let mut g = reader.pin();
        assert!(!g.needs_restart());

        // Churn way past the scan threshold: the worker's sweeps are blocked
        // by the reader's checkpoint and must raise its neutralize flag.
        for i in 0..64u64 {
            let mut wg = worker.pin();
            let p = wg.alloc(i);
            // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
            unsafe { wg.retire(p) };
        }
        assert!(
            g.needs_restart(),
            "a blocked sweep must ask the lagging reader to restart"
        );
        assert!(d.neutralizations() > 0);
        assert!(d.unreclaimed() > 0, "reader still blocks reclamation");

        // The reader cooperates: checkpoint + (conceptually) restart.
        g.checkpoint();
        assert!(!g.needs_restart());
        let era = d.global_era.load(Ordering::SeqCst);
        assert_eq!(
            d.slots[0].checkpoint.load(Ordering::SeqCst),
            era,
            "checkpoint must re-announce the current era"
        );
        drop(g);
        for _ in 0..4 {
            worker.flush();
        }
        assert_eq!(d.unreclaimed(), 0);
    }

    #[test]
    fn checkpoint_unblocks_reclamation_while_reader_stays_pinned() {
        let d = Nbr::new(small_config());
        let mut reader = d.register();
        let mut worker = d.register();

        let mut g = reader.pin();
        for i in 0..32u64 {
            let mut wg = worker.pin();
            let p = wg.alloc(i);
            // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
            unsafe { wg.retire(p) };
        }
        let before = d.unreclaimed();
        assert!(before > 0);
        // Cooperating (checkpointing whenever asked) is enough: the reader
        // never unpins, yet reclamation proceeds past it.
        for _ in 0..8 {
            if g.needs_restart() {
                g.checkpoint();
            }
            worker.flush();
        }
        assert_eq!(d.unreclaimed(), 0, "cooperative reader must not block");
        drop(g);
    }

    #[test]
    fn uncooperative_reader_blocks_reclamation() {
        // The cooperative caveat: safety is carried by the checkpoint era, so
        // a reader that never polls keeps everything since its pin alive.
        let d = Nbr::new(small_config());
        let mut stalled = d.register();
        let mut worker = d.register();
        let _guard = stalled.pin();
        for i in 0..256u64 {
            let mut g = worker.pin();
            let p = g.alloc(i);
            // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
            unsafe { g.retire(p) };
        }
        worker.flush();
        assert!(
            d.unreclaimed() > 128,
            "NBR must not reclaim past an uncooperative reader (got {})",
            d.unreclaimed()
        );
    }

    #[test]
    fn pin_clears_a_stale_neutralize_flag() {
        let d = Nbr::new(small_config());
        let mut h = d.register();
        d.slots[0].neutralize.store(true, Ordering::SeqCst);
        let g = h.pin();
        assert!(!g.needs_restart(), "pin starts a fresh checkpoint");
    }

    #[test]
    fn repin_reannounces_and_clears_a_pending_neutralize() {
        let d = Nbr::new(small_config());
        let mut h = d.register();
        let mut g = h.pin();
        let announced = d.slots[0].checkpoint.load(Ordering::SeqCst);
        g.repin();
        assert_eq!(
            d.slots[0].checkpoint.load(Ordering::SeqCst),
            announced,
            "repin with an unmoved era and no pending flag must elide"
        );
        // A blocked sweep bumps the era and flags us; repin must behave like
        // a checkpoint.
        d.neutralize_laggards();
        assert!(g.needs_restart());
        g.repin();
        assert!(!g.needs_restart(), "repin must acknowledge the flag");
        assert_eq!(
            d.slots[0].checkpoint.load(Ordering::SeqCst),
            d.global_era.load(Ordering::SeqCst),
            "repin must re-announce the current era"
        );
        drop(g);
    }

    #[test]
    fn guard_held_across_repins_does_not_block_reclamation() {
        let d = Nbr::new(small_config());
        let mut holder = d.register();
        let mut worker = d.register();
        let mut g = holder.pin();
        for i in 0..256u64 {
            let mut wg = worker.pin();
            let p = wg.alloc(i);
            // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
            unsafe { wg.retire(p) };
            drop(wg);
            g.repin();
        }
        worker.flush();
        assert!(
            d.unreclaimed() < 128,
            "a reader repinning at op boundaries is cooperative (got {})",
            d.unreclaimed()
        );
        drop(g);
    }

    #[test]
    fn retire_batch_reclaims_like_per_node_retire() {
        let d = Nbr::new(small_config());
        let mut h = d.register();
        {
            let mut g = h.pin();
            let batch: Vec<_> = (0..48u64).map(|i| g.alloc(i)).collect();
            // SAFETY: each block was just allocated and never published, so
            // this thread is its sole owner and retires it exactly once.
            unsafe { g.retire_batch(&batch) };
        }
        for _ in 0..4 {
            h.flush();
        }
        assert_eq!(d.unreclaimed(), 0);
    }

    #[test]
    fn multi_threaded_retire_storm_reclaims_everything() {
        let d = Nbr::new(SmrConfig {
            max_threads: 8,
            scan_threshold: 16,
            ..SmrConfig::default()
        });
        std::thread::scope(|s| {
            for t in 0..4 {
                let d = d.clone();
                s.spawn(move || {
                    let mut h = d.register();
                    for i in 0..1000u64 {
                        let mut g = h.pin();
                        let p = g.alloc(t * 10_000 + i);
                        // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
                        unsafe { g.retire(p) };
                        if g.needs_restart() {
                            g.checkpoint();
                        }
                    }
                    for _ in 0..8 {
                        h.flush();
                    }
                });
            }
        });
        let mut h = d.register();
        for _ in 0..8 {
            h.flush();
        }
        drop(h);
        assert_eq!(d.unreclaimed(), 0);
    }

    #[test]
    fn leaked_handle_on_dead_thread_is_adopted() {
        let d = Nbr::new(small_config());
        {
            let d = d.clone();
            std::thread::spawn(move || {
                let mut h = d.register();
                let mut g = h.pin();
                let p = g.alloc(1u64);
                // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
                unsafe { g.retire(p) };
                // Leak guard + handle: the checkpoint stays published and the
                // slot stays claimed past thread death.
                std::mem::forget(g);
                std::mem::forget(h);
            })
            .join()
            .unwrap();
        }
        assert_eq!(d.unreclaimed(), 1);
        let mut h = d.register();
        for _ in 0..4 {
            h.flush();
        }
        assert_eq!(
            d.unreclaimed(),
            0,
            "adoption must clear the dead thread's checkpoint and drain its vault"
        );
    }

    #[test]
    fn orphans_are_freed_on_domain_drop() {
        let d = Nbr::new(small_config());
        {
            let mut h = d.register();
            let mut g = h.pin();
            let p = g.alloc(1u64);
            // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
            unsafe { g.retire(p) };
        }
        assert_eq!(d.unreclaimed(), 1);
        drop(d);
    }
}
