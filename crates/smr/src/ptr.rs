//! Tagged atomic pointers used by all non-blocking data structures in this
//! workspace.
//!
//! Non-blocking sets in the Harris / Natarajan-Mittal family steal one or two
//! low-order bits of a pointer to encode *logical deletion* ("marking" in
//! Harris' list, "flagging"/"tagging" in the Natarajan-Mittal tree).  [`Atomic`]
//! is a word-sized atomic cell holding such a tagged pointer and [`Shared`] is
//! the `Copy` snapshot value read out of it.
//!
//! The pointee is always the *value* part of an SMR-managed [`Block`]
//! (see [`crate::block`]), which guarantees at least 8-byte alignment, so the
//! three lowest bits are available for tags.
//!
//! [`Block`]: crate::block::Block

use core::fmt;
use core::marker::PhantomData;
use core::sync::atomic::{AtomicUsize, Ordering};

/// Bit mask of the pointer bits usable as tags (the pointee is always at least
/// 8-byte aligned, see [`crate::block::Block`]).
pub const TAG_MASK: usize = 0b111;

/// A word-sized atomic cell holding a (possibly tagged) pointer to `T`.
///
/// This is intentionally similar to `crossbeam_epoch::Atomic`, but it is not
/// tied to any particular reclamation scheme: all schemes in this crate
/// (`NR`, `EBR`, `HP`, `HE`, `IBR`, `Hyaline-1S`) operate on the same pointer
/// representation so data structures can be written once and instantiated
/// with any of them.
#[repr(transparent)]
pub struct Atomic<T> {
    data: AtomicUsize,
    _marker: PhantomData<*mut T>,
}

// SAFETY: `Atomic<T>` is a word-sized atomic cell; the pointer value itself
// is freely movable between threads, and any thread that *dereferences* it
// must uphold the `Shared::deref` contract, which requires `T: Send + Sync`
// for shared structures — mirrored here as the bound on both impls.
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
// SAFETY: all shared access goes through `&self` atomic operations; there is
// no unsynchronized interior mutability.
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T> fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let raw = self.data.load(Ordering::Relaxed);
        write!(f, "Atomic({:#x})", raw)
    }
}

impl<T> Atomic<T> {
    /// Creates a new null atomic pointer.
    pub const fn null() -> Self {
        Self {
            data: AtomicUsize::new(0),
            _marker: PhantomData,
        }
    }

    /// Creates an atomic pointer initialized to `ptr`.
    pub fn new(ptr: Shared<T>) -> Self {
        Self {
            data: AtomicUsize::new(ptr.raw),
            _marker: PhantomData,
        }
    }

    /// Loads the current value.
    #[inline]
    pub fn load(&self, ord: Ordering) -> Shared<T> {
        Shared::from_raw(self.data.load(ord))
    }

    /// Stores `ptr` into the cell.
    #[inline]
    pub fn store(&self, ptr: Shared<T>, ord: Ordering) {
        self.data.store(ptr.raw, ord);
    }

    /// Atomically swaps the stored pointer, returning the previous value.
    #[inline]
    pub fn swap(&self, ptr: Shared<T>, ord: Ordering) -> Shared<T> {
        Shared::from_raw(self.data.swap(ptr.raw, ord))
    }

    /// Single-word compare-and-swap, the only synchronization primitive used
    /// by the algorithms reproduced from the paper (§2.1).
    ///
    /// On success returns `Ok(())`; on failure returns the value observed.
    #[inline]
    pub fn compare_exchange(
        &self,
        current: Shared<T>,
        new: Shared<T>,
        success: Ordering,
        failure: Ordering,
    ) -> Result<(), Shared<T>> {
        match self
            .data
            .compare_exchange(current.raw, new.raw, success, failure)
        {
            Ok(_) => Ok(()),
            Err(observed) => Err(Shared::from_raw(observed)),
        }
    }

    /// Convenience CAS with `AcqRel`/`Acquire` orderings, which is what the
    /// pseudocode's bare `CAS` corresponds to throughout the paper.
    #[inline]
    pub fn cas(&self, current: Shared<T>, new: Shared<T>) -> Result<(), Shared<T>> {
        self.compare_exchange(current, new, Ordering::AcqRel, Ordering::Acquire)
    }

    /// Returns a raw pointer view of the underlying atomic word.  This is used
    /// by Harris' list, which performs CAS directly on "link addresses"
    /// (`node_t **` in the paper's Figure 3) that may be either `&Head` or a
    /// node's `Next` field.
    #[inline]
    pub fn as_link(&self) -> Link<T> {
        Link {
            cell: self as *const Atomic<T>,
        }
    }
}

/// The address of an [`Atomic`] link (`node_t **` in the paper's pseudocode).
///
/// Harris' list keeps *a pointer to a link* in `prev` so the unlink CAS can
/// update the predecessor field directly, whether that field is the list head
/// or an interior node's `Next` pointer.  `Link` is `Copy` and carries no
/// lifetime; dereferencing it is `unsafe` and valid only while the node that
/// owns the link is protected by the active SMR scheme.
pub struct Link<T> {
    cell: *const Atomic<T>,
}

impl<T> Clone for Link<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Link<T> {}

impl<T> PartialEq for Link<T> {
    fn eq(&self, other: &Self) -> bool {
        core::ptr::eq(self.cell, other.cell)
    }
}
impl<T> Eq for Link<T> {}

impl<T> fmt::Debug for Link<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Link({:p})", self.cell)
    }
}

impl<T> Link<T> {
    /// Dereferences the link.
    ///
    /// # Safety
    /// The owner of the link (the list head or a protected node) must still be
    /// live, i.e. protected by a hazard slot / era reservation or reachable.
    #[inline]
    pub unsafe fn as_atomic<'a>(&self) -> &'a Atomic<T> {
        // SAFETY: the caller guarantees the link's owner is live, so the
        // `Atomic` cell it embeds is a valid, initialized atomic word.
        unsafe { &*self.cell }
    }

    /// Loads through the link.
    ///
    /// # Safety
    /// Same contract as [`Link::as_atomic`]: the owner of the link must still
    /// be live when the load executes.
    #[inline]
    pub unsafe fn load(&self, ord: Ordering) -> Shared<T> {
        // SAFETY: forwarded — the caller upholds the `as_atomic` contract.
        unsafe { self.as_atomic() }.load(ord)
    }

    /// CAS through the link.
    ///
    /// # Safety
    /// Same contract as [`Link::as_atomic`]: the owner of the link must still
    /// be live when the CAS executes.
    #[inline]
    pub unsafe fn cas(&self, current: Shared<T>, new: Shared<T>) -> Result<(), Shared<T>> {
        // SAFETY: forwarded — the caller upholds the `as_atomic` contract.
        unsafe { self.as_atomic() }.cas(current, new)
    }
}

/// A snapshot of an [`Atomic`] cell: a possibly-null, possibly-tagged pointer.
///
/// `Shared` is `Copy` and intentionally does **not** borrow a guard: the
/// protection discipline in this workspace is exactly the one from the paper
/// (hazard-slot indices plus SCOT validation), which cannot be expressed in
/// the type system without changing the algorithms.  All dereferences are
/// `unsafe` and the data-structure code documents, for each one, which hazard
/// slot or validation step makes it sound.
pub struct Shared<T> {
    raw: usize,
    _marker: PhantomData<*mut T>,
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<T> {}

impl<T> PartialEq for Shared<T> {
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<T> Eq for Shared<T> {}

impl<T> fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shared({:#x})", self.raw)
    }
}

impl<T> Default for Shared<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T> Shared<T> {
    /// The null pointer (tag 0).
    #[inline]
    pub const fn null() -> Self {
        Self {
            raw: 0,
            _marker: PhantomData,
        }
    }

    /// Reconstructs a `Shared` from a raw tagged word.
    #[inline]
    pub const fn from_raw(raw: usize) -> Self {
        Self {
            raw,
            _marker: PhantomData,
        }
    }

    /// Creates a `Shared` from an untagged raw pointer.
    #[inline]
    pub fn from_ptr(ptr: *mut T) -> Self {
        Self::from_raw(ptr as usize)
    }

    /// The raw tagged word.
    #[inline]
    pub const fn into_raw(self) -> usize {
        self.raw
    }

    /// The pointer with tag bits stripped.
    #[inline]
    pub fn as_ptr(&self) -> *mut T {
        (self.raw & !TAG_MASK) as *mut T
    }

    /// True if the pointer (ignoring tags) is null.
    #[inline]
    pub fn is_null(&self) -> bool {
        self.as_ptr().is_null()
    }

    /// The tag bits.
    #[inline]
    pub fn tag(&self) -> usize {
        self.raw & TAG_MASK
    }

    /// Returns the same pointer with the given tag bits.
    #[inline]
    pub fn with_tag(&self, tag: usize) -> Self {
        debug_assert_eq!(tag & !TAG_MASK, 0, "tag does not fit in the low bits");
        Self::from_raw((self.raw & !TAG_MASK) | tag)
    }

    /// Returns the same pointer with all tag bits cleared
    /// (`getUnmarked` in the paper's pseudocode).
    #[inline]
    pub fn untagged(&self) -> Self {
        self.with_tag(0)
    }

    /// Dereferences the pointer (tag bits are ignored).
    ///
    /// # Safety
    /// The pointee must be live: either protected by the SMR scheme in use
    /// (hazard slot / era reservation covering it) or provably not yet retired
    /// (e.g. still reachable and the traversal validated per SCOT).
    #[inline]
    pub unsafe fn deref<'a>(&self) -> &'a T {
        // SAFETY: the caller guarantees the pointee is live (protected or
        // validated per SCOT), and `as_ptr` strips the tag bits so the
        // address is the true allocation address.
        unsafe { &*self.as_ptr() }
    }

    /// Like [`Shared::deref`] but returns `None` for null.
    ///
    /// # Safety
    /// Same contract as [`Shared::deref`] when non-null.
    #[inline]
    pub unsafe fn as_ref<'a>(&self) -> Option<&'a T> {
        // SAFETY: the caller guarantees the pointee is live when non-null;
        // `as_ref` returns `None` for null without dereferencing.
        unsafe { self.as_ptr().as_ref() }
    }

    /// Dereferences the pointer, tying the borrow's lifetime to an SMR guard.
    ///
    /// This is the escape hatch that lets a guard-scoped map API hand out
    /// `&'g V` borrows: the returned reference cannot outlive `guard`, so as
    /// long as the caller upholds the protection contract below, the borrow is
    /// sound under every scheme (HP/HE keep the covering hazard slot
    /// published for the guard's lifetime; EBR/IBR/Hyaline keep the epoch/era
    /// reservation active until the guard drops; NR never frees).
    ///
    /// # Safety
    /// The pointee must be protected *for the remaining lifetime of `guard`*:
    /// a hazard slot or era reservation covering it must stay in place — in
    /// particular, no later operation on the same guard may overwrite the
    /// covering hazard slot while the returned borrow is alive.  Taking
    /// `guard` by shared reference means the borrow checker enforces exactly
    /// that for callers who only mutate guards through `&mut`.
    #[inline]
    pub unsafe fn deref_guarded<'g, G: crate::SmrGuard>(&self, _guard: &'g G) -> &'g T {
        // SAFETY: the caller guarantees a protection covering the pointee
        // stays published for the guard's remaining lifetime, which is the
        // lifetime of the returned borrow.
        unsafe { &*self.as_ptr() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_roundtrip() {
        let s: Shared<u64> = Shared::null();
        assert!(s.is_null());
        assert_eq!(s.tag(), 0);
        assert_eq!(s.into_raw(), 0);
    }

    #[test]
    fn tag_roundtrip() {
        let x = Box::into_raw(Box::new(42u64));
        let s = Shared::from_ptr(x);
        assert!(!s.is_null());
        assert_eq!(s.tag(), 0);
        let m = s.with_tag(1);
        assert_eq!(m.tag(), 1);
        assert_eq!(m.as_ptr(), x);
        assert_eq!(m.untagged(), s);
        let m2 = m.with_tag(0b11);
        assert_eq!(m2.tag(), 0b11);
        assert_eq!(m2.untagged(), s);
        // SAFETY: the pointee is a live Box-backed value owned by this test; tags never change the address.
        unsafe {
            assert_eq!(*m2.deref(), 42);
            drop(Box::from_raw(x));
        }
    }

    #[test]
    fn tagged_null_is_still_null() {
        let s: Shared<u64> = Shared::null().with_tag(1);
        assert!(s.is_null());
        assert_eq!(s.tag(), 1);
    }

    #[test]
    fn atomic_load_store_swap() {
        let x = Box::into_raw(Box::new(7u32));
        let a: Atomic<u32> = Atomic::null();
        assert!(a.load(Ordering::Relaxed).is_null());
        a.store(Shared::from_ptr(x), Ordering::Release);
        assert_eq!(a.load(Ordering::Acquire).as_ptr(), x);
        let prev = a.swap(Shared::null(), Ordering::AcqRel);
        assert_eq!(prev.as_ptr(), x);
        assert!(a.load(Ordering::Acquire).is_null());
        // SAFETY: `x` came from `Box::into_raw` above and is reclaimed exactly once.
        unsafe { drop(Box::from_raw(x)) };
    }

    #[test]
    fn atomic_cas_success_and_failure() {
        let x = Box::into_raw(Box::new(1u32));
        let y = Box::into_raw(Box::new(2u32));
        let a = Atomic::new(Shared::from_ptr(x));
        // Failing CAS reports the observed value.
        let err = a.cas(Shared::from_ptr(y), Shared::null()).unwrap_err();
        assert_eq!(err.as_ptr(), x);
        // Successful CAS installs the new value.
        a.cas(Shared::from_ptr(x), Shared::from_ptr(y)).unwrap();
        assert_eq!(a.load(Ordering::Acquire).as_ptr(), y);
        // SAFETY: both pointers came from `Box::into_raw` above and are reclaimed exactly once.
        unsafe {
            drop(Box::from_raw(x));
            drop(Box::from_raw(y));
        }
    }

    #[test]
    fn link_identity() {
        let a: Atomic<u32> = Atomic::null();
        let b: Atomic<u32> = Atomic::null();
        assert_eq!(a.as_link(), a.as_link());
        assert_ne!(a.as_link(), b.as_link());
    }

    #[test]
    fn link_cas_through() {
        let x = Box::into_raw(Box::new(5u32));
        let a: Atomic<u32> = Atomic::null();
        let link = a.as_link();
        // SAFETY: the link view aliases `a`, which outlives it; `x` is reclaimed exactly once below.
        unsafe {
            assert!(link.load(Ordering::Acquire).is_null());
            link.cas(Shared::null(), Shared::from_ptr(x)).unwrap();
            assert_eq!(a.load(Ordering::Acquire).as_ptr(), x);
            drop(Box::from_raw(x));
        }
    }
}
