//! SMR-managed allocation blocks.
//!
//! Every node handed to a reclamation scheme in this crate is allocated as a
//! [`Block<T>`]: a fixed-layout [`Header`] followed by the user value.  The
//! header carries the per-object metadata that the era-based schemes (HE, IBR,
//! Hyaline-1S) need — birth era, retire era — plus the intrusive links used by
//! Hyaline's batch reclamation and a type-erased vtable so that limbo lists
//! can be kept homogeneous (`*mut Header`) regardless of the node type.
//!
//! The vtable ([`BlockVTable`]) splits destruction into two halves so that the
//! block pool ([`crate::pool`]) can recycle raw allocations: `drop_value` runs
//! the payload's destructor *in place* without releasing the memory, and
//! `layout` records the exact allocation layout so the raw block can later be
//! either reused for a new value of any type with the same layout or handed
//! back to the global allocator.  [`free_block`] composes the two halves and
//! is the non-pooled path.
//!
//! Schemes that do not need a given field simply ignore it; the uniform layout
//! is what lets a single data-structure implementation run unmodified under
//! every scheme, exactly as in the paper's benchmark harness.

use core::alloc::Layout;
use core::marker::PhantomData;
use core::mem;
use core::sync::atomic::{AtomicIsize, AtomicU64, AtomicUsize};

/// Type-erased per-`T` metadata installed into every block header.
///
/// One static instance exists per payload type (obtained through const
/// promotion in [`vtable_of`]), so storing a reference costs one word per
/// block — the same as the function pointer it replaces.
pub struct BlockVTable {
    /// Runs the payload's destructor in place; the block's memory stays
    /// allocated and may be recycled afterwards.
    pub drop_value: unsafe fn(*mut Header),
    /// Allocation layout of the whole block (header + value).  Blocks with
    /// equal layouts are interchangeable as raw memory, which is the pool's
    /// recycling criterion.
    pub layout: Layout,
}

/// Drops the payload of a `Block<T>` in place, given only its header address.
///
/// # Safety
/// `hdr` must point to the header of a live block created for payload type
/// `T`, and the payload must not have been dropped already.
unsafe fn drop_value_in_place<T>(hdr: *mut Header) {
    // SAFETY: the caller guarantees `hdr` heads a live block of payload type
    // `T`, so the value pointer is valid and the payload not yet dropped.
    unsafe { core::ptr::drop_in_place(value_of::<T>(hdr)) };
}

/// Returns the static vtable for payload type `T`.
#[inline]
pub fn vtable_of<T>() -> &'static BlockVTable {
    struct Vt<T>(PhantomData<T>);
    impl<T> Vt<T> {
        const VTABLE: BlockVTable = BlockVTable {
            drop_value: drop_value_in_place::<T>,
            layout: Layout::new::<Block<T>>(),
        };
    }
    // Const promotion: the value has no interior mutability and no Drop, so
    // the reference is 'static.
    &Vt::<T>::VTABLE
}

/// Per-object header preceding every SMR-managed allocation.
///
/// Field usage by scheme:
///
/// | field        | EBR            | HP/HPopt | HE/IBR           | Hyaline-1S                      |
/// |--------------|----------------|----------|------------------|---------------------------------|
/// | `birth_era`  | –              | –        | allocation era   | allocation era                  |
/// | `retire_era` | retire epoch   | –        | retire era       | – (batches use min birth)       |
/// | `next`       | –              | –        | –                | per-slot retirement-list link   |
/// | `batch_link` | –              | –        | –                | pointer to the batch REFS node  |
/// | `batch_all`  | –              | –        | –                | intra-batch chain for freeing   |
/// | `refs`       | –              | –        | –                | batch reference counter (REFS)  |
/// | `version`    | all schemes: recycling-incarnation stamp (VBR re-checks it) |||
/// | `vtable`     | all schemes: type-erased destructor + allocation layout |||
///
/// While a block sits in a [`crate::pool::BlockPool`] free list (payload
/// already dropped), the `next` field is repurposed as the free-list link;
/// every other field except `version` is dead and rewritten on reuse —
/// `version` survives parking and is bumped by the pool on each reuse, so it
/// counts the block's recycling incarnations across its whole life.
#[repr(C)]
pub struct Header {
    /// Global era at allocation time (HE / IBR / Hyaline-1S / VBR).
    pub birth_era: AtomicU64,
    /// Global era / epoch at retirement time (EBR / HE / IBR / NBR / VBR).
    pub retire_era: AtomicU64,
    /// Hyaline: link in a slot's retirement list.  Pool: free-list link.
    pub next: AtomicUsize,
    /// Hyaline: every node of a batch points to the batch's REFS node.
    pub batch_link: AtomicUsize,
    /// Hyaline: chain threading all nodes of one batch so the last acker can
    /// free them together.
    pub batch_all: AtomicUsize,
    /// Hyaline: reference counter, meaningful only on the REFS node of a batch.
    pub refs: AtomicIsize,
    /// Recycling-incarnation counter: 0 on a fresh allocation, incremented by
    /// [`crate::pool::BlockPool`] each time the raw memory is reused for a new
    /// value.  Version-based reclamation re-checks it to detect that a block
    /// it optimistically dereferenced has been recycled underneath it.
    pub version: AtomicU64,
    /// Type-erased destructor and allocation layout.  Installed by
    /// [`alloc_block`] / [`init_block`].
    pub vtable: &'static BlockVTable,
}

impl Header {
    fn new(vtable: &'static BlockVTable) -> Self {
        Self {
            birth_era: AtomicU64::new(0),
            retire_era: AtomicU64::new(0),
            next: AtomicUsize::new(0),
            batch_link: AtomicUsize::new(0),
            batch_all: AtomicUsize::new(0),
            refs: AtomicIsize::new(0),
            version: AtomicU64::new(0),
            vtable,
        }
    }
}

/// An SMR-managed allocation: header followed by the user value.
#[repr(C)]
pub struct Block<T> {
    /// SMR metadata (eras, reclamation links, type-erased vtable).
    pub header: Header,
    /// The user value (e.g. a list node or tree node).
    pub value: T,
}

/// Byte offset from a value pointer back to its enclosing block header.
///
/// Constant for a given `T`; the header layout does not depend on `T`.
#[inline]
pub fn value_offset<T>() -> usize {
    mem::offset_of!(Block<T>, value)
}

/// Writes a fresh `Block<T>` into `raw` (previously allocated with the layout
/// recorded for `Block<T>`) and returns a pointer to the **value** part.
///
/// # Safety
/// `raw` must point to an allocation of exactly `Layout::new::<Block<T>>()`
/// whose previous contents (if any) are dead: the old payload must already
/// have been dropped.
#[inline]
pub unsafe fn init_block<T>(raw: *mut Header, value: T) -> *mut T {
    let block = raw as *mut Block<T>;
    // SAFETY: the caller guarantees `raw` is an allocation of exactly
    // `Layout::new::<Block<T>>()` with no live contents, so writing a whole
    // fresh `Block<T>` over it neither overruns nor double-drops anything.
    unsafe {
        core::ptr::write(
            block,
            Block {
                header: Header::new(vtable_of::<T>()),
                value,
            },
        );
        core::ptr::addr_of_mut!((*block).value)
    }
}

/// Allocates a new block holding `value` straight from the global allocator
/// and returns a pointer to the **value** part.  The header is reachable via
/// [`header_of`].  The pooled fast path lives in
/// [`crate::pool::BlockPool::alloc`]; this is the slow/overflow path.
///
/// The returned pointer is at least 8-byte aligned (the header contains
/// `u64`/`usize` fields and the layout is `repr(C)`), so the low three bits are
/// usable as logical-deletion tags, which the data-structure crates rely on.
pub fn alloc_block<T>(value: T) -> *mut T {
    // The tag bits in `Shared` require 8-byte alignment of the value pointer.
    // This holds structurally (see the doc comment) but is cheap to assert.
    debug_assert!(value_offset::<T>().is_multiple_of(8));
    debug_assert!(mem::align_of::<Block<T>>().is_multiple_of(8));
    let layout = Layout::new::<Block<T>>();
    // SAFETY: `Block<T>` is a non-zero-sized `repr(C)` struct (the header
    // alone is several words), so the layout is valid for `alloc`.
    let raw = unsafe { std::alloc::alloc(layout) } as *mut Header;
    if raw.is_null() {
        std::alloc::handle_alloc_error(layout);
    }
    // SAFETY: `raw` was just allocated with exactly `Layout::new::<Block<T>>()`
    // and holds no previous contents.
    unsafe { init_block(raw, value) }
}

/// Returns the header of the block that `value` was allocated in.
///
/// # Safety
/// `value` must have been returned by [`alloc_block`] (tag bits stripped) and
/// the block must still be live.
#[inline]
pub unsafe fn header_of<T>(value: *mut T) -> *mut Header {
    // SAFETY: the caller guarantees `value` is the value part of a live
    // `Block<T>`, so the header sits exactly `value_offset::<T>()` bytes
    // below it within the same allocation.
    unsafe { (value as *mut u8).sub(value_offset::<T>()) as *mut Header }
}

/// Returns the value pointer of a block given its header.
///
/// # Safety
/// `hdr` must point to a live block header produced by [`alloc_block`] for the
/// *same* `T`.
#[inline]
pub unsafe fn value_of<T>(hdr: *mut Header) -> *mut T {
    // SAFETY: the caller guarantees `hdr` heads a live `Block<T>`, so the
    // value part sits `value_offset::<T>()` bytes above it within the same
    // allocation.
    unsafe { (hdr as *mut u8).add(value_offset::<T>()) as *mut T }
}

/// Reads the recycling-incarnation stamp of the block holding `value`
/// (see [`Header::version`]): 0 for a fresh allocation, +1 per pool reuse.
///
/// This is the load behind VBR's version re-check on deref: a traversal
/// captures the stamp when it first protects a node and compares on
/// re-validation — a changed stamp proves the memory was recycled.
///
/// # Safety
/// `value` must have been returned by [`alloc_block`] or
/// [`crate::pool::BlockPool::alloc`] (tag bits stripped) and the block must be
/// live or era-protected so the header read does not race a `dealloc_raw`.
#[inline]
pub unsafe fn version_of<T>(value: *mut T) -> u64 {
    // SAFETY: the caller guarantees the block is live or era-protected, so
    // the header is a valid `Header` for the duration of the atomic load.
    unsafe {
        (*header_of(value))
            .version
            .load(core::sync::atomic::Ordering::Acquire)
    }
}

/// Runs the payload destructor of a block in place, leaving the raw memory
/// allocated (for recycling).  The header becomes dead except for its
/// `vtable.layout`, which remains valid for the eventual [`dealloc_raw`].
///
/// # Safety
/// The block must be live (payload not yet dropped) and unreachable by any
/// other thread.
#[inline]
pub unsafe fn drop_value(hdr: *mut Header) {
    // SAFETY: the caller guarantees the block is live and unreachable; the
    // vtable was installed by `init_block` for the block's true payload type,
    // so the type-erased destructor matches the payload.
    unsafe { ((*hdr).vtable.drop_value)(hdr) }
}

/// Returns a dead block's raw memory to the global allocator.
///
/// # Safety
/// `hdr` must be a block allocation whose payload has already been dropped
/// (via [`drop_value`]) and `layout` must be the block's recorded layout.
#[inline]
pub unsafe fn dealloc_raw(hdr: *mut Header, layout: Layout) {
    // SAFETY: the caller guarantees `hdr` came from the global allocator with
    // exactly `layout` and that its payload has already been dropped, so this
    // hand-back neither double-frees nor leaks a destructor.
    unsafe { std::alloc::dealloc(hdr as *mut u8, layout) };
}

/// Immediately frees a block (running the destructor and releasing the
/// memory) given its header.  The non-pooled composition of [`drop_value`]
/// and [`dealloc_raw`].
///
/// # Safety
/// The block must not be reachable by any thread and must not be freed again.
#[inline]
pub unsafe fn free_block(hdr: *mut Header) {
    // SAFETY: the caller guarantees the block is live and unreachable.  The
    // layout is read out of the header *before* the payload destructor runs
    // (the vtable reference itself stays valid until `dealloc_raw`).
    unsafe {
        let layout = (*hdr).vtable.layout;
        drop_value(hdr);
        dealloc_raw(hdr, layout);
    }
}

/// A retired-but-not-yet-reclaimed block, as stored in per-thread limbo lists.
///
/// `Retired` is a thin record: the header pointer (birth/retire eras and the
/// type-erased vtable live in the header) plus the address of the value
/// part, which is what hazard-pointer slots publish and therefore what limbo
/// scans must compare against.
#[derive(Clone, Copy)]
pub struct Retired {
    /// Header of the retired block.
    pub hdr: *mut Header,
    /// Address of the value part (what `Shared::as_ptr` / hazard slots hold).
    pub value: usize,
}

// SAFETY: retired blocks are unreachable from the data structure; moving them
// between threads (orphan lists, Hyaline's any-thread reclamation) is part of
// the SMR contract, which requires node payloads to be `Send`.
unsafe impl Send for Retired {}

impl Retired {
    /// Captures a retired block from a value pointer (tag bits must already be
    /// stripped by the caller).
    ///
    /// # Safety
    /// `value` must have been allocated with [`alloc_block`] and already be
    /// unlinked from the data structure.
    pub unsafe fn from_value<T>(value: *mut T) -> Self {
        Self {
            // SAFETY: the caller guarantees `value` came from `alloc_block`,
            // so its enclosing block header is live and addressable.
            hdr: unsafe { header_of(value) },
            value: value as usize,
        }
    }

    /// Era at which the block was allocated.
    #[inline]
    pub fn birth_era(&self) -> u64 {
        // SAFETY: a `Retired` is only constructed from a live retired block
        // (`from_value`), and the owning limbo list keeps the header alive
        // until the block is freed, which consumes the `Retired`.
        unsafe {
            (*self.hdr)
                .birth_era
                // ORDERING: era stamps are published to this reader by the vault/limbo handoff that made the `Retired` visible.
                .load(core::sync::atomic::Ordering::Relaxed)
        }
    }

    /// Era at which the block was retired.
    #[inline]
    pub fn retire_era(&self) -> u64 {
        // SAFETY: as for `birth_era` — the limbo list owning this `Retired`
        // keeps the header alive until the block is freed.
        unsafe {
            (*self.hdr)
                .retire_era
                // ORDERING: era stamps are published to this reader by the vault/limbo handoff that made the `Retired` visible.
                .load(core::sync::atomic::Ordering::Relaxed)
        }
    }

    /// Frees the block straight to the global allocator (no pooling).  Sweep
    /// paths prefer [`Retired::free_into`], which recycles.
    ///
    /// # Safety
    /// No thread may still hold a protected reference to the block.
    #[inline]
    pub unsafe fn free(self) {
        // SAFETY: the caller guarantees no protected references remain, and
        // consuming `self` makes a second free impossible through this record.
        unsafe { free_block(self.hdr) };
    }

    /// Runs the destructor and hands the raw block to `pool` for recycling.
    ///
    /// # Safety
    /// No thread may still hold a protected reference to the block.
    #[inline]
    pub unsafe fn free_into(self, pool: &mut crate::pool::BlockPool) {
        // SAFETY: the caller guarantees no protected references remain;
        // `BlockPool::free` runs the destructor and takes ownership of the
        // raw memory for recycling.
        unsafe { pool.free(self.hdr) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn alloc_and_free_runs_destructor() {
        struct DropCounter(Arc<StdAtomicUsize>);
        impl Drop for DropCounter {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let count = Arc::new(StdAtomicUsize::new(0));
        let v = alloc_block(DropCounter(count.clone()));
        assert_eq!(count.load(Ordering::SeqCst), 0);
        // SAFETY: `v` was just allocated; this test is the sole owner of the block.
        unsafe {
            let hdr = header_of(v);
            free_block(hdr);
        }
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn header_value_roundtrip() {
        let v = alloc_block(12345u64);
        // SAFETY: `v` was just allocated; this test is the sole owner of the block.
        unsafe {
            assert_eq!(*v, 12345);
            let hdr = header_of(v);
            let v2 = value_of::<u64>(hdr);
            assert_eq!(v, v2);
            free_block(hdr);
        }
    }

    #[test]
    fn value_pointer_is_tag_aligned() {
        // Different payload sizes/alignments must all yield 8-byte-aligned
        // value pointers, otherwise logical-deletion tag bits would corrupt
        // the pointer.
        let a = alloc_block(1u8);
        let b = alloc_block(1u16);
        let c = alloc_block([1u8; 3]);
        let d = alloc_block(1u128);
        assert_eq!(a as usize % 8, 0);
        assert_eq!(b as usize % 8, 0);
        assert_eq!(c as usize % 8, 0);
        assert_eq!(d as usize % 8, 0);
        // SAFETY: each block was allocated above and is freed exactly once.
        unsafe {
            free_block(header_of(a));
            free_block(header_of(b));
            free_block(header_of(c));
            free_block(header_of(d));
        }
    }

    #[test]
    fn retired_reads_eras_from_header() {
        let v = alloc_block(7u32);
        // SAFETY: `v` was just allocated; this test is the sole owner of the block.
        unsafe {
            let hdr = header_of(v);
            // ORDERING: owner-only stamps on an unshared test block.
            (*hdr).birth_era.store(3, Ordering::Relaxed);
            // ORDERING: owner-only stamps on an unshared test block.
            (*hdr).retire_era.store(9, Ordering::Relaxed);
            let r = Retired::from_value(v);
            assert_eq!(r.birth_era(), 3);
            assert_eq!(r.retire_era(), 9);
            assert_eq!(r.value, v as usize);
            r.free();
        }
    }

    #[test]
    fn vtable_is_shared_per_type_and_records_layout() {
        let a = vtable_of::<u64>();
        let b = vtable_of::<u64>();
        assert!(core::ptr::eq(a, b), "one static vtable per payload type");
        assert_eq!(a.layout, Layout::new::<Block<u64>>());
        assert_ne!(
            vtable_of::<u64>().layout,
            vtable_of::<[u8; 64]>().layout,
            "different payload sizes must yield different block layouts"
        );
    }

    #[test]
    fn drop_value_then_reinit_recycles_memory_without_double_drop() {
        struct DropCounter(Arc<StdAtomicUsize>);
        impl Drop for DropCounter {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let count = Arc::new(StdAtomicUsize::new(0));
        let v = alloc_block(DropCounter(count.clone()));
        // SAFETY: `v` was just allocated; this test is the sole owner of the block.
        unsafe {
            let hdr = header_of(v);
            let layout = (*hdr).vtable.layout;
            drop_value(hdr);
            assert_eq!(count.load(Ordering::SeqCst), 1);
            // Reuse the same memory for a second value of the same layout.
            let v2 = init_block(hdr, DropCounter(count.clone()));
            assert_eq!(count.load(Ordering::SeqCst), 1, "reinit must not drop");
            let hdr2 = header_of(v2);
            assert_eq!(hdr2, hdr);
            drop_value(hdr2);
            assert_eq!(count.load(Ordering::SeqCst), 2);
            dealloc_raw(hdr2, layout);
        }
    }
}
