//! EBR — epoch-based reclamation (Fraser 2004, Hart et al. 2007).
//!
//! Threads entering a critical section publish the current global epoch;
//! retired nodes are tagged with the epoch at retirement and reclaimed once
//! the global epoch has advanced by two, which implies every thread active at
//! retirement has since passed through a quiescent point.
//!
//! EBR is the paper's "fast but fragile" baseline: it imposes almost no
//! per-access overhead (a single epoch announcement per operation) and is
//! compatible with every data structure, but a single stalled thread freezes
//! the global epoch and memory grows without bound — the behaviour exercised
//! by the `stalled_reader` example and the fault-injection harness.
//!
//! Retired-but-unreclaimed nodes live in per-slot *vaults* owned by the
//! domain rather than in handle-local lists, so that when a thread dies
//! without dropping its handle a survivor can adopt the vault: the dead
//! slot's epoch announcement is forced to `INACTIVE` (sound — the owner can
//! issue no further loads) and its vault drains into the shared orphan list.

use crate::block::{header_of, Retired};
use crate::pool::{BlockPool, PoolShared, ShardedCounter};
use crate::ptr::{Atomic, Shared};
use crate::registry::{PinBinding, SlotClaim, SlotRegistry};
use crate::{Smr, SmrConfig, SmrError, SmrGuard, SmrHandle, SmrKind};
use crossbeam_utils::CachePadded;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Epoch value meaning "not in a critical section".
const INACTIVE: u64 = 0;
/// First valid epoch.  Starting above `INACTIVE + 2` keeps the "retire epoch
/// + 2" comparison free of underflow special cases.
const FIRST_EPOCH: u64 = 4;

struct EbrSlot {
    /// Epoch announced by the slot's owner, or [`INACTIVE`].
    epoch: AtomicU64,
}

/// The epoch-based reclamation domain.
pub struct Ebr {
    config: SmrConfig,
    registry: SlotRegistry,
    global_epoch: CachePadded<AtomicU64>,
    slots: Box<[CachePadded<EbrSlot>]>,
    unreclaimed: ShardedCounter,
    pool: Arc<PoolShared>,
    /// Per-slot retire lists.  Domain-owned so a dead thread's list is
    /// adoptable; locked per retirement, but only ever contended by an
    /// adopter (the owner is the sole routine writer).
    vaults: Box<[Mutex<Vec<Retired>>]>,
    /// Limbo entries inherited from threads that deregistered (or died)
    /// before their retired nodes became reclaimable.
    orphans: Mutex<Vec<Retired>>,
}

impl Smr for Ebr {
    type Handle = EbrHandle;

    fn new(config: SmrConfig) -> Arc<Self> {
        let config = config.validated();
        let slots = (0..config.max_threads)
            .map(|_| {
                CachePadded::new(EbrSlot {
                    epoch: AtomicU64::new(INACTIVE),
                })
            })
            .collect();
        Arc::new(Self {
            registry: SlotRegistry::new(config.max_threads),
            global_epoch: CachePadded::new(AtomicU64::new(FIRST_EPOCH)),
            slots,
            unreclaimed: ShardedCounter::new(config.max_threads),
            pool: PoolShared::new(config.pool_blocks(), config.max_threads),
            vaults: (0..config.max_threads)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            orphans: Mutex::new(Vec::new()),
            config,
        })
    }

    fn try_register(self: &Arc<Self>) -> Result<EbrHandle, SmrError> {
        let claim = self.registry.try_claim().ok_or(SmrError::RegistryFull {
            capacity: self.registry.capacity(),
        })?;
        Ok(EbrHandle {
            pool: BlockPool::new(self.pool.clone(), self.config.pool_blocks()),
            domain: self.clone(),
            claim,
            binding: PinBinding::new(),
        })
    }

    fn unreclaimed(&self) -> usize {
        self.unreclaimed.sum()
    }

    fn kind(&self) -> SmrKind {
        SmrKind::Ebr
    }
}

impl Ebr {
    /// Attempts to advance the global epoch.  Succeeds only if every active
    /// thread has announced the current epoch — the quiescence condition that
    /// a stalled thread blocks forever.
    fn try_advance(&self) -> u64 {
        let global = self.global_epoch.load(Ordering::SeqCst);
        for (i, slot) in self.slots.iter().enumerate() {
            if !self.registry.is_claimed(i) {
                continue;
            }
            let e = slot.epoch.load(Ordering::SeqCst);
            if e != INACTIVE && e != global {
                return global;
            }
        }
        // A failed CAS means another thread advanced it; either way the epoch
        // is now at least `global`.
        let _ = self.global_epoch.compare_exchange(
            global,
            global + 1,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        self.global_epoch.load(Ordering::SeqCst)
    }

    /// Frees every entry of `limbo` whose grace period has elapsed, keeping
    /// the rest.  Freed blocks recycle into `pool`; the sweeper's own shard
    /// (`slot`) absorbs the decrement (shards may go negative, the sum stays
    /// exact — see [`ShardedCounter`]).
    fn sweep(&self, limbo: &mut Vec<Retired>, slot: usize, pool: &mut BlockPool) {
        let global = self.global_epoch.load(Ordering::SeqCst);
        // Collect the expired blocks first, then hand them to the pool in one
        // batch: `free_batch` amortizes the bin lookup and spill bookkeeping
        // across the whole sweep instead of paying them per node.
        let mut expired: Vec<*mut crate::block::Header> = Vec::new();
        limbo.retain(|r| {
            if r.retire_era().saturating_add(2) <= global {
                expired.push(r.hdr);
                false
            } else {
                true
            }
        });
        if !expired.is_empty() {
            // SAFETY: the global epoch advanced two past each block's retire
            // epoch, so every thread active at retirement has since passed a
            // quiescent point; no protected reference remains.  Each block
            // appears in exactly one limbo entry, so the batch has no
            // duplicates and each block is freed exactly once.
            unsafe { pool.free_batch(&expired) };
            self.unreclaimed.sub(slot, expired.len());
        }
    }

    /// Sweeps the retire vault of slot `vault_idx`, charging frees to the
    /// sweeper's counter shard.
    fn sweep_vault(&self, vault_idx: usize, counter_slot: usize, pool: &mut BlockPool) {
        let mut vault = self.vaults[vault_idx].lock();
        if !vault.is_empty() {
            self.sweep(&mut vault, counter_slot, pool);
        }
    }

    /// Adopts and sweeps orphaned limbo entries left by deregistered threads.
    fn sweep_orphans(&self, slot: usize, pool: &mut BlockPool) {
        if let Some(mut orphans) = self.orphans.try_lock() {
            if !orphans.is_empty() {
                self.sweep(&mut orphans, slot, pool);
            }
        }
    }

    /// Scans for slots whose owning thread died without releasing (leaked
    /// handle, thread torn down first) and adopts them: the dead slot's epoch
    /// announcement is neutralized — sound because the owner can issue no
    /// further memory accesses — and its retire vault drains into the orphan
    /// list, so neither the epoch nor the memory stays pinned forever.
    fn adopt_orphans(&self, my_slot: usize, pool: &mut BlockPool) {
        for i in 0..self.registry.capacity() {
            if i == my_slot {
                continue;
            }
            if let Some(adoption) = self.registry.try_begin_adopt(i) {
                self.slots[i].epoch.store(INACTIVE, Ordering::SeqCst);
                let mut vault = self.vaults[i].lock();
                if !vault.is_empty() {
                    self.orphans.lock().append(&mut vault);
                }
                drop(vault);
                adoption.finish();
            }
        }
        self.sweep_orphans(my_slot, pool);
    }
}

impl Drop for Ebr {
    fn drop(&mut self) {
        // No handles remain (they hold `Arc<Ebr>`), so nothing can be
        // protected any more: release whatever is still in the vaults (slots
        // leaked by dead threads that were never adopted) and the orphan list.
        for vault in self.vaults.iter() {
            for r in vault.lock().drain(..) {
                // SAFETY: dropping the domain means no handle (and hence no
                // guard) exists; nothing can be protected any more.
                unsafe { r.free() };
            }
        }
        let mut orphans = self.orphans.lock();
        for r in orphans.drain(..) {
            // SAFETY: as above — no guards can exist at domain drop.
            unsafe { r.free() };
        }
    }
}

/// Per-thread handle for [`Ebr`].
pub struct EbrHandle {
    domain: Arc<Ebr>,
    claim: SlotClaim,
    binding: PinBinding,
    pool: BlockPool,
}

impl EbrHandle {
    fn scan(&mut self) {
        self.domain.try_advance();
        let domain = self.domain.clone();
        domain.sweep_vault(self.claim.index, self.claim.index, &mut self.pool);
        domain.adopt_orphans(self.claim.index, &mut self.pool);
    }
}

impl SmrHandle for EbrHandle {
    type Guard<'g>
        = EbrGuard<'g>
    where
        Self: 'g;

    fn pin(&mut self) -> EbrGuard<'_> {
        self.domain
            .registry
            .check_owner_and_bind(self.claim, &mut self.binding);
        let slot = &self.domain.slots[self.claim.index];
        // Publish the epoch we observed and confirm it is still current; if it
        // moved we re-announce so we never run a critical section under an
        // announcement older than the epoch we entered at.
        let announced = loop {
            let e = self.domain.global_epoch.load(Ordering::SeqCst);
            slot.epoch.store(e, Ordering::SeqCst);
            if self.domain.global_epoch.load(Ordering::SeqCst) == e {
                break e;
            }
        };
        EbrGuard {
            handle: self,
            announced,
            _thread_bound: std::marker::PhantomData,
        }
    }

    fn flush(&mut self) {
        self.scan();
    }
}

impl Drop for EbrHandle {
    fn drop(&mut self) {
        let domain = self.domain.clone();
        // The teardown runs under the slot's beacon mutex after the
        // generation check: if the slot was adopted (registering thread died
        // while the handle lived elsewhere), the closure is skipped — the
        // adopter already neutralized the epoch and drained the vault.
        domain.registry.release_with(self.claim, || {
            domain.slots[self.claim.index]
                .epoch
                .store(INACTIVE, Ordering::SeqCst);
            let mut vault = domain.vaults[self.claim.index].lock();
            if !vault.is_empty() {
                domain.orphans.lock().append(&mut vault);
            }
        });
    }
}

/// Critical-section guard for [`Ebr`].
#[must_use = "dropping a guard unpublishes every protection it holds"]
pub struct EbrGuard<'g> {
    handle: &'g mut EbrHandle,
    /// Makes the guard `!Send`/`!Sync`: a guard is the pinning thread's
    /// read-side critical section, and the slot registry's liveness beacon
    /// tracks exactly that thread (see [`crate::registry`]) -- a guard that
    /// crossed threads could see its protections neutralized when the
    /// pinning thread exits.
    _thread_bound: std::marker::PhantomData<*mut ()>,
    /// The epoch this guard's slot currently announces; [`SmrGuard::repin`]
    /// elides the re-announce fences whenever the global epoch still equals
    /// it (the common case, since the announcement itself is what holds the
    /// epoch back).
    announced: u64,
}

impl Drop for EbrGuard<'_> {
    fn drop(&mut self) {
        let domain = &self.handle.domain;
        domain.slots[self.handle.claim.index]
            .epoch
            .store(INACTIVE, Ordering::Release);
    }
}

impl SmrGuard for EbrGuard<'_> {
    #[inline]
    fn domain_addr(&self) -> usize {
        std::sync::Arc::as_ptr(&self.handle.domain) as usize
    }

    #[inline]
    fn protect<T>(&mut self, _idx: usize, src: &Atomic<T>) -> Shared<T> {
        // The epoch announcement made at `pin` already protects everything
        // reachable; per-pointer work is unnecessary, which is precisely why
        // EBR is the paper's performance yardstick.
        src.load(Ordering::Acquire)
    }

    #[inline]
    fn announce<T>(&mut self, _idx: usize, _ptr: Shared<T>) {}

    #[inline]
    fn dup(&mut self, _from: usize, _to: usize) {}

    #[inline]
    fn clear(&mut self, _idx: usize) {}

    fn alloc<T: Send + 'static>(&mut self, value: T) -> Shared<T> {
        Shared::from_ptr(self.handle.pool.alloc(value))
    }

    // SAFETY: callers must guarantee `ptr` has been unlinked from every shared location before retiring it.
    unsafe fn retire<T: Send + 'static>(&mut self, ptr: Shared<T>) {
        let value = ptr.untagged().as_ptr();
        debug_assert!(!value.is_null());
        // SAFETY: the caller guarantees `ptr` came from `alloc` on this
        // domain and is already unlinked, so its block header is live.
        let retired = unsafe { Retired::from_value(value) };
        let handle = &mut *self.handle;
        // SAFETY: the block is unlinked but not yet in any limbo list; this
        // thread has exclusive access to its header stamp.
        // ORDERING: Relaxed on both — per-location coherence keeps the epoch
        // read no older than the announcement made at `pin` (re-read there
        // with SeqCst), which is all the `retire + 2 <= global` comparison
        // needs, and the stamp itself is published to sweepers through the
        // vault mutex acquired just below.
        unsafe {
            (*retired.hdr).retire_era.store(
                // ORDERING: see the comment above this unsafe block.
                handle.domain.global_epoch.load(Ordering::Relaxed),
                // ORDERING: see the comment above this unsafe block.
                Ordering::Relaxed,
            );
        }
        let slot = handle.claim.index;
        let pending = {
            let mut vault = handle.domain.vaults[slot].lock();
            vault.push(retired);
            vault.len()
        };
        handle.domain.unreclaimed.add(slot, 1);
        if pending >= handle.domain.config.scan_threshold {
            // Amortized reclamation: one epoch-advance attempt plus a sweep of
            // the local vault per `scan_threshold` retirements (§5).
            handle.scan();
        }
    }

    // SAFETY: callers must guarantee `ptr` was never published to other threads.
    unsafe fn dealloc<T>(&mut self, ptr: Shared<T>) {
        // SAFETY: the caller guarantees the pointer was never published, so
        // this thread is the only one that has ever seen the block; freeing
        // it through the pool runs its destructor exactly once.
        unsafe { self.handle.pool.free(header_of(ptr.untagged().as_ptr())) };
    }

    #[inline]
    fn repin(&mut self) {
        // Repin elision: while the global epoch still equals the epoch this
        // guard announced, a drop+pin pair would re-announce the very same
        // value — skip the store/re-read fence sequence entirely.  One SeqCst
        // load replaces the SeqCst store + SeqCst re-read of a full pin.
        let domain = &self.handle.domain;
        let global = domain.global_epoch.load(Ordering::SeqCst);
        if global == self.announced {
            return;
        }
        let slot = &domain.slots[self.handle.claim.index];
        self.announced = loop {
            let e = domain.global_epoch.load(Ordering::SeqCst);
            slot.epoch.store(e, Ordering::SeqCst);
            if domain.global_epoch.load(Ordering::SeqCst) == e {
                break e;
            }
        };
    }

    // SAFETY: callers must guarantee every pointer in `batch` satisfies the per-node retire contract.
    unsafe fn retire_batch<T: Send + 'static>(&mut self, batch: &[Shared<T>]) {
        if batch.is_empty() {
            return;
        }
        let handle = &mut *self.handle;
        // ORDERING: Relaxed — same argument as the single-node `retire`: the
        // stamp is published to sweepers through the vault mutex below.
        let epoch = handle.domain.global_epoch.load(Ordering::Relaxed);
        let slot = handle.claim.index;
        let pending = {
            // One vault lock per batch instead of one per node — the whole
            // point of the batched fast path.
            let mut vault = handle.domain.vaults[slot].lock();
            vault.reserve(batch.len());
            for &ptr in batch {
                let value = ptr.untagged().as_ptr();
                debug_assert!(!value.is_null());
                // SAFETY: the caller guarantees each pointer came from `alloc`
                // on this domain and is unlinked, so its header is live.
                let retired = unsafe { Retired::from_value(value) };
                // SAFETY: unlinked but not yet in any limbo list — this
                // thread has exclusive access to the header stamp.
                // ORDERING: Relaxed — published through the vault mutex.
                unsafe { (*retired.hdr).retire_era.store(epoch, Ordering::Relaxed) };
                vault.push(retired);
            }
            vault.len()
        };
        handle.domain.unreclaimed.add(slot, batch.len());
        if pending >= handle.domain.config.scan_threshold {
            handle.scan();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SmrConfig {
        SmrConfig {
            max_threads: 4,
            scan_threshold: 4,
            ..SmrConfig::default()
        }
    }

    #[test]
    fn retired_nodes_are_eventually_freed() {
        let d = Ebr::new(small_config());
        let mut h = d.register();
        for i in 0..64u64 {
            let mut g = h.pin();
            let p = g.alloc(i);
            // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
            unsafe { g.retire(p) };
        }
        // Repeated flushes advance the epoch twice past the last retirement.
        for _ in 0..4 {
            h.flush();
        }
        assert_eq!(d.unreclaimed(), 0);
    }

    #[test]
    fn stalled_guard_blocks_reclamation() {
        let d = Ebr::new(small_config());
        let mut stalled = d.register();
        let mut worker = d.register();

        // `stalled` enters a critical section and never leaves.
        let _guard = stalled.pin();

        for i in 0..256u64 {
            let mut g = worker.pin();
            let p = g.alloc(i);
            // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
            unsafe { g.retire(p) };
        }
        worker.flush();
        // The stalled thread pins an old epoch: nothing can be reclaimed from
        // (at most) two epochs onward, so the limbo population stays large.
        assert!(
            d.unreclaimed() > 128,
            "EBR should not reclaim past a stalled thread (got {})",
            d.unreclaimed()
        );
    }

    #[test]
    fn orphans_are_freed_on_domain_drop() {
        let d = Ebr::new(small_config());
        {
            let mut h = d.register();
            let mut g = h.pin();
            let p = g.alloc(1u64);
            // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
            unsafe { g.retire(p) };
            // Handle dropped with a non-empty vault -> orphaned.
        }
        assert_eq!(d.unreclaimed(), 1);
        drop(d);
        // Nothing to assert directly (the memory is freed); absence of leaks
        // is verified by the drop-counting integration tests.
    }

    #[test]
    fn leaked_handle_on_dead_thread_is_adopted() {
        let d = Ebr::new(small_config());
        {
            let d = d.clone();
            std::thread::spawn(move || {
                let mut h = d.register();
                let mut g = h.pin();
                for i in 0..3u64 {
                    let p = g.alloc(i);
                    // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
                    unsafe { g.retire(p) };
                }
                drop(g);
                // The handle is leaked with a pinned-then-released slot; the
                // thread exits without ever releasing the slot.
                std::mem::forget(h);
            })
            .join()
            .unwrap();
        }
        assert_eq!(d.unreclaimed(), 3);
        let mut h = d.register();
        for _ in 0..8 {
            h.flush();
        }
        assert_eq!(
            d.unreclaimed(),
            0,
            "a survivor must adopt the dead thread's slot and drain its vault"
        );
    }

    #[test]
    fn repin_elides_until_epoch_moves_and_reannounces_after() {
        let d = Ebr::new(small_config());
        let mut h = d.register();
        let mut g = h.pin();
        let announced = d.slots[0].epoch.load(Ordering::SeqCst);
        g.repin();
        assert_eq!(
            d.slots[0].epoch.load(Ordering::SeqCst),
            announced,
            "repin with an unmoved epoch must elide the re-announce"
        );
        // Our announcement equals the global epoch, so it is free to advance.
        d.try_advance();
        g.repin();
        assert_eq!(
            d.slots[0].epoch.load(Ordering::SeqCst),
            announced + 1,
            "repin must re-announce once the epoch moved"
        );
        drop(g);
    }

    #[test]
    fn retire_batch_reclaims_like_per_node_retire() {
        let d = Ebr::new(small_config());
        let mut h = d.register();
        {
            let mut g = h.pin();
            let batch: Vec<_> = (0..32u64).map(|i| g.alloc(i)).collect();
            // SAFETY: each block was just allocated and never published, so
            // this thread is its sole owner and retires it exactly once.
            unsafe { g.retire_batch(&batch) };
        }
        for _ in 0..4 {
            h.flush();
        }
        assert_eq!(d.unreclaimed(), 0);
    }

    #[test]
    fn guard_held_across_repins_does_not_freeze_the_epoch() {
        // The pin-batch scenario: one guard held across many operations with
        // repin at each boundary must not behave like a stalled reader.
        let d = Ebr::new(small_config());
        let mut holder = d.register();
        let mut worker = d.register();
        let mut g = holder.pin();
        for i in 0..256u64 {
            let mut wg = worker.pin();
            let p = wg.alloc(i);
            // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
            unsafe { wg.retire(p) };
            drop(wg);
            g.repin();
        }
        worker.flush();
        drop(g);
        worker.flush();
        assert!(
            d.unreclaimed() < 128,
            "repin at op boundaries must let the epoch advance (got {})",
            d.unreclaimed()
        );
    }

    #[test]
    fn epoch_advances_without_active_threads() {
        let d = Ebr::new(small_config());
        let before = d.global_epoch.load(Ordering::SeqCst);
        let after = d.try_advance();
        assert!(after > before);
    }

    #[test]
    fn multi_threaded_retire_storm_reclaims_everything() {
        let d = Ebr::new(SmrConfig {
            max_threads: 8,
            scan_threshold: 16,
            ..SmrConfig::default()
        });
        std::thread::scope(|s| {
            for t in 0..4 {
                let d = d.clone();
                s.spawn(move || {
                    let mut h = d.register();
                    for i in 0..1000u64 {
                        let mut g = h.pin();
                        let p = g.alloc(t * 10_000 + i);
                        // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
                        unsafe { g.retire(p) };
                    }
                    for _ in 0..8 {
                        h.flush();
                    }
                });
            }
        });
        let mut h = d.register();
        for _ in 0..8 {
            h.flush();
        }
        drop(h);
        assert_eq!(d.unreclaimed(), 0);
    }
}
