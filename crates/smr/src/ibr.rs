//! IBR — interval-based reclamation (Wen et al. 2018), 2GEIBR variant.
//!
//! Instead of one reservation per traversal role (HP/HE), each thread
//! maintains a single *interval* `[lower, upper]` of eras: `lower` is set when
//! the operation begins and `upper` is extended to the current era every time
//! a pointer is read.  A retired object is reclaimable once no thread's
//! interval overlaps the object's lifetime `[birth_era, retire_era]`.
//!
//! Because protection is attached to the operation rather than to individual
//! pointers, `dup`, `announce` and `clear` are no-ops and the hazard-slot
//! indices passed by data structures are ignored — this is the "simpler
//! programming model" the paper credits IBR with (§2.2.4).  The safety
//! contract is the same as for HP/HE: data structures must not traverse past
//! physically-unlinked nodes, which is exactly what SCOT validation (or the
//! Harris-Michael eager unlink) guarantees.

use crate::block::{header_of, Retired};
use crate::pool::{BlockPool, PoolShared, ShardedCounter};
use crate::ptr::{Atomic, Shared};
use crate::registry::{PinBinding, SlotClaim, SlotRegistry};
use crate::{Smr, SmrConfig, SmrError, SmrGuard, SmrHandle, SmrKind};
use crossbeam_utils::CachePadded;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// First era handed out.
const FIRST_ERA: u64 = 1;

struct IbrSlot {
    /// Era at the start of the current operation; `u64::MAX` when inactive.
    lower: AtomicU64,
    /// Most recent era observed during the current operation; `0` when
    /// inactive, so the empty interval `[MAX, 0]` overlaps nothing.
    upper: AtomicU64,
}

/// The interval-based reclamation domain.
pub struct Ibr {
    config: SmrConfig,
    registry: SlotRegistry,
    global_era: CachePadded<AtomicU64>,
    slots: Box<[CachePadded<IbrSlot>]>,
    unreclaimed: ShardedCounter,
    pool: Arc<PoolShared>,
    /// Per-slot retire lists, domain-owned so a dead thread's list is
    /// adoptable (see [`Ibr::adopt_orphans`]).
    vaults: Box<[Mutex<Vec<Retired>>]>,
    orphans: Mutex<Vec<Retired>>,
}

impl Smr for Ibr {
    type Handle = IbrHandle;

    fn new(config: SmrConfig) -> Arc<Self> {
        let config = config.validated();
        let slots = (0..config.max_threads)
            .map(|_| {
                CachePadded::new(IbrSlot {
                    lower: AtomicU64::new(u64::MAX),
                    upper: AtomicU64::new(0),
                })
            })
            .collect();
        Arc::new(Self {
            registry: SlotRegistry::new(config.max_threads),
            global_era: CachePadded::new(AtomicU64::new(FIRST_ERA)),
            slots,
            unreclaimed: ShardedCounter::new(config.max_threads),
            pool: PoolShared::new(config.pool_blocks(), config.max_threads),
            vaults: (0..config.max_threads)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            orphans: Mutex::new(Vec::new()),
            config,
        })
    }

    fn try_register(self: &Arc<Self>) -> Result<IbrHandle, SmrError> {
        let claim = self.registry.try_claim().ok_or(SmrError::RegistryFull {
            capacity: self.registry.capacity(),
        })?;
        // ORDERING: Relaxed is enough for both resets — the slot is not yet
        // visible to sweepers (the claim above is what publishes it, and
        // `is_claimed` readers synchronize through the registry), so no other
        // thread can observe these stores out of order.
        self.slots[claim.index]
            .lower
            // ORDERING: the slot is newly claimed and not yet observed by reclamation scans; this reset is owner-only.
            .store(u64::MAX, Ordering::Relaxed);
        // ORDERING: the slot is newly claimed and not yet observed by reclamation scans; this reset is owner-only.
        self.slots[claim.index].upper.store(0, Ordering::Relaxed);
        Ok(IbrHandle {
            pool: BlockPool::new(self.pool.clone(), self.config.pool_blocks()),
            domain: self.clone(),
            claim,
            binding: PinBinding::new(),
            alloc_count: 0,
            retire_count: 0,
        })
    }

    fn unreclaimed(&self) -> usize {
        self.unreclaimed.sum()
    }

    fn kind(&self) -> SmrKind {
        if self.config.snapshot_scan {
            SmrKind::IbrOpt
        } else {
            SmrKind::Ibr
        }
    }
}

impl Ibr {
    /// True if some thread's interval overlaps `[birth, retire]`.
    fn is_protected(&self, birth: u64, retire: u64) -> bool {
        for (i, slot) in self.slots.iter().enumerate() {
            if !self.registry.is_claimed(i) {
                continue;
            }
            let lower = slot.lower.load(Ordering::SeqCst);
            let upper = slot.upper.load(Ordering::SeqCst);
            if birth <= upper && retire >= lower {
                return true;
            }
        }
        false
    }

    /// Snapshot of all active intervals (IBRopt sweep).
    fn snapshot(&self) -> Vec<(u64, u64)> {
        let mut snap = Vec::with_capacity(self.config.max_threads);
        for (i, slot) in self.slots.iter().enumerate() {
            if !self.registry.is_claimed(i) {
                continue;
            }
            let lower = slot.lower.load(Ordering::SeqCst);
            let upper = slot.upper.load(Ordering::SeqCst);
            if lower <= upper {
                snap.push((lower, upper));
            }
        }
        snap
    }

    fn sweep(&self, limbo: &mut Vec<Retired>, slot: usize, pool: &mut BlockPool) {
        let mut freed = 0usize;
        if self.config.snapshot_scan {
            let snap = self.snapshot();
            limbo.retain(|r| {
                let birth = r.birth_era();
                let retire = r.retire_era();
                let protected = snap.iter().any(|&(lo, hi)| birth <= hi && retire >= lo);
                if protected {
                    true
                } else {
                    // SAFETY: no active interval overlaps the object's
                    // lifetime in the snapshot taken after it was retired, so
                    // no thread can still hold a protected reference; the
                    // record owns the block and is dropped from the list.
                    unsafe { r.free_into(pool) };
                    freed += 1;
                    false
                }
            });
        } else {
            limbo.retain(|r| {
                if self.is_protected(r.birth_era(), r.retire_era()) {
                    true
                } else {
                    // SAFETY: as above — the per-record scan found no
                    // overlapping interval, so the block is unreachable and
                    // freed exactly once.
                    unsafe { r.free_into(pool) };
                    freed += 1;
                    false
                }
            });
        }
        if freed > 0 {
            self.unreclaimed.sub(slot, freed);
        }
    }

    fn sweep_vault(&self, vault_idx: usize, counter_slot: usize, pool: &mut BlockPool) {
        let mut vault = self.vaults[vault_idx].lock();
        if !vault.is_empty() {
            self.sweep(&mut vault, counter_slot, pool);
        }
    }

    fn sweep_orphans(&self, slot: usize, pool: &mut BlockPool) {
        if let Some(mut orphans) = self.orphans.try_lock() {
            if !orphans.is_empty() {
                self.sweep(&mut orphans, slot, pool);
            }
        }
    }

    /// Adopts slots abandoned by dead threads: collapses the dead thread's
    /// interval to the empty `[MAX, 0]` (sound — the owner can issue no
    /// further loads) and drains its retire vault into the orphan list.
    fn adopt_orphans(&self, my_slot: usize, pool: &mut BlockPool) {
        for i in 0..self.registry.capacity() {
            if i == my_slot {
                continue;
            }
            if let Some(adoption) = self.registry.try_begin_adopt(i) {
                self.slots[i].lower.store(u64::MAX, Ordering::SeqCst);
                self.slots[i].upper.store(0, Ordering::SeqCst);
                let mut vault = self.vaults[i].lock();
                if !vault.is_empty() {
                    self.orphans.lock().append(&mut vault);
                }
                drop(vault);
                adoption.finish();
            }
        }
        self.sweep_orphans(my_slot, pool);
    }
}

impl Drop for Ibr {
    fn drop(&mut self) {
        for vault in self.vaults.iter() {
            for r in vault.lock().drain(..) {
                // SAFETY: `&mut self` proves every handle (and so every
                // guard) is gone; nothing can still protect the block.
                unsafe { r.free() };
            }
        }
        let mut orphans = self.orphans.lock();
        for r in orphans.drain(..) {
            // SAFETY: as above — the domain is being dropped, so no interval
            // can still cover any retired block.
            unsafe { r.free() };
        }
    }
}

/// Per-thread handle for [`Ibr`].
pub struct IbrHandle {
    domain: Arc<Ibr>,
    claim: SlotClaim,
    binding: PinBinding,
    pool: BlockPool,
    alloc_count: usize,
    retire_count: usize,
}

impl SmrHandle for IbrHandle {
    type Guard<'g>
        = IbrGuard<'g>
    where
        Self: 'g;

    fn pin(&mut self) -> IbrGuard<'_> {
        self.domain
            .registry
            .check_owner_and_bind(self.claim, &mut self.binding);
        let slot = &self.domain.slots[self.claim.index];
        let era = self.domain.global_era.load(Ordering::SeqCst);
        slot.upper.store(era, Ordering::SeqCst);
        slot.lower.store(era, Ordering::SeqCst);
        IbrGuard {
            cached_upper: era,
            cached_lower: era,
            handle: self,
            _thread_bound: std::marker::PhantomData,
        }
    }

    fn flush(&mut self) {
        let domain = self.domain.clone();
        domain.sweep_vault(self.claim.index, self.claim.index, &mut self.pool);
        domain.adopt_orphans(self.claim.index, &mut self.pool);
    }
}

impl Drop for IbrHandle {
    fn drop(&mut self) {
        let domain = self.domain.clone();
        domain.sweep_vault(self.claim.index, self.claim.index, &mut self.pool);
        domain.registry.release_with(self.claim, || {
            let slot = &domain.slots[self.claim.index];
            slot.lower.store(u64::MAX, Ordering::Release);
            slot.upper.store(0, Ordering::Release);
            let mut vault = domain.vaults[self.claim.index].lock();
            if !vault.is_empty() {
                domain.orphans.lock().append(&mut vault);
            }
        });
    }
}

/// Critical-section guard for [`Ibr`].
#[must_use = "dropping a guard unpublishes every protection it holds"]
pub struct IbrGuard<'g> {
    handle: &'g mut IbrHandle,
    /// Makes the guard `!Send`/`!Sync`: a guard is the pinning thread's
    /// read-side critical section, and the slot registry's liveness beacon
    /// tracks exactly that thread (see [`crate::registry`]) -- a guard that
    /// crossed threads could see its protections neutralized when the
    /// pinning thread exits.
    _thread_bound: std::marker::PhantomData<*mut ()>,
    /// Local cache of the published `upper`, avoiding an atomic load per
    /// protect call on the fast path.
    cached_upper: u64,
    /// Local cache of the published `lower`; [`SmrGuard::repin`] elides the
    /// interval reset when the interval is already the point `[era, era]`.
    cached_lower: u64,
}

impl Drop for IbrGuard<'_> {
    fn drop(&mut self) {
        // Deactivating the interval on drop is what makes a panicking
        // operation release its protection (RAII unwind safety).
        let slot = &self.handle.domain.slots[self.handle.claim.index];
        slot.lower.store(u64::MAX, Ordering::Release);
        slot.upper.store(0, Ordering::Release);
    }
}

impl SmrGuard for IbrGuard<'_> {
    #[inline]
    fn domain_addr(&self) -> usize {
        std::sync::Arc::as_ptr(&self.handle.domain) as usize
    }

    #[inline]
    fn protect<T>(&mut self, _idx: usize, src: &Atomic<T>) -> Shared<T> {
        let slot = &self.handle.domain.slots[self.handle.claim.index];
        let global = &self.handle.domain.global_era;
        loop {
            let ptr = src.load(Ordering::Acquire);
            let era = global.load(Ordering::SeqCst);
            if era == self.cached_upper {
                return ptr;
            }
            // The interval is extended *before* the pointer is re-read, so any
            // pointer we return was loaded under an already-published upper
            // bound covering its birth era.
            slot.upper.store(era, Ordering::SeqCst);
            self.cached_upper = era;
        }
    }

    #[inline]
    fn announce<T>(&mut self, _idx: usize, _ptr: Shared<T>) {
        let slot = &self.handle.domain.slots[self.handle.claim.index];
        let era = self.handle.domain.global_era.load(Ordering::SeqCst);
        slot.upper.store(era, Ordering::SeqCst);
        self.cached_upper = era;
    }

    #[inline]
    fn dup(&mut self, _from: usize, _to: usize) {}

    #[inline]
    fn clear(&mut self, _idx: usize) {}

    fn alloc<T: Send + 'static>(&mut self, value: T) -> Shared<T> {
        let ptr = self.handle.pool.alloc(value);
        // ORDERING: a Relaxed read of the era can only be *older* than the
        // real current era, which makes the birth stamp conservatively early
        // — strictly more protective for the interval-overlap test.  The
        // Relaxed store is published to sweepers by the vault mutex taken at
        // retire time.
        let era = self.handle.domain.global_era.load(Ordering::Relaxed);
        // SAFETY: `ptr` was just produced by `pool.alloc`, so its header is
        // live and exclusively ours until the pointer is published.
        // ORDERING: a Relaxed era read can only lag, stamping the birth era conservatively old.
        unsafe { (*header_of(ptr)).birth_era.store(era, Ordering::Relaxed) };
        self.handle.alloc_count += 1;
        if self
            .handle
            .alloc_count
            .is_multiple_of(self.handle.domain.config.epoch_freq())
        {
            self.handle.domain.global_era.fetch_add(1, Ordering::SeqCst);
        }
        Shared::from_ptr(ptr)
    }

    // SAFETY: callers must guarantee `ptr` has been unlinked from every shared location before retiring it.
    unsafe fn retire<T: Send + 'static>(&mut self, ptr: Shared<T>) {
        let value = ptr.untagged().as_ptr();
        debug_assert!(!value.is_null());
        // SAFETY: the caller guarantees `ptr` came from `alloc` on this
        // domain, is unlinked, and is retired exactly once.
        let retired = unsafe { Retired::from_value(value) };
        let handle = &mut *self.handle;
        // ORDERING: a Relaxed era read here can only lag the true era, which
        // stamps the retirement conservatively *early* — never unsafe, at
        // worst it delays reclamation by one interval check.  The stamp is
        // published to sweepers by the vault mutex acquired just below.
        let era = handle.domain.global_era.load(Ordering::Relaxed);
        // SAFETY: the record was just built from a live block; its header is
        // valid until the record is freed.
        // ORDERING: a lagging retire-era stamp only delays reclamation by one scan; safety is unaffected.
        unsafe { (*retired.hdr).retire_era.store(era, Ordering::Relaxed) };
        let slot = handle.claim.index;
        let pending = {
            let mut vault = handle.domain.vaults[slot].lock();
            vault.push(retired);
            vault.len()
        };
        handle.retire_count += 1;
        handle.domain.unreclaimed.add(slot, 1);
        if handle
            .retire_count
            .is_multiple_of(handle.domain.config.epoch_freq())
        {
            handle.domain.global_era.fetch_add(1, Ordering::SeqCst);
        }
        if pending >= handle.domain.config.scan_threshold {
            let domain = handle.domain.clone();
            domain.sweep_vault(slot, slot, &mut handle.pool);
            domain.adopt_orphans(slot, &mut handle.pool);
        }
    }

    // SAFETY: callers must guarantee `ptr` was never published to other threads.
    unsafe fn dealloc<T>(&mut self, ptr: Shared<T>) {
        // SAFETY: the caller guarantees the pointer was never published, so
        // no other thread has observed the block; pool-freeing it runs the
        // destructor exactly once.
        unsafe { self.handle.pool.free(header_of(ptr.untagged().as_ptr())) };
    }

    /// Collapses the interval back to the point `[era, era]`, releasing every
    /// era the previous operations stretched it over.  Elided entirely when
    /// the interval is already that point — the common no-churn case, which
    /// skips both SeqCst stores.
    #[inline]
    fn repin(&mut self) {
        let domain = &self.handle.domain;
        let era = domain.global_era.load(Ordering::SeqCst);
        if era == self.cached_upper && era == self.cached_lower {
            return;
        }
        let slot = &domain.slots[self.handle.claim.index];
        // Same publication order as `pin`: extend `upper` first so the
        // interval never transiently excludes an era we might still observe,
        // then raise `lower` to drop the old coverage.
        slot.upper.store(era, Ordering::SeqCst);
        slot.lower.store(era, Ordering::SeqCst);
        self.cached_upper = era;
        self.cached_lower = era;
    }

    // SAFETY: callers must guarantee every pointer in `batch` satisfies the
    // per-node `retire` contract (unlinked, owned, retired exactly once).
    unsafe fn retire_batch<T: Send + 'static>(&mut self, batch: &[Shared<T>]) {
        if batch.is_empty() {
            return;
        }
        let handle = &mut *self.handle;
        // ORDERING: a lagging retire-era stamp only delays reclamation by one
        // scan; safety is unaffected (same argument as single `retire`).
        let era = handle.domain.global_era.load(Ordering::Relaxed);
        let slot = handle.claim.index;
        let pending = {
            let mut vault = handle.domain.vaults[slot].lock();
            vault.reserve(batch.len());
            for &ptr in batch {
                let value = ptr.untagged().as_ptr();
                debug_assert!(!value.is_null());
                // SAFETY: the caller guarantees every element came from
                // `alloc` on this domain and is already unlinked, so each
                // block header is live.
                let retired = unsafe { Retired::from_value(value) };
                // SAFETY: the record was just built from a live block; its
                // header is valid until the record is freed.
                // ORDERING: published to sweepers by the vault mutex.
                unsafe { (*retired.hdr).retire_era.store(era, Ordering::Relaxed) };
                vault.push(retired);
            }
            vault.len()
        };
        handle.domain.unreclaimed.add(slot, batch.len());
        // Preserve the per-retire era cadence across the batch: bump the era
        // once per epoch-frequency multiple the batch crossed.
        let freq = handle.domain.config.epoch_freq();
        let before = handle.retire_count;
        handle.retire_count += batch.len();
        let bumps = (handle.retire_count / freq - before / freq) as u64;
        if bumps > 0 {
            handle.domain.global_era.fetch_add(bumps, Ordering::SeqCst);
        }
        if pending >= handle.domain.config.scan_threshold {
            let domain = handle.domain.clone();
            domain.sweep_vault(slot, slot, &mut handle.pool);
            domain.adopt_orphans(slot, &mut handle.pool);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(snapshot: bool) -> SmrConfig {
        SmrConfig {
            max_threads: 4,
            scan_threshold: 8,
            epoch_freq_per_thread: 1,
            snapshot_scan: snapshot,
            ..SmrConfig::default()
        }
    }

    #[test]
    fn kind_reflects_snapshot_mode() {
        assert_eq!(Ibr::new(config(false)).kind(), SmrKind::Ibr);
        assert_eq!(Ibr::new(config(true)).kind(), SmrKind::IbrOpt);
    }

    #[test]
    fn active_interval_protects_overlapping_lifetimes() {
        for snapshot in [false, true] {
            let d = Ibr::new(config(snapshot));
            let mut reader = d.register();
            let mut worker = d.register();

            let target = {
                let mut g = worker.pin();
                g.alloc(5u64)
            };
            let cell = Atomic::new(target);

            // Reader starts an operation overlapping the target's lifetime and
            // stalls inside it.
            {
                let mut g = reader.pin();
                let seen = g.protect(0, &cell);
                assert_eq!(seen, target);
                core::mem::forget(g);
            }
            {
                let mut g = worker.pin();
                // SAFETY: the node was unlinked by this test and is retired exactly once.
                unsafe { g.retire(target) };
            }
            worker.flush();
            assert_eq!(d.unreclaimed(), 1, "snapshot={snapshot}");

            // Simulate the reader finally finishing its operation.
            d.slots[0].lower.store(u64::MAX, Ordering::SeqCst);
            d.slots[0].upper.store(0, Ordering::SeqCst);
            worker.flush();
            assert_eq!(d.unreclaimed(), 0, "snapshot={snapshot}");
        }
    }

    #[test]
    fn nodes_born_after_a_stalled_interval_are_reclaimable() {
        let d = Ibr::new(config(true));
        let mut stalled = d.register();
        let mut worker = d.register();
        {
            let g = stalled.pin();
            core::mem::forget(g);
        }
        // Advance the era and churn nodes that are born strictly after the
        // stalled thread's (frozen) upper bound: these must be reclaimed.
        for i in 0..512u64 {
            let mut g = worker.pin();
            let p = g.alloc(i);
            // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
            unsafe { g.retire(p) };
        }
        worker.flush();
        assert!(
            d.unreclaimed() < 64,
            "IBR must reclaim nodes born after a stalled interval (got {})",
            d.unreclaimed()
        );
    }

    #[test]
    fn leaked_handle_on_dead_thread_is_adopted() {
        let d = Ibr::new(config(true));
        {
            let d = d.clone();
            std::thread::spawn(move || {
                let mut h = d.register();
                let mut g = h.pin();
                let p = g.alloc(1u64);
                let cell = Atomic::new(p);
                g.protect(0, &cell);
                // SAFETY: `p` is test-local; the published interval keeps this retire from freeing it.
                unsafe { g.retire(p) };
                // Leak guard + handle: the interval stays active and the slot
                // stays claimed past thread death.
                std::mem::forget(g);
                std::mem::forget(h);
            })
            .join()
            .unwrap();
        }
        assert_eq!(d.unreclaimed(), 1);
        let mut h = d.register();
        h.flush();
        assert_eq!(
            d.unreclaimed(),
            0,
            "adoption must collapse the dead thread's interval and drain its vault"
        );
    }

    #[test]
    fn guard_drop_deactivates_interval() {
        let d = Ibr::new(config(false));
        let mut h = d.register();
        {
            let _g = h.pin();
            assert!(
                d.slots[0].lower.load(Ordering::SeqCst) <= d.slots[0].upper.load(Ordering::SeqCst)
            );
        }
        assert_eq!(d.slots[0].lower.load(Ordering::SeqCst), u64::MAX);
        assert_eq!(d.slots[0].upper.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn repin_collapses_a_stretched_interval() {
        let d = Ibr::new(config(false));
        let mut h = d.register();
        let mut g = h.pin();
        let lower_at_pin = d.slots[0].lower.load(Ordering::SeqCst);
        // Stretch the interval: advance the era, then observe it via protect.
        d.global_era.fetch_add(3, Ordering::SeqCst);
        let p = g.alloc(1u64);
        let cell = Atomic::new(p);
        g.protect(0, &cell);
        assert!(d.slots[0].upper.load(Ordering::SeqCst) > lower_at_pin);
        assert_eq!(d.slots[0].lower.load(Ordering::SeqCst), lower_at_pin);
        g.repin();
        let era = d.global_era.load(Ordering::SeqCst);
        assert_eq!(d.slots[0].lower.load(Ordering::SeqCst), era);
        assert_eq!(d.slots[0].upper.load(Ordering::SeqCst), era);
        // A second repin with an unmoved era is the elided path: the interval
        // must stay the point [era, era].
        g.repin();
        assert_eq!(d.slots[0].lower.load(Ordering::SeqCst), era);
        assert_eq!(d.slots[0].upper.load(Ordering::SeqCst), era);
        // SAFETY: `p` was never published to another thread.
        unsafe { g.dealloc(p) };
    }

    #[test]
    fn guard_held_across_repins_does_not_freeze_reclamation() {
        let d = Ibr::new(config(true));
        let mut holder = d.register();
        let mut worker = d.register();
        let mut g = holder.pin();
        for i in 0..512u64 {
            let mut wg = worker.pin();
            let p = wg.alloc(i);
            // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
            unsafe { wg.retire(p) };
            drop(wg);
            g.repin();
        }
        worker.flush();
        assert!(
            d.unreclaimed() < 64,
            "repin at op boundaries must keep the interval narrow (got {})",
            d.unreclaimed()
        );
        drop(g);
    }

    #[test]
    fn retire_batch_reclaims_like_per_node_retire() {
        for snapshot in [false, true] {
            let d = Ibr::new(config(snapshot));
            let mut h = d.register();
            {
                let mut g = h.pin();
                let batch: Vec<_> = (0..48u64).map(|i| g.alloc(i)).collect();
                // SAFETY: each block was just allocated and never published,
                // so this thread is its sole owner and retires it exactly once.
                unsafe { g.retire_batch(&batch) };
            }
            h.flush();
            assert_eq!(d.unreclaimed(), 0, "snapshot={snapshot}");
        }
    }

    #[test]
    fn everything_reclaimed_after_quiescence() {
        let d = Ibr::new(config(true));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let d = d.clone();
                s.spawn(move || {
                    let mut h = d.register();
                    for i in 0..1000u64 {
                        let mut g = h.pin();
                        let p = g.alloc(i);
                        // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
                        unsafe { g.retire(p) };
                    }
                    h.flush();
                });
            }
        });
        let mut h = d.register();
        h.flush();
        drop(h);
        assert_eq!(d.unreclaimed(), 0);
    }
}
