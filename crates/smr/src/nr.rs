//! NR — no reclamation.
//!
//! The paper's throughput figures include an "NR" baseline that simply leaks
//! retired nodes; it serves as a practical upper bound for throughput since it
//! performs no reclamation work at all (but, as the paper notes, allocation
//! cost sometimes makes real SMR schemes faster because they recycle memory
//! through the allocator).
//!
//! Even a leak-everything baseline benefits from the block pool: `alloc`
//! still reuses blocks released through `dealloc` (lost-CAS giveback), and
//! the retire-path counter is sharded like every other scheme's so NR's
//! "upper bound" role is not distorted by counter cache-line ping-pong.

use crate::block::{header_of, Retired};
use crate::pool::{BlockPool, PoolShared, ShardedCounter};
use crate::ptr::{Atomic, Shared};
use crate::registry::{PinBinding, SlotClaim, SlotRegistry};
use crate::{Smr, SmrConfig, SmrError, SmrGuard, SmrHandle, SmrKind};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// The no-reclamation "scheme".
pub struct Nr {
    registry: SlotRegistry,
    retired: ShardedCounter,
    pool: Arc<PoolShared>,
    pool_capacity: usize,
}

impl Smr for Nr {
    type Handle = NrHandle;

    fn new(config: SmrConfig) -> Arc<Self> {
        let config = config.validated();
        Arc::new(Self {
            registry: SlotRegistry::new(config.max_threads),
            retired: ShardedCounter::new(config.max_threads),
            pool: PoolShared::new(config.pool_blocks(), config.max_threads),
            pool_capacity: config.pool_blocks(),
        })
    }

    fn try_register(self: &Arc<Self>) -> Result<NrHandle, SmrError> {
        let claim = self.registry.try_claim().ok_or(SmrError::RegistryFull {
            capacity: self.registry.capacity(),
        })?;
        Ok(NrHandle {
            pool: BlockPool::new(self.pool.clone(), self.pool_capacity),
            domain: self.clone(),
            claim,
            binding: PinBinding::new(),
        })
    }

    fn unreclaimed(&self) -> usize {
        self.retired.sum()
    }

    fn kind(&self) -> SmrKind {
        SmrKind::Nr
    }
}

/// Per-thread handle for [`Nr`].
pub struct NrHandle {
    domain: Arc<Nr>,
    claim: SlotClaim,
    binding: PinBinding,
    pool: BlockPool,
}

impl Drop for NrHandle {
    fn drop(&mut self) {
        self.domain.registry.release(self.claim);
    }
}

impl SmrHandle for NrHandle {
    type Guard<'g>
        = NrGuard<'g>
    where
        Self: 'g;

    fn pin(&mut self) -> NrGuard<'_> {
        self.domain
            .registry
            .check_owner_and_bind(self.claim, &mut self.binding);
        NrGuard {
            handle: self,
            _thread_bound: std::marker::PhantomData,
        }
    }

    fn flush(&mut self) {
        // NR has nothing to reclaim, but adopting dead threads' slots keeps
        // the registry from filling up under thread churn: the leaked
        // handle's slot (there is no other per-slot state) returns to the
        // free pool.
        for i in 0..self.domain.registry.capacity() {
            if i == self.claim.index {
                continue;
            }
            if let Some(adoption) = self.domain.registry.try_begin_adopt(i) {
                adoption.finish();
            }
        }
    }
}

/// Critical-section guard for [`Nr`]; every operation is a plain load.
#[must_use = "dropping a guard unpublishes every protection it holds"]
pub struct NrGuard<'g> {
    handle: &'g mut NrHandle,
    /// Makes the guard `!Send`/`!Sync`: a guard is the pinning thread's
    /// read-side critical section, and the slot registry's liveness beacon
    /// tracks exactly that thread (see [`crate::registry`]) -- a guard that
    /// crossed threads could see its protections neutralized when the
    /// pinning thread exits.
    _thread_bound: std::marker::PhantomData<*mut ()>,
}

impl SmrGuard for NrGuard<'_> {
    #[inline]
    fn domain_addr(&self) -> usize {
        std::sync::Arc::as_ptr(&self.handle.domain) as usize
    }

    #[inline]
    fn protect<T>(&mut self, _idx: usize, src: &Atomic<T>) -> Shared<T> {
        src.load(Ordering::Acquire)
    }

    #[inline]
    fn announce<T>(&mut self, _idx: usize, _ptr: Shared<T>) {}

    #[inline]
    fn dup(&mut self, _from: usize, _to: usize) {}

    #[inline]
    fn clear(&mut self, _idx: usize) {}

    fn alloc<T: Send + 'static>(&mut self, value: T) -> Shared<T> {
        Shared::from_ptr(self.handle.pool.alloc(value))
    }

    // SAFETY: NR never frees, so any unlinked pointer is trivially safe to retire.
    unsafe fn retire<T: Send + 'static>(&mut self, ptr: Shared<T>) {
        // Leak: only account for it so memory-overhead experiments can report
        // the (ever-growing) number of unreclaimed objects.
        debug_assert!(!ptr.is_null());
        // SAFETY: the caller guarantees `ptr` came from `alloc` on this
        // domain; the record is built only to mirror the other schemes'
        // retire paths and is immediately discarded (NR leaks).
        let _ = unsafe { Retired::from_value(ptr.untagged().as_ptr()) };
        self.handle.domain.retired.add(self.handle.claim.index, 1);
    }

    // SAFETY: callers must guarantee `ptr` was never published to other threads.
    unsafe fn dealloc<T>(&mut self, ptr: Shared<T>) {
        // SAFETY: the caller guarantees the pointer was never published, so
        // no other thread has observed the block; pool-freeing it runs the
        // destructor exactly once.
        unsafe { self.handle.pool.free(header_of(ptr.untagged().as_ptr())) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retire_leaks_and_counts() {
        let d = Nr::new(SmrConfig::default());
        let mut h = d.register();
        let mut g = h.pin();
        let p = g.alloc(41u64);
        // SAFETY: `p` was just allocated by this guard and is still live.
        unsafe {
            assert_eq!(*p.deref(), 41);
            g.retire(p);
        }
        assert_eq!(d.unreclaimed(), 1);
    }

    #[test]
    fn protect_is_a_plain_load() {
        let d = Nr::new(SmrConfig::default());
        let mut h = d.register();
        let mut g = h.pin();
        let p = g.alloc(7u32);
        let cell = Atomic::new(p);
        let seen = g.protect(0, &cell);
        assert_eq!(seen, p);
        // SAFETY: `p` was never shared with another thread; the protect call is test scaffolding.
        unsafe { g.dealloc(p) };
    }

    #[test]
    fn dealloc_frees_immediately() {
        let d = Nr::new(SmrConfig::default());
        let mut h = d.register();
        let mut g = h.pin();
        let p = g.alloc(String::from("x"));
        // SAFETY: `p` was never published; dealloc is the owner's fast path.
        unsafe { g.dealloc(p) };
        assert_eq!(d.unreclaimed(), 0);
    }

    #[test]
    fn dealloc_recycles_through_the_pool() {
        let d = Nr::new(SmrConfig::default());
        let mut h = d.register();
        let mut g = h.pin();
        let p = g.alloc(1u64);
        let addr = p.untagged().into_raw();
        // SAFETY: `p` was never published; dealloc is the owner's fast path.
        unsafe { g.dealloc(p) };
        let q = g.alloc(2u64);
        assert_eq!(
            q.untagged().into_raw(),
            addr,
            "a lost-CAS giveback must be reused by the next allocation"
        );
        // SAFETY: `q` was never published; dealloc is the owner's fast path.
        unsafe { g.dealloc(q) };
    }
}
