//! Safe memory reclamation (SMR) schemes for the SCOT reproduction.
//!
//! This crate implements, from scratch, every reclamation scheme evaluated in
//! *"Fixing Non-blocking Data Structures for Better Compatibility with Memory
//! Reclamation Schemes"* (PPoPP '26):
//!
//! * [`Nr`] — no reclamation (leak everything); the throughput "upper bound"
//!   baseline of the paper's figures.
//! * [`Ebr`] — epoch-based reclamation (Fraser-style), fast but not robust:
//!   a stalled thread prevents epoch advancement and memory grows unboundedly.
//! * [`Hp`] — hazard pointers (Michael 2004), robust; `HPopt` is the same
//!   scheme with the limbo-scan snapshot optimization the paper attributes to
//!   the Hyaline work: the scan collects all hazard slots once into a sorted
//!   local snapshot instead of rescanning the global array per retired node.
//! * [`He`] — hazard eras (Ramalhete & Correia), era reservations per slot.
//! * [`Ibr`] — interval-based reclamation (2GEIBR variant of Wen et al.),
//!   per-thread `[lower, upper]` era intervals.
//! * [`Hyaline`] — a Hyaline-1S-style scheme: per-thread retirement slots,
//!   batched retirement with reference counting performed only during
//!   reclamation, birth-era exemption for robustness, and any-thread freeing.
//! * [`Nbr`] — neutralization-based reclamation in the spirit of Brown's
//!   DEBRA+ line: per-thread checkpoint eras plus a cooperative neutralize
//!   flag that asks lagging readers to restart their operation so the epoch
//!   can advance past them.  The restart request is surfaced through
//!   [`SmrGuard::needs_restart`] / [`SmrGuard::checkpoint`] and routed into
//!   the traversal cursor's restart ladder by the `scot` crate.
//! * [`Vbr`] — version-based reclamation in the spirit of Cohen's VBR:
//!   retired blocks are recycled *eagerly* through the block pool (FIFO, in
//!   retire-era order, O(1) per alloc instead of limbo scans), with a
//!   per-incarnation version stamp in every [`Header`] and allocation-driven
//!   epoch advancement that displaces long-running readers through the same
//!   checkpoint protocol.
//!
//! All schemes expose the same narrow interface — [`Smr`] / [`SmrHandle`] /
//! [`SmrGuard`] — modeled directly on the paper's Figure 1 (`protect`, `dup`)
//! plus allocation and retirement.  Index-based hazard slots are a no-op for
//! the schemes that do not need them (EBR, NR, IBR, Hyaline), which is what
//! allows a single data-structure implementation to run under every scheme.
//!
//! # Compatibility contract
//!
//! As the paper explains at length, the robust schemes (HP, HE, IBR,
//! Hyaline-1S) are **not** safe for arbitrary data structures: a structure
//! with optimistic traversals must either unlink logically-deleted nodes
//! eagerly (Harris-Michael style) or follow the SCOT discipline (validate that
//! the last safe node still points to the first unsafe node at every step of a
//! dangerous-zone traversal).  The data structures in the `scot` crate uphold
//! this contract; nothing in this crate can check it for you.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod block;
pub mod pool;
pub mod ptr;
pub mod registry;

mod ebr;
mod he;
mod hp;
mod hyaline;
mod ibr;
mod nbr;
mod nr;
mod vbr;

pub use block::{
    alloc_block, free_block, header_of, version_of, Block, BlockVTable, Header, Retired,
};
pub use ebr::Ebr;
pub use he::He;
pub use hp::Hp;
pub use hyaline::Hyaline;
pub use ibr::Ibr;
pub use nbr::Nbr;
pub use nr::Nr;
pub use pool::{BlockPool, PoolShared, ShardedCounter};
pub use ptr::{Atomic, Link, Shared, TAG_MASK};
pub use registry::{thread_beacon, AdoptGuard, Beacon, PinBinding, SlotClaim, SlotRegistry};
pub use vbr::Vbr;

use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of hazard/era slots available to each thread for each domain.
///
/// Harris' list with SCOT needs 4 (`Hp0`–`Hp3`), the Natarajan-Mittal tree
/// needs 5 (`Hp0`–`Hp4`) plus a victim slot for its value-returning `remove`
/// (`Hp5`), and the skip list needs 7 (`Hp0`–`Hp3` for the per-level
/// traversal, `Hp4` as the restart-from-highest-valid-level anchor, `Hp5` for
/// the removal victim, `Hp6` for the inserter's own tower); 8 leaves headroom
/// for future structures.  The authoritative role-per-slot table is the
/// `scot::slots` module of the data-structure crate.
pub const MAX_HAZARDS: usize = 8;

/// Errors surfaced by the fallible SMR entry points ([`Smr::try_register`]
/// and [`SmrConfig::validate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmrError {
    /// Every thread slot of the domain is claimed by a live handle; the domain
    /// was created with a `max_threads` smaller than the peak number of
    /// concurrently registered threads.
    RegistryFull {
        /// The domain's slot capacity (`SmrConfig::max_threads`).
        capacity: usize,
    },
    /// A [`SmrConfig`] field is outside its valid range; the payload names the
    /// offending constraint.
    InvalidConfig(&'static str),
}

impl std::fmt::Display for SmrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SmrError::RegistryFull { capacity } => write!(
                f,
                "all {capacity} thread slots are claimed; raise SmrConfig::max_threads"
            ),
            SmrError::InvalidConfig(what) => write!(f, "invalid SmrConfig: {what}"),
        }
    }
}

impl std::error::Error for SmrError {}

/// Identifies a reclamation scheme; used by the benchmark harness to select
/// schemes by name exactly like the paper's `./bench ... EBR ...` CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SmrKind {
    /// No reclamation (leak).
    Nr,
    /// Epoch-based reclamation.
    Ebr,
    /// Hazard pointers, naive per-node scan.
    Hp,
    /// Hazard pointers with the snapshot scan optimization.
    HpOpt,
    /// Hazard eras.
    He,
    /// Hazard eras with the snapshot scan optimization.
    HeOpt,
    /// Interval-based reclamation (2GEIBR).
    Ibr,
    /// Interval-based reclamation with the snapshot scan optimization.
    IbrOpt,
    /// Hyaline-1S-style reclamation.
    Hyaline,
    /// Neutralization-based reclamation (cooperative DEBRA+-style restarts).
    Nbr,
    /// Version-based reclamation (eager recycling with version stamps).
    Vbr,
}

impl SmrKind {
    /// All kinds, in the order the paper's figures list them; the two
    /// checkpoint-protocol families (NBR, VBR) come last.
    pub const ALL: [SmrKind; 11] = [
        SmrKind::Nr,
        SmrKind::Ebr,
        SmrKind::Hp,
        SmrKind::HpOpt,
        SmrKind::Ibr,
        SmrKind::IbrOpt,
        SmrKind::He,
        SmrKind::HeOpt,
        SmrKind::Hyaline,
        SmrKind::Nbr,
        SmrKind::Vbr,
    ];

    /// Parses the names used by the paper's artifact (`NR`, `EBR`, `HP`,
    /// `HPopt`/`HPO`, `HE`, `IBR`, `HLN`/`Hyaline`, `NBR`, `VBR`),
    /// case-insensitively.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "NR" => Some(SmrKind::Nr),
            "EBR" => Some(SmrKind::Ebr),
            "HP" => Some(SmrKind::Hp),
            "HPOPT" | "HPO" => Some(SmrKind::HpOpt),
            "HE" => Some(SmrKind::He),
            "HEOPT" | "HEO" => Some(SmrKind::HeOpt),
            "IBR" => Some(SmrKind::Ibr),
            "IBROPT" | "IBRO" => Some(SmrKind::IbrOpt),
            "HLN" | "HYALINE" | "HYALINE-1S" | "HYALINE1S" => Some(SmrKind::Hyaline),
            "NBR" | "NBR+" | "NEUTRALIZATION" => Some(SmrKind::Nbr),
            "VBR" | "VERSION" | "VERSIONED" => Some(SmrKind::Vbr),
            _ => None,
        }
    }

    /// Display name matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            SmrKind::Nr => "NR",
            SmrKind::Ebr => "EBR",
            SmrKind::Hp => "HP",
            SmrKind::HpOpt => "HPopt",
            SmrKind::He => "HE",
            SmrKind::HeOpt => "HEopt",
            SmrKind::Ibr => "IBR",
            SmrKind::IbrOpt => "IBRopt",
            SmrKind::Hyaline => "HLN",
            SmrKind::Nbr => "NBR",
            SmrKind::Vbr => "VBR",
        }
    }

    /// Whether the scheme is robust to stalled threads (bounded memory, the
    /// paper's property (A)).
    ///
    /// NBR and VBR are classified as *not* robust here even though the
    /// published schemes are: the originals obtain robustness from POSIX
    /// signals (NBR neutralizes a stalled reader from the outside) or from an
    /// unbounded version space (VBR readers fail their version re-validation
    /// instead of blocking reclamation).  This crate's variants are
    /// cooperative — a reader that never polls [`SmrGuard::needs_restart`]
    /// keeps its checkpoint era pinned, exactly like a stalled EBR reader —
    /// so claiming property (A) for them would overstate the implementation.
    pub fn is_robust(&self) -> bool {
        !matches!(
            self,
            SmrKind::Nr | SmrKind::Ebr | SmrKind::Nbr | SmrKind::Vbr
        )
    }
}

impl std::fmt::Display for SmrKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Tuning knobs shared by all schemes, with the defaults used in the paper's
/// evaluation (§5): limbo-list scans are amortized to one scan per 128 retire
/// calls, and the era/epoch counter is advanced once every
/// `12 × thread-count` allocations or retirements.
#[derive(Debug, Clone)]
pub struct SmrConfig {
    /// Maximum number of threads that may register concurrently.
    pub max_threads: usize,
    /// Retired nodes accumulated before attempting a reclamation pass.
    pub scan_threshold: usize,
    /// Allocations/retirements between era (epoch) increments, expressed as a
    /// multiple of the thread count.
    pub epoch_freq_per_thread: usize,
    /// Use the snapshot scan optimization (HPopt / HEopt / IBRopt).
    pub snapshot_scan: bool,
    /// Maximum blocks each per-thread handle caches in its block pool
    /// ([`pool::BlockPool`]); `Some(0)` disables pooling (every alloc/free
    /// goes to the global allocator).  `None` (the default) sizes the pool
    /// off `scan_threshold` — see [`SmrConfig::pool_blocks`]: a sweep frees
    /// up to one limbo list at once, so `2 × scan_threshold` lets a full
    /// sweep's worth of blocks be recycled without spilling.
    pub pool_capacity: Option<usize>,
}

impl Default for SmrConfig {
    fn default() -> Self {
        Self {
            max_threads: 192,
            scan_threshold: 128,
            epoch_freq_per_thread: 12,
            snapshot_scan: false,
            pool_capacity: None,
        }
    }
}

impl SmrConfig {
    /// Configuration sized for `threads` worker threads, using the paper's
    /// calibration values.
    pub fn for_threads(threads: usize) -> Self {
        Self {
            max_threads: threads + 2,
            ..Self::default()
        }
    }

    /// Checks the configuration's invariants: at least one thread slot and a
    /// retire threshold of at least one (a threshold of zero would make every
    /// retire call attempt a scan *before* any node is in limbo, and several
    /// amortization counters divide by it).
    pub fn validate(&self) -> Result<(), SmrError> {
        if self.max_threads == 0 {
            return Err(SmrError::InvalidConfig("max_threads must be >= 1"));
        }
        if self.scan_threshold == 0 {
            return Err(SmrError::InvalidConfig("scan_threshold must be >= 1"));
        }
        Ok(())
    }

    /// Validating pass-through used by every scheme's constructor: returns the
    /// configuration unchanged, or panics with a clear message naming the
    /// violated constraint.  Domain construction has no fallible channel (it
    /// returns `Arc<Self>`), so a misconfiguration is reported at the earliest
    /// possible point instead of surfacing as a later index error.
    pub fn validated(self) -> Self {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
        self
    }

    /// Absolute era increment frequency.
    pub fn epoch_freq(&self) -> usize {
        (self.epoch_freq_per_thread * self.max_threads).max(1)
    }

    /// Returns a copy with the snapshot scan optimization enabled.
    pub fn with_snapshot_scan(mut self) -> Self {
        self.snapshot_scan = true;
        self
    }

    /// Returns a copy with the given per-handle block-pool capacity.
    pub fn with_pool_capacity(mut self, capacity: usize) -> Self {
        self.pool_capacity = Some(capacity);
        self
    }

    /// Returns a copy with block pooling disabled (the `exp pool` ablation's
    /// pool-off arm).
    pub fn without_pool(self) -> Self {
        self.with_pool_capacity(0)
    }

    /// Effective per-handle block-pool capacity: the explicit
    /// [`SmrConfig::pool_capacity`] if set, otherwise `2 × scan_threshold`
    /// so one full limbo sweep recycles without spilling.
    pub fn pool_blocks(&self) -> usize {
        self.pool_capacity
            .unwrap_or_else(|| 2 * self.scan_threshold)
    }
}

/// A reclamation domain: one instance per data structure (or shared between
/// structures whose nodes may reference each other).
///
/// Domains are reference counted (`Arc`) so per-thread handles can be moved
/// into worker threads without borrowing the data structure.
///
/// # Thread affinity of handles
///
/// Handles are `Send`, and moving one to another thread is supported: every
/// [`SmrHandle::pin`] re-binds the handle's registry slot to the liveness
/// beacon of the *pinning* thread (see [`registry`]), so orphan detection
/// tracks the thread actually using the handle, not the one that happened to
/// call [`Smr::register`].  The one unsupported pattern is a handle *parked
/// between pins* whose most recent pinning thread (or registering thread, if
/// it was never pinned) exits: a survivor may then adopt the slot — draining
/// the handle's retired backlog and neutralizing its reservations — and the
/// handle's next `pin` panics instead of publishing into the recycled slot.
/// Guards, by contrast, are `!Send`: a critical section never leaves the
/// thread that opened it (see [`SmrGuard`]).
pub trait Smr: Send + Sync + Sized + 'static {
    /// Per-thread state: hazard slots, era reservations, limbo list.
    type Handle: SmrHandle + Send + 'static;

    /// Creates a new domain.  Panics if `config` violates its invariants
    /// (see [`SmrConfig::validate`]).
    fn new(config: SmrConfig) -> Arc<Self>;

    /// Registers the calling thread, claiming a thread slot; fails with
    /// [`SmrError::RegistryFull`] when `config.max_threads` handles are
    /// already live.  This is the entry point services should use when thread
    /// counts are not statically bounded (e.g. a runtime-sized worker pool).
    fn try_register(self: &Arc<Self>) -> Result<Self::Handle, SmrError>;

    /// Registers the calling thread, claiming a thread slot.  Panics if more
    /// than `config.max_threads` handles are live simultaneously; the
    /// fallible variant is [`Smr::try_register`].
    fn register(self: &Arc<Self>) -> Self::Handle {
        match self.try_register() {
            Ok(handle) => handle,
            Err(e) => panic!("SMR thread registration failed: {e}"),
        }
    }

    /// Number of retired-but-not-yet-reclaimed blocks across the whole domain.
    /// This is the quantity plotted in the paper's Figures 10–12b.
    fn unreclaimed(&self) -> usize;

    /// Scheme kind.
    fn kind(&self) -> SmrKind;

    /// Display name of the scheme.
    fn name(&self) -> &'static str {
        self.kind().name()
    }
}

/// Per-thread SMR state.  Handles are not `Sync`: each worker thread owns one.
pub trait SmrHandle {
    /// Guard marking a critical section (one data-structure operation).
    type Guard<'g>: SmrGuard
    where
        Self: 'g;

    /// Enters a critical section: publishes the epoch/era, makes the thread
    /// visible to reclaimers.  Dropping the guard leaves the critical section.
    ///
    /// Also re-binds the handle's slot to the calling thread's liveness
    /// beacon (a pointer compare on the already-bound fast path; see
    /// [`registry::SlotRegistry::check_owner_and_bind`]).
    ///
    /// # Panics
    /// If the handle's slot was adopted by a surviving thread — the thread
    /// that last pinned through this handle (or registered it, if it was
    /// never pinned) exited while the handle sat unpinned on another thread.
    /// The panic fires *before* any reservation is published, so an adopted
    /// handle can never corrupt the domain; treat it as "this handle died
    /// with its last thread, register a new one".
    #[must_use = "dropping the guard immediately leaves the critical section"]
    fn pin(&mut self) -> Self::Guard<'_>;

    /// Forces a reclamation attempt (limbo scan / epoch advance), regardless
    /// of the amortization threshold.  Used by tests and at thread shutdown.
    fn flush(&mut self);
}

/// Operations available inside a critical section.  The method set mirrors the
/// paper's Figure 1 plus allocation and retirement.
///
/// Guards are `!Send` and `!Sync`: a guard *is* the pinning thread's read-side
/// critical section, and the slot registry's orphan detection relies on the
/// slot's liveness beacon tracking exactly that thread — a guard that crossed
/// threads could have its protections neutralized the moment the pinning
/// thread exits, while the new thread is still dereferencing through them.
/// The compiler enforces this:
///
/// ```compile_fail
/// use scot_smr::{Hp, Smr, SmrConfig, SmrHandle};
///
/// let domain = Hp::new(SmrConfig::default());
/// let mut handle = domain.register();
/// let guard = handle.pin();
/// std::thread::scope(|s| {
///     s.spawn(move || drop(guard)); // ERROR: guards are `!Send`
/// });
/// ```
pub trait SmrGuard {
    /// Address of the reclamation domain this guard publishes its protections
    /// into.  Data structures use it as a brand: an operation handed a guard
    /// from a *different* domain would publish hazard slots / epoch
    /// announcements where no reclaimer of its own domain ever looks, so the
    /// `scot` structures reject foreign guards with this one pointer compare.
    fn domain_addr(&self) -> usize;
    /// Reads `src` and protects the result in hazard slot `idx`
    /// (`protect` in Figure 1).
    ///
    /// * HP: publishes the (untagged) pointer in the slot and re-reads `src`
    ///   until stable.
    /// * HE: publishes the current era in the slot's reservation and re-reads
    ///   until the era is stable.
    /// * IBR / Hyaline-1S: extends the thread's interval to the current era
    ///   and re-reads until stable (slots are ignored).
    /// * EBR / NR: a plain `Acquire` load.
    ///
    /// The returned pointer preserves tag bits; the published protection always
    /// refers to the untagged address.
    fn protect<T>(&mut self, idx: usize, src: &Atomic<T>) -> Shared<T>;

    /// Publishes an already-validated pointer in slot `idx` without re-reading
    /// any source.  Only meaningful for HP/HE; no-op elsewhere.  The caller is
    /// responsible for re-validating reachability afterwards (this is exactly
    /// the SCOT validation step).
    fn announce<T>(&mut self, idx: usize, ptr: Shared<T>);

    /// Reads through a link address (`node_t **` in the paper's pseudocode)
    /// and protects the result in slot `idx` — [`SmrGuard::protect`] for the
    /// cursor paths that hold the predecessor as a [`Link`] rather than a
    /// field reference (restarting a traversal from the last safe node,
    /// re-protecting across cursor steps).
    ///
    /// # Safety
    /// The owner of the link (the structure head or a protected node) must be
    /// live for the duration of the call, exactly as for [`Link::as_atomic`].
    #[inline]
    unsafe fn protect_link<T>(&mut self, idx: usize, link: Link<T>) -> Shared<T> {
        // SAFETY: forwarded — the caller guarantees the link's owner is live,
        // which is exactly the `Link::as_atomic` contract.
        self.protect(idx, unsafe { link.as_atomic() })
    }

    /// Copies the protection in slot `from` to slot `to` (`dup` in Figure 1).
    /// Per §3.2, callers must only duplicate from a lower to a higher index on
    /// the traversal path they rely on.
    fn dup(&mut self, from: usize, to: usize);

    /// Clears slot `idx`.
    fn clear(&mut self, idx: usize);

    /// Allocates a new SMR-managed node, stamping its birth era.
    fn alloc<T: Send + 'static>(&mut self, value: T) -> Shared<T>;

    /// Retires a node that has been unlinked from the data structure.  The
    /// node is reclaimed (destructor run, memory freed) once the scheme can
    /// prove no thread still holds a protected reference.
    ///
    /// # Safety
    /// * `ptr` must have been produced by [`SmrGuard::alloc`] on this domain.
    /// * The node must be unreachable for new operations (physically unlinked).
    /// * It must be retired exactly once.
    unsafe fn retire<T: Send + 'static>(&mut self, ptr: Shared<T>);

    /// Immediately frees a node that was allocated but never published to the
    /// data structure (e.g. an `Insert` that lost its CAS and gives up).
    ///
    /// # Safety
    /// No other thread may have observed the pointer.
    unsafe fn dealloc<T>(&mut self, ptr: Shared<T>);

    /// Polls whether the scheme has asked this reader to restart its current
    /// operation (the checkpoint/neutralize protocol).
    ///
    /// NBR raises this when the reader's checkpoint era lags the global era
    /// and is blocking reclamation; VBR raises it when the global epoch has
    /// advanced far enough past the epoch announced at [`SmrHandle::pin`]
    /// that continuing would delay recycling.  All other schemes never ask.
    ///
    /// Ignoring the request is always *safe* — protection is carried entirely
    /// by the published checkpoint era/epoch, and the flag is only a progress
    /// accelerator — but a cooperative reader should answer it by calling
    /// [`SmrGuard::checkpoint`] and restarting its traversal from the
    /// structure root (the `Restart::Operation` rung of the `scot` cursor's
    /// restart ladder).
    #[inline]
    fn needs_restart(&self) -> bool {
        false
    }

    /// Acknowledges a pending restart request: discards every protection
    /// established since [`SmrHandle::pin`] and re-announces the current
    /// era/epoch, as if the guard had been dropped and re-pinned.
    ///
    /// After this call **all previously read pointers are void** — hazard
    /// slots may be reused for other nodes and era-protected blocks may be
    /// reclaimed — so callers must hold no `Shared` pointers across it and
    /// must restart from the structure root.  The `scot` cursor only polls
    /// [`SmrGuard::needs_restart`] at points where the calling operation
    /// keeps no cross-seek state, which is what makes the blanket restart
    /// sound.  No-op for schemes without the checkpoint protocol.
    #[inline]
    fn checkpoint(&mut self) {}

    /// Refreshes this guard between operations, as if it had been dropped and
    /// re-pinned — the hot-loop alternative to a per-operation pin/unpin pair
    /// (the DEBRA-style amortization: one guard held across a batch of
    /// operations, with `repin` at each operation boundary).
    ///
    /// The epoch/era-family schemes (EBR, IBR, HE, NBR, VBR) override this to
    /// **elide** the publication fences entirely when the global epoch/era has
    /// not advanced since the last pin/repin — the common case, turning the
    /// per-operation SeqCst announce sequence into one relaxed-ish load.  HP
    /// clears its published hazards (a true drop+pin, which for HP publishes
    /// nothing); Hyaline re-enters only when batches were pushed onto its
    /// slot during the critical section.
    ///
    /// The default (keep every protection, do nothing) is always *sound*:
    /// continuing the critical section can only over-protect, never
    /// under-protect.  What callers give up by batching is reclamation
    /// granularity — memory retired during the batch may stay pinned until
    /// the batch edge where the guard is dropped or the scheme's elision
    /// check fires — which is exactly the bounded cost the `--pin-batch`
    /// harness knob measures.
    ///
    /// After this call **all previously read pointers are void**, exactly as
    /// for [`SmrGuard::checkpoint`]: callers must hold no `Shared` pointers
    /// or value borrows across it (the `&mut self` receiver statically ends
    /// any guard-scoped `&V` borrows).
    #[inline]
    fn repin(&mut self) {}

    /// Retires a batch of unlinked nodes in one call — the fast path for
    /// churn-heavy workloads (a traversal unlinking a whole marked chain
    /// retires every node of the chain at once).  Scheme overrides take the
    /// domain's retire-vault mutex **once per batch** instead of once per
    /// node and run the amortized era/scan bookkeeping once; the default
    /// simply loops over [`SmrGuard::retire`].
    ///
    /// # Safety
    /// Every pointer in `batch` must individually satisfy the
    /// [`SmrGuard::retire`] contract: produced by [`SmrGuard::alloc`] on this
    /// domain, physically unlinked, and retired exactly once.
    unsafe fn retire_batch<T: Send + 'static>(&mut self, batch: &[Shared<T>]) {
        for &ptr in batch {
            // SAFETY: forwarded — the caller guarantees the per-node retire
            // contract for every element of the batch.
            unsafe { self.retire(ptr) };
        }
    }
}

/// Result of [`drain_with_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainOutcome {
    /// Every retired block was reclaimed.
    Drained,
    /// The deadline passed with blocks still unreclaimed — a stalled reader
    /// pins an epoch/era, a poisoned slot holds Hyaline batches, or the
    /// scheme leaks by design (NR).  The payload is the number of blocks
    /// still outstanding so callers can report instead of hang.
    TimedOut {
        /// Unreclaimed blocks at the deadline.
        remaining: usize,
    },
}

/// Drains a domain at shutdown: repeatedly forces reclamation passes (which
/// also adopt orphaned slots left by dead threads) until
/// [`Smr::unreclaimed`] reaches zero or `timeout` elapses.
///
/// This is the harness's answer to the acceptance question "does memory come
/// back after the fault?" — it *reports* a stuck domain via
/// [`DrainOutcome::TimedOut`] rather than spinning forever on one.
pub fn drain_with_timeout<S: Smr>(
    domain: &S,
    handle: &mut S::Handle,
    timeout: Duration,
) -> DrainOutcome {
    let deadline = Instant::now() + timeout;
    loop {
        handle.flush();
        let remaining = domain.unreclaimed();
        if remaining == 0 {
            return DrainOutcome::Drained;
        }
        if Instant::now() >= deadline {
            return DrainOutcome::TimedOut { remaining };
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parse_roundtrip() {
        assert_eq!(SmrKind::ALL.len(), 11, "8 families, 11 variants");
        for k in SmrKind::ALL {
            assert_eq!(SmrKind::parse(k.name()), Some(k));
        }
        assert_eq!(SmrKind::parse("ebr"), Some(SmrKind::Ebr));
        assert_eq!(SmrKind::parse("hyaline-1s"), Some(SmrKind::Hyaline));
        assert_eq!(SmrKind::parse("nbr"), Some(SmrKind::Nbr));
        assert_eq!(SmrKind::parse("NBR+"), Some(SmrKind::Nbr));
        assert_eq!(SmrKind::parse("neutralization"), Some(SmrKind::Nbr));
        assert_eq!(SmrKind::parse("vbr"), Some(SmrKind::Vbr));
        assert_eq!(SmrKind::parse("version"), Some(SmrKind::Vbr));
        assert_eq!(SmrKind::parse("versioned"), Some(SmrKind::Vbr));
        assert_eq!(SmrKind::parse("bogus"), None);
    }

    #[test]
    fn robustness_classification() {
        // The cooperative checkpoint schemes share EBR's stalled-reader
        // weakness (see `SmrKind::is_robust`).
        for k in [SmrKind::Nr, SmrKind::Ebr, SmrKind::Nbr, SmrKind::Vbr] {
            assert!(!k.is_robust(), "{k} should not claim robustness");
        }
        for k in [
            SmrKind::Hp,
            SmrKind::HpOpt,
            SmrKind::He,
            SmrKind::Ibr,
            SmrKind::Hyaline,
        ] {
            assert!(k.is_robust(), "{k} should be robust");
        }
    }

    #[test]
    fn checkpoint_protocol_defaults_to_no_restarts() {
        // Schemes without the checkpoint protocol inherit the trait defaults:
        // never ask for a restart, and acknowledge as a no-op.
        let d = Ebr::new(SmrConfig {
            max_threads: 1,
            ..SmrConfig::default()
        });
        let mut h = d.register();
        let mut g = h.pin();
        assert!(!g.needs_restart());
        g.checkpoint();
        assert!(!g.needs_restart());
    }

    #[test]
    fn try_register_surfaces_slot_exhaustion() {
        let d = Hp::new(SmrConfig {
            max_threads: 2,
            ..SmrConfig::default()
        });
        let _a = d.try_register().expect("slot 0 must be free");
        let _b = d.try_register().expect("slot 1 must be free");
        assert_eq!(
            d.try_register().err(),
            Some(SmrError::RegistryFull { capacity: 2 })
        );
        drop(_a);
        let _c = d.try_register().expect("released slot must be reclaimable");
    }

    #[test]
    #[should_panic(expected = "raise SmrConfig::max_threads")]
    fn register_panics_when_full() {
        let d = Ebr::new(SmrConfig {
            max_threads: 1,
            ..SmrConfig::default()
        });
        let _a = d.register();
        let _b = d.register();
    }

    #[test]
    fn config_validation_rejects_degenerate_values() {
        let zero_threads = SmrConfig {
            max_threads: 0,
            ..SmrConfig::default()
        };
        assert_eq!(
            zero_threads.validate(),
            Err(SmrError::InvalidConfig("max_threads must be >= 1"))
        );
        let zero_scan = SmrConfig {
            scan_threshold: 0,
            ..SmrConfig::default()
        };
        assert_eq!(
            zero_scan.validate(),
            Err(SmrError::InvalidConfig("scan_threshold must be >= 1"))
        );
        assert!(SmrConfig::default().validate().is_ok());
        // The error renders a human-readable constraint.
        assert!(zero_scan
            .validate()
            .unwrap_err()
            .to_string()
            .contains(">= 1"));
    }

    #[test]
    #[should_panic(expected = "max_threads must be >= 1")]
    fn domain_construction_rejects_invalid_config() {
        let _ = Ibr::new(SmrConfig {
            max_threads: 0,
            ..SmrConfig::default()
        });
    }

    #[test]
    fn config_defaults_match_paper_calibration() {
        let c = SmrConfig::default();
        assert_eq!(c.scan_threshold, 128);
        assert_eq!(c.epoch_freq_per_thread, 12);
        assert_eq!(c.pool_blocks(), 2 * c.scan_threshold);
        // The auto-sized pool tracks scan_threshold.
        let small = SmrConfig {
            scan_threshold: 8,
            ..SmrConfig::default()
        };
        assert_eq!(small.pool_blocks(), 16);
        let c = SmrConfig::for_threads(16);
        assert_eq!(c.epoch_freq(), 12 * 18);
        assert_eq!(SmrConfig::default().without_pool().pool_blocks(), 0);
        assert_eq!(
            SmrConfig::default().with_pool_capacity(64).pool_blocks(),
            64
        );
    }
}
