//! Reclamation-aware block pool and sharded domain statistics.
//!
//! Two hot-path costs dominate every scheme's `alloc`/`retire` once limbo
//! scans are amortized (the observation behind DEBRA's and Hyaline's
//! engineering, and the motivation for this module):
//!
//! 1. a global-allocator round-trip per node — `malloc`/`free` take locks or
//!    touch shared arena state on every operation of a write-heavy workload;
//! 2. a `fetch_add`/`fetch_sub` on a single shared `unreclaimed` counter that
//!    ping-pongs one cache line across all worker threads.
//!
//! [`BlockPool`] removes the first: every scheme handle owns a bounded
//! free-list of dead blocks, binned by allocation [`Layout`], recycled
//! in LIFO order (so reused blocks come back cache-warm).  The list is
//! intrusive — it threads through the dead blocks' own `Header::next`
//! fields — so the pool itself allocates nothing on the fast path.  When a
//! handle's pool fills up (a thread that frees more than it allocates, e.g.
//! the lucky acknowledger under Hyaline's any-thread freeing), it spills half
//! a bin at a time into the domain-shared [`PoolShared`] overflow, where
//! allocation-heavy threads refill from.  Both layers are bounded: the
//! overflow caps at `pool_capacity × max_threads` blocks and everything
//! beyond that is returned to the global allocator, so total pooled memory
//! never exceeds `2 × pool_capacity × max_threads` blocks per domain.
//!
//! [`ShardedCounter`] removes the second: one cache-padded counter per thread
//! slot, written only by that slot's owner on the retire path; a reclaiming
//! thread subtracts from *its own* shard even when it frees blocks another
//! thread retired (Hyaline, orphan sweeps), so individual shards may go
//! negative while the sum stays exact.  Reads sum all shards — they happen
//! only on the 10 ms sampler path, where a few dozen relaxed loads are free.
//! A sum taken concurrently with retire/free traffic can transiently miss
//! in-flight updates (it is not a linearizable snapshot); quiescent reads are
//! exact, which is what every accounting test relies on.

use crate::block::{dealloc_raw, drop_value, Header};
use core::alloc::Layout;
use crossbeam_utils::CachePadded;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::Arc;

/// A dead block awaiting reuse: raw memory plus the layout it was allocated
/// with.  Addresses are stored as `usize` so the type is trivially `Send`.
#[derive(Clone, Copy)]
struct FreeBlock {
    hdr: usize,
    layout: Layout,
}

/// One free list of identically-laid-out dead blocks, threaded intrusively
/// through `Header::next`.
struct Bin {
    layout: Layout,
    /// Head of the intrusive LIFO list (0 = empty).
    head: usize,
    len: usize,
}

impl Bin {
    #[inline]
    fn push(&mut self, hdr: *mut Header) {
        // SAFETY: `hdr` is a dead block owned exclusively by this pool (its
        // payload was dropped before it entered a free list), so rewriting
        // its repurposed `next` field cannot race another thread.
        // ORDERING: Relaxed — the free list is single-owner (one thread per
        // pool tier); transfers between threads synchronize through the
        // overflow mutex, which fences these writes.
        unsafe { (*hdr).next.store(self.head, Ordering::Relaxed) };
        self.head = hdr as usize;
        self.len += 1;
    }

    #[inline]
    fn pop(&mut self) -> Option<*mut Header> {
        if self.head == 0 {
            return None;
        }
        let hdr = self.head as *mut Header;
        // SAFETY: every block in the free list is dead memory owned by this
        // pool, so its header stays valid until the pool hands it out.
        // ORDERING: Relaxed — single-owner list; see `push`.
        self.head = unsafe { (*hdr).next.load(Ordering::Relaxed) };
        self.len -= 1;
        Some(hdr)
    }
}

/// One layout's parked blocks inside the shared overflow.
struct OverflowBin {
    layout: Layout,
    blocks: Vec<usize>,
}

/// Domain-shared overflow tier of the block pool.
///
/// Absorbs the imbalance between threads that free more than they allocate
/// and threads that allocate more than they free, so per-handle pool capacity
/// is never stranded on the wrong thread.  Guarded by a mutex, but touched
/// only when a handle's local pool over- or under-flows — once per
/// `pool_capacity / 2` operations in the worst case, not per operation.
/// Parked blocks are binned by layout so a refill is one `split_off` from the
/// matching bin, never a scan of foreign layouts.
pub struct PoolShared {
    overflow: Mutex<Vec<OverflowBin>>,
    /// Total blocks across all overflow bins, maintained under the lock, so
    /// empty-pool allocations can skip the mutex entirely with one relaxed
    /// load (the common case while a workload is still growing).
    overflow_count: AtomicUsize,
    /// Maximum blocks held across the overflow bins; the excess is
    /// deallocated, keeping domain-wide pooled memory bounded.
    max_overflow: usize,
}

// SAFETY: FreeBlock addresses refer to dead allocations owned exclusively by
// the pool; moving them across threads is the entire point of the overflow
// tier.
unsafe impl Send for PoolShared {}
// SAFETY: all shared state is behind the overflow mutex or atomic; the raw
// block addresses inside are only touched by whichever thread takes them out.
unsafe impl Sync for PoolShared {}

impl PoolShared {
    /// Creates the shared overflow for a domain: `capacity` is the per-handle
    /// pool capacity, `max_threads` the domain's slot count.
    pub fn new(capacity: usize, max_threads: usize) -> Arc<Self> {
        Arc::new(Self {
            overflow: Mutex::new(Vec::new()),
            overflow_count: AtomicUsize::new(0),
            max_overflow: capacity.saturating_mul(max_threads.max(1)),
        })
    }

    /// Number of blocks currently parked in the overflow tier.
    pub fn overflow_len(&self) -> usize {
        // ORDERING: Relaxed — statistics/fast-path hint only; the authoritative
        // count is re-read under the overflow mutex by `park`/`take`.
        self.overflow_count.load(Ordering::Relaxed)
    }

    /// Parks `blocks` in the overflow, deallocating whatever exceeds the
    /// overflow bound.  The single write-side entry point, shared by
    /// [`BlockPool::spill`] and [`BlockPool::drop`] so the count mirror and
    /// the bound live in one place.
    fn park(&self, mut blocks: Vec<FreeBlock>) {
        if blocks.is_empty() {
            return;
        }
        let mut overflow = self.overflow.lock();
        // ORDERING: Relaxed — `overflow_count` is only *written* under the
        // overflow mutex (held here), so this read observes the latest value;
        // the mutex provides the synchronization.
        let mut total = self.overflow_count.load(Ordering::Relaxed);
        let room = self.max_overflow.saturating_sub(total);
        let keep = blocks.len().min(room);
        for fb in blocks.drain(..keep) {
            let idx = match overflow.iter().position(|b| b.layout == fb.layout) {
                Some(i) => i,
                None => {
                    overflow.push(OverflowBin {
                        layout: fb.layout,
                        blocks: Vec::new(),
                    });
                    overflow.len() - 1
                }
            };
            overflow[idx].blocks.push(fb.hdr);
            total += 1;
        }
        // ORDERING: Relaxed — written under the overflow mutex; readers that
        // need the exact value (park/take) also hold the mutex, and the
        // lock-free empty-check in `refill` tolerates staleness.
        self.overflow_count.store(total, Ordering::Relaxed);
        drop(overflow);
        for fb in blocks {
            // SAFETY: blocks entering the pool have had their payload dropped
            // (`BlockPool::free`), so only the raw memory remains to release,
            // and `fb.layout` is the block's recorded allocation layout.
            unsafe { dealloc_raw(fb.hdr as *mut Header, fb.layout) };
        }
    }

    /// Takes up to `want` parked blocks of `layout`.  Returns an empty vector
    /// when the overflow is contended (`try_lock`) or holds no such layout —
    /// in either case the caller falls through to the global allocator.
    fn take(&self, layout: Layout, want: usize) -> Vec<usize> {
        let Some(mut overflow) = self.overflow.try_lock() else {
            return Vec::new();
        };
        let Some(bin) = overflow.iter_mut().find(|b| b.layout == layout) else {
            return Vec::new();
        };
        let n = bin.blocks.len().min(want);
        let taken = bin.blocks.split_off(bin.blocks.len() - n);
        // ORDERING: Relaxed — updated under the overflow mutex; see `park`.
        self.overflow_count.fetch_sub(n, Ordering::Relaxed);
        taken
    }
}

impl Drop for PoolShared {
    fn drop(&mut self) {
        let mut overflow = self.overflow.lock();
        for bin in overflow.drain(..) {
            for hdr in bin.blocks {
                // SAFETY: payloads were dropped before the blocks entered the
                // pool; only the raw memory remains to release, and
                // `bin.layout` is the layout every block in this bin shares.
                unsafe { dealloc_raw(hdr as *mut Header, bin.layout) };
            }
        }
    }
}

/// Per-handle (thread-local) tier of the block pool.
///
/// Not `Sync`: exactly one worker thread owns each pool, mirroring the scheme
/// handles that embed it.  `capacity == 0` disables pooling entirely — every
/// call degenerates to the global allocator, which is the pool-off arm of the
/// `exp pool` ablation.
pub struct BlockPool {
    shared: Arc<PoolShared>,
    /// Free lists binned by layout.  Real workloads see one or two distinct
    /// node layouts per domain, so linear search beats any map.
    bins: Vec<Bin>,
    /// Maximum blocks cached locally across all bins.
    capacity: usize,
    /// Current total across all bins.
    len: usize,
}

// SAFETY: the pooled blocks are dead memory owned exclusively by this pool;
// the pool moves between threads only as part of its owning handle
// (`Handle: Send`), never concurrently.
unsafe impl Send for BlockPool {}

impl BlockPool {
    /// Creates a pool bounded at `capacity` blocks, spilling into `shared`.
    pub fn new(shared: Arc<PoolShared>, capacity: usize) -> Self {
        Self {
            shared,
            bins: Vec::new(),
            capacity,
            len: 0,
        }
    }

    /// Maximum number of blocks this pool may cache locally.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of blocks currently cached locally.
    pub fn cached(&self) -> usize {
        self.len
    }

    #[inline]
    fn bin_index(&mut self, layout: Layout) -> usize {
        if let Some(i) = self.bins.iter().position(|b| b.layout == layout) {
            return i;
        }
        self.bins.push(Bin {
            layout,
            head: 0,
            len: 0,
        });
        self.bins.len() - 1
    }

    /// Allocates a block holding `value`, reusing a cached block of the same
    /// layout when one is available (local bin first, then a batched refill
    /// from the shared overflow, then the global allocator).
    ///
    /// A reused block keeps its recycling-incarnation stamp
    /// ([`Header::version`]) across the reinitialization, incremented by one —
    /// the stamp survives parking in either pool tier, so it counts every
    /// reuse of the raw memory since the original allocation.  VBR's version
    /// re-check relies on this monotonicity.
    pub fn alloc<T>(&mut self, value: T) -> *mut T {
        if self.capacity == 0 {
            return crate::block::alloc_block(value);
        }
        let layout = Layout::new::<crate::block::Block<T>>();
        let bin = self.bin_index(layout);
        if let Some(hdr) = self.bins[bin].pop() {
            self.len -= 1;
            // SAFETY: the block came out of the bin matching `Block<T>`'s
            // layout and is dead (payload dropped before it was pooled).
            return unsafe { Self::reinit(hdr, value) };
        }
        if self.refill(bin) {
            if let Some(hdr) = self.bins[bin].pop() {
                self.len -= 1;
                // SAFETY: as above — refill only moves blocks of this bin's
                // layout, and overflow blocks are dead by construction.
                return unsafe { Self::reinit(hdr, value) };
            }
        }
        crate::block::alloc_block(value)
    }

    /// Rewrites a parked block with a fresh header and `value`, preserving
    /// (and bumping) the recycling-incarnation stamp that
    /// [`crate::block::init_block`] would otherwise reset to zero.
    ///
    /// # Safety
    /// Same contract as [`crate::block::init_block`]: `hdr` must be a dead
    /// block of exactly `Block<T>`'s layout.
    #[inline]
    unsafe fn reinit<T>(hdr: *mut Header, value: T) -> *mut T {
        // SAFETY: the caller guarantees `hdr` is a dead block of exactly
        // `Block<T>`'s layout, owned by this pool — reading its parked header
        // and overwriting it with a fresh block is exclusive access.
        // ORDERING: the Relaxed read is single-owner (the stamp was last
        // written either by this pool tier or before the block crossed the
        // overflow mutex); the Release store pairs with the Acquire in
        // `version_of` so a VBR reader that observes the new stamp also
        // observes the reinitialized header.
        unsafe {
            // ORDERING: see the block comment above -- the stamp is single-owner here.
            let incarnation = (*hdr).version.load(Ordering::Relaxed);
            let ptr = crate::block::init_block(hdr, value);
            (*hdr)
                .version
                .store(incarnation.wrapping_add(1), Ordering::Release);
            ptr
        }
    }

    /// Runs the block's destructor and recycles its memory: into a local bin
    /// while below capacity, spilling half a bin to the shared overflow when
    /// full, and falling through to the global allocator only once both tiers
    /// are at their bounds.
    ///
    /// # Safety
    /// The block must be live, unreachable by any other thread, and not freed
    /// twice — the same contract as [`crate::block::free_block`].
    pub unsafe fn free(&mut self, hdr: *mut Header) {
        // SAFETY: the caller guarantees the block is live and unreachable, so
        // reading its vtable and running the payload destructor in place is
        // exclusive access; afterwards the block is dead memory this pool owns.
        let layout = unsafe { (*hdr).vtable.layout };
        // SAFETY: as above — live, unreachable, not freed twice.
        unsafe { drop_value(hdr) };
        if self.capacity == 0 {
            // SAFETY: payload just dropped; `layout` is the recorded layout.
            unsafe { dealloc_raw(hdr, layout) };
            return;
        }
        if self.len >= self.capacity {
            self.spill();
        }
        if self.len >= self.capacity {
            // Overflow tier was full too: give the block back for real.
            // SAFETY: payload just dropped; `layout` is the recorded layout.
            unsafe { dealloc_raw(hdr, layout) };
            return;
        }
        let bin = self.bin_index(layout);
        self.bins[bin].push(hdr);
        self.len += 1;
    }

    /// Batched [`BlockPool::free`]: runs every destructor, then recycles the
    /// dead blocks with one bin lookup per layout *run* (consecutive blocks of
    /// one layout — the common case, since a sweep's batch comes from one data
    /// structure) instead of a linear bin search per block.  Spills follow the
    /// same once-per-`capacity / 2` amortization as the single-block path, so
    /// the overflow mutex is touched at most once per half-capacity of the
    /// batch rather than being re-examined per node.
    ///
    /// # Safety
    /// Every block must satisfy the [`BlockPool::free`] contract: live,
    /// unreachable by any other thread, and freed exactly once — and the
    /// batch must not contain duplicates.
    pub unsafe fn free_batch(&mut self, hdrs: &[*mut Header]) {
        if self.capacity == 0 {
            for &hdr in hdrs {
                // SAFETY: per the contract, each block is live and unreachable;
                // `layout` is read before the payload destructor runs.
                let layout = unsafe { (*hdr).vtable.layout };
                // SAFETY: as above — live, unreachable, freed exactly once.
                unsafe { drop_value(hdr) };
                // SAFETY: payload just dropped; `layout` is the recorded layout.
                unsafe { dealloc_raw(hdr, layout) };
            }
            return;
        }
        let mut run: Option<(Layout, usize)> = None;
        for &hdr in hdrs {
            // SAFETY: per the contract, each block is live and unreachable.
            let layout = unsafe { (*hdr).vtable.layout };
            // SAFETY: as above — live, unreachable, freed exactly once.
            unsafe { drop_value(hdr) };
            if self.len >= self.capacity {
                // `bins` is append-only (spilling pops blocks in place), so
                // the cached bin index stays valid across the spill.
                self.spill();
            }
            if self.len >= self.capacity {
                // Overflow tier full too: give the block back for real.
                // SAFETY: payload just dropped; `layout` is the recorded layout.
                unsafe { dealloc_raw(hdr, layout) };
                continue;
            }
            let bin = match run {
                Some((l, i)) if l == layout => i,
                _ => {
                    let i = self.bin_index(layout);
                    run = Some((layout, i));
                    i
                }
            };
            self.bins[bin].push(hdr);
            self.len += 1;
        }
    }

    /// Moves up to half the local capacity from the fullest bin into the
    /// shared overflow; blocks that do not fit under the overflow bound are
    /// deallocated.  One lock acquisition amortizes `capacity / 2` frees.
    fn spill(&mut self) {
        let Some(bin) = self
            .bins
            .iter_mut()
            .max_by_key(|b| b.len)
            .filter(|b| b.len > 0)
        else {
            return;
        };
        let want = (self.capacity / 2).max(1).min(bin.len);
        let mut moved = Vec::with_capacity(want);
        for _ in 0..want {
            let Some(hdr) = bin.pop() else { break };
            moved.push(FreeBlock {
                hdr: hdr as usize,
                layout: bin.layout,
            });
        }
        self.len -= moved.len();
        self.shared.park(moved);
    }

    /// Pulls up to half the local capacity of `layout`-compatible blocks from
    /// the shared overflow into the given bin.  Returns whether anything was
    /// transferred.  Skips the mutex entirely while the overflow is empty
    /// (one relaxed load), and uses `try_lock` otherwise: under contention
    /// the global allocator is cheaper than serializing on the mutex.
    fn refill(&mut self, bin: usize) -> bool {
        // ORDERING: Relaxed — empty-check fast path; a stale non-zero just
        // costs a `try_lock`, a stale zero falls through to the global
        // allocator.  Block handoff synchronizes via the overflow mutex.
        if self.shared.overflow_count.load(Ordering::Relaxed) == 0 {
            return false;
        }
        let layout = self.bins[bin].layout;
        let want = (self.capacity / 2).max(1);
        let taken = self.shared.take(layout, want);
        for &hdr in &taken {
            self.bins[bin].push(hdr as *mut Header);
        }
        self.len += taken.len();
        !taken.is_empty()
    }
}

impl Drop for BlockPool {
    fn drop(&mut self) {
        // Park everything in the overflow so capacity survives thread churn;
        // whatever exceeds the overflow bound goes back to the allocator.
        let mut moved = Vec::with_capacity(self.len);
        for bin in &mut self.bins {
            while let Some(hdr) = bin.pop() {
                moved.push(FreeBlock {
                    hdr: hdr as usize,
                    layout: bin.layout,
                });
            }
        }
        self.len = 0;
        self.shared.park(moved);
    }
}

/// A counter sharded across thread slots to keep the write path off shared
/// cache lines.
///
/// `add` is called by a slot's owner on retire; `sub` by whichever thread
/// frees (against its own shard).  Shards are `isize` because any-thread
/// freeing can drive an individual shard negative; the sum across shards is
/// the true value.  See the module docs for the accuracy model.
pub struct ShardedCounter {
    shards: Box<[CachePadded<AtomicIsize>]>,
}

impl ShardedCounter {
    /// Creates a counter with one shard per thread slot.
    pub fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1))
                .map(|_| CachePadded::new(AtomicIsize::new(0)))
                .collect(),
        }
    }

    /// Increments `shard` (relaxed; owner-only on the hot path).
    #[inline]
    pub fn add(&self, shard: usize, n: usize) {
        // ORDERING: Relaxed — statistics only; `sum` is documented as exact
        // only at quiescence (see the module docs' accuracy model).
        self.shards[shard].fetch_add(n as isize, Ordering::Relaxed);
    }

    /// Decrements `shard` (relaxed); may drive the shard negative.
    #[inline]
    pub fn sub(&self, shard: usize, n: usize) {
        // ORDERING: Relaxed — statistics only; see `add`.
        self.shards[shard].fetch_sub(n as isize, Ordering::Relaxed);
    }

    /// Sums all shards.  Quiescent reads are exact; concurrent reads may
    /// transiently miss in-flight updates.  Clamped at zero for the same
    /// reason the shards are signed.
    pub fn sum(&self) -> usize {
        // ORDERING: Relaxed — sampler path; the accuracy model in the module
        // docs explicitly permits transiently missing in-flight updates.
        let total: isize = self.shards.iter().map(|s| s.load(Ordering::Relaxed)).sum();
        total.max(0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{alloc_block, header_of};
    use std::sync::atomic::AtomicUsize;

    fn pool(capacity: usize, max_threads: usize) -> (Arc<PoolShared>, BlockPool) {
        let shared = PoolShared::new(capacity, max_threads);
        let pool = BlockPool::new(shared.clone(), capacity);
        (shared, pool)
    }

    #[test]
    fn alloc_free_recycles_the_same_memory() {
        let (_shared, mut pool) = pool(8, 1);
        let a = pool.alloc(1u64);
        let addr = a as usize;
        // SAFETY: the block was allocated by this pool family and is freed exactly once.
        unsafe { pool.free(header_of(a)) };
        assert_eq!(pool.cached(), 1);
        let b = pool.alloc(2u64);
        assert_eq!(b as usize, addr, "LIFO reuse of the freed block");
        assert_eq!(pool.cached(), 0);
        // SAFETY: the block was allocated by this pool family and is freed exactly once.
        unsafe { pool.free(header_of(b)) };
    }

    #[test]
    fn local_pool_never_exceeds_capacity() {
        let (shared, mut pool) = pool(4, 1);
        let blocks: Vec<*mut u64> = (0..32).map(|i| pool.alloc(i as u64)).collect();
        for b in blocks {
            // SAFETY: the block was allocated by this pool family and is freed exactly once.
            unsafe { pool.free(header_of(b)) };
        }
        assert!(
            pool.cached() <= pool.capacity(),
            "cached {} > capacity {}",
            pool.cached(),
            pool.capacity()
        );
        // Spilled blocks land in the (bounded) overflow.
        assert!(shared.overflow_len() <= 4, "overflow exceeds its bound");
    }

    #[test]
    fn overflow_bound_is_respected_and_excess_is_deallocated() {
        let shared = PoolShared::new(2, 2); // max_overflow = 4
        let mut pool = BlockPool::new(shared.clone(), 2);
        let blocks: Vec<*mut u64> = (0..64).map(|i| pool.alloc(i as u64)).collect();
        for b in blocks {
            // SAFETY: the block was allocated by this pool family and is freed exactly once.
            unsafe { pool.free(header_of(b)) };
        }
        assert!(pool.cached() <= 2);
        assert!(shared.overflow_len() <= 4);
    }

    #[test]
    fn cross_pool_transfer_through_overflow() {
        let shared = PoolShared::new(8, 4);
        let mut producer = BlockPool::new(shared.clone(), 8);
        let mut consumer = BlockPool::new(shared.clone(), 8);
        // Producer frees blocks it never reuses; its pool fills and spills.
        let blocks: Vec<*mut u64> = (0..32).map(|i| producer.alloc(i as u64)).collect();
        for b in blocks {
            // SAFETY: the block was allocated by this pool family and is freed exactly once.
            unsafe { producer.free(header_of(b)) };
        }
        assert!(shared.overflow_len() > 0, "producer must have spilled");
        // Consumer starts empty and must refill from the overflow.
        let before = shared.overflow_len();
        let c = consumer.alloc(7u64);
        assert!(
            shared.overflow_len() < before,
            "consumer must refill from the shared overflow"
        );
        // SAFETY: the block was allocated by this pool family and is freed exactly once.
        unsafe { consumer.free(header_of(c)) };
    }

    #[test]
    fn zero_capacity_disables_pooling() {
        let (shared, mut pool) = pool(0, 1);
        let a = pool.alloc(1u64);
        // SAFETY: the block was allocated by this pool family and is freed exactly once.
        unsafe { pool.free(header_of(a)) };
        assert_eq!(pool.cached(), 0);
        assert_eq!(shared.overflow_len(), 0);
    }

    #[test]
    fn destructors_run_exactly_once_under_recycling() {
        struct DropCounter(Arc<AtomicUsize>);
        impl Drop for DropCounter {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let count = Arc::new(AtomicUsize::new(0));
        let (_shared, mut pool) = pool(4, 1);
        const ROUNDS: usize = 100;
        for _ in 0..ROUNDS {
            let p = pool.alloc(DropCounter(count.clone()));
            // SAFETY: the block was allocated by this pool family and is freed exactly once.
            unsafe { pool.free(header_of(p)) };
        }
        assert_eq!(count.load(Ordering::SeqCst), ROUNDS);
    }

    #[test]
    fn free_batch_matches_per_block_free_semantics() {
        struct DropCounter(Arc<AtomicUsize>);
        impl Drop for DropCounter {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let count = Arc::new(AtomicUsize::new(0));
        let (shared, mut pool) = pool(4, 1);
        // Mixed layouts exercise the run cache reset; 32 blocks against
        // capacity 4 exercise the spill and dealloc fallbacks.
        let mut hdrs: Vec<*mut Header> = Vec::new();
        for i in 0..16 {
            let a = pool.alloc(DropCounter(count.clone()));
            let b = pool.alloc([i as u8; 128]);
            // SAFETY: both pointers came straight from `alloc` above and
            // refer to live blocks owned by this test.
            unsafe {
                hdrs.push(header_of(a));
                hdrs.push(header_of(b));
            }
        }
        // SAFETY: every block was allocated above, is unreachable elsewhere,
        // and appears in the batch exactly once.
        unsafe { pool.free_batch(&hdrs) };
        assert_eq!(count.load(Ordering::SeqCst), 16, "every destructor ran");
        assert!(pool.cached() <= pool.capacity());
        assert!(shared.overflow_len() <= 4, "overflow bound respected");
        // Recycled blocks are reusable afterwards.
        let p = pool.alloc(7u64);
        // SAFETY: the block was allocated by this pool family and is freed exactly once.
        unsafe { pool.free(header_of(p)) };
    }

    #[test]
    fn free_batch_with_zero_capacity_deallocates_everything() {
        let (shared, mut pool) = pool(0, 1);
        let hdrs: Vec<*mut Header> = (0..8)
            .map(|i| {
                let p = pool.alloc(i as u64);
                // SAFETY: the pointer came straight from `alloc` and refers
                // to a live block owned by this test.
                unsafe { header_of(p) }
            })
            .collect();
        // SAFETY: every block was allocated above, is unreachable elsewhere,
        // and appears in the batch exactly once.
        unsafe { pool.free_batch(&hdrs) };
        assert_eq!(pool.cached(), 0);
        assert_eq!(shared.overflow_len(), 0);
    }

    #[test]
    fn mixed_layouts_use_separate_bins() {
        let (_shared, mut pool) = pool(8, 1);
        let small = pool.alloc(1u64);
        let big = pool.alloc([0u8; 128]);
        let small_addr = small as usize;
        let big_addr = big as usize;
        // SAFETY: the block was allocated by this pool family and is freed exactly once.
        unsafe {
            pool.free(header_of(small));
            pool.free(header_of(big));
        }
        assert_eq!(pool.cached(), 2);
        // Each type gets back its own layout's memory, never the other's.
        let big2 = pool.alloc([1u8; 128]);
        let small2 = pool.alloc(2u64);
        assert_eq!(big2 as usize, big_addr);
        assert_eq!(small2 as usize, small_addr);
        // SAFETY: the block was allocated by this pool family and is freed exactly once.
        unsafe {
            pool.free(header_of(small2));
            pool.free(header_of(big2));
        }
    }

    #[test]
    fn pool_drop_parks_blocks_in_overflow() {
        let shared = PoolShared::new(4, 2);
        {
            let mut p = BlockPool::new(shared.clone(), 4);
            let blocks: Vec<*mut u64> = (0..4).map(|i| p.alloc(i as u64)).collect();
            for b in blocks {
                // SAFETY: the block was allocated by this pool family and is freed exactly once.
                unsafe { p.free(header_of(b)) };
            }
            assert_eq!(p.cached(), 4);
        }
        assert_eq!(shared.overflow_len(), 4, "handle capacity must survive");
    }

    #[test]
    fn pool_accepts_blocks_allocated_outside_it() {
        // Sweeps free whatever sits in the limbo list, including blocks that
        // were allocated by a different handle or before pooling kicked in.
        let (_shared, mut pool) = pool(4, 1);
        let raw = alloc_block(9u64);
        // SAFETY: `raw` came straight from `alloc_block` and has a valid header; the pool takes ownership.
        unsafe { pool.free(header_of(raw)) };
        assert_eq!(pool.cached(), 1);
        let back = pool.alloc(10u64);
        assert_eq!(back as usize, raw as usize);
        // SAFETY: the block was allocated by this pool family and is freed exactly once.
        unsafe { pool.free(header_of(back)) };
    }

    #[test]
    fn version_stamp_counts_recycling_incarnations() {
        let (_shared, mut pool) = pool(8, 1);
        let a = pool.alloc(1u64);
        // SAFETY: the pointer refers to a live block owned by this test.
        assert_eq!(unsafe { crate::block::version_of(a) }, 0, "fresh block");
        // SAFETY: the block was allocated by this pool family and is freed exactly once.
        unsafe { pool.free(header_of(a)) };
        let b = pool.alloc(2u64);
        assert_eq!(b as usize, a as usize, "must reuse the same memory");
        // SAFETY: the pointer refers to a live block owned by this test.
        assert_eq!(unsafe { crate::block::version_of(b) }, 1);
        // SAFETY: the block was allocated by this pool family and is freed exactly once.
        unsafe { pool.free(header_of(b)) };
        let c = pool.alloc(3u64);
        // SAFETY: the pointer refers to a live block owned by this test.
        assert_eq!(unsafe { crate::block::version_of(c) }, 2);
        // SAFETY: the block was allocated by this pool family and is freed exactly once.
        unsafe { pool.free(header_of(c)) };
    }

    #[test]
    fn version_stamp_survives_the_overflow_tier() {
        let shared = PoolShared::new(8, 4);
        let mut producer = BlockPool::new(shared.clone(), 8);
        let mut consumer = BlockPool::new(shared.clone(), 8);
        // One recycle through the producer gives the block version 1, then
        // its drop parks everything in the shared overflow.
        let a = producer.alloc(1u64);
        // SAFETY: the block was allocated by this pool family and is freed exactly once.
        unsafe { producer.free(header_of(a)) };
        let b = producer.alloc(2u64);
        // SAFETY: the pointer refers to a live block owned by this test.
        assert_eq!(unsafe { crate::block::version_of(b) }, 1);
        // SAFETY: the block was allocated by this pool family and is freed exactly once.
        unsafe { producer.free(header_of(b)) };
        drop(producer);
        // The consumer refills from the overflow; the stamp keeps counting.
        let c = consumer.alloc(3u64);
        assert_eq!(c as usize, b as usize);
        // SAFETY: the pointer refers to a live block owned by this test.
        assert_eq!(unsafe { crate::block::version_of(c) }, 2);
        // SAFETY: the block was allocated by this pool family and is freed exactly once.
        unsafe { consumer.free(header_of(c)) };
    }

    #[test]
    fn sharded_counter_sums_across_shards() {
        let c = ShardedCounter::new(4);
        c.add(0, 10);
        c.add(1, 5);
        c.sub(2, 3); // any-thread freeing: shard goes negative
        assert_eq!(c.sum(), 12);
        c.sub(0, 10);
        c.sub(1, 2);
        assert_eq!(c.sum(), 0);
    }

    #[test]
    fn sharded_counter_clamps_negative_sums() {
        let c = ShardedCounter::new(2);
        c.sub(0, 5);
        assert_eq!(c.sum(), 0);
        c.add(1, 5);
        assert_eq!(c.sum(), 0);
        c.add(1, 7);
        assert_eq!(c.sum(), 7);
    }

    #[test]
    fn concurrent_spill_and_refill_is_safe() {
        let shared = PoolShared::new(16, 8);
        std::thread::scope(|s| {
            for t in 0..4 {
                let shared = shared.clone();
                s.spawn(move || {
                    let mut pool = BlockPool::new(shared, 16);
                    for i in 0..2000u64 {
                        let p = pool.alloc(t as u64 * 1_000_000 + i);
                        // SAFETY: the block was allocated by this pool family and is freed exactly once.
                        unsafe { pool.free(header_of(p)) };
                        if i % 7 == 0 {
                            // Burst of allocations to force refills.
                            let burst: Vec<*mut u64> =
                                (0..8).map(|j| pool.alloc(j as u64)).collect();
                            for b in burst {
                                // SAFETY: the block was allocated by this pool family and is freed exactly once.
                                unsafe { pool.free(header_of(b)) };
                            }
                        }
                    }
                });
            }
        });
        assert!(shared.overflow_len() <= 16 * 8);
    }
}
