//! HE — hazard eras (Ramalhete & Correia 2017).
//!
//! Hazard eras replace the pointer published by a hazard slot with a logical
//! timestamp (an *era*).  Every allocation stamps the object's birth era and
//! every retirement stamps its retire era; a retired object may be reclaimed
//! once no thread holds a reservation era `e` with
//! `birth_era <= e <= retire_era`.
//!
//! The per-slot structure mirrors HP (one reservation per traversal role), so
//! the SCOT data structures use the exact same `protect`/`dup` call sites; the
//! difference is that publishing an era amortizes across every object alive in
//! that era, which removes most of HP's per-pointer memory barriers.
//!
//! The `snapshot_scan` configuration flag selects the same scan optimization
//! as HPopt: collect all reservation eras once per sweep instead of rescanning
//! the global array per retired node (reported as "HE (opt)" style results in
//! the paper's calibration; both variants are exposed for the ablation bench).

use crate::block::{header_of, Retired};
use crate::pool::{BlockPool, PoolShared, ShardedCounter};
use crate::ptr::{Atomic, Shared};
use crate::registry::{PinBinding, SlotClaim, SlotRegistry};
use crate::{Smr, SmrConfig, SmrError, SmrGuard, SmrHandle, SmrKind, MAX_HAZARDS};
use crossbeam_utils::CachePadded;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Reservation value meaning "no era reserved".
const NONE: u64 = 0;
/// First era handed out; birth eras are always `>= FIRST_ERA`, so `NONE` can
/// never be mistaken for a real reservation.
const FIRST_ERA: u64 = 1;

struct HeSlot {
    eras: [AtomicU64; MAX_HAZARDS],
}

/// The hazard-eras domain.
pub struct He {
    config: SmrConfig,
    registry: SlotRegistry,
    global_era: CachePadded<AtomicU64>,
    slots: Box<[CachePadded<HeSlot>]>,
    unreclaimed: ShardedCounter,
    pool: Arc<PoolShared>,
    /// Per-slot retire lists, domain-owned so a dead thread's list is
    /// adoptable (see [`He::adopt_orphans`]).
    vaults: Box<[Mutex<Vec<Retired>>]>,
    orphans: Mutex<Vec<Retired>>,
}

impl Smr for He {
    type Handle = HeHandle;

    fn new(config: SmrConfig) -> Arc<Self> {
        let config = config.validated();
        let slots = (0..config.max_threads)
            .map(|_| {
                CachePadded::new(HeSlot {
                    eras: std::array::from_fn(|_| AtomicU64::new(NONE)),
                })
            })
            .collect();
        Arc::new(Self {
            registry: SlotRegistry::new(config.max_threads),
            global_era: CachePadded::new(AtomicU64::new(FIRST_ERA)),
            slots,
            unreclaimed: ShardedCounter::new(config.max_threads),
            pool: PoolShared::new(config.pool_blocks(), config.max_threads),
            vaults: (0..config.max_threads)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            orphans: Mutex::new(Vec::new()),
            config,
        })
    }

    fn try_register(self: &Arc<Self>) -> Result<HeHandle, SmrError> {
        let claim = self.registry.try_claim().ok_or(SmrError::RegistryFull {
            capacity: self.registry.capacity(),
        })?;
        for e in &self.slots[claim.index].eras {
            // ORDERING: Relaxed — the slot is not yet visible to sweeps (the
            // claim CAS publishes it, and sweeps skip unclaimed slots); real
            // reservations are published with SeqCst in `protect`/`announce`.
            e.store(NONE, Ordering::Relaxed);
        }
        Ok(HeHandle {
            pool: BlockPool::new(self.pool.clone(), self.config.pool_blocks()),
            domain: self.clone(),
            claim,
            binding: PinBinding::new(),
            alloc_count: 0,
            retire_count: 0,
        })
    }

    fn unreclaimed(&self) -> usize {
        self.unreclaimed.sum()
    }

    fn kind(&self) -> SmrKind {
        if self.config.snapshot_scan {
            SmrKind::HeOpt
        } else {
            SmrKind::He
        }
    }
}

impl He {
    /// True if any thread reserves an era inside `[birth, retire]`.
    fn is_protected(&self, birth: u64, retire: u64) -> bool {
        for (i, slot) in self.slots.iter().enumerate() {
            if !self.registry.is_claimed(i) {
                continue;
            }
            for e in &slot.eras {
                let v = e.load(Ordering::SeqCst);
                if v != NONE && birth <= v && v <= retire {
                    return true;
                }
            }
        }
        false
    }

    /// Snapshot of every reserved era, sorted (HEopt sweep).
    fn snapshot(&self) -> Vec<u64> {
        let mut snap = Vec::with_capacity(self.config.max_threads * 2);
        for (i, slot) in self.slots.iter().enumerate() {
            if !self.registry.is_claimed(i) {
                continue;
            }
            for e in &slot.eras {
                let v = e.load(Ordering::SeqCst);
                if v != NONE {
                    snap.push(v);
                }
            }
        }
        snap.sort_unstable();
        snap
    }

    fn sweep(&self, limbo: &mut Vec<Retired>, slot: usize, pool: &mut BlockPool) {
        let mut freed = 0usize;
        if self.config.snapshot_scan {
            let snap = self.snapshot();
            limbo.retain(|r| {
                // Keep the node if some reserved era falls inside its lifetime
                // interval: the first snapshot entry >= birth, if any, decides.
                let birth = r.birth_era();
                let retire = r.retire_era();
                let idx = snap.partition_point(|&e| e < birth);
                let protected = idx < snap.len() && snap[idx] <= retire;
                if protected {
                    true
                } else {
                    // SAFETY: no reserved era falls inside the node's
                    // `[birth, retire]` interval (snapshot taken after the
                    // node was unlinked), so no thread can still hold a
                    // protected reference to it.
                    unsafe { r.free_into(pool) };
                    freed += 1;
                    false
                }
            });
        } else {
            limbo.retain(|r| {
                if self.is_protected(r.birth_era(), r.retire_era()) {
                    true
                } else {
                    // SAFETY: a full SeqCst scan found no reservation inside
                    // the node's lifetime interval, so no thread can still
                    // hold a protected reference to it.
                    unsafe { r.free_into(pool) };
                    freed += 1;
                    false
                }
            });
        }
        if freed > 0 {
            self.unreclaimed.sub(slot, freed);
        }
    }

    fn sweep_vault(&self, vault_idx: usize, counter_slot: usize, pool: &mut BlockPool) {
        let mut vault = self.vaults[vault_idx].lock();
        if !vault.is_empty() {
            self.sweep(&mut vault, counter_slot, pool);
        }
    }

    fn sweep_orphans(&self, slot: usize, pool: &mut BlockPool) {
        if let Some(mut orphans) = self.orphans.try_lock() {
            if !orphans.is_empty() {
                self.sweep(&mut orphans, slot, pool);
            }
        }
    }

    /// Adopts slots abandoned by dead threads: clears the dead thread's era
    /// reservations (sound — the owner can issue no further loads) and drains
    /// its retire vault into the orphan list.
    fn adopt_orphans(&self, my_slot: usize, pool: &mut BlockPool) {
        for i in 0..self.registry.capacity() {
            if i == my_slot {
                continue;
            }
            if let Some(adoption) = self.registry.try_begin_adopt(i) {
                for e in &self.slots[i].eras {
                    e.store(NONE, Ordering::SeqCst);
                }
                let mut vault = self.vaults[i].lock();
                if !vault.is_empty() {
                    self.orphans.lock().append(&mut vault);
                }
                drop(vault);
                adoption.finish();
            }
        }
        self.sweep_orphans(my_slot, pool);
    }
}

impl Drop for He {
    fn drop(&mut self) {
        for vault in self.vaults.iter() {
            for r in vault.lock().drain(..) {
                // SAFETY: dropping the domain means no handle (and hence no
                // guard) exists; no era can be reserved any more.
                unsafe { r.free() };
            }
        }
        let mut orphans = self.orphans.lock();
        for r in orphans.drain(..) {
            // SAFETY: as above — no guards can exist at domain drop.
            unsafe { r.free() };
        }
    }
}

/// Per-thread handle for [`He`].
pub struct HeHandle {
    domain: Arc<He>,
    claim: SlotClaim,
    binding: PinBinding,
    pool: BlockPool,
    alloc_count: usize,
    retire_count: usize,
}

impl SmrHandle for HeHandle {
    type Guard<'g>
        = HeGuard<'g>
    where
        Self: 'g;

    fn pin(&mut self) -> HeGuard<'_> {
        self.domain
            .registry
            .check_owner_and_bind(self.claim, &mut self.binding);
        let repin_era = self.domain.global_era.load(Ordering::SeqCst);
        HeGuard {
            handle: self,
            repin_era,
            _thread_bound: std::marker::PhantomData,
        }
    }

    fn flush(&mut self) {
        let domain = self.domain.clone();
        domain.sweep_vault(self.claim.index, self.claim.index, &mut self.pool);
        domain.adopt_orphans(self.claim.index, &mut self.pool);
    }
}

impl Drop for HeHandle {
    fn drop(&mut self) {
        let domain = self.domain.clone();
        domain.sweep_vault(self.claim.index, self.claim.index, &mut self.pool);
        domain.registry.release_with(self.claim, || {
            for e in &domain.slots[self.claim.index].eras {
                e.store(NONE, Ordering::Release);
            }
            let mut vault = domain.vaults[self.claim.index].lock();
            if !vault.is_empty() {
                domain.orphans.lock().append(&mut vault);
            }
        });
    }
}

/// Critical-section guard for [`He`].
#[must_use = "dropping a guard unpublishes every protection it holds"]
pub struct HeGuard<'g> {
    handle: &'g mut HeHandle,
    /// Makes the guard `!Send`/`!Sync`: a guard is the pinning thread's
    /// read-side critical section, and the slot registry's liveness beacon
    /// tracks exactly that thread (see [`crate::registry`]) -- a guard that
    /// crossed threads could see its protections neutralized when the
    /// pinning thread exits.
    _thread_bound: std::marker::PhantomData<*mut ()>,
    /// Global era observed at pin (or the last non-elided repin).  While the
    /// global era still equals it, every reservation this guard published
    /// names the *current* era, so [`SmrGuard::repin`] can skip the clears.
    repin_era: u64,
}

impl Drop for HeGuard<'_> {
    fn drop(&mut self) {
        // Clearing reservations at the end of every operation is what bounds
        // the set of protected eras (and thus memory) per thread; it is also
        // what makes a panic that unwinds through a traversal drop its
        // protections (RAII unwind safety).
        for e in &self.handle.domain.slots[self.handle.claim.index].eras {
            e.store(NONE, Ordering::Release);
        }
    }
}

impl HeGuard<'_> {
    #[inline]
    fn eras(&self) -> &[AtomicU64; MAX_HAZARDS] {
        &self.handle.domain.slots[self.handle.claim.index].eras
    }
}

impl SmrGuard for HeGuard<'_> {
    #[inline]
    fn domain_addr(&self) -> usize {
        std::sync::Arc::as_ptr(&self.handle.domain) as usize
    }

    #[inline]
    fn protect<T>(&mut self, idx: usize, src: &Atomic<T>) -> Shared<T> {
        let eras = &self.handle.domain.slots[self.handle.claim.index].eras;
        let global = &self.handle.domain.global_era;
        // ORDERING: Relaxed — the slot was last written by this same thread
        // (reservations are single-writer); the value is only an avoid-a-store
        // hint, and any actual (re)publication below uses SeqCst.
        let mut reserved = eras[idx].load(Ordering::Relaxed);
        loop {
            let ptr = src.load(Ordering::Acquire);
            let era = global.load(Ordering::SeqCst);
            if era == reserved {
                return ptr;
            }
            eras[idx].store(era, Ordering::SeqCst);
            reserved = era;
        }
    }

    #[inline]
    fn announce<T>(&mut self, idx: usize, _ptr: Shared<T>) {
        // Protection is temporal: reserving the current era covers every
        // object alive in it, including `_ptr`.
        let era = self.handle.domain.global_era.load(Ordering::SeqCst);
        self.eras()[idx].store(era, Ordering::SeqCst);
    }

    #[inline]
    fn dup(&mut self, from: usize, to: usize) {
        debug_assert!(from < to, "dup must copy a lower slot into a higher slot");
        let eras = self.eras();
        // ORDERING: Relaxed read — `from` was last written by this same
        // thread.  The Release store plus the lower-to-higher slot discipline
        // and ascending-order scans close the publication window, exactly as
        // for HP's `dup` (see the hp module docs).
        let v = eras[from].load(Ordering::Relaxed);
        eras[to].store(v, Ordering::Release);
    }

    #[inline]
    fn clear(&mut self, idx: usize) {
        self.eras()[idx].store(NONE, Ordering::Release);
    }

    fn alloc<T: Send + 'static>(&mut self, value: T) -> Shared<T> {
        let ptr = self.handle.pool.alloc(value);
        // ORDERING: Relaxed on both — a conservatively *old* era makes the
        // birth stamp strictly more protective (it widens the protected
        // interval), and the stamp is published to sweepers through the vault
        // mutex taken at retire time.
        let era = self.handle.domain.global_era.load(Ordering::Relaxed);
        // SAFETY: `ptr` was just allocated and is not yet shared, so this
        // thread has exclusive access to its header.
        // ORDERING: a Relaxed era read can only lag, stamping the birth era conservatively old.
        unsafe { (*header_of(ptr)).birth_era.store(era, Ordering::Relaxed) };
        self.handle.alloc_count += 1;
        if self
            .handle
            .alloc_count
            .is_multiple_of(self.handle.domain.config.epoch_freq())
        {
            self.handle.domain.global_era.fetch_add(1, Ordering::SeqCst);
        }
        Shared::from_ptr(ptr)
    }

    // SAFETY: callers must guarantee `ptr` has been unlinked from every shared location before retiring it.
    unsafe fn retire<T: Send + 'static>(&mut self, ptr: Shared<T>) {
        let value = ptr.untagged().as_ptr();
        debug_assert!(!value.is_null());
        // SAFETY: the caller guarantees `ptr` came from `alloc` on this
        // domain and is already unlinked, so its block header is live.
        let retired = unsafe { Retired::from_value(value) };
        let handle = &mut *self.handle;
        // ORDERING: Relaxed on both — per-location coherence keeps this era
        // read no older than any era this thread already observed, and a
        // conservatively old retire stamp only *narrows* the freeable set;
        // the stamp reaches sweepers through the vault mutex below.
        let era = handle.domain.global_era.load(Ordering::Relaxed);
        // SAFETY: the block is unlinked but not yet in any limbo list; this
        // thread has exclusive access to its header stamp.
        // ORDERING: a lagging retire-era stamp only delays reclamation by one scan; safety is unaffected.
        unsafe { (*retired.hdr).retire_era.store(era, Ordering::Relaxed) };
        let slot = handle.claim.index;
        let pending = {
            let mut vault = handle.domain.vaults[slot].lock();
            vault.push(retired);
            vault.len()
        };
        handle.retire_count += 1;
        handle.domain.unreclaimed.add(slot, 1);
        if handle
            .retire_count
            .is_multiple_of(handle.domain.config.epoch_freq())
        {
            handle.domain.global_era.fetch_add(1, Ordering::SeqCst);
        }
        if pending >= handle.domain.config.scan_threshold {
            let domain = handle.domain.clone();
            domain.sweep_vault(slot, slot, &mut handle.pool);
            domain.adopt_orphans(slot, &mut handle.pool);
        }
    }

    // SAFETY: callers must guarantee `ptr` was never published to other threads.
    unsafe fn dealloc<T>(&mut self, ptr: Shared<T>) {
        // SAFETY: the caller guarantees the pointer was never published, so
        // no other thread has observed the block; pool-freeing it runs the
        // destructor exactly once.
        unsafe { self.handle.pool.free(header_of(ptr.untagged().as_ptr())) };
    }

    /// Releases every era reservation — equivalent to drop + pin without the
    /// registry owner check — unless the global era still equals the one
    /// observed at the last (re)pin.  In that case every published
    /// reservation names the current era, which the next operation would
    /// immediately re-reserve anyway, so holding it is bounded
    /// over-protection and the [`MAX_HAZARDS`] clear-stores are skipped.
    #[inline]
    fn repin(&mut self) {
        let era = self.handle.domain.global_era.load(Ordering::SeqCst);
        if era == self.repin_era {
            return;
        }
        for e in &self.handle.domain.slots[self.handle.claim.index].eras {
            e.store(NONE, Ordering::Release);
        }
        self.repin_era = era;
    }

    // SAFETY: callers must guarantee every pointer in `batch` satisfies the
    // per-node `retire` contract (unlinked, owned, retired exactly once).
    unsafe fn retire_batch<T: Send + 'static>(&mut self, batch: &[Shared<T>]) {
        if batch.is_empty() {
            return;
        }
        let handle = &mut *self.handle;
        // ORDERING: a lagging retire-era stamp only delays reclamation by one
        // scan; safety is unaffected (same argument as single `retire`).
        let era = handle.domain.global_era.load(Ordering::Relaxed);
        let slot = handle.claim.index;
        let pending = {
            let mut vault = handle.domain.vaults[slot].lock();
            vault.reserve(batch.len());
            for &ptr in batch {
                let value = ptr.untagged().as_ptr();
                debug_assert!(!value.is_null());
                // SAFETY: the caller guarantees every element came from
                // `alloc` on this domain and is already unlinked, so each
                // block header is live.
                let retired = unsafe { Retired::from_value(value) };
                // SAFETY: the record was just built from a live block; its
                // header is valid until the record is freed.
                // ORDERING: published to sweepers by the vault mutex.
                unsafe { (*retired.hdr).retire_era.store(era, Ordering::Relaxed) };
                vault.push(retired);
            }
            vault.len()
        };
        handle.domain.unreclaimed.add(slot, batch.len());
        // Preserve the per-retire era cadence across the batch: bump the era
        // once per epoch-frequency multiple the batch crossed.
        let freq = handle.domain.config.epoch_freq();
        let before = handle.retire_count;
        handle.retire_count += batch.len();
        let bumps = (handle.retire_count / freq - before / freq) as u64;
        if bumps > 0 {
            handle.domain.global_era.fetch_add(bumps, Ordering::SeqCst);
        }
        if pending >= handle.domain.config.scan_threshold {
            let domain = handle.domain.clone();
            domain.sweep_vault(slot, slot, &mut handle.pool);
            domain.adopt_orphans(slot, &mut handle.pool);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(snapshot: bool) -> SmrConfig {
        SmrConfig {
            max_threads: 4,
            scan_threshold: 8,
            epoch_freq_per_thread: 1,
            snapshot_scan: snapshot,
            ..SmrConfig::default()
        }
    }

    #[test]
    fn kind_reflects_snapshot_mode() {
        assert_eq!(He::new(config(false)).kind(), SmrKind::He);
        assert_eq!(He::new(config(true)).kind(), SmrKind::HeOpt);
    }

    #[test]
    fn era_reservation_protects_objects_alive_in_it() {
        for snapshot in [false, true] {
            let d = He::new(config(snapshot));
            let mut owner = d.register();
            let mut worker = d.register();

            // Owner reserves the current era while an object born in it is
            // retired by the worker.
            let target = {
                let mut g = owner.pin();
                let p = g.alloc(77u64);
                let cell = Atomic::new(p);
                let seen = g.protect(0, &cell);
                assert_eq!(seen, p);
                // Keep the reservation alive past the guard by re-announcing
                // in a fresh guard below.
                p
            };
            {
                let mut g = owner.pin();
                g.announce(0, target);
                core::mem::forget(g); // simulate a stalled thread holding the reservation
            }
            {
                let mut g = worker.pin();
                // SAFETY: the node was unlinked by this test and is retired exactly once.
                unsafe { g.retire(target) };
            }
            worker.flush();
            assert_eq!(d.unreclaimed(), 1, "snapshot={snapshot}");

            // Clear the stalled reservation; now it can go.
            for e in &d.slots[0].eras {
                e.store(NONE, Ordering::SeqCst);
            }
            worker.flush();
            assert_eq!(d.unreclaimed(), 0, "snapshot={snapshot}");
        }
    }

    #[test]
    fn unrelated_eras_do_not_block_reclamation() {
        let d = He::new(config(true));
        let mut stalled = d.register();
        let mut worker = d.register();
        // Stalled thread reserves an old era.
        {
            let mut g = stalled.pin();
            let p = g.alloc(0u64);
            let cell = Atomic::new(p);
            g.protect(0, &cell);
            core::mem::forget(g);
            // SAFETY: `p` is test-local; the leaked reservation is exactly what this test exercises.
            unsafe {
                let mut g2 = worker.pin();
                g2.retire(p);
            }
        }
        // Advance eras well past the stalled reservation and retire younger
        // nodes: they must all be reclaimable despite the stalled thread.
        for i in 0..512u64 {
            let mut g = worker.pin();
            let p = g.alloc(i);
            // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
            unsafe { g.retire(p) };
        }
        worker.flush();
        assert!(
            d.unreclaimed() < 64,
            "HE must reclaim nodes born after a stalled reservation (got {})",
            d.unreclaimed()
        );
    }

    #[test]
    fn eras_advance_with_allocation_frequency() {
        let d = He::new(config(false));
        let mut h = d.register();
        let before = d.global_era.load(Ordering::SeqCst);
        {
            let mut g = h.pin();
            for i in 0..64u64 {
                let p = g.alloc(i);
                // SAFETY: `p` was never published; dealloc is the owner's fast path.
                unsafe { g.dealloc(p) };
            }
        }
        let after = d.global_era.load(Ordering::SeqCst);
        assert!(
            after > before,
            "era should advance every epoch_freq allocations"
        );
    }

    #[test]
    fn leaked_handle_on_dead_thread_is_adopted() {
        let d = He::new(config(true));
        {
            let d = d.clone();
            std::thread::spawn(move || {
                let mut h = d.register();
                let mut g = h.pin();
                let p = g.alloc(1u64);
                let cell = Atomic::new(p);
                g.protect(0, &cell);
                // SAFETY: `p` is test-local; the published reservation keeps this retire from freeing it.
                unsafe { g.retire(p) };
                // Leak guard + handle: the reservation stays published and
                // the slot stays claimed past thread death.
                std::mem::forget(g);
                std::mem::forget(h);
            })
            .join()
            .unwrap();
        }
        assert_eq!(d.unreclaimed(), 1);
        let mut h = d.register();
        h.flush();
        assert_eq!(
            d.unreclaimed(),
            0,
            "adoption must clear the dead thread's eras and drain its vault"
        );
    }

    #[test]
    fn repin_elides_until_era_moves_then_clears_reservations() {
        let d = He::new(config(false));
        let mut h = d.register();
        let mut g = h.pin();
        let p = g.alloc(1u64);
        let cell = Atomic::new(p);
        g.protect(0, &cell);
        let reserved = d.slots[0].eras[0].load(Ordering::SeqCst);
        assert_ne!(reserved, NONE);
        g.repin();
        assert_eq!(
            d.slots[0].eras[0].load(Ordering::SeqCst),
            reserved,
            "repin with an unmoved era must elide the clears"
        );
        d.global_era.fetch_add(1, Ordering::SeqCst);
        g.repin();
        for e in &d.slots[0].eras {
            assert_eq!(
                e.load(Ordering::SeqCst),
                NONE,
                "repin after an era advance must release every reservation"
            );
        }
        // SAFETY: `p` was never published to another thread.
        unsafe { g.dealloc(p) };
    }

    #[test]
    fn retire_batch_reclaims_like_per_node_retire() {
        for snapshot in [false, true] {
            let d = He::new(config(snapshot));
            let mut h = d.register();
            {
                let mut g = h.pin();
                let batch: Vec<_> = (0..48u64).map(|i| g.alloc(i)).collect();
                // SAFETY: each block was just allocated and never published,
                // so this thread is its sole owner and retires it exactly once.
                unsafe { g.retire_batch(&batch) };
            }
            h.flush();
            assert_eq!(d.unreclaimed(), 0, "snapshot={snapshot}");
        }
    }

    #[test]
    fn guard_drop_clears_reservations() {
        let d = He::new(config(false));
        let mut h = d.register();
        {
            let mut g = h.pin();
            let p = g.alloc(1u64);
            let cell = Atomic::new(p);
            g.protect(0, &cell);
            g.protect(3, &cell);
            // SAFETY: `p` was never shared with another thread; only this guard's own reservations name it.
            unsafe { g.dealloc(p) };
        }
        for e in &d.slots[0].eras {
            assert_eq!(e.load(Ordering::SeqCst), NONE);
        }
    }
}
