//! Hyaline-1S-style reclamation (Nikolaev & Ravindran, PLDI 2021).
//!
//! Hyaline performs reference counting **only during reclamation**: readers
//! pay nothing per pointer access (beyond the birth-era publication shared
//! with IBR/HE), and retired nodes are freed by *whichever thread happens to
//! drop the last reference to their batch* — the "any thread reclaims"
//! property the paper highlights (§2.2.5).
//!
//! This implementation follows the published design at the level the paper
//! describes it:
//!
//! * Threads entering a critical section increment their slot's reference
//!   counter and remember the slot's current retirement-list head (the
//!   *handle*).
//! * Retirement is batched.  A batch is pushed onto the retirement list of
//!   every *active* slot; the number of threads active in those slots at push
//!   time is added to the batch's reference counter.
//! * A thread leaving a critical section traverses its slot's list from the
//!   head observed at leave time down to its handle, decrementing each
//!   traversed batch once.  A batch whose counter reaches zero is freed by
//!   that thread — hence "any thread reclaims".
//! * Robustness (the "-1S" birth-era mechanism): every object records its
//!   birth era and every thread publishes the era it is operating in
//!   (refreshed on `protect`, exactly like IBR's upper bound).  When retiring
//!   a batch, slots whose published era is *older than the batch's minimum
//!   birth era* are skipped: a thread stalled since before any node of the
//!   batch was allocated can never acquire a reference to them (given the
//!   SCOT/Harris-Michael traversal discipline), so it does not need to
//!   acknowledge the batch and cannot delay its reclamation.
//!
//! ## Deviations from the published algorithm
//!
//! * The original Hyaline-1S multiplexes all threads over one global slot and
//!   packs the head's reference counter next to the pointer.  We keep one
//!   slot **per thread** (the multi-slot layout of the original Hyaline
//!   family), which needs no double-word atomics: the packed
//!   `{refs:16, ptr:48}` head fits a single `AtomicU64` on x86-64/Linux.
//! * The leave-time acknowledgement traversal terminates at the head
//!   **address** observed on entry (returned atomically by the enter
//!   `fetch_add`), exactly like the published algorithm's handle.  The
//!   boundary node itself is never dereferenced — it was pushed before this
//!   thread entered, so its batch never counted this thread and may already
//!   be freed and its block recycled through the pool; reading any of its
//!   fields would race with reuse.  Every node *above* the boundary was
//!   pushed while this thread's reference was visible (the push CAS cannot
//!   succeed across a concurrent enter), so those nodes are pinned until
//!   acknowledged and are safe to walk.  The residual address-ABA (the exact
//!   boundary block freed, recycled, and re-pushed onto the *same* slot
//!   within one critical section) stops the traversal early; the skipped
//!   batches keep one reference forever and are **leaked permanently** (no
//!   later traversal covers them) — never freed early, so memory safety is
//!   unaffected.  The window is one critical section and requires the exact
//!   boundary address to cycle through free → pool → alloc → retire → push
//!   onto the same slot inside it, the same accepted-risk class as the
//!   handle ABA of the published algorithm.
//! * Orphaned slots (owner thread died without releasing): the accumulating
//!   batch lives in a domain-owned vault so a survivor can adopt and retire
//!   it.  If the owner died *outside* a critical section (`refs == 0`) the
//!   slot is fully recycled.  If it died *inside* one its acknowledgement
//!   boundary is unknowable — decrementing its list on its behalf could
//!   double-acknowledge batches pushed before it entered — so the slot is
//!   [poisoned](crate::registry::AdoptGuard::poison): excluded from all
//!   future pushes (stopping the leak from growing) but never recycled, and
//!   the batches already pinned by its list are leaked permanently.

use crate::block::{header_of, Header};
use crate::pool::{BlockPool, PoolShared, ShardedCounter};
use crate::ptr::{Atomic, Shared};
use crate::registry::{PinBinding, SlotClaim, SlotRegistry};
use crate::{Smr, SmrConfig, SmrError, SmrGuard, SmrHandle, SmrKind};
use crossbeam_utils::CachePadded;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// First era handed out.
const FIRST_ERA: u64 = 1;

/// Number of low bits of the packed slot head used for the pointer.
/// x86-64 / AArch64 Linux user-space addresses fit in 48 bits.
const PTR_BITS: u32 = 48;
const PTR_MASK: u64 = (1 << PTR_BITS) - 1;
/// One reference, in packed-head units.
const REF_ONE: u64 = 1 << PTR_BITS;

#[inline]
fn pack(refs: u64, ptr: usize) -> u64 {
    debug_assert!(ptr as u64 <= PTR_MASK, "pointer does not fit in 48 bits");
    (refs << PTR_BITS) | (ptr as u64 & PTR_MASK)
}

#[inline]
fn unpack(word: u64) -> (u64, usize) {
    (word >> PTR_BITS, (word & PTR_MASK) as usize)
}

struct HySlot {
    /// Packed `{refs, head-pointer}` of the slot's retirement list.
    head: AtomicU64,
    /// Era published by the slot's owner, refreshed on every protect.
    era: AtomicU64,
}

/// A slot's accumulating (not yet pushed) retirement batch, domain-owned so a
/// dead thread's batch is adoptable.
struct HyBatch {
    nodes: Vec<*mut Header>,
    min_birth: u64,
}

impl HyBatch {
    fn new() -> Self {
        Self {
            nodes: Vec::new(),
            min_birth: u64::MAX,
        }
    }
}

// SAFETY: the raw header pointers are retired nodes owned exclusively by the
// batch; any thread may flush them (the "any thread reclaims" property), and
// handoff between threads is mediated by the vault mutex.
unsafe impl Send for HyBatch {}

/// The Hyaline-1S-style reclamation domain.
pub struct Hyaline {
    config: SmrConfig,
    registry: SlotRegistry,
    global_era: CachePadded<AtomicU64>,
    slots: Box<[CachePadded<HySlot>]>,
    /// Per-slot accumulating batches (see [`HyBatch`]).
    vaults: Box<[Mutex<HyBatch>]>,
    unreclaimed: ShardedCounter,
    pool: Arc<PoolShared>,
    /// Batch size: enough nodes so that one node can be pushed to every slot
    /// plus the REFS node that carries the counter.
    batch_capacity: usize,
}

impl Smr for Hyaline {
    type Handle = HyalineHandle;

    fn new(config: SmrConfig) -> Arc<Self> {
        let config = config.validated();
        let slots = (0..config.max_threads)
            .map(|_| {
                CachePadded::new(HySlot {
                    head: AtomicU64::new(0),
                    era: AtomicU64::new(0),
                })
            })
            .collect();
        Arc::new(Self {
            registry: SlotRegistry::new(config.max_threads),
            global_era: CachePadded::new(AtomicU64::new(FIRST_ERA)),
            slots,
            vaults: (0..config.max_threads)
                .map(|_| Mutex::new(HyBatch::new()))
                .collect(),
            unreclaimed: ShardedCounter::new(config.max_threads),
            pool: PoolShared::new(config.pool_blocks(), config.max_threads),
            batch_capacity: config.max_threads + 1,
            config,
        })
    }

    fn try_register(self: &Arc<Self>) -> Result<HyalineHandle, SmrError> {
        let claim = self.registry.try_claim().ok_or(SmrError::RegistryFull {
            capacity: self.registry.capacity(),
        })?;
        // ORDERING: Relaxed is enough — the slot is not yet visible to
        // retirers (the claim above publishes it, and `is_claimed` readers
        // synchronize through the registry), so nobody can observe these
        // resets out of order.
        self.slots[claim.index].head.store(0, Ordering::Relaxed);
        // ORDERING: same as the head reset above -- the slot is unclaimed, so this races with nothing.
        self.slots[claim.index].era.store(0, Ordering::Relaxed);
        Ok(HyalineHandle {
            pool: BlockPool::new(self.pool.clone(), self.config.pool_blocks()),
            domain: self.clone(),
            claim,
            binding: PinBinding::new(),
            alloc_count: 0,
        })
    }

    fn unreclaimed(&self) -> usize {
        self.unreclaimed.sum()
    }

    fn kind(&self) -> SmrKind {
        SmrKind::Hyaline
    }
}

impl Hyaline {
    /// Frees every node of the batch whose REFS node is `refs_node`, recycling
    /// the blocks into the freeing thread's `pool` and debiting its shard
    /// (`slot`) — under any-thread freeing the debited shard is often not the
    /// one that was credited at retire time; only the sum is meaningful.
    ///
    /// # Safety
    /// The batch's reference counter must have reached zero, i.e. every thread
    /// that was required to acknowledge the batch has done so.
    unsafe fn free_batch(&self, refs_node: *mut Header, slot: usize, pool: &mut BlockPool) {
        let mut freed = 0usize;
        let mut cur = refs_node;
        while !cur.is_null() {
            // SAFETY: the counter reached zero, so this thread is the batch's
            // sole owner; every node is live until freed below.
            // ORDERING: Relaxed suffices for `batch_all` — the links were
            // written before the REFS counter was published with Release, and
            // the zero-reaching fetch_sub(AcqRel) ordered us after that.
            let next = unsafe { (*cur).batch_all.load(Ordering::Relaxed) } as *mut Header;
            // SAFETY: sole ownership as above — each node is unlinked from
            // every slot list (all acknowledgements arrived) and freed once.
            unsafe { pool.free(cur) };
            freed += 1;
            cur = next;
        }
        self.unreclaimed.sub(slot, freed);
    }

    /// Acknowledges (decrements) every batch whose node was pushed onto the
    /// slot's list after the calling thread entered its critical section,
    /// freeing batches that drop to zero.
    ///
    /// `from` is the slot head observed while leaving; `entry_addr` is the
    /// head address at enter time (from the enter `fetch_add`).  Every node
    /// above `entry_addr` was pushed while this thread's reference was
    /// visible and therefore counted it; the boundary node itself did not,
    /// and is never dereferenced (its batch may already be freed and the
    /// block recycled — see the module docs).
    ///
    /// # Safety
    /// The calling thread must have held its slot reference continuously
    /// between observing `entry_addr` and observing `from`, so every node
    /// above the boundary counted it at push time and stays alive until the
    /// decrement below.
    unsafe fn acknowledge(
        &self,
        from: usize,
        entry_addr: usize,
        slot: usize,
        pool: &mut BlockPool,
    ) {
        let mut cur = from;
        while cur != 0 && cur != entry_addr {
            let hdr = cur as *mut Header;
            // Read the link before decrementing: once we decrement, another
            // thread may free the batch (and with it this node).
            // SAFETY: `hdr` is above the acknowledgement boundary, so its
            // batch counted this thread's reference at push time and cannot
            // be freed before the decrement below.
            let next = unsafe { (*hdr).next.load(Ordering::Acquire) };
            // SAFETY: as above — the node is pinned by our uncollected
            // reference, and `batch_link` was written before the push.
            let refs_node = unsafe { (*hdr).batch_link.load(Ordering::Acquire) } as *mut Header;
            // SAFETY: the REFS node belongs to the same pinned batch.
            if unsafe { (*refs_node).refs.fetch_sub(1, Ordering::AcqRel) } == 1 {
                // SAFETY: our fetch_sub observed 1, so we dropped the last
                // reference — exactly `free_batch`'s contract.
                unsafe { self.free_batch(refs_node, slot, pool) };
            }
            cur = next;
        }
    }

    /// Pushes a fully-formed batch to every active, non-exempt slot and drops
    /// the retirer's own reference.  `nodes[0]` is the REFS node and is never
    /// pushed; the remaining nodes provide the per-slot list linkage.
    // SAFETY: callers must pass fully-initialized retired nodes that no other thread can still reach, plus a held REFS count.
    unsafe fn retire_batch(
        &self,
        nodes: &[*mut Header],
        min_birth: u64,
        slot: usize,
        pool: &mut BlockPool,
    ) {
        debug_assert!(!nodes.is_empty());
        let refs_node = nodes[0];

        // Thread the whole batch through `batch_all` so the last acker can
        // free every node, and point every node at the REFS node.
        // SAFETY (all header writes below): every node is a retired block the
        // retirer exclusively owns until the push CAS publishes it; no other
        // thread can reach these headers yet.
        // ORDERING: the Relaxed link stores are published to ackers by the
        // Release store of `refs` below (and the AcqRel push CAS); ackers
        // read them only after acquiring the same locations.
        for w in nodes.windows(2) {
            // SAFETY: / ORDERING: covered by the batch-threading comment above this loop.
            unsafe { (*w[0]).batch_all.store(w[1] as usize, Ordering::Relaxed) };
        }
        // SAFETY: / ORDERING: covered by the batch-threading comment above this loop.
        unsafe {
            (*nodes[nodes.len() - 1])
                .batch_all
                .store(0, Ordering::Relaxed);
        }
        for &n in nodes {
            // SAFETY: / ORDERING: covered by the batch-threading comment above this loop.
            unsafe { (*n).batch_link.store(refs_node as usize, Ordering::Relaxed) };
        }
        // The retirer holds one reference for the duration of the push phase
        // so concurrent acknowledgements cannot free the batch under it.
        // SAFETY: the REFS node is still unpublished (see above).
        unsafe { (*refs_node).refs.store(1, Ordering::Release) };

        let mut spare = nodes[1..].iter().copied();
        for (i, slot) in self.slots.iter().enumerate() {
            if !self.registry.is_claimed(i) {
                continue;
            }
            // Robustness: a thread whose published era predates every node in
            // the batch can never have obtained a reference to any of them
            // (given the SCOT / Harris-Michael traversal discipline), so it
            // need not acknowledge the batch.
            let slot_era = slot.era.load(Ordering::SeqCst);
            if slot_era < min_birth {
                continue;
            }
            let Some(node) = spare.next() else {
                // Batches always carry `max_threads` linkage nodes (full
                // batches by construction, flushed batches by padding), so the
                // supply cannot run out while at most `max_threads` slots are
                // registered.  If it ever did, keeping the batch alive forever
                // is the only safe fallback: pin it with a permanent reference
                // rather than skip an active slot that may still acknowledge.
                debug_assert!(false, "hyaline batch ran out of linkage nodes");
                // SAFETY: the retirer's bias reference (set above) keeps the
                // REFS node alive throughout the push phase.
                unsafe {
                    (*refs_node)
                        .refs
                        .fetch_add(isize::MAX / 2, Ordering::AcqRel);
                }
                break;
            };
            loop {
                let cur = slot.head.load(Ordering::Acquire);
                let (refs, head_ptr) = unpack(cur);
                if refs == 0 {
                    // Nobody is inside a critical section on this slot: it
                    // cannot hold references to the batch.
                    break;
                }
                // SAFETY: `node` is unpublished until the CAS below succeeds.
                // ORDERING: the Relaxed `next` store is published by the
                // AcqRel CAS that installs the node.
                unsafe { (*node).next.store(head_ptr, Ordering::Relaxed) };
                // Count the threads that will acknowledge this node *before*
                // publishing it, so the counter can never be observed too low.
                // SAFETY: the retirer's bias reference keeps the REFS node
                // alive during the push phase.
                unsafe { (*refs_node).refs.fetch_add(refs as isize, Ordering::AcqRel) };
                let new = pack(refs, node as usize);
                if slot
                    .head
                    .compare_exchange(cur, new, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    break;
                }
                // Undo the optimistic count and retry with the fresh head.
                // SAFETY: bias reference still held — see above.
                unsafe { (*refs_node).refs.fetch_sub(refs as isize, Ordering::AcqRel) };
            }
        }

        // Drop the retirer's bias reference; if nothing else holds the batch
        // (no active slots, or every acknowledgement already arrived), free it.
        // SAFETY: the bias reference dropped here is the one taken above, so
        // the REFS node is alive up to this fetch_sub.
        if unsafe { (*refs_node).refs.fetch_sub(1, Ordering::AcqRel) } == 1 {
            // SAFETY: observed 1 → ours was the last reference, which is
            // `free_batch`'s contract.
            unsafe { self.free_batch(refs_node, slot, pool) };
        }
    }

    /// Pushes slot `vault_idx`'s accumulated batch to the active slots,
    /// padding it with dummy blocks up to the full linkage capacity.  Frees
    /// and padding are charged to `counter_slot`.
    fn flush_vault(&self, vault_idx: usize, counter_slot: usize, pool: &mut BlockPool) {
        let (mut nodes, min_birth) = {
            let mut vault = self.vaults[vault_idx].lock();
            if vault.nodes.is_empty() {
                return;
            }
            (
                std::mem::take(&mut vault.nodes),
                std::mem::replace(&mut vault.min_birth, u64::MAX),
            )
        };
        // A batch needs one linkage node per active slot plus the REFS node.
        // Pad undersized batches (possible at flush/drop/adoption time) with
        // freshly allocated dummy blocks.
        while nodes.len() < self.batch_capacity {
            let dummy = pool.alloc(());
            // SAFETY: `dummy` was just allocated and never published; its
            // header is exclusively ours.
            // ORDERING: a Relaxed era read only lags the true era, stamping
            // the dummy conservatively old — it can only make the batch's
            // `min_birth` smaller, i.e. more conservative.
            unsafe {
                let hdr = header_of(dummy);
                (*hdr)
                    .birth_era
                    // ORDERING: see the comment above this unsafe block.
                    .store(self.global_era.load(Ordering::Relaxed), Ordering::Relaxed);
                nodes.push(hdr);
            }
            self.unreclaimed.add(counter_slot, 1);
        }
        // SAFETY: every node is a retired (or fresh dummy) block owned by
        // this batch, threaded and padded to full linkage capacity above.
        unsafe { self.retire_batch(&nodes, min_birth, counter_slot, pool) };
    }

    /// Adopts slots abandoned by dead threads.  A dead slot's `refs` counter
    /// is frozen (only its owner could pin): `refs == 0` means the owner died
    /// outside any critical section, so its accumulated batch is flushed and
    /// the slot recycled; `refs > 0` means it died *inside* one, its
    /// acknowledgement boundary is unknowable, and the slot is poisoned (see
    /// the module docs) before its batch is flushed.
    fn adopt_orphans(&self, my_slot: usize, pool: &mut BlockPool) {
        for i in 0..self.registry.capacity() {
            if i == my_slot {
                continue;
            }
            if let Some(adoption) = self.registry.try_begin_adopt(i) {
                let (refs, _) = unpack(self.slots[i].head.load(Ordering::SeqCst));
                if refs == 0 {
                    // Flush before recycling so a new claimant cannot race us
                    // for the vault; pushes skip the dead slot itself because
                    // its refs count is zero.
                    self.flush_vault(i, my_slot, pool);
                    adoption.finish();
                } else {
                    // Poison first: once the slot stops being `is_claimed`,
                    // the flush below (and all future pushes) exclude it, so
                    // the leak stops growing.
                    adoption.poison();
                    self.flush_vault(i, my_slot, pool);
                }
            }
        }
    }
}

impl Drop for Hyaline {
    fn drop(&mut self) {
        // All handles are gone, so every *flushed* batch has been freed by
        // its last acknowledger or retirer.  What can remain are the vaults
        // of orphaned slots no survivor adopted: free their nodes directly
        // (they were never pushed, so nothing else references them).  Batches
        // pinned by a poisoned slot's list stay leaked — see the module docs.
        let mut pool = BlockPool::new(self.pool.clone(), 0);
        for (i, vault) in self.vaults.iter().enumerate() {
            let mut vault = vault.lock();
            let n = vault.nodes.len();
            for hdr in vault.nodes.drain(..) {
                // SAFETY: `&mut self` proves all handles are gone; vault
                // nodes were never pushed, so nothing else references them.
                unsafe { pool.free(hdr) };
            }
            self.unreclaimed.sub(i, n);
        }
    }
}

/// Per-thread handle for [`Hyaline`].
pub struct HyalineHandle {
    domain: Arc<Hyaline>,
    claim: SlotClaim,
    binding: PinBinding,
    pool: BlockPool,
    alloc_count: usize,
}

impl SmrHandle for HyalineHandle {
    type Guard<'g>
        = HyalineGuard<'g>
    where
        Self: 'g;

    fn pin(&mut self) -> HyalineGuard<'_> {
        self.domain
            .registry
            .check_owner_and_bind(self.claim, &mut self.binding);
        let slot = &self.domain.slots[self.claim.index];
        let era = self.domain.global_era.load(Ordering::SeqCst);
        slot.era.store(era, Ordering::SeqCst);
        // Enter: bump the slot's reference count.  The fetch_add returns the
        // packed head at exactly the enter instant — its pointer half is the
        // acknowledgement boundary: every node pushed above it counted us.
        let prev = slot.head.fetch_add(REF_ONE, Ordering::AcqRel);
        let (_, entry_addr) = unpack(prev);
        HyalineGuard {
            handle: self,
            entry_addr,
            cached_era: era,
            _thread_bound: std::marker::PhantomData,
        }
    }

    fn flush(&mut self) {
        let idx = self.claim.index;
        let domain = self.domain.clone();
        domain.flush_vault(idx, idx, &mut self.pool);
        domain.adopt_orphans(idx, &mut self.pool);
    }
}

impl Drop for HyalineHandle {
    fn drop(&mut self) {
        let domain = self.domain.clone();
        let claim = self.claim;
        let pool = &mut self.pool;
        domain.registry.release_with(claim, || {
            domain.flush_vault(claim.index, claim.index, pool);
        });
    }
}

/// Critical-section guard for [`Hyaline`].
#[must_use = "dropping a guard unpublishes every protection it holds"]
pub struct HyalineGuard<'g> {
    handle: &'g mut HyalineHandle,
    /// Makes the guard `!Send`/`!Sync`: a guard is the pinning thread's
    /// read-side critical section, and the slot registry's liveness beacon
    /// tracks exactly that thread (see [`crate::registry`]) -- a guard that
    /// crossed threads could see its protections neutralized when the
    /// pinning thread exits.
    _thread_bound: std::marker::PhantomData<*mut ()>,
    /// Slot-list head address observed atomically when entering; the
    /// traversal boundary for leave-time acknowledgements.
    entry_addr: usize,
    cached_era: u64,
}

impl Drop for HyalineGuard<'_> {
    fn drop(&mut self) {
        // Runs on unwind too: a panicking operation still drops its slot
        // reference and acknowledges the batches pushed during its critical
        // section (RAII unwind safety).
        let domain = &self.handle.domain;
        let slot = &domain.slots[self.handle.claim.index];
        // Leave: drop our reference.  If we are the last thread in the slot we
        // also detach the list so the next entrant starts from a clean head.
        let observed = loop {
            let cur = slot.head.load(Ordering::Acquire);
            let (refs, ptr) = unpack(cur);
            debug_assert!(refs >= 1, "leave without matching enter");
            let new = if refs == 1 {
                pack(0, 0)
            } else {
                pack(refs - 1, ptr)
            };
            if slot
                .head
                .compare_exchange(cur, new, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break ptr;
            }
        };
        // Acknowledge every batch pushed during our critical section.
        let domain = self.handle.domain.clone();
        // SAFETY: this thread held its slot reference continuously from the
        // enter `fetch_add` (which returned `entry_addr`) until the CAS above
        // that released it and returned `observed` — exactly `acknowledge`'s
        // contract.
        unsafe {
            domain.acknowledge(
                observed,
                self.entry_addr,
                self.handle.claim.index,
                &mut self.handle.pool,
            )
        };
    }
}

impl SmrGuard for HyalineGuard<'_> {
    #[inline]
    fn domain_addr(&self) -> usize {
        std::sync::Arc::as_ptr(&self.handle.domain) as usize
    }

    #[inline]
    fn protect<T>(&mut self, _idx: usize, src: &Atomic<T>) -> Shared<T> {
        // Same publication protocol as IBR's upper bound: the era is published
        // before the pointer that is returned is (re-)read, so any returned
        // pointer's birth era is covered by the published era.
        let slot = &self.handle.domain.slots[self.handle.claim.index];
        let global = &self.handle.domain.global_era;
        loop {
            let ptr = src.load(Ordering::Acquire);
            let era = global.load(Ordering::SeqCst);
            if era == self.cached_era {
                return ptr;
            }
            slot.era.store(era, Ordering::SeqCst);
            self.cached_era = era;
        }
    }

    #[inline]
    fn announce<T>(&mut self, _idx: usize, _ptr: Shared<T>) {
        let slot = &self.handle.domain.slots[self.handle.claim.index];
        let era = self.handle.domain.global_era.load(Ordering::SeqCst);
        slot.era.store(era, Ordering::SeqCst);
        self.cached_era = era;
    }

    #[inline]
    fn dup(&mut self, _from: usize, _to: usize) {}

    #[inline]
    fn clear(&mut self, _idx: usize) {}

    fn alloc<T: Send + 'static>(&mut self, value: T) -> Shared<T> {
        let ptr = self.handle.pool.alloc(value);
        // ORDERING: a Relaxed era read can only lag the true era, making the
        // birth stamp conservatively old — strictly more protective for the
        // `-1S` stalled-reader exemption.  The Relaxed store is published to
        // retirers by the vault mutex taken at retire time.
        let era = self.handle.domain.global_era.load(Ordering::Relaxed);
        // SAFETY: `ptr` was just produced by `pool.alloc`; its header is live
        // and exclusively ours until the pointer is published.
        // ORDERING: see the era comment just above.
        unsafe { (*header_of(ptr)).birth_era.store(era, Ordering::Relaxed) };
        self.handle.alloc_count += 1;
        if self
            .handle
            .alloc_count
            .is_multiple_of(self.handle.domain.config.epoch_freq())
        {
            self.handle.domain.global_era.fetch_add(1, Ordering::SeqCst);
        }
        Shared::from_ptr(ptr)
    }

    // SAFETY: callers must guarantee `ptr` has been unlinked from every shared location before retiring it.
    unsafe fn retire<T: Send + 'static>(&mut self, ptr: Shared<T>) {
        let value = ptr.untagged().as_ptr();
        debug_assert!(!value.is_null());
        // SAFETY: the caller guarantees `ptr` came from `alloc` on this
        // domain, is unlinked, and is retired exactly once — so the block is
        // live and its header valid.
        let hdr = unsafe { header_of(value) };
        // SAFETY: header valid as above.
        // ORDERING: Relaxed read — the stamp was written before the pointer
        // was published, and unlink + retire on this thread ordered us after
        // any concurrent refresh; the value only feeds the conservative
        // `min_birth` minimum.
        let birth = unsafe { (*hdr).birth_era.load(Ordering::Relaxed) };
        let handle = &mut *self.handle;
        let idx = handle.claim.index;
        let full = {
            let mut vault = handle.domain.vaults[idx].lock();
            vault.min_birth = vault.min_birth.min(birth);
            vault.nodes.push(hdr);
            vault.nodes.len() >= handle.domain.batch_capacity
        };
        handle.domain.unreclaimed.add(idx, 1);
        if full {
            let domain = handle.domain.clone();
            domain.flush_vault(idx, idx, &mut handle.pool);
        }
    }

    // SAFETY: callers must guarantee `ptr` was never published to other threads.
    unsafe fn dealloc<T>(&mut self, ptr: Shared<T>) {
        // SAFETY: the caller guarantees the pointer was never published, so
        // no other thread has observed the block; pool-freeing it runs the
        // destructor exactly once.
        unsafe { self.handle.pool.free(header_of(ptr.untagged().as_ptr())) };
    }

    /// Fast path: if nothing was pushed onto our slot list since entry (the
    /// head pointer still equals the entry boundary), there is no batch to
    /// acknowledge and the held reference can simply carry over — the whole
    /// leave/re-enter round trip is elided.  (A recycled block landing back
    /// at the exact boundary address would also elide; that is the same
    /// accepted address-ABA class as the leave traversal's boundary, see the
    /// module docs — batches are never freed early.)  Otherwise this is a
    /// genuine leave + re-enter, minus the registry owner re-check.
    fn repin(&mut self) {
        let idx = self.handle.claim.index;
        let domain = self.handle.domain.clone();
        let slot = &domain.slots[idx];
        let (_, head_ptr) = unpack(slot.head.load(Ordering::Acquire));
        if head_ptr == self.entry_addr {
            return;
        }
        // Leave: drop our reference, detaching the list if we are last.
        let observed = loop {
            let cur = slot.head.load(Ordering::Acquire);
            let (refs, ptr) = unpack(cur);
            debug_assert!(refs >= 1, "repin leave without matching enter");
            let new = if refs == 1 {
                pack(0, 0)
            } else {
                pack(refs - 1, ptr)
            };
            if slot
                .head
                .compare_exchange(cur, new, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break ptr;
            }
        };
        // SAFETY: this thread held its slot reference continuously from the
        // enter `fetch_add` that produced `entry_addr` until the CAS above
        // that released it and returned `observed` — exactly `acknowledge`'s
        // contract.
        unsafe { domain.acknowledge(observed, self.entry_addr, idx, &mut self.handle.pool) };
        // Re-enter with a fresh era and acknowledgement boundary.
        let era = domain.global_era.load(Ordering::SeqCst);
        slot.era.store(era, Ordering::SeqCst);
        self.cached_era = era;
        let prev = slot.head.fetch_add(REF_ONE, Ordering::AcqRel);
        let (_, entry_addr) = unpack(prev);
        self.entry_addr = entry_addr;
    }

    // SAFETY: callers must guarantee every pointer in `batch` satisfies the
    // per-node `retire` contract (unlinked, owned, retired exactly once).
    unsafe fn retire_batch<T: Send + 'static>(&mut self, batch: &[Shared<T>]) {
        if batch.is_empty() {
            return;
        }
        let handle = &mut *self.handle;
        let idx = handle.claim.index;
        let full = {
            let mut vault = handle.domain.vaults[idx].lock();
            vault.nodes.reserve(batch.len());
            for &ptr in batch {
                let value = ptr.untagged().as_ptr();
                debug_assert!(!value.is_null());
                // SAFETY: the caller guarantees every element came from
                // `alloc` on this domain and is already unlinked, so each
                // block header is live.
                let hdr = unsafe { header_of(value) };
                // SAFETY: header valid as above.
                // ORDERING: Relaxed read — the stamp was written before the
                // pointer was published; it only feeds the conservative
                // `min_birth` minimum (same argument as single `retire`).
                let birth = unsafe { (*hdr).birth_era.load(Ordering::Relaxed) };
                vault.min_birth = vault.min_birth.min(birth);
                vault.nodes.push(hdr);
            }
            vault.nodes.len() >= handle.domain.batch_capacity
        };
        handle.domain.unreclaimed.add(idx, batch.len());
        if full {
            // One oversized push is fine: the batch carries *at least* one
            // linkage node per slot, and the vault mutex was touched once for
            // the whole batch instead of once per node.
            let domain = handle.domain.clone();
            domain.flush_vault(idx, idx, &mut handle.pool);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SmrConfig {
        SmrConfig {
            max_threads: 4,
            scan_threshold: 8,
            epoch_freq_per_thread: 1,
            snapshot_scan: false,
            ..SmrConfig::default()
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let ptr = 0x0000_7fff_dead_beef_usize & (PTR_MASK as usize) & !0x7;
        let word = pack(3, ptr);
        assert_eq!(unpack(word), (3, ptr));
        assert_eq!(unpack(pack(0, 0)), (0, 0));
    }

    #[test]
    fn quiescent_retire_frees_immediately_on_batch_boundary() {
        let d = Hyaline::new(config());
        let mut h = d.register();
        // batch_capacity = max_threads + 1 = 5; retire 10 nodes with no other
        // thread inside a critical section -> both batches freed immediately.
        for i in 0..10u64 {
            let mut g = h.pin();
            let p = g.alloc(i);
            // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
            unsafe { g.retire(p) };
        }
        drop(h);
        assert_eq!(d.unreclaimed(), 0);
    }

    #[test]
    fn active_reader_defers_reclamation_until_it_leaves() {
        let d = Hyaline::new(config());
        let mut reader = d.register();
        let mut worker = d.register();

        let cell = {
            let mut g = worker.pin();
            Atomic::new(g.alloc(1u64))
        };

        // Reader enters and protects the node, then stalls (guard kept alive).
        let mut reader_guard = reader.pin();
        let seen = reader_guard.protect(0, &cell);
        assert!(!seen.is_null());

        // Worker retires the node plus enough filler to flush a full batch.
        {
            let mut g = worker.pin();
            // SAFETY: the node was unlinked by this test and is retired exactly once.
            unsafe { g.retire(seen) };
            for i in 0..16u64 {
                let p = g.alloc(i);
                // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
                unsafe { g.retire(p) };
            }
        }
        worker.flush();
        assert!(
            d.unreclaimed() > 0,
            "batches containing the protected node must survive while the reader is active"
        );

        // Reader leaves: it acknowledges the batches pushed during its
        // critical section, and as the last holder it frees them.
        drop(reader_guard);
        drop(reader);
        drop(worker);
        assert_eq!(d.unreclaimed(), 0);
    }

    #[test]
    fn stalled_thread_does_not_block_young_batches() {
        // Robustness: a reader stalled since era E must not delay batches all
        // of whose nodes were born after E.
        let d = Hyaline::new(config());
        let mut stalled = d.register();
        let mut worker = d.register();

        let stalled_guard = stalled.pin();

        // Let eras advance, then retire nodes born well after the stall point.
        for i in 0..64u64 {
            let mut g = worker.pin();
            let p = g.alloc(i);
            // SAFETY: `p` was never published; dealloc is the owner's fast path.
            unsafe { g.dealloc(p) };
        }
        let before = d.unreclaimed();
        for i in 0..64u64 {
            let mut g = worker.pin();
            let p = g.alloc(i);
            // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
            unsafe { g.retire(p) };
        }
        worker.flush();
        // Some tail below one batch may remain locally, but full batches of
        // young nodes must have been reclaimed despite the stalled reader.
        assert!(
            d.unreclaimed() < before + 16,
            "young batches should bypass the stalled reader (got {})",
            d.unreclaimed()
        );
        drop(stalled_guard);
    }

    #[test]
    fn repin_elides_on_untouched_list_and_acknowledges_otherwise() {
        let d = Hyaline::new(config());
        let mut holder = d.register();
        let mut worker = d.register();

        let mut g = holder.pin();
        let entry_before = g.entry_addr;
        // Nothing pushed onto our slot yet: repin must keep the boundary.
        g.repin();
        assert_eq!(g.entry_addr, entry_before, "untouched list elides repin");
        let (refs, _) = unpack(d.slots[0].head.load(Ordering::SeqCst));
        assert_eq!(refs, 1, "the elided repin must keep the reference held");

        // Worker churn pushes batches onto every active slot — ours included.
        for i in 0..16u64 {
            let mut wg = worker.pin();
            let p = wg.alloc(i);
            // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
            unsafe { wg.retire(p) };
        }
        worker.flush();
        let pinned = d.unreclaimed();
        assert!(pinned > 0, "batches must be pinned by the held guard");

        // Repin now acknowledges everything pushed during the old critical
        // section: as the last holder the guard frees the pinned batches.
        g.repin();
        worker.flush();
        assert!(
            d.unreclaimed() < pinned,
            "repin must acknowledge and release pinned batches (got {} of {})",
            d.unreclaimed(),
            pinned
        );
        drop(g);
        drop(worker);
        drop(holder);
        assert_eq!(d.unreclaimed(), 0);
    }

    #[test]
    fn retire_batch_reclaims_like_per_node_retire() {
        let d = Hyaline::new(config());
        let mut h = d.register();
        {
            let mut g = h.pin();
            let batch: Vec<_> = (0..10u64).map(|i| g.alloc(i)).collect();
            // SAFETY: each block was just allocated and never published, so
            // this thread is its sole owner and retires it exactly once.
            unsafe { g.retire_batch(&batch) };
        }
        drop(h);
        assert_eq!(d.unreclaimed(), 0);
    }

    #[test]
    fn leaked_handle_on_dead_thread_is_adopted() {
        let d = Hyaline::new(config());
        let dd = d.clone();
        std::thread::spawn(move || {
            let mut h = dd.register();
            {
                let mut g = h.pin();
                for i in 0..3u64 {
                    let p = g.alloc(i);
                    // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
                    unsafe { g.retire(p) };
                }
            }
            // Die without unwinding the handle; the sub-batch stays in the
            // vault.
            std::mem::forget(h);
        })
        .join()
        .unwrap();
        assert_eq!(d.unreclaimed(), 3);
        let mut survivor = d.register();
        survivor.flush();
        assert_eq!(
            d.unreclaimed(),
            0,
            "a survivor must adopt and flush the dead thread's batch"
        );
        assert_eq!(d.registry.poisoned(), 0, "death outside a CS recycles");
    }

    #[test]
    fn reader_dead_inside_critical_section_poisons_its_slot() {
        let d = Hyaline::new(config());
        let dd = d.clone();
        std::thread::spawn(move || {
            let mut h = dd.register();
            let g = h.pin();
            // Die while holding a slot reference: the acknowledgement
            // boundary is lost with the thread.
            std::mem::forget(g);
            std::mem::forget(h);
        })
        .join()
        .unwrap();
        let mut survivor = d.register();
        survivor.flush();
        assert_eq!(
            d.registry.poisoned(),
            1,
            "death inside a CS must poison the slot, not recycle it"
        );
        // The poisoned slot is excluded from pushes, so the survivor's own
        // churn still reclaims fully.
        for i in 0..64u64 {
            let mut g = survivor.pin();
            let p = g.alloc(i);
            // SAFETY: `p` was just allocated and never published, so this thread is its sole owner.
            unsafe { g.retire(p) };
        }
        survivor.flush();
        drop(survivor);
        assert_eq!(
            d.unreclaimed(),
            0,
            "a poisoned slot must not pin batches retired after poisoning"
        );
    }

    #[test]
    fn concurrent_producers_and_readers_reclaim_everything() {
        let d = Hyaline::new(SmrConfig {
            max_threads: 10,
            scan_threshold: 8,
            epoch_freq_per_thread: 1,
            snapshot_scan: false,
            ..SmrConfig::default()
        });
        std::thread::scope(|s| {
            for t in 0..4 {
                let d = d.clone();
                s.spawn(move || {
                    let mut h = d.register();
                    for i in 0..2000u64 {
                        let mut g = h.pin();
                        let p = g.alloc(t * 1_000_000 + i);
                        // Simulate a short read before retiring.
                        let cell = Atomic::new(p);
                        let seen = g.protect(0, &cell);
                        // SAFETY: this thread is the only retirer of `seen`; the cell is test-local.
                        unsafe { g.retire(seen) };
                    }
                    h.flush();
                });
            }
        });
        assert_eq!(
            d.unreclaimed(),
            0,
            "all batches must be freed once every thread has left"
        );
    }
}
