//! Thread-slot registry shared by all schemes.
//!
//! Every domain owns a fixed-size array of per-thread records (hazard slots,
//! era reservations, activity flags).  A handle claims one slot index on
//! registration and releases it on drop; slot indices are recycled so a
//! benchmark that repeatedly spawns short-lived threads does not exhaust the
//! table.

use std::sync::atomic::{AtomicBool, Ordering};

/// Allocation bitmap for thread slots.
pub struct SlotRegistry {
    used: Box<[AtomicBool]>,
}

impl SlotRegistry {
    /// Creates a registry with `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        let used = (0..capacity).map(|_| AtomicBool::new(false)).collect();
        Self { used }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.used.len()
    }

    /// Attempts to claim a free slot, returning its index, or `None` when
    /// every slot is taken.  This is the fallible primitive behind
    /// [`crate::Smr::try_register`].
    pub fn try_claim(&self) -> Option<usize> {
        for (i, flag) in self.used.iter().enumerate() {
            if !flag.load(Ordering::Relaxed)
                && flag
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                return Some(i);
            }
        }
        None
    }

    /// Claims a free slot, returning its index.
    ///
    /// Panics if every slot is taken: this indicates the domain was created
    /// with a `max_threads` smaller than the number of live handles, which is
    /// a configuration error rather than a recoverable condition.  Callers
    /// that want to surface the condition instead use [`SlotRegistry::try_claim`].
    pub fn claim(&self) -> usize {
        self.try_claim().unwrap_or_else(|| {
            panic!(
                "SMR domain slot table exhausted ({} slots); raise SmrConfig::max_threads",
                self.used.len()
            )
        })
    }

    /// Releases a previously claimed slot.
    pub fn release(&self, idx: usize) {
        debug_assert!(self.used[idx].load(Ordering::Relaxed));
        self.used[idx].store(false, Ordering::Release);
    }

    /// Whether the slot is currently claimed.  Scans use this to skip
    /// unregistered slots cheaply.
    #[inline]
    pub fn is_claimed(&self, idx: usize) -> bool {
        self.used[idx].load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn claim_release_recycles() {
        let r = SlotRegistry::new(2);
        let a = r.claim();
        let b = r.claim();
        assert_ne!(a, b);
        assert!(r.is_claimed(a));
        r.release(a);
        assert!(!r.is_claimed(a));
        let c = r.claim();
        assert_eq!(c, a);
        r.release(b);
        r.release(c);
    }

    #[test]
    #[should_panic(expected = "slot table exhausted")]
    fn exhaustion_panics() {
        let r = SlotRegistry::new(1);
        let _a = r.claim();
        let _b = r.claim();
    }

    #[test]
    fn try_claim_reports_exhaustion_without_panicking() {
        let r = SlotRegistry::new(2);
        assert_eq!(r.capacity(), 2);
        let a = r.try_claim().unwrap();
        let b = r.try_claim().unwrap();
        assert_ne!(a, b);
        assert_eq!(r.try_claim(), None);
        r.release(a);
        assert_eq!(r.try_claim(), Some(a));
        r.release(a);
        r.release(b);
    }

    #[test]
    fn concurrent_claims_are_unique() {
        let r = Arc::new(SlotRegistry::new(64));
        let mut joins = Vec::new();
        for _ in 0..8 {
            let r = r.clone();
            joins.push(std::thread::spawn(move || {
                (0..8).map(|_| r.claim()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<usize> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 64, "no slot may be handed out twice");
    }
}
