//! Thread-slot registry shared by all schemes, with orphaned-slot detection.
//!
//! Every domain owns a fixed-size array of per-thread records (hazard slots,
//! era reservations, activity flags).  A handle claims one slot index on
//! registration and releases it on drop; slot indices are recycled so a
//! benchmark that repeatedly spawns short-lived threads does not exhaust the
//! table.
//!
//! ## Orphaned slots
//!
//! A slot is *orphaned* when the thread that claimed it exits while the slot
//! is still claimed — the handle was leaked (`mem::forget`), or the thread was
//! torn down before the handle's destructor could run.  Without recovery an
//! orphaned slot pins its reservations forever: under EBR the global epoch
//! never advances again, under HP the dead thread's hazards protect garbage,
//! and the slot itself is lost to future registrations.
//!
//! Detection is based on a per-thread *liveness beacon*: an `Arc<Beacon>`
//! owned by a thread-local whose destructor fires when the thread exits.
//! Each claimed slot stores the beacon of the thread that most recently
//! *used* the slot — [`SlotRegistry::try_claim`] installs the claiming
//! thread's beacon, and every `pin` re-binds the slot to the pinning thread's
//! beacon through [`SlotRegistry::check_owner_and_bind`] (handles are `Send`,
//! so the thread that registered a handle is not necessarily the thread that
//! pins through it).  A claimed slot whose *installed* beacon has fired is
//! therefore provably dead: the last thread to pin through it cannot issue
//! another load or store, and no guard can be live elsewhere because guards
//! are `!Send` (they never leave the thread that pinned).  Surviving threads
//! adopt such slots through [`SlotRegistry::try_begin_adopt`]: the scheme
//! neutralizes the dead slot's reservations (safe precisely because no
//! thread can still be using them), drains its retire vault, and either
//! recycles the slot ([`AdoptGuard::finish`]) or permanently retires it
//! ([`AdoptGuard::poison`], used by Hyaline when the owner died inside a
//! critical section and its acknowledgement boundary is unknowable).
//!
//! Each claim carries a *generation* ([`SlotClaim::gen`]); adoption bumps it.
//! A release with a stale generation is a no-op (the adopter already owns the
//! cleanup).  The one lossy window is a handle *parked between pins* on a
//! thread other than the one that last pinned it: if the last-pinning thread
//! exits during that window, a survivor may adopt the slot, and the handle's
//! next `pin` panics — under the slot mutex, *before* publishing any
//! reservation — instead of scribbling on a neutralized (and possibly
//! re-claimed) slot.
//!
//! Adoption, release, claim, and re-binding of one slot serialize on the
//! slot's beacon mutex; the state machine (`FREE → CLAIMED → {FREE |
//! ADOPTING → {FREE | POISONED}}`) is advanced only while holding it, so
//! exactly one party ever tears a claim down, and a pin-time re-bind can
//! never interleave with an in-flight adoption.

use parking_lot::{Mutex, MutexGuard};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// Slot states: free for claiming.
const FREE: u8 = 0;
/// Claimed by a live (or since-exited) handle.
const CLAIMED: u8 = 1;
/// A surviving thread is neutralizing a dead owner's reservations.
const ADOPTING: u8 = 2;
/// Permanently retired: the dead owner's reservations cannot be soundly
/// neutralized (Hyaline's died-in-critical-section case).
const POISONED: u8 = 3;

/// A per-thread liveness signal: flips to "exited" when the owning thread's
/// thread-local storage is destroyed, i.e. when the thread can no longer
/// perform any memory access.
pub struct Beacon {
    exited: AtomicBool,
}

impl Beacon {
    fn new() -> Self {
        Self {
            exited: AtomicBool::new(false),
        }
    }

    /// Whether the owning thread has exited.  Once true, stays true.
    #[inline]
    pub fn has_exited(&self) -> bool {
        self.exited.load(Ordering::Acquire)
    }
}

/// Thread-local owner of the beacon; the destructor is the exit signal.
struct BeaconOwner(Arc<Beacon>);

impl Drop for BeaconOwner {
    fn drop(&mut self) {
        self.0.exited.store(true, Ordering::Release);
    }
}

thread_local! {
    static LIVENESS: BeaconOwner = BeaconOwner(Arc::new(Beacon::new()));
}

/// The calling thread's liveness beacon.  During thread-local teardown (when
/// the per-thread beacon is already destroyed) a fresh beacon that never fires
/// is returned: a handle registered that late is never treated as orphaned —
/// leaking its slot is the safe failure mode, spuriously adopting a live
/// handle would not be.
pub fn thread_beacon() -> Arc<Beacon> {
    LIVENESS
        .try_with(|owner| owner.0.clone())
        .unwrap_or_else(|_| Arc::new(Beacon::new()))
}

/// Handle-side cache of the beacon installed in the handle's slot.
///
/// Every scheme handle owns one, created on the registering thread (where
/// [`SlotRegistry::try_claim`] installed that same thread's beacon) and kept
/// in sync by [`SlotRegistry::check_owner_and_bind`] on every `pin`.  While
/// the cached beacon is the *current* thread's live beacon, the slot cannot
/// have been adopted — adoption requires the installed beacon to have fired —
/// so the pin fast path is a single thread-local pointer compare with no
/// atomics and no lock.
pub struct PinBinding {
    beacon: Arc<Beacon>,
}

impl PinBinding {
    /// Binding for a slot claimed on the calling thread: captures the same
    /// beacon [`SlotRegistry::try_claim`] just installed.
    pub fn new() -> Self {
        Self {
            beacon: thread_beacon(),
        }
    }
}

impl Default for PinBinding {
    fn default() -> Self {
        Self::new()
    }
}

/// Proof of a slot claim: the index plus the generation it was claimed at.
/// Adoption bumps the generation, which is what makes stale releases (and
/// stale pins) detectable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotClaim {
    /// The claimed slot index.
    pub index: usize,
    /// Generation of this claim; see [`SlotRegistry::release`].
    pub gen: u64,
}

struct SlotEntry {
    state: AtomicU8,
    gen: AtomicU64,
    beacon: Mutex<Option<Arc<Beacon>>>,
}

/// Allocation table for thread slots with orphan detection (see the module
/// docs for the lifecycle).
pub struct SlotRegistry {
    slots: Box<[SlotEntry]>,
}

impl SlotRegistry {
    /// Creates a registry with `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        let slots = (0..capacity)
            .map(|_| SlotEntry {
                state: AtomicU8::new(FREE),
                gen: AtomicU64::new(0),
                beacon: Mutex::new(None),
            })
            .collect();
        Self { slots }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Attempts to claim a free slot, capturing the calling thread's liveness
    /// beacon, or returns `None` when every slot is taken.  This is the
    /// fallible primitive behind [`crate::Smr::try_register`].
    pub fn try_claim(&self) -> Option<SlotClaim> {
        for (i, entry) in self.slots.iter().enumerate() {
            if entry.state.load(Ordering::Relaxed) == FREE
                && entry
                    .state
                    .compare_exchange(FREE, CLAIMED, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                *entry.beacon.lock() = Some(thread_beacon());
                let gen = entry.gen.fetch_add(1, Ordering::Relaxed) + 1;
                return Some(SlotClaim { index: i, gen });
            }
        }
        None
    }

    /// Claims a free slot.
    ///
    /// Panics if every slot is taken: this indicates the domain was created
    /// with a `max_threads` smaller than the number of live handles, which is
    /// a configuration error rather than a recoverable condition.  Callers
    /// that want to surface the condition instead use [`SlotRegistry::try_claim`].
    pub fn claim(&self) -> SlotClaim {
        self.try_claim().unwrap_or_else(|| {
            panic!(
                "SMR domain slot table exhausted ({} slots); raise SmrConfig::max_threads",
                self.slots.len()
            )
        })
    }

    /// Releases a previously claimed slot.  Returns `true` when this call tore
    /// the claim down; `false` when the claim's generation is stale — the slot
    /// was adopted (the owning thread exited while the handle was live on
    /// another thread) and the adopter already owns the cleanup, so the caller
    /// must not touch the slot's scheme state.
    pub fn release(&self, claim: SlotClaim) -> bool {
        self.release_with(claim, || {})
    }

    /// [`SlotRegistry::release`] with a teardown closure that runs *between*
    /// the generation check and the slot becoming free, while the slot's
    /// beacon mutex is held.  Schemes neutralize their per-slot reservations
    /// and drain their retire vault inside `teardown`: the mutex excludes a
    /// concurrent adopter, and the ordering excludes the slot being handed to
    /// a new claimant while the old owner is still scribbling on it.  When
    /// the generation is stale, `teardown` is *not* run (the adopter already
    /// owns the cleanup) and `false` is returned.
    pub fn release_with(&self, claim: SlotClaim, teardown: impl FnOnce()) -> bool {
        let entry = &self.slots[claim.index];
        let mut beacon = entry.beacon.lock();
        if entry.gen.load(Ordering::Relaxed) != claim.gen {
            return false;
        }
        debug_assert_eq!(entry.state.load(Ordering::Relaxed), CLAIMED);
        teardown();
        *beacon = None;
        entry.state.store(FREE, Ordering::Release);
        true
    }

    /// Whether the slot currently carries reservations a reclaimer must
    /// honour: claimed by a handle, or mid-adoption (the dead owner's
    /// reservations may not be neutralized yet).  Poisoned slots are *not*
    /// claimed: no future acknowledgement can come from them.
    #[inline]
    pub fn is_claimed(&self, idx: usize) -> bool {
        matches!(
            self.slots[idx].state.load(Ordering::Acquire),
            CLAIMED | ADOPTING
        )
    }

    /// Current generation of a slot.
    #[inline]
    pub fn generation(&self, idx: usize) -> u64 {
        self.slots[idx].gen.load(Ordering::Relaxed)
    }

    /// Verifies that `claim` still owns its slot and binds the slot's
    /// liveness beacon to the *calling* thread; schemes call this first thing
    /// in every `pin`, before publishing any reservation.
    ///
    /// Fast path (the handle is pinned from the same thread as last time):
    /// the cached beacon is the current thread's live beacon, which rules out
    /// adoption entirely — no lock, no atomics.  Slow path (the handle moved
    /// to a new thread): re-bind under the slot's beacon mutex, which
    /// serializes against [`SlotRegistry::try_begin_adopt`], so either the
    /// re-bind lands first (and the slot is no longer adoptable while the new
    /// thread lives) or the adoption did, in which case this panics — with
    /// nothing published yet, so nothing was torn out from under a live
    /// traversal.
    ///
    /// # Panics
    /// When the slot was adopted: the thread that last pinned through the
    /// handle (or registered it, if it was never pinned) exited while the
    /// handle was parked on another thread, and a survivor reclaimed the
    /// slot.
    #[inline]
    pub fn check_owner_and_bind(&self, claim: SlotClaim, binding: &mut PinBinding) {
        let bound_to_this_thread = LIVENESS
            .try_with(|owner| Arc::ptr_eq(&owner.0, &binding.beacon))
            .unwrap_or(false);
        if !bound_to_this_thread {
            self.rebind(claim, binding);
        }
    }

    /// Slow path of [`SlotRegistry::check_owner_and_bind`]: the handle is
    /// being pinned from a thread other than the one whose beacon is
    /// installed in the slot.
    #[cold]
    fn rebind(&self, claim: SlotClaim, binding: &mut PinBinding) {
        let entry = &self.slots[claim.index];
        let current = thread_beacon();
        let mut installed = entry.beacon.lock();
        if entry.gen.load(Ordering::Relaxed) != claim.gen {
            panic!(
                "SMR handle used after its slot was adopted: the thread that \
                 last pinned through this handle exited while the handle was \
                 parked on another thread (slot {})",
                claim.index
            );
        }
        *installed = Some(current.clone());
        binding.beacon = current;
    }

    /// Attempts to start adopting slot `idx`: succeeds only when the slot is
    /// claimed and its owner's beacon has fired (the thread exited without
    /// releasing).  At most one adopter wins; the returned guard holds the
    /// slot in the `ADOPTING` state until [`AdoptGuard::finish`] or
    /// [`AdoptGuard::poison`] (dropping the guard without either, e.g. on a
    /// panicking adopter, reverts the slot to claimed so adoption is retried).
    pub fn try_begin_adopt(&self, idx: usize) -> Option<AdoptGuard<'_>> {
        let entry = &self.slots[idx];
        if entry.state.load(Ordering::Acquire) != CLAIMED {
            return None;
        }
        let beacon = entry.beacon.try_lock()?;
        if !beacon.as_ref().is_some_and(|b| b.has_exited()) {
            return None;
        }
        entry
            .state
            .compare_exchange(CLAIMED, ADOPTING, Ordering::AcqRel, Ordering::Relaxed)
            .ok()?;
        Some(AdoptGuard {
            entry,
            beacon,
            done: false,
        })
    }

    /// Number of permanently poisoned slots (diagnostic).
    pub fn poisoned(&self) -> usize {
        self.slots
            .iter()
            .filter(|e| e.state.load(Ordering::Relaxed) == POISONED)
            .count()
    }
}

/// Exclusive license to tear down one orphaned slot; see
/// [`SlotRegistry::try_begin_adopt`].
#[must_use = "an adoption must be finished or poisoned, never dropped on the floor"]
pub struct AdoptGuard<'a> {
    entry: &'a SlotEntry,
    beacon: MutexGuard<'a, Option<Arc<Beacon>>>,
    done: bool,
}

impl AdoptGuard<'_> {
    /// Completes the adoption: the dead owner's reservations were neutralized
    /// and its retire vault drained, so the slot returns to the free pool.
    pub fn finish(mut self) {
        *self.beacon = None;
        self.entry.gen.fetch_add(1, Ordering::Relaxed);
        self.entry.state.store(FREE, Ordering::Release);
        self.done = true;
    }

    /// Completes the adoption by permanently retiring the slot: its
    /// reservations cannot be soundly neutralized (the owner died inside a
    /// critical section under a scheme where the acknowledgement boundary is
    /// unknowable), so reclaimers must stop waiting on it *and* the slot must
    /// never be handed out again.
    pub fn poison(mut self) {
        *self.beacon = None;
        self.entry.gen.fetch_add(1, Ordering::Relaxed);
        self.entry.state.store(POISONED, Ordering::Release);
        self.done = true;
    }
}

impl Drop for AdoptGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            // Adoption abandoned (adopter panicked): make it retryable.
            self.entry.state.store(CLAIMED, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    #[test]
    fn claim_release_recycles() {
        let r = SlotRegistry::new(2);
        let a = r.claim();
        let b = r.claim();
        assert_ne!(a.index, b.index);
        assert!(r.is_claimed(a.index));
        assert!(r.release(a));
        assert!(!r.is_claimed(a.index));
        let c = r.claim();
        assert_eq!(c.index, a.index);
        assert!(c.gen > a.gen, "re-claim must bump the generation");
        assert!(r.release(b));
        assert!(r.release(c));
    }

    #[test]
    #[should_panic(expected = "slot table exhausted")]
    fn exhaustion_panics() {
        let r = SlotRegistry::new(1);
        let _a = r.claim();
        let _b = r.claim();
    }

    #[test]
    fn try_claim_reports_exhaustion_without_panicking() {
        let r = SlotRegistry::new(2);
        assert_eq!(r.capacity(), 2);
        let a = r.try_claim().unwrap();
        let b = r.try_claim().unwrap();
        assert_ne!(a.index, b.index);
        assert!(r.try_claim().is_none());
        assert!(r.release(a));
        assert_eq!(r.try_claim().map(|c| c.index), Some(a.index));
        let a2 = SlotClaim {
            index: a.index,
            gen: r.generation(a.index),
        };
        assert!(r.release(a2));
        assert!(r.release(b));
    }

    #[test]
    fn concurrent_claims_are_unique() {
        let r = StdArc::new(SlotRegistry::new(64));
        let mut joins = Vec::new();
        for _ in 0..8 {
            let r = r.clone();
            joins.push(std::thread::spawn(move || {
                (0..8).map(|_| r.claim().index).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<usize> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 64, "no slot may be handed out twice");
    }

    #[test]
    fn live_owner_cannot_be_adopted() {
        let r = SlotRegistry::new(2);
        let a = r.claim();
        // This thread is alive: its beacon has not fired.
        assert!(r.try_begin_adopt(a.index).is_none());
        assert!(r.release(a));
    }

    #[test]
    fn dead_owner_is_adoptable_and_stale_release_is_a_no_op() {
        let r = StdArc::new(SlotRegistry::new(2));
        let claim = {
            let r = r.clone();
            std::thread::spawn(move || r.claim())
                .join()
                .expect("claiming thread must not panic")
        };
        // The claiming thread has exited; its beacon fired with the slot
        // still claimed.
        assert!(r.is_claimed(claim.index));
        let adoption = r
            .try_begin_adopt(claim.index)
            .expect("dead owner's slot must be adoptable");
        adoption.finish();
        assert!(!r.is_claimed(claim.index));
        // The original claim is stale now: releasing it must not free the
        // slot a second time.
        assert!(!r.release(claim));
        // And the slot is reusable.
        let again = r.try_claim().unwrap();
        assert_eq!(again.index, claim.index);
        assert!(again.gen > claim.gen);
        assert!(r.release(again));
    }

    #[test]
    fn adoption_is_exclusive_and_abandonment_reverts() {
        let r = StdArc::new(SlotRegistry::new(1));
        let claim = {
            let r = r.clone();
            std::thread::spawn(move || r.claim()).join().unwrap()
        };
        let first = r.try_begin_adopt(claim.index).unwrap();
        // While one adopter holds the slot, a second cannot begin.
        assert!(r.try_begin_adopt(claim.index).is_none());
        // Abandoning (adopter panic) reverts to claimed, so it is retried.
        drop(first);
        assert!(r.is_claimed(claim.index));
        r.try_begin_adopt(claim.index).unwrap().finish();
    }

    #[test]
    fn poisoned_slot_is_neither_claimed_nor_reusable() {
        let r = StdArc::new(SlotRegistry::new(1));
        let claim = {
            let r = r.clone();
            std::thread::spawn(move || r.claim()).join().unwrap()
        };
        r.try_begin_adopt(claim.index).unwrap().poison();
        assert!(!r.is_claimed(claim.index));
        assert_eq!(r.poisoned(), 1);
        // The sole slot is poisoned: the table is effectively exhausted.
        assert!(r.try_claim().is_none());
    }

    #[test]
    #[should_panic(expected = "slot was adopted")]
    fn stale_pin_panics_instead_of_publishing() {
        let r = StdArc::new(SlotRegistry::new(1));
        let (claim, mut binding) = {
            let r = r.clone();
            std::thread::spawn(move || (r.claim(), PinBinding::new()))
                .join()
                .unwrap()
        };
        r.try_begin_adopt(claim.index).unwrap().finish();
        // The claiming thread died and a survivor adopted the slot before
        // this thread's first pin: the pin must panic, not publish.
        r.check_owner_and_bind(claim, &mut binding);
    }

    #[test]
    fn pin_rebinds_moved_handle_and_blocks_adoption() {
        // The moved-handle scenario from the UAF report: thread A claims,
        // the claim moves to this thread, this thread pins, and only THEN
        // does A exit.  Re-binding at pin must have made the slot track this
        // thread's beacon, so A's death must not make the slot adoptable.
        let r = StdArc::new(SlotRegistry::new(1));
        let (claim, mut binding) = {
            let r = r.clone();
            std::thread::spawn(move || (r.claim(), PinBinding::new()))
                .join()
                .unwrap()
        };
        // A is dead, but the handle pins from this (live) thread first.
        r.check_owner_and_bind(claim, &mut binding);
        assert!(
            r.try_begin_adopt(claim.index).is_none(),
            "slot must be bound to the live pinning thread, not the dead \
             registering thread"
        );
        // Subsequent pins from the same thread take the fast path and are
        // equally un-adoptable.
        r.check_owner_and_bind(claim, &mut binding);
        assert!(r.try_begin_adopt(claim.index).is_none());
        assert!(r.release(claim));
    }

    #[test]
    fn slot_follows_the_most_recent_pinning_thread() {
        // Claim here, pin from a worker thread (re-bind), then let the
        // worker exit: the slot must be adoptable even though the
        // registering thread (this one) is still alive — the beacon tracks
        // the most recent pinner, not the registrant.
        let r = StdArc::new(SlotRegistry::new(1));
        let claim = r.claim();
        let mut binding = PinBinding::new();
        {
            let r = r.clone();
            binding = std::thread::spawn(move || {
                r.check_owner_and_bind(claim, &mut binding);
                binding
            })
            .join()
            .unwrap();
        }
        let adoption = r
            .try_begin_adopt(claim.index)
            .expect("dead last-pinner must make the slot adoptable");
        adoption.finish();
        // The original claim is stale now.
        assert!(!r.release(claim));
        let _ = &binding;
    }
}
