//! Skip-list throughput — the sixth-structure extension of the reproduction.
//!
//! The skip list is the canonical multi-level optimistic-traversal structure
//! of the SMR literature; this bench sweeps it under every scheme family the
//! paper evaluates, at the paper's headline 50% read / 50% write mix, for a
//! cache-resident and a larger key range.  The expected shape mirrors the
//! Harris-list figures: the robust schemes (HP/HE/IBR/Hyaline) track EBR
//! closely because the per-level SCOT validation — not eager unlinking — is
//! what buys their compatibility.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scot_harness::{run_fixed_ops, DsKind, RunConfig, SmrKind};
use std::time::Duration;

const OPS_PER_THREAD: u64 = 20_000;

fn bench_key_range(c: &mut Criterion, group_name: &str, key_range: u64) {
    let threads = 2;
    let schemes = [
        SmrKind::Nr,
        SmrKind::Ebr,
        SmrKind::Hp,
        SmrKind::HpOpt,
        SmrKind::Ibr,
        SmrKind::He,
        SmrKind::Hyaline,
    ];
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300))
        .throughput(Throughput::Elements(OPS_PER_THREAD * threads as u64));
    for smr in schemes {
        let id = BenchmarkId::new(DsKind::SkipList.name(), smr.name());
        group.bench_function(id, |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let cfg = RunConfig::paper_default(threads, key_range);
                    let (_, elapsed, _) =
                        run_fixed_ops(DsKind::SkipList, smr, &cfg, OPS_PER_THREAD);
                    total += Duration::from_secs_f64(elapsed);
                }
                total
            })
        });
    }
    group.finish();
}

fn skiplist_small(c: &mut Criterion) {
    bench_key_range(c, "skiplist_range_512", 512);
}

fn skiplist_large(c: &mut Criterion) {
    bench_key_range(c, "skiplist_range_10000", 10_000);
}

criterion_group!(benches, skiplist_small, skiplist_large);
criterion_main!(benches);
