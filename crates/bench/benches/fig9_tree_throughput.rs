//! Figure 9 — Natarajan-Mittal tree throughput, 50% read / 50% write.
//!
//! Key range 128 (Figure 9a) and 100,000 (Figure 9b); the paper's headline
//! observation is that the SCOT tree under robust schemes (HPopt, IBR, HE,
//! Hyaline-1S) approaches the EBR throughput that used to be out of reach for
//! these schemes, with Hyaline-1S closest to EBR at high thread counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scot_harness::{run_fixed_ops, DsKind, RunConfig, SmrKind};
use std::time::Duration;

const OPS_PER_THREAD: u64 = 30_000;

fn bench_key_range(c: &mut Criterion, figure: &str, key_range: u64) {
    let threads = 2;
    let schemes = [
        SmrKind::Nr,
        SmrKind::Ebr,
        SmrKind::Hp,
        SmrKind::HpOpt,
        SmrKind::Ibr,
        SmrKind::He,
        SmrKind::Hyaline,
    ];
    let mut group = c.benchmark_group(figure);
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300))
        .throughput(Throughput::Elements(OPS_PER_THREAD * threads as u64));
    for smr in schemes {
        let id = BenchmarkId::new("NMTree", smr.name());
        group.bench_function(id, |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let cfg = RunConfig::paper_default(threads, key_range);
                    let (_, elapsed, _) = run_fixed_ops(DsKind::Tree, smr, &cfg, OPS_PER_THREAD);
                    total += Duration::from_secs_f64(elapsed);
                }
                total
            })
        });
    }
    group.finish();
}

fn fig9a(c: &mut Criterion) {
    bench_key_range(c, "fig9a_tree_range_128", 128);
}

fn fig9b(c: &mut Criterion) {
    bench_key_range(c, "fig9b_tree_range_100000", 100_000);
}

criterion_group!(benches, fig9a, fig9b);
criterion_main!(benches);
