//! Table 2 — restart statistics for the Harris-Michael list versus Harris'
//! list (SCOT) under HP with key range 10,000.
//!
//! The paper reports that the Harris-Michael list restarts up to 8.19% of its
//! operations at 256 threads while Harris' list with SCOT stays at ≈0%, which
//! (together with the reduced CAS count) explains the throughput gap of
//! Figure 8.  This benchmark measures the timed throughput of both lists and
//! prints the observed restart counts and rates alongside the Criterion
//! timings, so the table rows can be read off the bench output.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scot_harness::{run_fixed_ops, DsKind, RunConfig, SmrKind};
use std::time::Duration;

const OPS_PER_THREAD: u64 = 40_000;
const KEY_RANGE: u64 = 10_000;

fn tab2(c: &mut Criterion) {
    let mut group = c.benchmark_group("tab2_restarts_hp_range_10000");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    for threads in [1usize, 2, 4] {
        for ds in [DsKind::HmList, DsKind::ListLf] {
            group.throughput(Throughput::Elements(OPS_PER_THREAD * threads as u64));
            let id = BenchmarkId::new(ds.name(), format!("{threads}thr"));
            group.bench_function(id, |b| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    let mut restarts = 0u64;
                    let mut ops = 0u64;
                    for _ in 0..iters {
                        let cfg = RunConfig::paper_default(threads, KEY_RANGE);
                        let (o, elapsed, r) = run_fixed_ops(ds, SmrKind::Hp, &cfg, OPS_PER_THREAD);
                        total += Duration::from_secs_f64(elapsed);
                        restarts += r;
                        ops += o;
                    }
                    eprintln!(
                        "[tab2] {} threads={} restarts={} ops={} restart%={:.3}",
                        ds.name(),
                        threads,
                        restarts,
                        ops,
                        100.0 * restarts as f64 / ops.max(1) as f64
                    );
                    total
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, tab2);
criterion_main!(benches);
