//! Ablation benchmarks for the design decisions the paper calls out:
//!
//! * **Recovery optimization (§3.2.1)** — Harris' list with SCOT, with the
//!   dangerous-zone recovery enabled versus disabled (restart-only), under HP.
//!   The paper states the optimization helps the list but not the tree.
//! * **Limbo-scan snapshot (HP vs HPopt, HE vs HEopt, IBR vs IBRopt)** — the
//!   scan-time optimization evaluated throughout §5.
//! * **Scan threshold / era frequency calibration** — the paper's calibrated
//!   values (scan every 128 retirements, era advance every 12×threads) versus
//!   much smaller and much larger settings.
//! * **Block pool (pool on vs pool off)** — the per-thread block pool that
//!   takes the global allocator out of every scheme's alloc/retire path,
//!   measured on the write-only mix where allocation dominates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scot::{ConcurrentSet, HarrisList};
use scot_harness::{run_fixed_ops, DsKind, LatencyHistogram, Mix, RunConfig, SmrKind};
use scot_smr::{Hp, Smr, SmrConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const OPS_PER_THREAD: u64 = 20_000;

/// Runs a fixed-op mixed workload directly against a `HarrisList` built with
/// or without the recovery optimization.
fn run_harris_list(recovery: bool, threads: usize, key_range: u64) -> Duration {
    let cfg = SmrConfig::for_threads(threads);
    let domain = Hp::new(cfg);
    let list: Arc<HarrisList<u64, Hp>> = Arc::new(if recovery {
        HarrisList::new(domain)
    } else {
        HarrisList::without_recovery(domain)
    });
    // Prefill half the range.
    {
        let mut h = list.handle();
        let mut k = 0;
        while k < key_range {
            list.insert(&mut h, k);
            k += 2;
        }
    }
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let list = list.clone();
            let stop = &stop;
            s.spawn(move || {
                let mut h = list.handle();
                let mut x = (t as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15);
                for _ in 0..OPS_PER_THREAD {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = x % key_range;
                    match x % 4 {
                        0 => {
                            list.insert(&mut h, key);
                        }
                        1 => {
                            list.remove(&mut h, &key);
                        }
                        _ => {
                            list.contains(&mut h, &key);
                        }
                    }
                }
            });
        }
    });
    start.elapsed()
}

fn ablation_recovery(c: &mut Criterion) {
    let threads = 2;
    let mut group = c.benchmark_group("ablation_recovery_optimization");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(OPS_PER_THREAD * threads as u64));
    for (label, recovery) in [("with_recovery", true), ("restart_only", false)] {
        group.bench_function(BenchmarkId::new("HList_HP", label), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    total += run_harris_list(recovery, threads, 512);
                }
                total
            })
        });
    }
    group.finish();
}

fn ablation_snapshot_scan(c: &mut Criterion) {
    let threads = 2;
    let mut group = c.benchmark_group("ablation_snapshot_scan");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(OPS_PER_THREAD * threads as u64));
    for (base, opt) in [
        (SmrKind::Hp, SmrKind::HpOpt),
        (SmrKind::He, SmrKind::HeOpt),
        (SmrKind::Ibr, SmrKind::IbrOpt),
    ] {
        for smr in [base, opt] {
            group.bench_function(BenchmarkId::new("HList", smr.name()), |b| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let cfg = RunConfig::paper_default(threads, 512);
                        let (_, elapsed, _) =
                            run_fixed_ops(DsKind::ListLf, smr, &cfg, OPS_PER_THREAD);
                        total += Duration::from_secs_f64(elapsed);
                    }
                    total
                })
            });
        }
    }
    group.finish();
}

fn ablation_scan_threshold(c: &mut Criterion) {
    let threads = 2;
    let mut group = c.benchmark_group("ablation_scan_threshold");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(OPS_PER_THREAD * threads as u64));
    for threshold in [8usize, 128, 1024] {
        group.bench_function(BenchmarkId::new("HList_HP", threshold), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let mut cfg = SmrConfig::for_threads(threads);
                    cfg.scan_threshold = threshold;
                    let domain = Hp::new(cfg);
                    let list: Arc<HarrisList<u64, Hp>> = Arc::new(HarrisList::new(domain));
                    {
                        let mut h = list.handle();
                        for k in (0..512u64).step_by(2) {
                            list.insert(&mut h, k);
                        }
                    }
                    let start = Instant::now();
                    std::thread::scope(|s| {
                        for t in 0..threads {
                            let list = list.clone();
                            s.spawn(move || {
                                let mut h = list.handle();
                                let mut x = (t as u64 + 1).wrapping_mul(0x9e3779b9);
                                for _ in 0..OPS_PER_THREAD {
                                    x ^= x << 13;
                                    x ^= x >> 7;
                                    x ^= x << 17;
                                    let key = x % 512;
                                    if x.is_multiple_of(2) {
                                        list.insert(&mut h, key);
                                    } else {
                                        list.remove(&mut h, &key);
                                    }
                                }
                            });
                        }
                    });
                    total += start.elapsed();
                }
                total
            })
        });
    }
    group.finish();
}

fn ablation_block_pool(c: &mut Criterion) {
    let threads = 2;
    let mut group = c.benchmark_group("ablation_block_pool");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(OPS_PER_THREAD * threads as u64));
    for ds in [DsKind::HmList, DsKind::Tree] {
        for smr in [SmrKind::Ebr, SmrKind::Hp, SmrKind::Ibr] {
            for (label, pool) in [("pool_on", true), ("pool_off", false)] {
                let name = format!("{}_{}_{}", ds.name(), smr.name(), label);
                group.bench_function(BenchmarkId::new("write_only", name), |b| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            let mut cfg = RunConfig::paper_default(threads, 512);
                            cfg.mix = Mix::WRITE_ONLY;
                            cfg.pool = pool;
                            let (_, elapsed, _) = run_fixed_ops(ds, smr, &cfg, OPS_PER_THREAD);
                            total += Duration::from_secs_f64(elapsed);
                        }
                        total
                    })
                });
            }
        }
    }
    group.finish();
}

fn ablation_latency_recording(c: &mut Criterion) {
    // The service scenario's measurement-stays-out-of-the-hot-path claim
    // rests on a histogram record being a shift plus an array increment —
    // cheap enough that stamping 1-in-16 ops is the only real cost.
    let mut group = c.benchmark_group("ablation_latency_recording");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(OPS_PER_THREAD));
    group.bench_function(BenchmarkId::new("LatencyHistogram", "record"), |b| {
        b.iter_custom(|iters| {
            let mut h = LatencyHistogram::new();
            let mut x = 0x9e3779b97f4a7c15u64;
            let start = Instant::now();
            for _ in 0..iters * OPS_PER_THREAD {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                h.record(x % 1_000_000);
            }
            let elapsed = start.elapsed();
            std::hint::black_box(h.p99());
            elapsed
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_recovery,
    ablation_snapshot_scan,
    ablation_scan_threshold,
    ablation_block_pool,
    ablation_latency_recording
);
criterion_main!(benches);
