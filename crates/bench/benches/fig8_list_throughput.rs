//! Figure 8 — linked-list throughput, 50% read / 50% write workload.
//!
//! The paper compares the Harris-Michael list (HMList) against Harris' list
//! with SCOT (HList, both lock-free and wait-free traversal variants) under
//! NR/EBR/HP/HPopt/IBR/HE/Hyaline-1S for key ranges 512 (Figure 8a) and
//! 10,000 (Figure 8b).  Criterion reports elements/second, i.e. operations per
//! second, so "higher is better" exactly as in the figure; the expected shape
//! is HList ≥ HMList for every robust scheme, with the gap largest at the
//! small key range.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scot_harness::{run_fixed_ops, DsKind, RunConfig, SmrKind};
use std::time::Duration;

const OPS_PER_THREAD: u64 = 20_000;

fn bench_key_range(c: &mut Criterion, figure: &str, key_range: u64) {
    let threads = 2;
    let structures = [DsKind::HmList, DsKind::ListLf, DsKind::ListWf];
    let schemes = [
        SmrKind::Nr,
        SmrKind::Ebr,
        SmrKind::Hp,
        SmrKind::HpOpt,
        SmrKind::Ibr,
        SmrKind::He,
        SmrKind::Hyaline,
    ];
    let mut group = c.benchmark_group(figure);
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300))
        .throughput(Throughput::Elements(OPS_PER_THREAD * threads as u64));
    for ds in structures {
        for smr in schemes {
            let id = BenchmarkId::new(ds.name(), smr.name());
            group.bench_function(id, |b| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let cfg = RunConfig::paper_default(threads, key_range);
                        let (_, elapsed, _) = run_fixed_ops(ds, smr, &cfg, OPS_PER_THREAD);
                        total += Duration::from_secs_f64(elapsed);
                    }
                    total
                })
            });
        }
    }
    group.finish();
}

fn fig8a(c: &mut Criterion) {
    bench_key_range(c, "fig8a_list_range_512", 512);
}

fn fig8b(c: &mut Criterion) {
    bench_key_range(c, "fig8b_list_range_10000", 10_000);
}

criterion_group!(benches, fig8a, fig8b);
criterion_main!(benches);
