//! Range-scan throughput — the workload class opened by the shared traversal
//! cursor (`scot::traverse`) and the guard-scoped `ConcurrentMap::range` API.
//!
//! The scan-heavy mix (80% scans / 20% writes) keeps marked chains appearing
//! in front of the scanners, so the numbers measure exactly the path the
//! cursor centralizes: safe-zone stepping, dangerous-zone validation and the
//! park/re-seek recovery of a disrupted scan.  Two window widths separate the
//! re-positioning cost (short scans ≈ one seek each) from the stepping cost
//! (long scans amortize the seek over many in-place advances).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scot_harness::{run_fixed_ops, DsKind, Mix, RunConfig, SmrKind};
use std::time::Duration;

const OPS_PER_THREAD: u64 = 5_000;
const KEY_RANGE: u64 = 8192;

fn bench_scan_len(c: &mut Criterion, group_name: &str, scan_len: u64) {
    let threads = 2;
    let schemes = [
        SmrKind::Nr,
        SmrKind::Ebr,
        SmrKind::Hp,
        SmrKind::HpOpt,
        SmrKind::Ibr,
        SmrKind::He,
        SmrKind::Hyaline,
    ];
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300))
        .throughput(Throughput::Elements(OPS_PER_THREAD * threads as u64));
    for ds in [DsKind::SkipList, DsKind::Tree] {
        for smr in schemes {
            let id = BenchmarkId::new(ds.name(), smr.name());
            group.bench_function(id, |b| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let mut cfg = RunConfig::paper_default(threads, KEY_RANGE);
                        cfg.mix = Mix::SCAN_HEAVY;
                        cfg.scan_len = scan_len;
                        let (_, elapsed, _) = run_fixed_ops(ds, smr, &cfg, OPS_PER_THREAD);
                        total += Duration::from_secs_f64(elapsed);
                    }
                    total
                })
            });
        }
    }
    group.finish();
}

fn scan_short(c: &mut Criterion) {
    bench_scan_len(c, "range_scan_len_16", 16);
}

fn scan_long(c: &mut Criterion) {
    bench_scan_len(c, "range_scan_len_256", 256);
}

criterion_group!(benches, scan_short, scan_long);
criterion_main!(benches);
