//! Cursor hot-path ablation benchmarks: the Criterion counterpart of the
//! `exp cursor` preset.
//!
//! Each group member runs the fixed-op mixed workload with exactly one of the
//! hot-path optimizations enabled on top of the everything-off base — repin
//! elision (one guard per run, refreshed every 16 operations), the one-hop
//! successor prefetch, bounded CAS/restart backoff, batched chain retire —
//! plus an arm with all four together, on the two deepest traversal
//! structures (skip list and NM tree) under EBR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scot_harness::{run_fixed_ops, BackoffMode, DsKind, RunConfig, SmrKind};
use std::time::Duration;

const OPS_PER_THREAD: u64 = 20_000;

/// The guard-refresh interval of the repin arms (the `--pin-batch` default
/// the `exp cursor` preset uses).
const REPIN_BATCH: u64 = 16;

/// Builds the config for one ablation arm: everything off, then the named
/// optimization (or all of them) switched on.
fn arm_config(threads: usize, arm: &str) -> RunConfig {
    let mut cfg = RunConfig::paper_default(threads, 8192);
    cfg.pin_batch = 1;
    cfg.prefetch = false;
    cfg.backoff = BackoffMode::None;
    cfg.chain_batch = false;
    match arm {
        "repin" => cfg.pin_batch = REPIN_BATCH,
        "prefetch" => cfg.prefetch = true,
        "backoff" => cfg.backoff = BackoffMode::Bounded,
        "batch" => cfg.chain_batch = true,
        "all" => {
            cfg.pin_batch = REPIN_BATCH;
            cfg.prefetch = true;
            cfg.backoff = BackoffMode::Bounded;
            cfg.chain_batch = true;
        }
        _ => debug_assert_eq!(arm, "base"),
    }
    cfg
}

fn cursor_hot_path(c: &mut Criterion) {
    let threads = 2;
    let mut group = c.benchmark_group("cursor_hot_path");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(OPS_PER_THREAD * threads as u64));
    for ds in [DsKind::SkipList, DsKind::Tree] {
        for arm in ["base", "repin", "prefetch", "backoff", "batch", "all"] {
            let name = format!("{}_{}", ds.name(), arm);
            group.bench_function(BenchmarkId::new("EBR", name), |b| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let cfg = arm_config(threads, arm);
                        let (_, elapsed, _) = run_fixed_ops(ds, SmrKind::Ebr, &cfg, OPS_PER_THREAD);
                        total += Duration::from_secs_f64(elapsed);
                    }
                    total
                })
            });
        }
    }
    group.finish();
}

fn cursor_repin_sweep(c: &mut Criterion) {
    // How far does repin elision scale?  The guard-refresh interval swept
    // from the paper's pin-per-op protocol (1) up to 256 ops per pin on the
    // skip list under EBR, where every repin elided is a fence saved.
    let threads = 2;
    let mut group = c.benchmark_group("cursor_repin_sweep");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(OPS_PER_THREAD * threads as u64));
    for pin_batch in [1u64, 4, 16, 64, 256] {
        group.bench_function(BenchmarkId::new("SkipList_EBR", pin_batch), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let mut cfg = RunConfig::paper_default(threads, 8192);
                    cfg.pin_batch = pin_batch;
                    let (_, elapsed, _) =
                        run_fixed_ops(DsKind::SkipList, SmrKind::Ebr, &cfg, OPS_PER_THREAD);
                    total += Duration::from_secs_f64(elapsed);
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, cursor_hot_path, cursor_repin_sweep);
criterion_main!(benches);
