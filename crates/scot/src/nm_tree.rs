//! The Natarajan-Mittal lock-free external binary search tree with **SCOT**
//! safe optimistic traversals (paper §3.3, Figure 6).
//!
//! # The data structure
//!
//! The tree is *external* (leaf-oriented): every key lives in a leaf, internal
//! nodes carry routing keys only.  Concurrent deletion works on *edges* rather
//! than nodes, using two mark bits stolen from child pointers:
//!
//! * **flag** — set on the edge to a leaf that is being deleted (the paper's
//!   analogue of Harris' logical deletion; the delete linearizes here);
//! * **tag**  — set on the sibling edge underneath the leaf's parent so no
//!   insertion can slip in while the parent is being removed.
//!
//! A `CleanUp` then prunes the whole chain of tagged edges with a **single
//! CAS** on the deepest untagged edge above it (from the *ancestor* to the
//! *successor*), which is what makes this tree faster than Ellen et al.'s —
//! and also exactly the optimistic traversal that is unsafe under HP/HE/IBR/
//! Hyaline without SCOT: a concurrent `Seek` can walk across tagged edges into
//! nodes that the pruning CAS has already handed to the reclaimer.
//!
//! # SCOT for the tree
//!
//! Five hazard slots are used (paper §3.3): `Hp0` the child pointer being
//! followed, `Hp1` the current leaf candidate, `Hp2` its parent, `Hp3` the
//! successor (entrance of the tagged zone) and `Hp4` the ancestor.  Whenever
//! the traversal crosses a **marked** (flagged or tagged) edge, it first
//! validates that the deepest clean edge above the destination still holds its
//! recorded value — `ancestor → successor` inside a tagged chain, or the
//! immediate parent edge when that edge is itself still clean — and restarts
//! the whole `Seek` if the validation fails.  Per §3.2.2 the tree does not use
//! the recovery optimization: diverging traversals simply restart.

use crate::slots::{HP_ANC, HP_CHILD, HP_LEAF, HP_PARENT, HP_SUCC, HP_VICTIM};
use crate::traverse::{validate_link, TraversalStats};
use crate::{Key, RangeScan, TraversalSnapshot, Value};
use scot_smr::{Atomic, Link, Shared, Smr, SmrConfig, SmrGuard, SmrHandle};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Edge mark: the child is a leaf undergoing deletion.
const FLAG: usize = 1;
/// Edge mark: no insertion may occur under this edge (sibling of a flagged
/// leaf whose parent is being removed).
const TAG: usize = 2;

/// Routing/leaf key with the three sentinel infinities of the original paper
/// (`Fin(k) < Inf0 < Inf1 < Inf2` for every real key `k`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum TreeKey<K> {
    /// A real key.
    Fin(K),
    /// Smallest sentinel (initial leaf under `S`).
    Inf0,
    /// Middle sentinel (right leaf of `S`).
    Inf1,
    /// Largest sentinel (root `R` and its right leaf).
    Inf2,
}

impl<K: Ord> PartialOrd for TreeKey<K> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord> Ord for TreeKey<K> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering::*;
        use TreeKey::*;
        match (self, other) {
            (Fin(a), Fin(b)) => a.cmp(b),
            (Fin(_), _) => Less,
            (_, Fin(_)) => Greater,
            (Inf0, Inf0) | (Inf1, Inf1) | (Inf2, Inf2) => Equal,
            (Inf0, _) => Less,
            (_, Inf0) => Greater,
            (Inf1, _) => Less,
            (_, Inf1) => Greater,
        }
    }
}

/// A tree node.  Leaves have two null children; internal nodes always have two
/// non-null children (external-tree invariant).  Only leaves holding a real
/// (`Fin`) key carry a value; routing nodes and the sentinels store `None`, so
/// the external-tree shape is reflected in the type: values live exactly where
/// keys are authoritative.
pub(crate) struct TreeNode<K, V> {
    pub(crate) key: TreeKey<K>,
    pub(crate) value: Option<V>,
    pub(crate) left: Atomic<TreeNode<K, V>>,
    pub(crate) right: Atomic<TreeNode<K, V>>,
}

impl<K, V> TreeNode<K, V> {
    fn sentinel_leaf(key: TreeKey<K>) -> Self {
        Self {
            key,
            value: None,
            left: Atomic::null(),
            right: Atomic::null(),
        }
    }
}

/// A generalized seek target: the ordinary "descend to `key`'s leaf" of the
/// paper, or the strictly-above probe the range scan's leaf-successor walk
/// uses ("descend to the position of `k + ε`").
#[derive(Clone, Copy, Debug)]
enum SeekQuery<K> {
    /// Descend to the leaf on `key`'s search path (the paper's `Seek(k)`).
    At(TreeKey<K>),
    /// Descend to where a key infinitesimally above `k` would live; the leaf
    /// reached is either the successor of `k` or its predecessor (whose
    /// interval upper bound — the deepest left-turn routing key — then names
    /// where the successor must be looked up).
    Above(K),
}

impl<K: Key> SeekQuery<K> {
    /// Whether the descent turns left at a node with routing key `routing`.
    #[inline]
    fn goes_left(&self, routing: &TreeKey<K>) -> bool {
        match self {
            SeekQuery::At(q) => q < routing,
            // `k + ε < routing ⟺ Fin(k) < routing`: routing keys are realized
            // key values, so nothing can sit strictly between `k` and `k + ε`.
            SeekQuery::Above(k) => &TreeKey::Fin(*k) < routing,
        }
    }

    /// Whether a leaf holding `key` satisfies this query's lower bound.
    #[inline]
    fn admits(&self, key: &K) -> bool {
        match self {
            SeekQuery::At(q) => &TreeKey::Fin(*key) >= q,
            SeekQuery::Above(k) => key > k,
        }
    }
}

/// The result of a `Seek`: the four nodes of the paper's seek record plus the
/// link (field address) of the ancestor → successor edge and the value of the
/// parent → leaf edge as it was read.
struct SeekRecord<K, V> {
    /// Kept for parity with the paper's seek record; the CAS itself goes
    /// through `ancestor_link`, and the hazard slot HP_ANC keeps the node
    /// protected, so the field is informational.
    #[allow(dead_code)]
    ancestor: Shared<TreeNode<K, V>>,
    successor: Shared<TreeNode<K, V>>,
    parent: Shared<TreeNode<K, V>>,
    leaf: Shared<TreeNode<K, V>>,
    /// The ancestor's child field on the search path (CAS target of CleanUp).
    ancestor_link: Link<TreeNode<K, V>>,
    /// Value of the parent → leaf edge when it was traversed (marks included).
    #[allow(dead_code)]
    parent_edge: Shared<TreeNode<K, V>>,
    /// Routing key of the deepest node at which the descent turned left: the
    /// upper bound of the reached leaf's key interval.  The range scan's
    /// successor walk resumes from it when the seek lands on a predecessor.
    left_turn: TreeKey<K>,
}

/// The Natarajan-Mittal ordered map with SCOT traversals, parameterized by the
/// reclamation scheme (`V = ()` gives the paper's membership set).
///
/// ```
/// use scot::{ConcurrentSet, NmTree};
/// use scot_smr::{He, Smr, SmrConfig};
///
/// let tree: NmTree<u64, He> = NmTree::new(He::new(SmrConfig::default()));
/// let mut h = tree.handle();
/// assert!(tree.insert(&mut h, 11));
/// assert!(tree.contains(&mut h, &11));
/// assert!(tree.remove(&mut h, &11));
/// ```
pub struct NmTree<K, S: Smr, V = ()> {
    /// Root sentinel `R` (key `Inf2`); `R.left = S`, `R.right = leaf(Inf2)`.
    root: Shared<TreeNode<K, V>>,
    smr: Arc<S>,
    stats: TraversalStats,
}

// SAFETY: the structure owns its nodes; every cross-thread access goes through atomic links and the SMR protocol.
unsafe impl<K: Key, S: Smr, V: Value> Send for NmTree<K, S, V> {}
// SAFETY: shared access is mediated by atomic links and guard-protected traversal; there is no unsynchronized interior mutability.
unsafe impl<K: Key, S: Smr, V: Value> Sync for NmTree<K, S, V> {}

/// Per-thread handle for [`NmTree`].
pub struct NmTreeHandle<S: Smr> {
    pub(crate) smr: S::Handle,
}

impl<S: Smr> NmTreeHandle<S> {
    /// Forces a reclamation pass on this thread's SMR handle.
    pub fn flush(&mut self) {
        self.smr.flush();
    }
}

impl<K: Key, S: Smr, V: Value> NmTree<K, S, V> {
    /// Creates an empty tree (sentinel structure of the original paper)
    /// managed by the given reclamation domain.
    pub fn new(smr: Arc<S>) -> Self {
        // Sentinels are allocated outside any guard: they are never retired,
        // so their (zero) birth era is irrelevant to every scheme.
        let leaf_inf0 = Shared::from_ptr(scot_smr::alloc_block(TreeNode::sentinel_leaf(
            TreeKey::Inf0,
        )));
        let leaf_inf1 = Shared::from_ptr(scot_smr::alloc_block(TreeNode::sentinel_leaf(
            TreeKey::Inf1,
        )));
        let leaf_inf2 = Shared::from_ptr(scot_smr::alloc_block(TreeNode::sentinel_leaf(
            TreeKey::Inf2,
        )));
        let s_node = Shared::from_ptr(scot_smr::alloc_block(TreeNode {
            key: TreeKey::Inf1,
            value: None,
            left: Atomic::new(leaf_inf0),
            right: Atomic::new(leaf_inf1),
        }));
        let r_node = Shared::from_ptr(scot_smr::alloc_block(TreeNode {
            key: TreeKey::Inf2,
            value: None,
            left: Atomic::new(s_node),
            right: Atomic::new(leaf_inf2),
        }));
        Self {
            root: r_node,
            smr,
            stats: TraversalStats::default(),
        }
    }

    /// Creates an empty tree with a freshly created domain using `config`.
    pub fn with_config(config: SmrConfig) -> Self {
        Self::new(S::new(config))
    }

    /// The reclamation domain backing this tree.
    pub fn domain(&self) -> &Arc<S> {
        &self.smr
    }

    /// Registers the calling thread.
    pub fn handle(&self) -> NmTreeHandle<S> {
        NmTreeHandle {
            smr: self.smr.register(),
        }
    }

    /// Number of full traversal restarts caused by SCOT validation failures.
    pub fn restarts(&self) -> u64 {
        self.stats.restarts()
    }

    /// The root sentinel `R` (always alive).
    #[inline]
    fn root_ref(&self) -> &TreeNode<K, V> {
        // SAFETY: the root sentinel is allocated in `new` and freed only in
        // `drop`, so it is alive for the lifetime of `&self`.
        unsafe { self.root.deref() }
    }

    /// `Seek`: descend to the leaf on the query's search path, maintaining
    /// the seek record and performing SCOT validation on every marked edge.
    /// The validation primitive itself is `crate::traverse::validate_link`;
    /// per §3.2.2 the tree uses no recovery ladder — a failed validation
    /// restarts the whole seek.
    ///
    /// `checkpoints` enables answering a scheme's restart request
    /// (`SmrGuard::needs_restart`) between descents: the acknowledging
    /// `checkpoint` voids every protection of the guard, which is sound here
    /// because the seek restarts from the immortal root and re-publishes all
    /// slots.  Callers holding a protected pointer of their own across the
    /// seek (the remover's `Hp5` victim after injection) must pass `false`.
    fn seek<G: SmrGuard>(
        &self,
        g: &mut G,
        query: &SeekQuery<K>,
        checkpoints: bool,
    ) -> SeekRecord<K, V> {
        'restart: loop {
            if checkpoints && g.needs_restart() {
                g.checkpoint();
                self.stats.record_restart();
                // Fall through: this iteration starts from the root and
                // republishes every slot, which is a complete acknowledgment.
            }
            let root = self.root;
            let root_ref = self.root_ref();
            // R and S are never removed, so no validation is required for the
            // first two levels; the protections are still published so generic
            // dup calls below keep every slot meaningful.
            g.announce(HP_ANC, root);
            let succ = g.protect(HP_PARENT, &root_ref.left); // S
            g.dup(HP_PARENT, HP_SUCC);
            let mut ancestor = root;
            let mut successor = succ;
            let mut ancestor_link = root_ref.left.as_link();
            let mut parent = succ;
            // SAFETY: S is a sentinel, never retired.
            let s_ref = unsafe { succ.deref() };
            let mut parent_edge_link = s_ref.left.as_link();
            let mut parent_edge = g.protect(HP_LEAF, &s_ref.left);
            let mut leaf = parent_edge.untagged();
            // The descent into S.left is the implicit deepest left turn so
            // far (S routes everything real to its left, key `Inf1`).
            let mut left_turn = TreeKey::Inf1;
            // Whether the previous step crossed a marked edge: the zone-entry
            // statistic counts contiguous marked chains once, like the list
            // cursor's `enter_zone`, not once per edge.
            let mut in_zone = false;

            loop {
                if checkpoints && g.needs_restart() {
                    g.checkpoint();
                    self.stats.record_restart();
                    continue 'restart;
                }
                debug_assert!(!leaf.is_null(), "external tree: S.left is never null");
                // SAFETY: `leaf` is protected (HP_LEAF) and was validated when
                // it was the child being followed (or is the sentinel child of
                // S, reachable via a never-marked edge).
                let leaf_ref = unsafe { leaf.deref() };
                let field = if query.goes_left(&leaf_ref.key) {
                    left_turn = leaf_ref.key;
                    &leaf_ref.left
                } else {
                    &leaf_ref.right
                };
                let child = g.protect(HP_CHILD, field);
                if child.tag() != 0 {
                    // SCOT validation: before touching a node reached through
                    // a flagged/tagged edge, confirm the deepest clean edge
                    // above it still holds its recorded value; otherwise the
                    // chain may already have been pruned and reclaimed.
                    if !in_zone {
                        self.stats.record_zone_entry();
                        in_zone = true;
                    }
                    let ok = if parent_edge.tag() == 0 {
                        // The parent edge is the deepest clean edge.
                        //
                        // SAFETY: the link belongs to `parent` (HP_PARENT) or
                        // to the sentinel S.
                        unsafe { validate_link(parent_edge_link, parent_edge) }
                    } else {
                        // Inside a tagged chain: validate ancestor → successor.
                        //
                        // SAFETY: the link belongs to `ancestor` (HP_ANC) or R.
                        unsafe { validate_link(ancestor_link, successor) }
                    };
                    if !ok {
                        self.stats.record_restart();
                        continue 'restart;
                    }
                } else {
                    in_zone = false;
                }
                if child.untagged().is_null() {
                    // `leaf` is an actual leaf: the seek ends here.
                    return SeekRecord {
                        ancestor,
                        successor,
                        parent,
                        leaf,
                        ancestor_link,
                        parent_edge,
                        left_turn,
                    };
                }
                // Shift the seek record one level down (Figure 6 roles).
                if parent_edge.tag() & TAG == 0 {
                    // The edge into `leaf` is untagged: it becomes the new
                    // deepest untagged edge strictly above the next level.
                    ancestor = parent;
                    g.dup(HP_PARENT, HP_ANC);
                    successor = leaf;
                    g.dup(HP_LEAF, HP_SUCC);
                    ancestor_link = parent_edge_link;
                }
                parent = leaf;
                g.dup(HP_LEAF, HP_PARENT);
                leaf = child.untagged();
                g.dup(HP_CHILD, HP_LEAF);
                parent_edge = child;
                parent_edge_link = field.as_link();
            }
        }
    }

    /// `CleanUp`: tag the sibling edge and prune the chain of tagged edges
    /// between the successor and the parent with one CAS on the ancestor's
    /// child field.  Returns whether the prune CAS succeeded; the winner
    /// retires every removed node.
    fn cleanup<G: SmrGuard>(&self, g: &mut G, key: &TreeKey<K>, s: &SeekRecord<K, V>) -> bool {
        // SAFETY: `parent` is protected by HP_PARENT for the lifetime of the
        // seek record.
        let parent_ref = unsafe { s.parent.deref() };
        let (child_field, mut sibling_field) = if *key < parent_ref.key {
            (&parent_ref.left, &parent_ref.right)
        } else {
            (&parent_ref.right, &parent_ref.left)
        };
        let child_val = child_field.load(Ordering::Acquire);
        if child_val.tag() & FLAG == 0 {
            // We are helping a deletion whose flagged leaf is the *other*
            // child; the subtree to keep is then on our own search side.
            sibling_field = child_field;
        }
        // Tag the edge to the kept subtree so no insertion can slide under the
        // parent while it is being unlinked.
        loop {
            let v = sibling_field.load(Ordering::Acquire);
            if v.tag() & TAG != 0 {
                break;
            }
            if sibling_field
                .compare_exchange(
                    v,
                    v.with_tag(v.tag() | TAG),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                break;
            }
        }
        let sibling = sibling_field.load(Ordering::Acquire);
        // The promoted edge keeps the sibling's flag (it may itself be a leaf
        // under deletion by another operation) but drops the tag.
        let promoted = sibling.with_tag(sibling.tag() & FLAG);
        // Prune: one CAS on the ancestor's child field replaces the whole
        // chain of tagged edges (successor … parent) and the flagged leaves
        // hanging off it with the kept sibling subtree.
        //
        // SAFETY: the link belongs to `ancestor`, protected by HP_ANC (or R).
        if unsafe { s.ancestor_link.cas(s.successor, promoted) }.is_ok() {
            // SAFETY: we won the prune CAS: the chain rooted at `successor` is
            // now unreachable and this thread is its unique retirer.
            unsafe { self.retire_pruned_chain(g, s.successor, s.parent, sibling.untagged()) };
            true
        } else {
            false
        }
    }

    /// Retires the pruned chain: every internal node from `successor` down to
    /// `parent` plus the flagged leaf hanging off each of them, keeping only
    /// the subtree rooted at `kept` (the promoted sibling).
    ///
    /// # Safety
    /// The caller must have won the prune CAS that detached exactly this
    /// chain.
    unsafe fn retire_pruned_chain<G: SmrGuard>(
        &self,
        g: &mut G,
        successor: Shared<TreeNode<K, V>>,
        parent: Shared<TreeNode<K, V>>,
        kept: Shared<TreeNode<K, V>>,
    ) {
        let mut cur = successor;
        loop {
            debug_assert!(!cur.is_null());
            // SAFETY: the chain was detached by the prune CAS this caller
            // won, so every node on it is unreachable to new traversals but
            // still allocated — this thread is its unique owner until retire.
            let cur_ref = unsafe { cur.deref() };
            let left = cur_ref.left.load(Ordering::Acquire);
            let right = cur_ref.right.load(Ordering::Acquire);
            if cur == parent {
                // Retire the parent and the child that is not the kept
                // sibling (that child is the flagged leaf of the deletion
                // whose cleanup we completed).
                let victim = if left.untagged() == kept { right } else { left };
                debug_assert!(victim.untagged() != kept);
                // SAFETY: both nodes hang off the detached chain and are
                // retired exactly once — by the unique prune winner.
                unsafe {
                    g.retire(victim.untagged());
                    g.retire(cur);
                }
                return;
            }
            // Interior chain node: exactly one child edge is flagged (its
            // deleted leaf); the other (tagged) edge continues the chain.
            let (leaf_edge, next_edge) = if left.tag() & FLAG != 0 {
                (left, right)
            } else {
                (right, left)
            };
            // SAFETY: as above — chain nodes and their flagged leaves are
            // unreachable after the prune CAS and retired exactly once.
            unsafe {
                g.retire(leaf_edge.untagged());
                g.retire(cur);
            }
            cur = next_edge.untagged();
        }
    }

    /// Brand check — see [`HarrisList::check_guard`](crate::HarrisList).
    #[inline]
    fn check_guard<G: SmrGuard>(&self, g: &G) {
        assert_eq!(
            g.domain_addr(),
            Arc::as_ptr(&self.smr) as usize,
            "guard was pinned from a handle of a different map's reclamation domain"
        );
    }

    /// Visits every live `(key, value)` leaf pair (testing/diagnostics; must
    /// not run concurrently with removals under robust schemes — see
    /// [`crate::ConcurrentMap::collect`]).
    fn walk<F: FnMut(&K, &V)>(&self, mut f: F) {
        let mut stack = vec![self.root];
        while let Some(node) = stack.pop() {
            if node.is_null() {
                continue;
            }
            // SAFETY: quiescent traversal (test/diagnostic use only).
            let node_ref = unsafe { node.untagged().deref() };
            let left = node_ref.left.load(Ordering::Acquire);
            let right = node_ref.right.load(Ordering::Acquire);
            if left.untagged().is_null() && right.untagged().is_null() {
                if let (TreeKey::Fin(k), Some(v)) = (&node_ref.key, &node_ref.value) {
                    f(k, v);
                }
            } else {
                stack.push(left.untagged());
                stack.push(right.untagged());
            }
        }
    }
}

/// State of a [`TreeRange`] between two advances.
enum TreeScanState<K> {
    /// Next advance seeks with this query (a fresh validated descent).
    From(SeekQuery<K>),
    /// Past the upper bound or onto the sentinels.
    Done,
}

/// Guard-scoped range scan over an [`NmTree`]: a **leaf-successor walk**.
/// Each advance is one full validated `Seek` for the position just above the
/// last yielded key; when the descent lands on the predecessor leaf instead
/// of the successor (the tree's routing sent `k + ε` into an exhausted
/// interval), the walk re-seeks at the interval's upper bound — the deepest
/// left-turn routing key — which strictly increases until the successor or a
/// sentinel is reached.
pub struct TreeRange<'r, 'h, K: Key, S: Smr, V: Value = ()> {
    tree: &'r NmTree<K, S, V>,
    guard: &'r mut <S::Handle as SmrHandle>::Guard<'h>,
    state: TreeScanState<K>,
    hi: Option<K>,
}

impl<'r, 'h, K: Key, S: Smr, V: Value> RangeScan<K, V> for TreeRange<'r, 'h, K, S, V> {
    fn next_entry(&mut self) -> Option<(K, &V)> {
        // Position first (repeated seeks mutate the guard), then hand out the
        // guard-scoped borrow once, outside the loop.
        let (key, leaf) = loop {
            let query = match &self.state {
                TreeScanState::Done => return None,
                TreeScanState::From(q) => *q,
            };
            let s = self.tree.seek(&mut *self.guard, &query, true);
            // SAFETY: `leaf` is protected by HP_LEAF (published under the
            // seek's validation).
            let leaf_key = unsafe { s.leaf.deref() }.key;
            match leaf_key {
                TreeKey::Fin(k) if query.admits(&k) => {
                    if self.hi.is_some_and(|h| k >= h) {
                        self.state = TreeScanState::Done;
                        return None;
                    }
                    self.state = TreeScanState::From(SeekQuery::Above(k));
                    break (k, s.leaf);
                }
                TreeKey::Fin(_) => {
                    // Landed on the predecessor leaf: no live key exists
                    // below the deepest left-turn routing key, so the
                    // successor is the smallest key at or above it — unless
                    // that bound is already a sentinel, in which case no real
                    // key remains.
                    match s.left_turn {
                        TreeKey::Fin(_) => {
                            self.state = TreeScanState::From(SeekQuery::At(s.left_turn));
                        }
                        _ => {
                            self.state = TreeScanState::Done;
                            return None;
                        }
                    }
                }
                // A sentinel leaf: past every real key.
                _ => {
                    self.state = TreeScanState::Done;
                    return None;
                }
            }
        };
        // SAFETY: the leaf stays protected by HP_LEAF — no further seek runs
        // before the next advance, and the exclusive guard borrow keeps the
        // slot published while the returned borrow is alive.
        let leaf_ref = unsafe { leaf.deref_guarded(&*self.guard) };
        Some((
            key,
            leaf_ref
                .value
                .as_ref()
                .expect("a live Fin leaf always carries a value"),
        ))
    }
}

impl<K: Key, S: Smr, V: Value> crate::ConcurrentMap<K, V> for NmTree<K, S, V> {
    type Handle = NmTreeHandle<S>;
    type Guard<'h>
        = <S::Handle as SmrHandle>::Guard<'h>
    where
        Self: 'h;
    type Range<'r, 'h>
        = TreeRange<'r, 'h, K, S, V>
    where
        Self: 'h,
        'h: 'r;

    fn handle(&self) -> Self::Handle {
        NmTree::handle(self)
    }

    fn pin<'h>(&self, handle: &'h mut Self::Handle) -> Self::Guard<'h> {
        handle.smr.pin()
    }

    fn repin<'h>(&self, guard: &mut Self::Guard<'h>) {
        self.check_guard(&*guard);
        guard.repin();
    }

    fn get<'g, 'h>(&self, guard: &'g mut Self::Guard<'h>, key: &K) -> Option<&'g V> {
        self.check_guard(&*guard);
        let tkey = TreeKey::Fin(*key);
        let s = self.seek(&mut *guard, &SeekQuery::At(tkey), true);
        // SAFETY: `leaf` is protected by HP_LEAF, and the `&'g mut` guard
        // borrow keeps that slot published while the value borrow is alive.
        let leaf_ref = unsafe { s.leaf.deref_guarded(&*guard) };
        if leaf_ref.key == tkey {
            leaf_ref.value.as_ref()
        } else {
            None
        }
    }

    fn insert<'h>(&self, guard: &mut Self::Guard<'h>, key: K, value: V) -> Result<(), V> {
        self.check_guard(&*guard);
        let tkey = TreeKey::Fin(key);
        let mut s = self.seek(&mut *guard, &SeekQuery::At(tkey), true);
        // SAFETY: `leaf` is protected by HP_LEAF.
        if unsafe { s.leaf.deref() }.key == tkey {
            return Err(value);
        }
        // Allocate the new leaf once; the internal router is (re)initialized on
        // every attempt because its key and children depend on the leaf found.
        let new_leaf = guard.alloc(TreeNode {
            key: TreeKey::Fin(key),
            value: Some(value),
            left: Atomic::null(),
            right: Atomic::null(),
        });
        let new_internal = guard.alloc(TreeNode {
            key: TreeKey::Fin(key),
            value: None,
            left: Atomic::null(),
            right: Atomic::null(),
        });
        loop {
            // SAFETY: `leaf` is protected by HP_LEAF.
            let leaf_ref = unsafe { s.leaf.deref() };
            // SAFETY: `parent` is protected by HP_PARENT.
            let parent_ref = unsafe { s.parent.deref() };
            let child_field = if tkey < parent_ref.key {
                &parent_ref.left
            } else {
                &parent_ref.right
            };
            // Arrange the new internal node: smaller key on the left, larger
            // on the right, routing key = the larger of the two.
            //
            // SAFETY: `new_internal` is exclusively ours until the CAS below.
            unsafe {
                let internal = &mut *new_internal.as_ptr();
                if tkey < leaf_ref.key {
                    internal.key = leaf_ref.key;
                    internal.left = Atomic::new(new_leaf);
                    internal.right = Atomic::new(s.leaf);
                } else {
                    internal.key = TreeKey::Fin(key);
                    internal.left = Atomic::new(s.leaf);
                    internal.right = Atomic::new(new_leaf);
                }
            }
            match child_field.compare_exchange(
                s.leaf,
                new_internal,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(()) => return Ok(()),
                Err(observed) => {
                    // If the edge still leads to our leaf but is flagged or
                    // tagged, help the pending deletion before retrying.
                    if observed.untagged() == s.leaf && observed.tag() != 0 {
                        self.cleanup(&mut *guard, &tkey, &s);
                    }
                }
            }
            // A checkpoint here is still safe: neither allocation has been
            // published, so no thread can retire them out from under us.
            s = self.seek(&mut *guard, &SeekQuery::At(tkey), true);
            // SAFETY: `leaf` is protected by HP_LEAF.
            if unsafe { s.leaf.deref() }.key == tkey {
                // A concurrent insert won the race after our first seek.
                // SAFETY: neither allocation was ever published; the router
                // carries no value, the leaf carries the caller's — reclaim
                // both blocks and hand the value back instead of dropping it.
                unsafe {
                    guard.dealloc(new_internal);
                    let leaf = crate::take_unpublished(new_leaf);
                    return Err(leaf.value.expect("unpublished leaf keeps its value"));
                }
            }
        }
    }

    fn remove<'g, 'h>(&self, guard: &'g mut Self::Guard<'h>, key: &K) -> Option<&'g V> {
        self.check_guard(&*guard);
        let tkey = TreeKey::Fin(*key);
        // Injection phase: flag the edge to the victim leaf.
        let mut target: Shared<TreeNode<K, V>> = Shared::null();
        let mut injected = false;
        loop {
            // After injection the victim is pinned in Hp5 across re-seeks, so
            // a checkpoint (which voids that protection) must not be answered.
            let s = self.seek(&mut *guard, &SeekQuery::At(tkey), !injected);
            if !injected {
                // SAFETY: protected by HP_LEAF.
                let leaf_ref = unsafe { s.leaf.deref() };
                if leaf_ref.key != tkey {
                    return None;
                }
                // SAFETY: protected by HP_PARENT.
                let parent_ref = unsafe { s.parent.deref() };
                let child_field = if tkey < parent_ref.key {
                    &parent_ref.left
                } else {
                    &parent_ref.right
                };
                // Pin the prospective victim in the dedicated slot *before*
                // the injection CAS: the cleanup loop below re-seeks (and so
                // recycles slots 0–4), but slot 5 keeps the evicted leaf
                // protected until the caller's value borrow ends.  Durable by
                // the §3.2 dup argument: the leaf is protected by HP_LEAF and
                // was validated reachable when that protection was published.
                guard.dup(HP_LEAF, HP_VICTIM);
                match child_field.compare_exchange(
                    s.leaf,
                    s.leaf.with_tag(FLAG),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(()) => {
                        // The deletion linearizes here (injection succeeded).
                        injected = true;
                        target = s.leaf;
                        if self.cleanup(&mut *guard, &tkey, &s) {
                            break;
                        }
                    }
                    Err(observed) => {
                        if observed.untagged() == s.leaf && observed.tag() != 0 {
                            // Help the conflicting operation, then retry.
                            self.cleanup(&mut *guard, &tkey, &s);
                        }
                    }
                }
            } else {
                // Cleanup phase: keep pruning until our flagged leaf is gone.
                if s.leaf != target {
                    // Someone else already pruned our chain (helping insert or
                    // another delete); the deletion is complete.
                    break;
                }
                if self.cleanup(&mut *guard, &tkey, &s) {
                    break;
                }
            }
        }
        // SAFETY: `target` has been protected by HP_VICTIM since before the
        // injection CAS, no traversal touches that slot, and the `&'g mut`
        // guard borrow keeps it published for the borrow's lifetime — so the
        // retired leaf cannot be reclaimed while the caller reads its value.
        let leaf = unsafe { target.deref_guarded(&*guard) };
        Some(
            leaf.value
                .as_ref()
                .expect("a removed Fin leaf always carries a value"),
        )
    }

    fn contains<'h>(&self, guard: &mut Self::Guard<'h>, key: &K) -> bool {
        self.check_guard(&*guard);
        let tkey = TreeKey::Fin(*key);
        let s = self.seek(&mut *guard, &SeekQuery::At(tkey), true);
        // SAFETY: protected by HP_LEAF.
        unsafe { s.leaf.deref() }.key == tkey
    }

    fn scan<'r, 'h>(
        &'r self,
        guard: &'r mut Self::Guard<'h>,
        lo: K,
        hi: Option<K>,
    ) -> Self::Range<'r, 'h>
    where
        'h: 'r,
    {
        self.check_guard(&*guard);
        TreeRange {
            tree: self,
            guard,
            state: TreeScanState::From(SeekQuery::At(TreeKey::Fin(lo))),
            hi,
        }
    }

    fn collect(&self, _handle: &mut Self::Handle) -> Vec<(K, V)>
    where
        V: Clone,
    {
        let mut out = Vec::new();
        self.walk(|k, v| out.push((*k, v.clone())));
        out.sort_unstable_by_key(|entry| entry.0);
        out
    }

    fn flush(&self, handle: &mut Self::Handle) {
        handle.flush();
    }

    fn traversal_stats(&self) -> TraversalSnapshot {
        self.stats.snapshot()
    }
}

impl<K, S: Smr, V> Drop for NmTree<K, S, V> {
    fn drop(&mut self) {
        // Free every node still reachable from the root (sentinels included).
        let mut stack = vec![self.root];
        while let Some(node) = stack.pop() {
            if node.is_null() {
                continue;
            }
            let node = node.untagged();
            // SAFETY: exclusive access during drop; each reachable node is
            // visited exactly once (it has a single parent).
            unsafe {
                let node_ref = node.deref();
                stack.push(node_ref.left.load(Ordering::Relaxed).untagged());
                stack.push(node_ref.right.load(Ordering::Relaxed).untagged());
                scot_smr::free_block(scot_smr::header_of(node.as_ptr()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConcurrentSet;
    use scot_smr::{Ebr, He, Hp, Hyaline, Ibr, Nbr, Nr, Vbr};

    fn cfg() -> SmrConfig {
        SmrConfig {
            max_threads: 16,
            scan_threshold: 8,
            epoch_freq_per_thread: 1,
            snapshot_scan: false,
            ..SmrConfig::default()
        }
    }

    #[test]
    fn tree_key_ordering() {
        type T = TreeKey<u64>;
        assert!(T::Fin(u64::MAX) < T::Inf0);
        assert!(T::Inf0 < T::Inf1);
        assert!(T::Inf1 < T::Inf2);
        assert!(T::Fin(1) < T::Fin(2));
        assert_eq!(T::Fin(3), T::Fin(3));
        assert!(T::Inf2 > T::Fin(0));
    }

    fn basic_set_semantics<S: Smr>() {
        let tree: NmTree<u64, S> = NmTree::with_config(cfg());
        let mut h = tree.handle();
        assert!(!tree.contains(&mut h, &5));
        assert!(tree.insert(&mut h, 5));
        assert!(!tree.insert(&mut h, 5));
        assert!(tree.insert(&mut h, 2));
        assert!(tree.insert(&mut h, 8));
        assert!(tree.insert(&mut h, 1));
        assert!(tree.contains(&mut h, &1));
        assert!(tree.contains(&mut h, &2));
        assert!(tree.contains(&mut h, &5));
        assert!(tree.contains(&mut h, &8));
        assert!(!tree.contains(&mut h, &3));
        assert_eq!(tree.collect_keys(&mut h), vec![1, 2, 5, 8]);
        assert!(tree.remove(&mut h, &5));
        assert!(!tree.remove(&mut h, &5));
        assert!(!tree.contains(&mut h, &5));
        assert!(tree.remove(&mut h, &1));
        assert_eq!(tree.collect_keys(&mut h), vec![2, 8]);
    }

    #[test]
    fn basic_semantics_under_every_scheme() {
        basic_set_semantics::<Nr>();
        basic_set_semantics::<Ebr>();
        basic_set_semantics::<Hp>();
        basic_set_semantics::<He>();
        basic_set_semantics::<Ibr>();
        basic_set_semantics::<Hyaline>();
        basic_set_semantics::<Nbr>();
        basic_set_semantics::<Vbr>();
    }

    #[test]
    fn sequential_model_agreement() {
        // Differential test against BTreeSet on a random operation sequence.
        use std::collections::BTreeSet;
        let tree: NmTree<u32, Hp> = NmTree::with_config(cfg());
        let mut h = tree.handle();
        let mut model = BTreeSet::new();
        let mut x = 0x12345678u64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = (x % 512) as u32;
            match x % 3 {
                0 => assert_eq!(tree.insert(&mut h, key), model.insert(key), "insert {key}"),
                1 => assert_eq!(
                    tree.remove(&mut h, &key),
                    model.remove(&key),
                    "remove {key}"
                ),
                _ => assert_eq!(
                    tree.contains(&mut h, &key),
                    model.contains(&key),
                    "contains {key}"
                ),
            }
        }
        assert_eq!(
            tree.collect_keys(&mut h),
            model.iter().copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_and_single_element_edge_cases() {
        let tree: NmTree<u64, Ebr> = NmTree::with_config(cfg());
        let mut h = tree.handle();
        assert!(!tree.remove(&mut h, &0));
        assert!(tree.insert(&mut h, 0));
        assert!(tree.remove(&mut h, &0));
        assert!(!tree.remove(&mut h, &0));
        assert!(tree.collect_keys(&mut h).is_empty());
        // Re-insert after emptying.
        assert!(tree.insert(&mut h, u64::MAX));
        assert!(tree.contains(&mut h, &u64::MAX));
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        let tree: Arc<NmTree<u64, Hp>> = Arc::new(NmTree::with_config(cfg()));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let tree = tree.clone();
                s.spawn(move || {
                    let mut h = tree.handle();
                    for i in 0..500u64 {
                        assert!(tree.insert(&mut h, t * 10_000 + i));
                    }
                });
            }
        });
        let mut h = tree.handle();
        assert_eq!(tree.collect_keys(&mut h).len(), 2000);
        for t in 0..4u64 {
            for i in 0..500u64 {
                assert!(tree.contains(&mut h, &(t * 10_000 + i)));
            }
        }
    }

    #[test]
    fn concurrent_mixed_workload_is_consistent() {
        fn run<S: Smr>() {
            let tree: Arc<NmTree<u32, S>> = Arc::new(NmTree::with_config(cfg()));
            std::thread::scope(|s| {
                for t in 0..8u32 {
                    let tree = tree.clone();
                    s.spawn(move || {
                        let mut h = tree.handle();
                        let mut x = (t as u64) * 7 + 1;
                        for _ in 0..3000 {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            let key = (x % 128) as u32;
                            match x % 3 {
                                0 => {
                                    tree.insert(&mut h, key);
                                }
                                1 => {
                                    tree.remove(&mut h, &key);
                                }
                                _ => {
                                    tree.contains(&mut h, &key);
                                }
                            }
                        }
                    });
                }
            });
            let mut h = tree.handle();
            let keys = tree.collect_keys(&mut h);
            let mut dedup = keys.clone();
            dedup.dedup();
            assert_eq!(keys, dedup, "no key may appear in two leaves");
        }
        run::<Hp>();
        run::<Ebr>();
        run::<He>();
        run::<Ibr>();
        run::<Hyaline>();
        run::<Nbr>();
        run::<Vbr>();
    }

    #[test]
    fn all_retired_nodes_are_reclaimed_after_quiescence() {
        let domain = Hp::new(cfg());
        let tree: Arc<NmTree<u64, Hp>> = Arc::new(NmTree::new(domain.clone()));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let tree = tree.clone();
                s.spawn(move || {
                    let mut h = tree.handle();
                    for i in 0..500 {
                        let k = t * 10_000 + i;
                        tree.insert(&mut h, k);
                        tree.remove(&mut h, &k);
                    }
                    h.smr.flush();
                });
            }
        });
        let mut h = tree.handle();
        h.smr.flush();
        drop(h);
        assert_eq!(domain.unreclaimed(), 0);
    }

    #[test]
    fn contention_on_single_key_keeps_tree_valid() {
        // All threads insert and remove the same key: exercises helping,
        // flag/tag conflicts and repeated cleanup of length-1 chains.
        let tree: Arc<NmTree<u32, Ibr>> = Arc::new(NmTree::with_config(cfg()));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let tree = tree.clone();
                s.spawn(move || {
                    let mut h = tree.handle();
                    for _ in 0..2000 {
                        tree.insert(&mut h, 42);
                        tree.remove(&mut h, &42);
                    }
                });
            }
        });
        let mut h = tree.handle();
        let keys = tree.collect_keys(&mut h);
        assert!(keys.is_empty() || keys == vec![42]);
        // The structural sentinels must be intact: inserting still works.
        assert!(tree.insert(&mut h, 7) || tree.contains(&mut h, &7));
    }
}
