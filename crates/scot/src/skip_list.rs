//! A lock-free skip list with **SCOT** safe optimistic traversals.
//!
//! The skip list is the canonical multi-level optimistic-traversal structure
//! of the SMR literature (Fraser's CAS-based design, the Herlihy–Shavit
//! variant, and the `smr-benchmark` artifact family all use it as a stress
//! test for reclamation schemes), which makes it the natural sixth structure
//! for this reproduction: every level is an independent Harris-style ordered
//! list, so every level has its own dangerous zones, and the SCOT discipline
//! must hold *per level* for the robust schemes (HP/HE/IBR/Hyaline-1S) to be
//! safe.
//!
//! # Structure
//!
//! Each node is a *tower*: a key/value pair plus `height` forward pointers,
//! where `height` is drawn from a geometric distribution (see
//! [`tower_height`]).  Level 0 links every node and defines membership; upper
//! levels are express lanes.  Towers are allocated as height-specific blocks
//! (a `repr(C)` base node followed by `height - 1` extra links), so the SMR
//! block pool bins them by layout and recycles each height class separately —
//! this structure is the first in the workspace to exercise the pool's
//! multi-layout path.
//!
//! # Traversal and the per-level SCOT argument
//!
//! A search descends from the top level, at each level walking a sorted
//! Harris list whose logically-deleted nodes carry a mark bit on that level's
//! `next` pointer.  Walking a chain of marked nodes is the dangerous zone of
//! the paper (§3.1): the chain can be unlinked — and, once its removers
//! confirm the unlink, reclaimed — while the traversal is inside it.  The fix
//! is the same validation as in [`crate::HarrisList`], applied per level:
//! anchor the first unsafe node in a hazard slot and, before every step
//! deeper, re-check that the last safe node still points at it.
//!
//! On validation failure the list does **not** restart from the top of the
//! structure.  The recovery ladder, from cheapest to most expensive:
//!
//! 1. **§3.2.1 recovery** — if the last safe node is still unmarked, continue
//!    from its new successor (counted as a recovery);
//! 2. **restart from the highest valid level** — re-enter the *current* level
//!    from the node the descent entered it through (held in a dedicated
//!    hazard slot, `Hp4`, for exactly this purpose), preserving all the work
//!    of the levels above (also counted as a recovery);
//! 3. **restart the level from its head** — the per-level head pointer lives
//!    in the list structure and is never reclaimed, so this rung always
//!    succeeds; levels above remain valid, making this the skip-list analogue
//!    of the Harris list's restart-from-head (counted as a restart).
//!
//! `DESIGN.md` gives the per-scheme soundness argument for each rung.
//!
//! # Removal and exactly-once retirement
//!
//! Removal marks the tower top-down; marking **level 0 is the linearization
//! point** and elects exactly one remover.  Because an inserter builds its
//! tower *after* publishing level 0, a slow builder can link an upper level
//! after the remover's cleanup pass has already walked past that level —
//! retiring the node at that point would leave a reachable retired tower,
//! which is exactly the use-after-free class the paper's Figure 2 describes.
//! The tower therefore carries a three-state handshake word:
//!
//! * the builder finishes (or aborts on a mark) and CASes
//!   `BUILDING → DONE`;
//! * the remover CASes `BUILDING → HANDOFF`; whoever *loses* its CAS knows
//!   the other side is done and becomes the retirer, after one final
//!   cleanup traversal proves the tower is unlinked from every level.
//!
//! Either way the node is retired exactly once, and only once it is
//! unreachable from every level — the precondition every scheme's reclamation
//! proof rests on.
//!
//! Hazard-slot roles (extending the Figure 5 convention):
//!
//! | slot  | role |
//! |-------|------|
//! | `Hp0` | next node at the current level |
//! | `Hp1` | current node |
//! | `Hp2` | last safe node (`pred`) |
//! | `Hp3` | first unsafe node (dangerous-zone anchor) |
//! | `Hp4` | node the current level was entered through (restart anchor) |
//! | `Hp5` | removal victim, across the post-mark cleanup traversal |
//! | `Hp6` | the inserter's own tower, across the tower build |

use crate::slots::{HP_CURR, HP_ENTRY, HP_NEXT, HP_PREV, HP_TOWER, HP_VICTIM};
use crate::traverse::{
    self, Cursor, Restart, ScanState, Seek, SeekBound, SlotNode, TraversalStats, ZoneMode, MARK,
};
use crate::{Key, RangeScan, TraversalSnapshot, Value};
use scot_smr::{Atomic, Link, Shared, Smr, SmrConfig, SmrGuard, SmrHandle};
use std::mem;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Maximum tower height.  With the geometric height distribution of
/// [`tower_height`] (`p = 1/2`), twelve levels keep the expected search cost
/// logarithmic up to a few thousand times more keys than the paper's largest
/// skip-listable workloads while bounding the monomorphized tower layouts the
/// block pool has to bin.
pub const MAX_HEIGHT: usize = 12;

/// Tower-build handshake states (see the module documentation).
const BUILDING: usize = 0;
const DONE: usize = 1;
const HANDOFF: usize = 2;

/// Samples a tower height in `1..=MAX_HEIGHT` from a geometric distribution
/// with `p = 1/2`, advancing the caller's xorshift64* state.
///
/// The function is deliberately a free, deterministic function of the RNG
/// state: given the same seed it produces the same height sequence, which is
/// what lets the height-distribution tests assert the geometric bounds
/// exactly rather than statistically guessing.  `state` must be non-zero
/// (xorshift has an all-zero fixed point); [`SkipList::handle_with_seed`]
/// forces the low bit for exactly that reason.
pub fn tower_height(state: &mut u64) -> usize {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    let bits = x.wrapping_mul(0x2545F4914F6CDD1D);
    1 + (bits.trailing_ones() as usize).min(MAX_HEIGHT - 1)
}

/// Seed source for handles created through [`SkipList::handle`]: a global
/// counter hashed through SplitMix64 so concurrently created handles draw
/// independent height streams.
fn fresh_seed() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0x5c07);
    let mut z = COUNTER
        .fetch_add(0x9e3779b97f4a7c15, Ordering::Relaxed)
        .wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    (z ^ (z >> 31)) | 1
}

/// The fixed prefix of every tower: level-0 link, handshake word, height, and
/// the key/value payload.  Taller towers append `height - 1` extra links
/// after this prefix (see [`Tower`]); all tower pointers in the list are
/// typed as `Node` pointers and upper links are reached through
/// [`Node::level`].
#[repr(C)]
pub(crate) struct Node<K, V> {
    /// Level-0 successor; its tag bit is the node's logical-deletion mark
    /// (marking level 0 linearizes the removal).
    next0: Atomic<Node<K, V>>,
    /// Tower-build handshake word (`BUILDING`/`DONE`/`HANDOFF`).
    state: AtomicUsize,
    /// Number of levels this tower participates in (`1..=MAX_HEIGHT`).
    height: usize,
    key: K,
    value: V,
}

/// A height-`EXTRA + 1` tower: the node prefix plus `EXTRA` upper links.
///
/// One monomorphized type exists per height, so each height class has its own
/// `Block` layout — and therefore its own bin in the SMR block pool.
#[repr(C)]
struct Tower<K, V, const EXTRA: usize> {
    base: Node<K, V>,
    upper: [Atomic<Node<K, V>>; EXTRA],
}

/// Byte offset of the first upper link relative to the node base.  `repr(C)`
/// places `upper` immediately after `base` (rounded to the link alignment)
/// regardless of `EXTRA`, so the offset computed for `EXTRA = 1` is valid for
/// every taller tower as well.
#[inline]
fn upper_offset<K, V>() -> usize {
    mem::offset_of!(Tower<K, V, 1>, upper)
}

impl<K, V> Node<K, V> {
    /// The link cell for level `lvl` of this tower.
    ///
    /// # Safety
    /// `lvl < self.height`: the tower allocation only carries `height` links,
    /// and a node reached through a level-`lvl` pointer always satisfies this
    /// (a node is only ever linked at levels below its height).
    #[inline]
    unsafe fn level(&self, lvl: usize) -> &Atomic<Node<K, V>> {
        debug_assert!(lvl < self.height, "level {lvl} out of tower bounds");
        if lvl == 0 {
            &self.next0
        } else {
            // SAFETY: the tower was allocated as a `Tower<K, V, EXTRA>` with
            // `EXTRA = height - 1` upper links laid out contiguously at
            // `upper_offset` (repr(C), identical for every EXTRA); the
            // caller's `lvl < height` contract keeps the index in bounds.
            unsafe {
                let first = (self as *const Self as *const u8).add(upper_offset::<K, V>())
                    as *const Atomic<Node<K, V>>;
                &*first.add(lvl - 1)
            }
        }
    }
}

impl<K: Key, V: Value> SlotNode<K> for Node<K, V> {
    type Value = V;

    #[inline]
    // SAFETY: callers must keep `level < self.height()`; forwarded to `SlotNode::successor`'s contract.
    unsafe fn successor(&self, level: usize) -> &Atomic<Self> {
        // SAFETY: forwarded — `SlotNode::successor`'s contract (`level`
        // below this node's height) is exactly `Node::level`'s.
        unsafe { self.level(level) }
    }

    #[inline]
    fn node_key(&self) -> &K {
        &self.key
    }

    #[inline]
    fn node_value(&self) -> &V {
        &self.value
    }
}

/// Result of the internal multi-level find, describing the target level:
/// the predecessor link (for CAS), the protected `curr` snapshot and whether
/// `curr` matches the key.  (Unlike the Harris list, removal re-reads the
/// victim's level links itself — marking is a CAS loop per level — so the
/// `next` snapshot is not part of the result.)
struct LevelPos<K, V> {
    pred: Link<Node<K, V>>,
    curr: Shared<Node<K, V>>,
    found: bool,
}

/// A lock-free skip list with SCOT traversals, parameterized by the
/// reclamation scheme.  The value type defaults to `()`, the membership-set
/// configuration (see [`crate::ConcurrentSet`]).
///
/// ```
/// use scot::{ConcurrentMap, SkipList};
/// use scot_smr::{Hp, Smr, SmrConfig};
///
/// let list: SkipList<u64, Hp, &'static str> =
///     SkipList::new(Hp::new(SmrConfig::default()));
/// let mut handle = ConcurrentMap::handle(&list);
/// let mut guard = list.pin(&mut handle);
/// assert!(list.insert(&mut guard, 7, "seven").is_ok());
/// assert_eq!(list.get(&mut guard, &7).copied(), Some("seven"));
/// // A conflicting insert hands the rejected value back.
/// assert_eq!(list.insert(&mut guard, 7, "again"), Err("again"));
/// // Remove returns one last guard-protected borrow of the evicted value.
/// assert_eq!(list.remove(&mut guard, &7).copied(), Some("seven"));
/// assert!(list.get(&mut guard, &7).is_none());
/// ```
pub struct SkipList<K, S: Smr, V = ()> {
    /// One head link per level; the implicit head tower has every level and
    /// is never marked or reclaimed, which is what makes the last rung of the
    /// recovery ladder unconditional.
    head: [Atomic<Node<K, V>>; MAX_HEIGHT],
    smr: Arc<S>,
    stats: TraversalStats,
}

// SAFETY: the structure owns its nodes; every cross-thread access goes through atomic links and the SMR protocol.
unsafe impl<K: Key, S: Smr, V: Value> Send for SkipList<K, S, V> {}
// SAFETY: shared access is mediated by atomic links and guard-protected traversal; there is no unsynchronized interior mutability.
unsafe impl<K: Key, S: Smr, V: Value> Sync for SkipList<K, S, V> {}

/// Per-thread handle for [`SkipList`]: the SMR registration plus the thread's
/// height-sampling RNG state.
pub struct SkipListHandle<S: Smr> {
    smr: S::Handle,
    rng: u64,
}

impl<S: Smr> SkipListHandle<S> {
    /// Forces a reclamation pass (limbo scan / epoch advance) on this
    /// thread's SMR handle; useful in tests and at controlled quiescence
    /// points.
    pub fn flush(&mut self) {
        self.smr.flush();
    }
}

/// Critical-section guard for [`SkipList`]: the underlying SMR guard plus a
/// split-borrow of the handle's height RNG, so `insert` can sample tower
/// heights without widening the `ConcurrentMap` interface.
#[must_use = "dropping a guard unpublishes every protection it holds"]
pub struct SkipListGuard<'h, S: Smr> {
    g: <S::Handle as SmrHandle>::Guard<'h>,
    rng: &'h mut u64,
}

impl<K: Key, S: Smr, V: Value> SkipList<K, S, V> {
    /// Creates an empty skip list managed by the given reclamation domain.
    pub fn new(smr: Arc<S>) -> Self {
        Self {
            head: std::array::from_fn(|_| Atomic::null()),
            smr,
            stats: TraversalStats::default(),
        }
    }

    /// Creates an empty skip list with a freshly created domain using
    /// `config`.
    pub fn with_config(config: SmrConfig) -> Self {
        Self::new(S::new(config))
    }

    /// The reclamation domain backing this list (used by the harness to read
    /// memory-overhead statistics).
    pub fn domain(&self) -> &Arc<S> {
        &self.smr
    }

    /// Registers the calling thread with a fresh height-RNG seed.
    pub fn handle(&self) -> SkipListHandle<S> {
        self.handle_with_seed(fresh_seed())
    }

    /// Registers the calling thread with a caller-chosen height-RNG seed, so
    /// tests can reproduce an exact tower-height sequence (the heights drawn
    /// are precisely `tower_height` iterated on `seed | 1`).
    pub fn handle_with_seed(&self, seed: u64) -> SkipListHandle<S> {
        SkipListHandle {
            smr: self.smr.register(),
            rng: seed | 1,
        }
    }

    /// Number of restart-ladder rung-3 events: a level re-entered from its
    /// head after both the predecessor and the level-entry anchor died
    /// (Table 2's restart column).
    pub fn restarts(&self) -> u64 {
        self.stats.restarts()
    }

    /// Number of cheap recoveries (ladder rungs 1 and 2): continuations from
    /// a still-valid predecessor or level-entry anchor that avoided a
    /// restart.
    pub fn recoveries(&self) -> u64 {
        self.stats.recoveries()
    }

    /// Brand check, identical in purpose to [`crate::HarrisList`]'s: reject
    /// guards pinned from another domain's handle before they publish
    /// protections where this domain's reclaimers never look.
    #[inline]
    fn check_guard(&self, g: &SkipListGuard<'_, S>) {
        assert_eq!(
            g.g.domain_addr(),
            Arc::as_ptr(&self.smr) as usize,
            "guard was pinned from a handle of a different map's reclamation domain"
        );
    }

    /// Allocates a tower of the given height through the guard (and therefore
    /// through the scheme's block pool), dispatching to the height-specific
    /// monomorphized layout so each height class recycles in its own pool
    /// bin.
    fn alloc_tower<G: SmrGuard>(g: &mut G, key: K, value: V, height: usize) -> Shared<Node<K, V>> {
        macro_rules! arm {
            ($extra:expr) => {{
                let tower: Shared<Tower<K, V, $extra>> = g.alloc(Tower {
                    base: Node {
                        next0: Atomic::null(),
                        state: AtomicUsize::new(BUILDING),
                        height,
                        key,
                        value,
                    },
                    upper: std::array::from_fn(|_| Atomic::null()),
                });
                // repr(C): the node prefix sits at offset 0 of the tower.
                Shared::from_raw(tower.into_raw())
            }};
        }
        match height {
            1 => arm!(0),
            2 => arm!(1),
            3 => arm!(2),
            4 => arm!(3),
            5 => arm!(4),
            6 => arm!(5),
            7 => arm!(6),
            8 => arm!(7),
            9 => arm!(8),
            10 => arm!(9),
            11 => arm!(10),
            12 => arm!(11),
            _ => unreachable!("tower_height yields 1..=MAX_HEIGHT"),
        }
    }

    /// Multi-level find: descends from the top level to `target_level`,
    /// running the shared `Cursor` per level.  The cursor applies the SCOT
    /// validation in every dangerous zone and reports ladder outcomes; this
    /// method only translates them into the level re-entry: `Restart::Entry`
    /// re-enters through the level's entry anchor (held in `Hp4`,
    /// [`crate::slots::HP_ENTRY`], and re-published into `Hp2` by the cursor —
    /// sound despite copying "downwards" because `Hp4` protects the entry
    /// continuously for the whole level), `Restart::Head` falls back to the
    /// level's immortal head link, and `Restart::Operation` (a scheme
    /// checkpoint voided every protection, including the upper levels'
    /// anchors) resets the whole descent from the top.
    ///
    /// `checkpoints` is forwarded to every level's cursor; pass `false` when
    /// the calling operation holds a protected pointer of its own across this
    /// find (the tower builder's `Hp6` node, the remover's `Hp5` victim).
    fn find<G: SmrGuard>(
        &self,
        g: &mut G,
        key: &K,
        cleanup: bool,
        checkpoints: bool,
        target_level: usize,
    ) -> LevelPos<K, V> {
        self.find_bound(g, &SeekBound::Ge(*key), cleanup, checkpoints, target_level)
    }

    /// [`SkipList::find`] generalized over the stop bound, which is what the
    /// range scan's re-positioning uses (`Gt` bounds).  In cleanup mode,
    /// marked chains are physically unlinked before the descent continues —
    /// but, unlike the Harris list, **never retired here**: retirement
    /// belongs exclusively to the marking remover or the handed-off builder
    /// (see the module documentation), because a node unlinked from one level
    /// may still be reachable through another.
    ///
    /// On return, `Hp2`/`Hp1`/`Hp0` protect `pred`/`curr`/`next` at
    /// `target_level`.
    fn find_bound<G: SmrGuard>(
        &self,
        g: &mut G,
        bound: &SeekBound<K>,
        cleanup: bool,
        checkpoints: bool,
        target_level: usize,
    ) -> LevelPos<K, V> {
        debug_assert!(target_level < MAX_HEIGHT);
        // `pred` is the last node with key below the bound seen so far; null
        // means the implicit head tower.  Protected by Hp2 whenever interior.
        let mut pred: Shared<Node<K, V>> = Shared::null();
        let mut level = MAX_HEIGHT;
        'descend: loop {
            level -= 1;
            // The node this level is entered through: the restart anchor for
            // ladder rung 2.  It stays protected by Hp4 for the whole level.
            let entry = pred;
            if !entry.is_null() {
                g.dup(HP_PREV, HP_ENTRY);
            }
            let pos = 'level: loop {
                // (Re)start the level traversal from `pred`.
                //
                // SAFETY: `pred` is the head or protected by Hp2/Hp4; its
                // height exceeds `level` because it was reached through a
                // level >= `level` link.
                let start = if pred.is_null() {
                    self.head[level].as_link()
                } else {
                    // SAFETY: `pred` was validated at this level, so it is protected and tall enough.
                    unsafe { pred.deref().level(level) }.as_link()
                };
                let mut c = match Cursor::begin(
                    g,
                    pred,
                    start,
                    level,
                    entry,
                    checkpoints,
                    &self.stats,
                    ZoneMode::Scot { recovery: true },
                ) {
                    Ok(c) => c,
                    // `pred` is marked at this level: ladder rung 2 or 3.
                    Err(Restart::Entry) => {
                        pred = entry;
                        continue 'level;
                    }
                    Err(Restart::Head) => {
                        pred = Shared::null();
                        continue 'level;
                    }
                    // `begin` never polls the checkpoint, but stay total.
                    Err(Restart::Operation) => {
                        pred = Shared::null();
                        level = MAX_HEIGHT;
                        continue 'descend;
                    }
                };
                match c.seek(g, bound, || false) {
                    Seek::Positioned => {}
                    Seek::Restart(Restart::Entry) => {
                        pred = entry;
                        continue 'level;
                    }
                    Seek::Restart(Restart::Head) => {
                        pred = Shared::null();
                        continue 'level;
                    }
                    // Rung 4: the checkpoint voided every protection, the
                    // upper levels' anchors included — redo the whole descent.
                    Seek::Restart(Restart::Operation) => {
                        pred = Shared::null();
                        level = MAX_HEIGHT;
                        continue 'descend;
                    }
                    Seek::Interrupted => unreachable!("find has no interrupt source"),
                }
                // Per-level cleanup: unlink the pending marked chain, without
                // retiring (towers retire through their handshake).
                if cleanup {
                    match c.unlink_pending(g, false) {
                        Ok(()) => {}
                        Err(Restart::Entry) => {
                            pred = entry;
                            continue 'level;
                        }
                        Err(Restart::Head) => {
                            pred = Shared::null();
                            continue 'level;
                        }
                        // As above: unreachable from `unlink_pending`, total.
                        Err(Restart::Operation) => {
                            pred = Shared::null();
                            level = MAX_HEIGHT;
                            continue 'descend;
                        }
                    }
                }
                // Descend: this level's last safe node is the entry node of
                // `level - 1`.
                pred = c.pred();
                let curr = c.curr();
                break 'level LevelPos {
                    pred: c.prev_link(),
                    curr,
                    found: !curr.is_null() && {
                        match bound {
                            // SAFETY: `curr` is protected (Hp1) and durable;
                            // positioned exits guarantee it is unmarked.
                            SeekBound::Ge(k) => unsafe { curr.deref() }.key == *k,
                            // A strict bound never "finds" its key.
                            SeekBound::Gt(_) => false,
                        }
                    },
                };
            };
            if level == target_level {
                return pos;
            }
        }
    }

    /// Builds the upper levels of a freshly level-0-linked tower, then runs
    /// the retirement handshake.  Aborts as soon as the node is marked (a
    /// concurrent removal); if the remover already handed retirement off,
    /// unlinks the tower everywhere and retires it.
    fn build_tower<G: SmrGuard>(
        &self,
        g: &mut G,
        node: Shared<Node<K, V>>,
        key: &K,
        height: usize,
    ) {
        // SAFETY: `node` is protected by Hp6 for the whole build.
        let node_ref = unsafe { node.deref() };
        'levels: for lvl in 1..height {
            loop {
                // Checkpoints stay off: `node` may already be published, and
                // a checkpoint would void its Hp6 protection mid-build.
                let pos = self.find(g, key, true, false, lvl);
                if pos.found {
                    if pos.curr == node {
                        // Already linked at this level (a lost pred-CAS race
                        // resolved in our favour on retry); move up.
                        break;
                    }
                    // A different live node with our key exists at this
                    // level, which is only possible after our node was
                    // removed and the key reinserted: stop building.
                    break 'levels;
                }
                // Point our level at the successor first.  The CAS fails only
                // if a remover marked this level in the meantime (nobody else
                // writes another tower's links), in which case building must
                // stop.
                //
                // SAFETY: `lvl < height` by the loop bounds.
                let own_link = unsafe { node_ref.level(lvl) };
                let prev = own_link.load(Ordering::Acquire);
                if prev.tag() != 0
                    || own_link
                        .compare_exchange(prev, pos.curr, Ordering::AcqRel, Ordering::Acquire)
                        .is_err()
                {
                    break 'levels;
                }
                // SAFETY: `pos.pred`'s owner is the head or protected (Hp2).
                if unsafe { pos.pred.cas(pos.curr, node) }.is_ok() {
                    break;
                }
                // Lost the link CAS to a concurrent update: retry the level.
            }
        }
        if node_ref
            .state
            .compare_exchange(BUILDING, DONE, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            // A remover marked the tower mid-build and handed retirement off.
            // No further links can appear (every level is marked now and the
            // build has stopped), so one cleanup traversal conclusively
            // unlinks the tower from every level it ever reached.
            let _ = self.find(g, key, true, false, 0);
            // SAFETY: the handshake elects exactly one retirer, the cleanup
            // pass above confirmed the tower is unreachable from every level,
            // and Hp6 keeps the node protected while we still touch it.
            unsafe { g.retire(node) };
        }
    }

    /// Visits every live entry in ascending key order (level-0 walk), passing
    /// key and value borrows to `f`.  Same caveats as
    /// [`crate::ConcurrentMap::collect`]: the walk skips the SCOT validation,
    /// so it must not run concurrently with removals under a robust scheme.
    fn walk<G: SmrGuard, F: FnMut(&K, &V)>(&self, g: &mut G, mut f: F) {
        let mut curr = g.protect(HP_CURR, &self.head[0]);
        while !curr.is_null() {
            // SAFETY: protected by the Hp1/Hp0 ping-pong below.
            let node = unsafe { curr.deref() };
            let next = g.protect(HP_NEXT, &node.next0);
            if next.tag() == 0 {
                f(&node.key, &node.value);
            }
            curr = next.untagged();
            g.dup(HP_NEXT, HP_CURR);
        }
    }
}

/// Guard-scoped range scan over a [`SkipList`]: parks on the last yielded
/// node of the membership level (level 0) and re-positions through the full
/// multi-level descent when disrupted — so scan steps are cheap but every
/// re-positioning is a validated `O(log n)` search.
pub struct SkipRange<'r, 'h, K: Key, S: Smr, V: Value = ()> {
    list: &'r SkipList<K, S, V>,
    guard: &'r mut SkipListGuard<'h, S>,
    state: ScanState<K, Node<K, V>>,
    hi: Option<K>,
}

impl<'r, 'h, K: Key, S: Smr, V: Value> RangeScan<K, V> for SkipRange<'r, 'h, K, S, V> {
    fn next_entry(&mut self) -> Option<(K, &V)> {
        let list = self.list;
        traverse::scan_entry(
            &mut self.guard.g,
            &mut self.state,
            self.hi.as_ref(),
            0,
            |g, bound| list.find_bound(g, bound, false, true, 0).curr,
        )
    }
}

impl<K: Key, S: Smr, V: Value> crate::ConcurrentMap<K, V> for SkipList<K, S, V> {
    type Handle = SkipListHandle<S>;
    type Guard<'h>
        = SkipListGuard<'h, S>
    where
        Self: 'h;
    type Range<'r, 'h>
        = SkipRange<'r, 'h, K, S, V>
    where
        Self: 'h,
        'h: 'r;

    fn handle(&self) -> Self::Handle {
        SkipList::handle(self)
    }

    fn pin<'h>(&self, handle: &'h mut Self::Handle) -> Self::Guard<'h> {
        // Split-borrow the handle: the SMR guard takes the registration, the
        // height RNG stays reachable for insert.
        let SkipListHandle { smr, rng } = handle;
        SkipListGuard { g: smr.pin(), rng }
    }

    fn repin<'h>(&self, guard: &mut Self::Guard<'h>) {
        self.check_guard(&*guard);
        guard.g.repin();
    }

    fn get<'g, 'h>(&self, guard: &'g mut Self::Guard<'h>, key: &K) -> Option<&'g V> {
        self.check_guard(&*guard);
        let pos = self.find(&mut guard.g, key, false, true, 0);
        if pos.found {
            // SAFETY: `curr` is protected by Hp1 (published under the SCOT
            // validation during the find) and the `&'g mut` guard borrow
            // prevents any further operation from recycling that slot while
            // the returned value borrow is alive.
            Some(&unsafe { pos.curr.deref_guarded(&guard.g) }.value)
        } else {
            None
        }
    }

    fn insert<'h>(&self, guard: &mut Self::Guard<'h>, key: K, value: V) -> Result<(), V> {
        self.check_guard(&*guard);
        let mut pos = self.find(&mut guard.g, &key, true, true, 0);
        if pos.found {
            return Err(value);
        }
        let height = tower_height(guard.rng);
        let new = Self::alloc_tower(&mut guard.g, key, value, height);
        // Protect our own tower for the rest of the operation: the moment the
        // level-0 CAS publishes it, another thread may remove and retire it.
        // Publishing before the CAS makes the hazard visible to any scan that
        // could run after such a retire.
        guard.g.announce(HP_TOWER, new);
        loop {
            // SAFETY: `new` is owned by us until the CAS below publishes it.
            unsafe { new.deref().next0.store(pos.curr, Ordering::Relaxed) };
            // SAFETY: `pred`'s owner is the head or protected (Hp2).
            if unsafe { pos.pred.cas(pos.curr, new) }.is_ok() {
                break;
            }
            // A checkpoint here is still safe: `new` is unpublished (the CAS
            // failed), so no thread can retire it out from under us.
            pos = self.find(&mut guard.g, &key, true, true, 0);
            if pos.found {
                // A concurrent insert won the race after our first find.
                // SAFETY: `new` was never published; reclaim the block and
                // hand the caller's value back instead of dropping it.
                let node = unsafe { crate::take_unpublished(new) };
                return Err(node.value);
            }
        }
        self.build_tower(&mut guard.g, new, &key, height);
        Ok(())
    }

    fn remove<'g, 'h>(&self, guard: &'g mut Self::Guard<'h>, key: &K) -> Option<&'g V> {
        self.check_guard(&*guard);
        'retry: loop {
            let pos = self.find(&mut guard.g, key, true, true, 0);
            if !pos.found {
                return None;
            }
            let victim = pos.curr;
            // Keep the victim protected across the cleanup traversals below,
            // which recycle Hp0-Hp4.
            guard.g.dup(HP_CURR, HP_VICTIM);
            // SAFETY: protected by Hp1/Hp5.
            let victim_ref = unsafe { victim.deref() };
            // Mark the tower top-down, so that any level observed unmarked
            // implies level 0 is still unmarked (the invariant the traversal
            // and build paths rely on).  Upper-level marking is cooperative
            // and idempotent.
            for lvl in (1..victim_ref.height).rev() {
                // SAFETY: `lvl < height`.
                let link = unsafe { victim_ref.level(lvl) };
                loop {
                    let cur = link.load(Ordering::Acquire);
                    if cur.tag() != 0
                        || link
                            .compare_exchange(
                                cur,
                                cur.with_tag(MARK),
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            )
                            .is_ok()
                    {
                        break;
                    }
                }
            }
            // Marking level 0 linearizes the removal and elects the remover.
            loop {
                let cur = victim_ref.next0.load(Ordering::Acquire);
                if cur.tag() != 0 {
                    // Another remover won; the key may have been reinserted
                    // since, so retry from the search.
                    continue 'retry;
                }
                if victim_ref
                    .next0
                    .compare_exchange(cur, cur.with_tag(MARK), Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    break;
                }
            }
            // Retirement handshake with a potentially in-flight tower build
            // (see the module documentation).  If the builder is still
            // active, it inherits the retirement; otherwise the tower is
            // fully built and one cleanup traversal conclusively unlinks it.
            let handed_off = victim_ref
                .state
                .compare_exchange(BUILDING, HANDOFF, Ordering::AcqRel, Ordering::Acquire)
                .is_ok();
            // Checkpoints stay off for the cleanup pass: a checkpoint would
            // void the victim's Hp5 protection while a handed-off builder may
            // already be retiring it.
            let _ = self.find(&mut guard.g, key, true, false, 0);
            if !handed_off {
                // SAFETY: we won the level-0 marking CAS (unique remover),
                // the builder had already finished (state was DONE), and the
                // cleanup pass above confirmed the tower is unlinked from
                // every level — so this is the exactly-once retirement of a
                // fully unreachable node.
                unsafe { guard.g.retire(victim) };
            }
            // SAFETY: the victim stays protected by Hp5 — retiring does not
            // free, and no scheme reclaims a node covered by a published
            // hazard slot / live era reservation.  The `&'g mut` guard borrow
            // keeps that protection in place for the borrow's lifetime.
            return Some(&unsafe { victim.deref_guarded(&guard.g) }.value);
        }
    }

    fn contains<'h>(&self, guard: &mut Self::Guard<'h>, key: &K) -> bool {
        self.check_guard(&*guard);
        self.find(&mut guard.g, key, false, true, 0).found
    }

    fn scan<'r, 'h>(
        &'r self,
        guard: &'r mut Self::Guard<'h>,
        lo: K,
        hi: Option<K>,
    ) -> Self::Range<'r, 'h>
    where
        'h: 'r,
    {
        self.check_guard(&*guard);
        SkipRange {
            list: self,
            guard,
            state: ScanState::Seek(SeekBound::Ge(lo)),
            hi,
        }
    }

    fn collect(&self, handle: &mut Self::Handle) -> Vec<(K, V)>
    where
        V: Clone,
    {
        let mut g = handle.smr.pin();
        assert_eq!(
            g.domain_addr(),
            Arc::as_ptr(&self.smr) as usize,
            "guard was pinned from a handle of a different map's reclamation domain"
        );
        let mut out = Vec::new();
        self.walk(&mut g, |k, v| out.push((*k, v.clone())));
        out
    }

    fn flush(&self, handle: &mut Self::Handle) {
        handle.flush();
    }

    fn traversal_stats(&self) -> TraversalSnapshot {
        self.stats.snapshot()
    }
}

impl<K, S: Smr, V> Drop for SkipList<K, S, V> {
    fn drop(&mut self) {
        // Free every tower still reachable at level 0 (membership level).
        // Retired towers are unreachable from level 0 — retirement requires a
        // confirmed unlink from every level — and are released by the domain,
        // so each allocation is freed exactly once.
        // ORDERING: drop holds `&mut self`, so no other thread can touch these links.
        let mut curr = self.head[0].load(Ordering::Relaxed).untagged();
        while !curr.is_null() {
            // SAFETY: exclusive access during drop; the block header's vtable
            // carries the height-specific tower layout, so the right amount
            // of memory is released for every height class.
            unsafe {
                // ORDERING: drop holds `&mut self`, so no other thread can touch these links.
                let next = curr.deref().next0.load(Ordering::Relaxed).untagged();
                scot_smr::free_block(scot_smr::header_of(curr.as_ptr()));
                curr = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConcurrentSet;
    use scot_smr::{Ebr, He, Hp, Hyaline, Ibr, Nbr, Nr, Vbr};

    fn cfg() -> SmrConfig {
        SmrConfig {
            max_threads: 16,
            scan_threshold: 8,
            epoch_freq_per_thread: 1,
            snapshot_scan: false,
            ..SmrConfig::default()
        }
    }

    fn basic_set_semantics<S: Smr>() {
        let list: SkipList<u64, S> = SkipList::with_config(cfg());
        let mut h = list.handle();
        assert!(!list.contains(&mut h, &5));
        assert!(list.insert(&mut h, 5));
        assert!(!list.insert(&mut h, 5), "duplicate insert must fail");
        assert!(list.insert(&mut h, 3));
        assert!(list.insert(&mut h, 9));
        assert!(list.contains(&mut h, &3));
        assert!(list.contains(&mut h, &5));
        assert!(list.contains(&mut h, &9));
        assert!(!list.contains(&mut h, &4));
        assert_eq!(list.collect_keys(&mut h), vec![3, 5, 9]);
        assert!(list.remove(&mut h, &5));
        assert!(!list.remove(&mut h, &5), "double remove must fail");
        assert!(!list.contains(&mut h, &5));
        assert_eq!(list.collect_keys(&mut h), vec![3, 9]);
    }

    #[test]
    fn basic_semantics_under_every_scheme() {
        basic_set_semantics::<Nr>();
        basic_set_semantics::<Ebr>();
        basic_set_semantics::<Hp>();
        basic_set_semantics::<He>();
        basic_set_semantics::<Ibr>();
        basic_set_semantics::<Hyaline>();
        basic_set_semantics::<Nbr>();
        basic_set_semantics::<Vbr>();
    }

    #[test]
    fn height_distribution_is_geometric_and_bounded() {
        // Deterministic: the same seed must yield the same sequence.
        let mut a = 0x5eed_5eed;
        let mut b = 0x5eed_5eed;
        let seq_a: Vec<usize> = (0..64).map(|_| tower_height(&mut a)).collect();
        let seq_b: Vec<usize> = (0..64).map(|_| tower_height(&mut b)).collect();
        assert_eq!(seq_a, seq_b, "height sampling must be deterministic");

        // Geometric(p = 1/2) bounds over a large deterministic sample: the
        // fraction of towers reaching height >= h must be close to 2^-(h-1).
        let mut state = 0x00dd_5eed | 1;
        const N: usize = 200_000;
        let mut reached = [0usize; MAX_HEIGHT + 1];
        for _ in 0..N {
            let h = tower_height(&mut state);
            assert!((1..=MAX_HEIGHT).contains(&h), "height {h} out of range");
            for (lvl, count) in reached.iter_mut().enumerate() {
                if (1..=h).contains(&lvl) {
                    *count += 1;
                }
            }
        }
        assert_eq!(reached[1], N, "every tower has at least one level");
        for (h, &got) in reached.iter().enumerate().take(7).skip(2) {
            let expected = N as f64 / 2f64.powi(h as i32 - 1);
            let got = got as f64;
            assert!(
                (got - expected).abs() < expected * 0.10,
                "P(height >= {h}): got {got}, expected ~{expected}"
            );
        }
        // The cap actually binds: the tail accumulates in the top level.
        assert!(reached[MAX_HEIGHT] > 0, "cap never reached over {N} draws");
    }

    #[test]
    fn seeded_handles_reproduce_height_sequences() {
        let list: SkipList<u64, Nr> = SkipList::with_config(cfg());
        let h = list.handle_with_seed(42);
        let mut expected_state = 42u64 | 1;
        let expected: Vec<usize> = (0..8).map(|_| tower_height(&mut expected_state)).collect();
        let mut state = h.rng;
        let got: Vec<usize> = (0..8).map(|_| tower_height(&mut state)).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn keys_stay_sorted_and_unique() {
        let list: SkipList<u32, Hp> = SkipList::with_config(cfg());
        let mut h = list.handle();
        for k in [5u32, 1, 9, 3, 7, 3, 9, 0] {
            list.insert(&mut h, k);
        }
        let keys = list.collect_keys(&mut h);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted);
        assert_eq!(keys, vec![0, 1, 3, 5, 7, 9]);
    }

    #[test]
    fn interleaved_insert_remove_sequence() {
        let list: SkipList<u64, Ebr> = SkipList::with_config(cfg());
        let mut h = list.handle();
        for i in 0..400u64 {
            assert!(list.insert(&mut h, i));
        }
        for i in (0..400u64).step_by(2) {
            assert!(list.remove(&mut h, &i));
        }
        for i in 0..400u64 {
            assert_eq!(list.contains(&mut h, &i), i % 2 == 1, "key {i}");
        }
        assert_eq!(list.collect_keys(&mut h).len(), 200);
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        let list: Arc<SkipList<u64, Hp>> = Arc::new(SkipList::with_config(cfg()));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let list = list.clone();
                s.spawn(move || {
                    let mut h = list.handle();
                    for i in 0..200u64 {
                        assert!(list.insert(&mut h, t * 1000 + i));
                    }
                });
            }
        });
        let mut h = list.handle();
        for t in 0..4u64 {
            for i in 0..200u64 {
                assert!(list.contains(&mut h, &(t * 1000 + i)));
            }
        }
        assert_eq!(list.collect_keys(&mut h).len(), 800);
    }

    #[test]
    fn concurrent_mixed_workload_is_consistent() {
        fn run<S: Smr>() {
            let list: Arc<SkipList<u32, S>> = Arc::new(SkipList::with_config(cfg()));
            std::thread::scope(|s| {
                for t in 0..8u32 {
                    let list = list.clone();
                    s.spawn(move || {
                        let mut h = list.handle();
                        let mut x = t as u64 + 1;
                        for _ in 0..3000 {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            let key = (x % 64) as u32;
                            match x % 3 {
                                0 => {
                                    list.insert(&mut h, key);
                                }
                                1 => {
                                    list.remove(&mut h, &key);
                                }
                                _ => {
                                    list.contains(&mut h, &key);
                                }
                            }
                        }
                    });
                }
            });
            let mut h = list.handle();
            let keys = list.collect_keys(&mut h);
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(keys, sorted, "list must remain sorted and duplicate-free");
        }
        run::<Hp>();
        run::<Ebr>();
        run::<He>();
        run::<Ibr>();
        run::<Hyaline>();
        run::<Nbr>();
        run::<Vbr>();
    }

    #[test]
    fn all_retired_towers_are_reclaimed_after_quiescence() {
        let domain = Hp::new(cfg());
        let list: Arc<SkipList<u64, Hp>> = Arc::new(SkipList::new(domain.clone()));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let list = list.clone();
                s.spawn(move || {
                    let mut h = list.handle();
                    for i in 0..500 {
                        let k = t * 10_000 + i;
                        list.insert(&mut h, k);
                        list.remove(&mut h, &k);
                    }
                    h.smr.flush();
                });
            }
        });
        let mut h = list.handle();
        h.smr.flush();
        drop(h);
        assert_eq!(
            domain.unreclaimed(),
            0,
            "no retired tower may remain once quiescent"
        );
    }

    mod map_api {
        use super::cfg;
        use crate::{ConcurrentMap, SkipList};
        use scot_smr::Hp;

        #[test]
        fn values_round_trip_and_conflicts_hand_values_back() {
            let list: SkipList<u64, Hp, String> = SkipList::with_config(cfg());
            let mut h = list.handle();
            {
                let mut g = list.pin(&mut h);
                assert!(list.insert(&mut g, 1, "one".to_string()).is_ok());
                assert_eq!(
                    list.insert(&mut g, 1, "uno".to_string()),
                    Err("uno".to_string()),
                    "conflicting insert must hand the rejected value back"
                );
                assert_eq!(list.get(&mut g, &1).map(String::as_str), Some("one"));
                assert!(list.get(&mut g, &2).is_none());
                assert_eq!(
                    list.remove(&mut g, &1).map(String::as_str),
                    Some("one"),
                    "remove must expose the evicted value under the guard"
                );
                assert!(list.remove(&mut g, &1).is_none());
            }
            assert!(list.collect(&mut h).is_empty());
        }

        #[test]
        fn collect_returns_sorted_entries() {
            let list: SkipList<u32, Hp, u32> = SkipList::with_config(cfg());
            let mut h = list.handle();
            for k in [5u32, 1, 9, 3] {
                let mut g = list.pin(&mut h);
                assert!(list.insert(&mut g, k, k * 10).is_ok());
            }
            assert_eq!(
                list.collect(&mut h),
                vec![(1, 10), (3, 30), (5, 50), (9, 90)]
            );
        }
    }

    #[test]
    fn restart_counter_stays_zero_single_threaded() {
        let list: SkipList<u64, Hp> = SkipList::with_config(cfg());
        let mut h = list.handle();
        for i in 0..200 {
            list.insert(&mut h, i);
        }
        for i in 0..200 {
            list.remove(&mut h, &i);
        }
        assert_eq!(list.restarts(), 0);
    }

    #[test]
    fn tall_towers_churn_through_every_height_class() {
        // A seeded handle with a known multi-height sequence churns the same
        // keys repeatedly, so towers of several distinct heights are
        // allocated, retired and pool-recycled; afterwards the quiescent
        // domain must account to zero.
        use crate::ConcurrentMap;
        let domain = Ibr::new(cfg());
        let list: SkipList<u64, Ibr, u64> = SkipList::new(domain.clone());
        let mut h = list.handle_with_seed(7);
        let mut heights = std::collections::BTreeSet::new();
        let mut probe = 7u64 | 1;
        for round in 0..2000u64 {
            heights.insert(tower_height(&mut probe));
            let k = round % 97;
            let mut g = list.pin(&mut h);
            if list.insert(&mut g, k, !k).is_ok() {
                drop(g);
                let mut g = list.pin(&mut h);
                assert_eq!(list.remove(&mut g, &k).copied(), Some(!k));
            }
        }
        assert!(
            heights.len() >= 4,
            "the seeded sequence must span several height classes, got {heights:?}"
        );
        h.flush();
        drop(h);
        drop(list);
        let mut h = domain.register();
        h.flush();
        drop(h);
        assert_eq!(domain.unreclaimed(), 0);
    }
}
