//! Wait-free traversals for SCOT-based data structures (paper §3.4, Figure 7).
//!
//! SCOT's validation may force a traversal to restart from the head, which
//! keeps updates lock-free but makes `Search` only lock-free too (the same
//! limitation HP++ has).  The paper's fix is a custom fast-path/slow-path
//! helping protocol tailored to traversals:
//!
//! * A `Search` first runs the ordinary SCOT traversal for a bounded number of
//!   restarts (the *fast path*).  If it keeps getting disrupted, it publishes
//!   a help request — its key and a per-thread, monotonically increasing tag —
//!   in a per-thread announcement record (`thrdrec_t` in Figure 7) and
//!   switches to `Slow_Search`.
//! * Every `Insert`/`Delete` periodically polls the announcement array
//!   (`Help_Threads`, amortized by the `DELAY` counter and a round-robin
//!   cursor) and, when it finds a pending request, runs the same `Slow_Search`
//!   on behalf of the requester before doing its own update.
//! * Whoever finishes first — helper or requester — publishes the boolean
//!   result with a single CAS keyed by the request tag (`⟨v, In⟩ → ⟨r, Out⟩`),
//!   so exactly one output is ever installed per request (Lemma 5) and stale
//!   helpers can never overwrite a newer request.
//! * `Slow_Search` re-checks the announcement record on every traversal step,
//!   so as soon as anyone produces the answer every participant stops.
//!
//! Updates themselves remain lock-free; only traversals gain wait-freedom
//! (Theorem 7), which matches the evaluation's `listwf` configuration.

use crate::harris_list::{HarrisList, HarrisListHandle, ListRange};
use crate::traverse::{Cursor, Seek, SeekBound, TraversalStats, ZoneMode};
use crate::{Key, TraversalSnapshot, Value};
use crossbeam_utils::CachePadded;
use scot_smr::{Shared, SlotClaim, SlotRegistry, Smr, SmrConfig, SmrGuard, SmrHandle};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of `Help_Threads` calls between actual help checks (the `DELAY`
/// amortization constant of Figure 7).
const DELAY: usize = 16;

/// Number of fast-path restarts a `Search` tolerates before requesting help.
const FAST_PATH_RESTARTS: usize = 8;

/// Packed `helpTag` word: bit 0 is `IsInput`, the remaining bits carry either
/// the request tag (input) or the boolean result (output).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct HelpTag(u64);

impl HelpTag {
    const INPUT_BIT: u64 = 1;

    fn input(tag: u64) -> Self {
        Self((tag << 1) | Self::INPUT_BIT)
    }

    fn output(result: bool) -> Self {
        Self((result as u64) << 1)
    }

    fn is_input(self) -> bool {
        self.0 & Self::INPUT_BIT != 0
    }

    fn value(self) -> u64 {
        self.0 >> 1
    }
}

/// Per-thread announcement record (`thrdrec_t` in Figure 7).  `help_key`
/// stores the raw key bits; it is only interpreted after the double read of
/// `help_tag` confirms the record is stable (Figure 7, L20-L23).
struct HelpRecord {
    help_key: AtomicU64,
    help_tag: AtomicU64,
}

impl HelpRecord {
    fn new() -> Self {
        Self {
            help_key: AtomicU64::new(0),
            help_tag: AtomicU64::new(HelpTag::output(false).0),
        }
    }
}

/// Keys usable with the wait-free list: they must round-trip through a 64-bit
/// announcement word so helpers can read them without locks.
pub trait WfKey: Key {
    /// Encodes the key into 64 bits.
    fn encode(self) -> u64;
    /// Decodes a key previously produced by [`WfKey::encode`].
    fn decode(bits: u64) -> Self;
}

macro_rules! impl_wf_key {
    ($($t:ty),*) => {$(
        impl WfKey for $t {
            fn encode(self) -> u64 {
                self as u64
            }
            fn decode(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}
impl_wf_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Harris' list with SCOT traversals **and** the wait-free search extension
/// (`V = ()` gives the paper's `listwf` membership set).
///
/// Wait-freedom applies to **membership tests**
/// ([`crate::ConcurrentSet::contains`] and the overridden
/// [`crate::ConcurrentMap::contains`]): the helping protocol publishes a
/// *boolean* answer, so a helped searcher finishes even while its own
/// traversal keeps getting disrupted.  The value-returning
/// [`crate::ConcurrentMap::get`] is lock-free only: handing out `&'g V`
/// fundamentally requires the *caller's own* guard to protect the node, which
/// a helper's protection cannot substitute for.
///
/// ```
/// use scot::{ConcurrentSet, WfHarrisList};
/// use scot_smr::{Hp, Smr, SmrConfig};
///
/// let cfg = SmrConfig::default();
/// let list: WfHarrisList<u64, Hp> = WfHarrisList::new(Hp::new(cfg.clone()), cfg.max_threads);
/// let mut h = list.handle();
/// assert!(list.insert(&mut h, 3));
/// assert!(list.contains(&mut h, &3));
/// ```
pub struct WfHarrisList<K, S: Smr, V = ()> {
    list: HarrisList<K, S, V>,
    records: Box<[CachePadded<HelpRecord>]>,
    record_slots: Arc<SlotRegistry>,
    /// Restarts (and recoveries) of the read-only fast/slow-path traversals,
    /// kept separate from the underlying list's update traversals.
    stats: TraversalStats,
    /// Number of searches that exhausted the fast-path restart budget and
    /// entered `Slow_Search`.
    slow_entries: AtomicU64,
}

/// Per-thread handle for [`WfHarrisList`].
pub struct WfListHandle<S: Smr> {
    inner: HarrisListHandle<S>,
    /// Registry the announcement-record index was claimed from.
    record_slots: Arc<SlotRegistry>,
    /// Claim on this thread's announcement record.
    claim: SlotClaim,
    /// `nextCheck` amortization counter.
    next_check: usize,
    /// Round-robin cursor over the announcement array.
    next_tid: usize,
    /// Next slow-path request tag (monotonically increasing).
    local_tag: u64,
}

/// Critical-section guard for [`WfHarrisList`]: the underlying SMR guard plus
/// mutable views of the handle's helping-protocol state, split-borrowed so the
/// guard can drive `Help_Threads` bookkeeping while the SMR guard protects the
/// traversal.
#[must_use = "dropping a guard unpublishes every protection it holds"]
pub struct WfGuard<'h, S: Smr> {
    g: <S::Handle as SmrHandle>::Guard<'h>,
    /// Index of this thread's announcement record (copied, not borrowed: it
    /// never changes for the lifetime of the handle).
    index: usize,
    next_check: &'h mut usize,
    next_tid: &'h mut usize,
    local_tag: &'h mut u64,
}

impl<K: WfKey, S: Smr, V: Value> WfHarrisList<K, S, V> {
    /// Creates an empty list.  `max_threads` bounds the number of concurrently
    /// registered handles (it normally matches the SMR domain configuration).
    pub fn new(smr: Arc<S>, max_threads: usize) -> Self {
        let records = (0..max_threads)
            .map(|_| CachePadded::new(HelpRecord::new()))
            .collect();
        Self {
            list: HarrisList::new(smr),
            records,
            record_slots: Arc::new(SlotRegistry::new(max_threads)),
            stats: TraversalStats::default(),
            slow_entries: AtomicU64::new(0),
        }
    }

    /// Creates an empty list with a freshly created domain using `config`.
    pub fn with_config(config: SmrConfig) -> Self {
        let max_threads = config.max_threads;
        Self::new(S::new(config), max_threads)
    }

    /// The reclamation domain backing this list.
    pub fn domain(&self) -> &Arc<S> {
        self.list.domain()
    }

    /// Registers the calling thread.
    pub fn handle(&self) -> WfListHandle<S> {
        WfListHandle {
            inner: self.list.handle(),
            record_slots: self.record_slots.clone(),
            claim: self.record_slots.claim(),
            next_check: DELAY,
            next_tid: 0,
            local_tag: 1,
        }
    }

    /// Number of full traversal restarts of the underlying list (Table 2).
    pub fn restarts(&self) -> u64 {
        self.list.restarts() + self.stats.restarts()
    }

    /// Number of slow-path searches that were actually entered; exposed for
    /// the wait-free ablation benchmark.
    pub fn slow_path_entries(&self) -> u64 {
        self.slow_entries.load(Ordering::Relaxed)
    }

    /// `Help_Threads` (Figure 7, L12-L26): every `DELAY` calls, examine one
    /// announcement record in round-robin order and return its request if one
    /// is pending.
    fn poll_help_request(&self, guard: &mut WfGuard<'_, S>) -> Option<(K, HelpTag, usize)> {
        *guard.next_check -= 1;
        if *guard.next_check != 0 {
            return None;
        }
        *guard.next_check = DELAY;
        let curr_tid = *guard.next_tid;
        *guard.next_tid = (curr_tid + 1) % self.records.len();
        if curr_tid == guard.index {
            return None;
        }
        let rec = &self.records[curr_tid];
        let tag = HelpTag(rec.help_tag.load(Ordering::Acquire));
        if !tag.is_input() {
            return None;
        }
        let key_bits = rec.help_key.load(Ordering::Acquire);
        // Confirm the key belongs to the tag we saw (Figure 7, L23).
        if rec.help_tag.load(Ordering::Acquire) != tag.0 {
            return None;
        }
        Some((K::decode(key_bits), tag, curr_tid))
    }

    /// Helps at most one pending search request before an update operation.
    fn maybe_help(&self, guard: &mut WfGuard<'_, S>) {
        if let Some((key, tag, tid)) = self.poll_help_request(guard) {
            self.slow_search(&mut guard.g, &key, tid, tag);
        }
    }

    /// `Request_Help` (Figure 7, L27-L32): publish the key and a fresh input
    /// tag in this thread's announcement record.
    fn request_help(&self, guard: &mut WfGuard<'_, S>, key: K) -> HelpTag {
        let rec = &self.records[guard.index];
        rec.help_key.store(key.encode(), Ordering::Release);
        let tag = HelpTag::input(*guard.local_tag);
        rec.help_tag.store(tag.0, Ordering::Release);
        *guard.local_tag += 1;
        tag
    }

    /// Read-only SCOT traversal shared by the fast path and `Slow_Search`:
    /// the shared `Cursor` with an interrupt hook.
    ///
    /// `max_restarts = None` means unbounded (slow path); `check` is consulted
    /// on every step and may abort the traversal with an externally produced
    /// result.  Returns `None` when the restart budget is exhausted.
    fn traverse<G: SmrGuard>(
        &self,
        g: &mut G,
        key: &K,
        max_restarts: Option<usize>,
        mut check: impl FnMut() -> Option<bool>,
    ) -> Option<bool> {
        let bound = SeekBound::Ge(*key);
        let mut restarts = 0usize;
        loop {
            if let Some(done) = check() {
                return Some(done);
            }
            if let Some(limit) = max_restarts {
                if restarts > limit {
                    return None;
                }
            }
            restarts += 1;

            // The head link is never tagged, so `begin` cannot fail here.
            let Ok(mut c) = Cursor::begin(
                g,
                Shared::null(),
                self.list.head.as_link(),
                0,
                Shared::null(),
                true,
                &self.stats,
                ZoneMode::Scot { recovery: true },
            ) else {
                continue;
            };
            let mut answered = None;
            match c.seek(g, &bound, || {
                if let Some(done) = check() {
                    answered = Some(done);
                    true
                } else {
                    false
                }
            }) {
                Seek::Positioned => {
                    let curr = c.curr();
                    // SAFETY: `curr` is protected (HP_CURR) and durable.
                    return Some(!curr.is_null() && unsafe { curr.deref() }.key == *key);
                }
                Seek::Restart(_) => continue,
                Seek::Interrupted => return answered,
            }
        }
    }

    /// `Slow_Search` (Figure 7, L33-L42): run the traversal on behalf of
    /// `help_tid`'s request, aborting as soon as anyone published a result,
    /// and publish our own result with a tag-keyed CAS when we finish first.
    fn slow_search<G: SmrGuard>(&self, g: &mut G, key: &K, help_tid: usize, tag: HelpTag) -> bool {
        let rec = &self.records[help_tid];
        let outcome = self.traverse(g, key, None, || {
            let r = HelpTag(rec.help_tag.load(Ordering::Acquire));
            if r != tag {
                // Either the output is available or (for helpers only) the
                // requester has already moved on to a newer request.
                return Some(!r.is_input() && r.value() != 0);
            }
            None
        });
        let found = outcome.unwrap_or(false);
        // Publish the result; only the first CAS for this tag wins (Lemma 5).
        let _ = rec.help_tag.compare_exchange(
            tag.0,
            HelpTag::output(found).0,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        // Re-read: the value that actually got installed is the answer the
        // requester will use, so the requester itself returns exactly that.
        let installed = HelpTag(rec.help_tag.load(Ordering::Acquire));
        if !installed.is_input() {
            installed.value() != 0
        } else {
            found
        }
    }
}

impl<K: WfKey, S: Smr, V: Value> crate::ConcurrentMap<K, V> for WfHarrisList<K, S, V> {
    type Handle = WfListHandle<S>;
    type Guard<'h>
        = WfGuard<'h, S>
    where
        Self: 'h;
    type Range<'r, 'h>
        = ListRange<'r, 'h, K, S, V>
    where
        Self: 'h,
        'h: 'r;

    fn handle(&self) -> Self::Handle {
        WfHarrisList::handle(self)
    }

    fn pin<'h>(&self, handle: &'h mut Self::Handle) -> Self::Guard<'h> {
        // Split-borrow the handle: the SMR guard takes the inner handle, the
        // helping-protocol counters stay individually reachable.
        let WfListHandle {
            inner,
            record_slots: _,
            claim,
            next_check,
            next_tid,
            local_tag,
        } = handle;
        WfGuard {
            g: inner.smr.pin(),
            index: claim.index,
            next_check,
            next_tid,
            local_tag,
        }
    }

    fn repin<'h>(&self, guard: &mut Self::Guard<'h>) {
        self.list.check_guard(&guard.g);
        guard.g.repin();
    }

    fn get<'g, 'h>(&self, guard: &'g mut Self::Guard<'h>, key: &K) -> Option<&'g V> {
        // Lock-free, not wait-free: a value borrow must be backed by this
        // thread's own protection (see the type-level documentation).
        crate::ConcurrentMap::get(&self.list, &mut guard.g, key)
    }

    fn insert<'h>(&self, guard: &mut Self::Guard<'h>, key: K, value: V) -> Result<(), V> {
        self.list.check_guard(&guard.g);
        self.maybe_help(guard);
        crate::ConcurrentMap::insert(&self.list, &mut guard.g, key, value)
    }

    fn remove<'g, 'h>(&self, guard: &'g mut Self::Guard<'h>, key: &K) -> Option<&'g V> {
        self.list.check_guard(&guard.g);
        self.maybe_help(guard);
        crate::ConcurrentMap::remove(&self.list, &mut guard.g, key)
    }

    fn contains<'h>(&self, guard: &mut Self::Guard<'h>, key: &K) -> bool {
        self.list.check_guard(&guard.g);
        // Fast path: bounded number of ordinary SCOT traversals.
        if let Some(found) = self.traverse(&mut guard.g, key, Some(FAST_PATH_RESTARTS), || None) {
            return found;
        }
        // Slow path: announce the request and search with helpers.
        self.slow_entries.fetch_add(1, Ordering::Relaxed);
        let tag = self.request_help(guard, *key);
        let index = guard.index;
        self.slow_search(&mut guard.g, key, index, tag)
    }

    fn scan<'r, 'h>(
        &'r self,
        guard: &'r mut Self::Guard<'h>,
        lo: K,
        hi: Option<K>,
    ) -> Self::Range<'r, 'h>
    where
        'h: 'r,
    {
        // Scans are lock-free by design, like `get`: every yielded borrow
        // must be backed by this thread's own protection, which the helping
        // protocol (a published boolean) cannot substitute for.
        crate::ConcurrentMap::scan(&self.list, &mut guard.g, lo, hi)
    }

    fn collect(&self, handle: &mut Self::Handle) -> Vec<(K, V)>
    where
        V: Clone,
    {
        crate::ConcurrentMap::collect(&self.list, &mut handle.inner)
    }

    fn restart_count(&self) -> u64 {
        self.restarts()
    }

    fn flush(&self, handle: &mut Self::Handle) {
        handle.flush();
    }

    fn traversal_stats(&self) -> TraversalSnapshot {
        // The underlying list's update traversals plus this structure's
        // read-only fast/slow-path traversals.
        crate::ConcurrentMap::traversal_stats(&self.list).merged(self.stats.snapshot())
    }
}

impl<S: Smr> WfListHandle<S> {
    /// Index of this handle's announcement record (diagnostics).
    pub fn record_index(&self) -> usize {
        self.claim.index
    }

    /// Forces a reclamation pass on this thread's SMR handle.
    pub fn flush(&mut self) {
        self.inner.flush();
    }
}

impl<S: Smr> Drop for WfListHandle<S> {
    fn drop(&mut self) {
        self.record_slots.release(self.claim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConcurrentSet;
    use scot_smr::{Ebr, Hp, Hyaline, Ibr, Nbr, Vbr};

    /// UFCS pin helper: the tests exercise `ConcurrentSet` method syntax, so
    /// `ConcurrentMap` itself must stay out of scope (method-name overlap).
    fn pin<'h, K: WfKey, S: Smr>(
        list: &WfHarrisList<K, S>,
        handle: &'h mut WfListHandle<S>,
    ) -> WfGuard<'h, S> {
        crate::ConcurrentMap::pin(list, handle)
    }

    fn cfg() -> SmrConfig {
        SmrConfig {
            max_threads: 16,
            scan_threshold: 8,
            epoch_freq_per_thread: 1,
            snapshot_scan: false,
            ..SmrConfig::default()
        }
    }

    #[test]
    fn help_tag_packing() {
        let t = HelpTag::input(42);
        assert!(t.is_input());
        assert_eq!(t.value(), 42);
        let o = HelpTag::output(true);
        assert!(!o.is_input());
        assert_eq!(o.value(), 1);
        let o = HelpTag::output(false);
        assert_eq!(o.value(), 0);
        assert_ne!(HelpTag::input(0), HelpTag::output(false));
    }

    #[test]
    fn wf_key_roundtrip() {
        assert_eq!(u32::decode(123u32.encode()), 123);
        assert_eq!(i64::decode((-5i64).encode()), -5);
        assert_eq!(u64::decode(u64::MAX.encode()), u64::MAX);
    }

    fn basic_set_semantics<S: Smr>() {
        let list: WfHarrisList<u64, S> = WfHarrisList::with_config(cfg());
        let mut h = list.handle();
        assert!(list.insert(&mut h, 4));
        assert!(list.insert(&mut h, 2));
        assert!(!list.insert(&mut h, 4));
        assert!(list.contains(&mut h, &2));
        assert!(list.contains(&mut h, &4));
        assert!(!list.contains(&mut h, &3));
        assert!(list.remove(&mut h, &2));
        assert!(!list.contains(&mut h, &2));
        assert_eq!(list.collect_keys(&mut h), vec![4]);
    }

    #[test]
    fn basic_semantics_under_every_scheme() {
        basic_set_semantics::<Ebr>();
        basic_set_semantics::<Hp>();
        basic_set_semantics::<Ibr>();
        basic_set_semantics::<Hyaline>();
        basic_set_semantics::<Nbr>();
        basic_set_semantics::<Vbr>();
    }

    #[test]
    fn slow_path_produces_correct_results() {
        // Force the slow path by requesting help directly and then answering
        // it from another handle (acting as the helper).
        let list: WfHarrisList<u64, Hp> = WfHarrisList::with_config(cfg());
        let mut searcher = list.handle();
        let mut helper = list.handle();
        for i in 0..64 {
            list.insert(&mut searcher, i);
        }
        let searcher_index = searcher.claim.index;
        // Searcher announces a request but does not run the search yet.
        let tag = {
            let mut sg = pin(&list, &mut searcher);
            list.request_help(&mut sg, 17)
        };
        // Helper finds the pending request by polling round-robin.
        let mut served = false;
        let mut hg = pin(&list, &mut helper);
        for _ in 0..(DELAY * cfg().max_threads * 2) {
            if let Some((key, t, tid)) = list.poll_help_request(&mut hg) {
                assert_eq!(key, 17);
                assert_eq!(tid, searcher_index);
                assert_eq!(t, tag);
                assert!(list.slow_search(&mut hg.g, &key, tid, t));
                served = true;
                break;
            }
        }
        assert!(served, "helper never observed the pending request");
        // The searcher's own slow search immediately sees the published output.
        let mut sg = pin(&list, &mut searcher);
        assert!(list.slow_search(&mut sg.g, &17, searcher_index, tag));
        // The record now carries an output; a new request gets a fresh tag.
        let tag2 = list.request_help(&mut sg, 9999);
        assert_ne!(tag2, tag);
    }

    #[test]
    fn stale_helper_cannot_overwrite_newer_request() {
        // Lemma 5: a CAS keyed on an old input tag must fail once the record
        // has moved on.
        let list: WfHarrisList<u64, Hp> = WfHarrisList::with_config(cfg());
        let mut a = list.handle();
        let a_index = a.claim.index;
        let mut g = pin(&list, &mut a);
        let old_tag = list.request_help(&mut g, 1);
        let new_tag = list.request_help(&mut g, 2);
        assert_ne!(old_tag, new_tag);
        let rec = &list.records[a_index];
        // Simulate a stale helper publishing for the old tag.
        assert!(rec
            .help_tag
            .compare_exchange(
                old_tag.0,
                HelpTag::output(true).0,
                Ordering::AcqRel,
                Ordering::Acquire
            )
            .is_err());
        assert_eq!(rec.help_tag.load(Ordering::Acquire), new_tag.0);
    }

    #[test]
    fn concurrent_searches_and_updates_agree_with_membership() {
        let list: Arc<WfHarrisList<u32, Ibr>> = Arc::new(WfHarrisList::with_config(cfg()));
        // Pre-fill even keys; they are never removed, odd keys churn.
        {
            let mut h = list.handle();
            for k in (0..128u32).step_by(2) {
                list.insert(&mut h, k);
            }
        }
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let list = list.clone();
                s.spawn(move || {
                    let mut h = list.handle();
                    let mut x = t as u64 + 99;
                    for _ in 0..4000 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let odd = ((x % 64) * 2 + 1) as u32;
                        if x.is_multiple_of(2) {
                            list.insert(&mut h, odd);
                        } else {
                            list.remove(&mut h, &odd);
                        }
                        // Stable keys must always be visible to searches.
                        let even = ((x % 64) * 2) as u32;
                        assert!(list.contains(&mut h, &even), "stable key {even} vanished");
                    }
                });
            }
        });
    }
}
