//! Process-global tuning toggles for the shared cursor's hot path.
//!
//! Each toggle gates one independently ablatable optimization of the
//! [`traverse`](crate::traverse) cursor:
//!
//! * **prefetch** — the one-hop software prefetch of the already-protected
//!   successor snapshot, issued while the cursor still examines the current
//!   node (see `Cursor::seek`).
//! * **backoff** — bounded exponential backoff before retrying after a failed
//!   CAS or a restart-ladder climb, de-synchronizing threads that would
//!   otherwise hammer the same contended link in lockstep.
//! * **chain batching** — retiring an unlinked marked chain through
//!   `SmrGuard::retire_batch` (one domain-vault lock per chunk) instead of
//!   one `retire` call per node.
//!
//! All three default to **enabled**; the benchmark harness's `exp cursor`
//! ablation flips them off arm by arm to measure each one's contribution.
//! The toggles are plain process-global flags, not per-structure
//! configuration, because they tune machine behavior (cache residency,
//! contention burstiness, lock amortization) that does not vary per map
//! instance — and a global read is one relaxed load on the hot path.
//!
//! Toggles are meant to be set **before** worker threads start; flipping them
//! mid-run is safe (they only select between two correct code paths) but the
//! switch-over point is unsynchronized and therefore unobservable.

use core::sync::atomic::{AtomicBool, Ordering};

static PREFETCH: AtomicBool = AtomicBool::new(true);
static BACKOFF: AtomicBool = AtomicBool::new(true);
static CHAIN_BATCH: AtomicBool = AtomicBool::new(true);

/// Enables or disables the cursor's one-hop successor prefetch.
pub fn set_prefetch(enabled: bool) {
    // ORDERING: Relaxed — a pure hint toggle set before workers spawn (the
    // spawn itself orders the write); a stale read merely issues or skips one
    // prefetch instruction, never affecting correctness.
    PREFETCH.store(enabled, Ordering::Relaxed);
}

/// Whether the one-hop successor prefetch is enabled.
#[inline]
pub fn prefetch_enabled() -> bool {
    // ORDERING: Relaxed — see `set_prefetch`.
    PREFETCH.load(Ordering::Relaxed)
}

/// Enables or disables bounded exponential backoff on cursor retries.
pub fn set_backoff(enabled: bool) {
    // ORDERING: Relaxed — selects between two correct retry paths; set
    // before workers spawn (the spawn orders the write).
    BACKOFF.store(enabled, Ordering::Relaxed);
}

/// Whether bounded exponential backoff on cursor retries is enabled.
#[inline]
pub fn backoff_enabled() -> bool {
    // ORDERING: Relaxed — see `set_backoff`.
    BACKOFF.load(Ordering::Relaxed)
}

/// Enables or disables batched retirement of unlinked marked chains.
pub fn set_chain_batch(enabled: bool) {
    // ORDERING: Relaxed — selects between two correct retire paths; set
    // before workers spawn (the spawn orders the write).
    CHAIN_BATCH.store(enabled, Ordering::Relaxed);
}

/// Whether batched retirement of unlinked marked chains is enabled.
#[inline]
pub fn chain_batch_enabled() -> bool {
    // ORDERING: Relaxed — see `set_chain_batch`.
    CHAIN_BATCH.load(Ordering::Relaxed)
}

/// Serializes tests that flip the process-global toggles, so a concurrently
/// running test never observes a mid-flip state it asserts on.
#[cfg(test)]
pub(crate) static TEST_TOGGLE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggles_default_on_and_round_trip() {
        let _serial = TEST_TOGGLE_LOCK.lock().unwrap();
        assert!(prefetch_enabled());
        assert!(backoff_enabled());
        assert!(chain_batch_enabled());
        set_prefetch(false);
        set_backoff(false);
        set_chain_batch(false);
        assert!(!prefetch_enabled());
        assert!(!backoff_enabled());
        assert!(!chain_batch_enabled());
        set_prefetch(true);
        set_backoff(true);
        set_chain_batch(true);
    }
}
